"""The PPA estimation engine as a standalone REST service (Section 3.5).

"PPA Estimation Engine: A standalone REST API to call which requires
hardware configuration, SW mapping configuration, and a tensor workload as
inputs to estimate performance, power and area."

* :class:`PPAServiceServer` wraps any :class:`PPAEngine` behind a small
  HTTP/JSON endpoint (stdlib ``http.server``; POST ``/evaluate_layer``,
  POST ``/evaluate_layers`` (batched), POST ``/evaluate_candidates``
  (batched candidates of one layer, vectorized server-side),
  POST ``/aggregate``, GET ``/health``, GET ``/metrics``).
* :class:`RemotePPAEngine` is a drop-in :class:`PPAEngine` client: search
  tools talk to it exactly as they talk to an in-process engine, so the
  master-slave deployment of Fig. 6(b) only changes the engine wiring.

Fault tolerance: every network-level failure (connection refused, socket
timeout, truncated/malformed responses, 5xx replies) surfaces as
:class:`~repro.errors.EvaluationError`, so the client composes with
:class:`~repro.costmodel.reliability.RetryingEngine`.  The client
additionally retries transient transport failures itself with exponential
backoff + jitter, and a small circuit breaker fails fast (for
``breaker_cooldown_s`` of real time) once the service looks down, instead
of burning a timeout per query.

Payloads carry plain dicts of the hardware/mapping dataclass fields; the
server reconstructs typed objects via the registered codecs.  Tuple-typed
dataclass fields (e.g. ``GemmMapping.loop_order``) are restored from JSON
lists by inspecting the dataclass annotations, so new config types
round-trip without codec edits.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
import typing
from http.client import HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple
from urllib.error import HTTPError, URLError
from urllib.parse import parse_qs, urlsplit
from urllib.request import Request, urlopen

from repro.camodel.mapping import AscendMapping
from repro.costmodel.engine import PPAEngine
from repro.costmodel.results import LayerPPA, NetworkPPA
from repro.errors import EvaluationError
from repro.hw.ascend import AscendHWConfig
from repro.hw.spatial import SpatialHWConfig
from repro.mapping.gemm_mapping import GemmMapping
from repro.obs.prom import render_prometheus
from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    format_trace_context,
    parse_trace_context,
)
from repro.utils.metrics import MetricsRegistry

#: Version of the ``GET /metrics`` JSON document (engine stats + registry
#: snapshot); bumped when the response shape changes so scrapers can detect
#: drift instead of diffing noisy dicts.
METRICS_SCHEMA_VERSION = 1

_HW_TYPES: Dict[str, type] = {
    "SpatialHWConfig": SpatialHWConfig,
    "AscendHWConfig": AscendHWConfig,
}
_MAPPING_TYPES: Dict[str, type] = {
    "GemmMapping": GemmMapping,
    "AscendMapping": AscendMapping,
}

_TUPLE_FIELDS_CACHE: Dict[type, FrozenSet[str]] = {}


def _tuple_fields(cls: type) -> FrozenSet[str]:
    """Names of ``cls`` fields annotated as tuples (JSON turns them into lists)."""
    cached = _TUPLE_FIELDS_CACHE.get(cls)
    if cached is None:
        hints = typing.get_type_hints(cls)
        cached = frozenset(
            name
            for name, hint in hints.items()
            if hint is tuple or typing.get_origin(hint) is tuple
        )
        _TUPLE_FIELDS_CACHE[cls] = cached
    return cached


def encode_object(obj) -> Dict:
    """Serialize a hardware config or mapping as {type, fields}.

    Underscore-prefixed attributes (precomputed caches such as
    ``GemmMapping._row``) are not constructor arguments and stay off the
    wire.
    """
    fields = {k: v for k, v in vars(obj).items() if not k.startswith("_")}
    for name in _tuple_fields(type(obj)):
        if name in fields:
            fields[name] = list(fields[name])
    return {"type": type(obj).__name__, "fields": fields}


def decode_object(payload: Dict):
    """Inverse of :func:`encode_object`."""
    type_name = payload["type"]
    fields = dict(payload["fields"])
    if type_name in _HW_TYPES:
        cls = _HW_TYPES[type_name]
    elif type_name in _MAPPING_TYPES:
        cls = _MAPPING_TYPES[type_name]
    else:
        raise EvaluationError(f"unknown payload type {type_name!r}")
    for name in _tuple_fields(cls):
        if name in fields and isinstance(fields[name], list):
            fields[name] = tuple(fields[name])
    return cls(**fields)


def _layer_ppa_to_dict(result: LayerPPA) -> Dict:
    return {
        "latency_s": result.latency_s if result.feasible else None,
        "energy_j": result.energy_j if result.feasible else None,
        "feasible": result.feasible,
        "compute_cycles": result.compute_cycles,
        "noc_cycles": result.noc_cycles,
        "dram_cycles": result.dram_cycles,
        "dram_bytes": result.dram_bytes,
        "infeasible_reason": result.infeasible_reason,
    }


def _layer_ppa_from_dict(payload: Dict) -> LayerPPA:
    try:
        feasible = payload["feasible"]
        return LayerPPA(
            latency_s=payload["latency_s"] if feasible else float("inf"),
            energy_j=payload["energy_j"] if feasible else float("inf"),
            feasible=feasible,
            compute_cycles=payload.get("compute_cycles", 0.0),
            noc_cycles=payload.get("noc_cycles", 0.0),
            dram_cycles=payload.get("dram_cycles", 0.0),
            dram_bytes=payload.get("dram_bytes", 0.0),
            infeasible_reason=payload.get("infeasible_reason", ""),
        )
    except (KeyError, TypeError) as error:
        raise EvaluationError(f"malformed layer-PPA payload: {error}") from error


class PPAServiceServer:
    """Serve an engine over HTTP on localhost; use as a context manager.

    Shares the engine's metrics registry by default, so ``GET /metrics``
    exposes engine counters (queries, cache hits/evictions, compute
    latency) alongside the per-endpoint request/error counters recorded
    here.
    """

    def __init__(
        self,
        engine: PPAEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.engine = engine
        self.metrics = metrics if metrics is not None else engine.metrics
        #: server-side span tracer.  With a real tracer, every POST opens a
        #: ``service<path>`` span whose finished form travels back in the
        #: ``X-Repro-Span`` response header, letting tracing clients stitch
        #: it into their own trace.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        handler = self._make_handler()
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def _make_handler(self):
        engine = self.engine
        metrics = self.metrics
        tracer = self.tracer

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # silence request logging
                pass

            def _finish_span(self, status: int) -> Optional[str]:
                """Close the request span, returning its wire JSON."""
                span = getattr(self, "_span", None)
                self._span = None
                if span is None:
                    return None
                span.set_attribute("status", status)
                return json.dumps(tracer.finish_span(span))

            def _reply(self, status: int, payload: Dict) -> None:
                span_json = self._finish_span(status)
                body = json.dumps(payload, sort_keys=True).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                if span_json is not None:
                    self.send_header("X-Repro-Span", span_json)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                metrics.counter(f"service_requests_total[{self.path}]").inc()
                if status >= 400:
                    metrics.counter("service_errors_total").inc()

            def _reply_text(self, status: int, text: str) -> None:
                """Plain-text reply (the Prometheus exposition path)."""
                body = text.encode("utf-8")
                self.send_response(status)
                self.send_header(
                    "Content-Type", "text/plain; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                metrics.counter(f"service_requests_total[{self.path}]").inc()

            def do_GET(self):
                parsed = urlsplit(self.path)
                if parsed.path == "/health":
                    self._reply(
                        200,
                        {
                            "status": "ok",
                            "workload": engine.network.name,
                            "queries": engine.num_queries,
                        },
                    )
                elif parsed.path == "/metrics":
                    wants = parse_qs(parsed.query).get("format", ["json"])
                    if wants and wants[-1] == "prom":
                        self._reply_text(
                            200, render_prometheus(metrics.snapshot())
                        )
                        return
                    self._reply(
                        200,
                        {
                            "schema_version": METRICS_SCHEMA_VERSION,
                            "engine": engine.stats(),
                            "metrics": metrics.snapshot(),
                        },
                    )
                else:
                    self._reply(404, {"error": f"unknown path {self.path}"})

            def _evaluate_layers(self, request: Dict) -> None:
                hw = decode_object(request["hw"])
                items = request["items"]
                if not isinstance(items, list):
                    raise EvaluationError("'items' must be a list")
                results: List[Dict] = []
                for item in items:
                    # one bad item must not poison the rest of the batch
                    try:
                        result = engine.evaluate_layer(
                            hw, decode_object(item["mapping"]), item["layer"]
                        )
                        results.append(
                            {"ok": True, "result": _layer_ppa_to_dict(result)}
                        )
                    except (EvaluationError, KeyError, TypeError) as exc:
                        results.append({"ok": False, "error": str(exc)})
                self._reply(200, {"results": results})

            def _evaluate_candidates(self, request: Dict) -> None:
                hw = decode_object(request["hw"])
                layer_name = request["layer"]
                items = request["mappings"]
                if not isinstance(items, list):
                    raise EvaluationError("'mappings' must be a list")
                entries: List[Optional[Dict]] = [None] * len(items)
                decoded: List[Tuple[int, object]] = []
                for index, item in enumerate(items):
                    # one undecodable mapping must not poison the batch
                    try:
                        decoded.append((index, decode_object(item)))
                    except (EvaluationError, KeyError, TypeError) as exc:
                        entries[index] = {"ok": False, "error": str(exc)}
                if decoded:
                    batch_results = engine.evaluate_candidates(
                        hw, layer_name, [mapping for _i, mapping in decoded]
                    )
                    for (index, _mapping), result in zip(decoded, batch_results):
                        entries[index] = {
                            "ok": True,
                            "result": _layer_ppa_to_dict(result),
                        }
                self._reply(200, {"results": entries})

            def do_POST(self):
                start = time.perf_counter()
                self._span = None
                if tracer.enabled:
                    context = parse_trace_context(
                        self.headers.get("X-Repro-Trace")
                    )
                    span = tracer.start_span(
                        f"service{self.path}",
                        parent_id=context[1] if context else None,
                    )
                    if context:
                        # adopt the caller's trace identity so server-side
                        # sinks record the request under the client's trace
                        span.trace_id = context[0]
                    self._span = span
                length = int(self.headers.get("Content-Length", 0))
                try:
                    request = json.loads(self.rfile.read(length))
                except json.JSONDecodeError:
                    self._reply(400, {"error": "invalid JSON"})
                    return
                try:
                    if self.path == "/evaluate_layer":
                        result = engine.evaluate_layer(
                            decode_object(request["hw"]),
                            decode_object(request["mapping"]),
                            request["layer"],
                        )
                        self._reply(200, _layer_ppa_to_dict(result))
                    elif self.path == "/evaluate_layers":
                        self._evaluate_layers(request)
                    elif self.path == "/evaluate_candidates":
                        self._evaluate_candidates(request)
                    elif self.path == "/aggregate":
                        hw = decode_object(request["hw"])
                        mappings = {
                            name: decode_object(mapping)
                            for name, mapping in request["mappings"].items()
                        }
                        ppa = engine.aggregate(hw, mappings)
                        self._reply(
                            200,
                            {
                                "latency_s": ppa.latency_s if ppa.feasible else None,
                                "energy_j": ppa.energy_j if ppa.feasible else None,
                                "power_w": ppa.power_w if ppa.feasible else None,
                                "area_mm2": ppa.area_mm2,
                                "feasible": ppa.feasible,
                            },
                        )
                    else:
                        self._reply(404, {"error": f"unknown path {self.path}"})
                except (EvaluationError, KeyError) as exc:
                    self._reply(400, {"error": str(exc)})
                except Exception as exc:  # malformed payloads must still get JSON
                    self._reply(
                        500, {"error": f"internal error: {type(exc).__name__}: {exc}"}
                    )
                finally:
                    metrics.histogram("service_request_seconds").observe(
                        time.perf_counter() - start
                    )

        return Handler

    def start(self) -> "PPAServiceServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "PPAServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


#: transport-level exceptions that indicate "try again", not "bad query"
_TRANSIENT_ERRORS = (URLError, HTTPException, socket.timeout, OSError,
                     json.JSONDecodeError)


class RemotePPAEngine(PPAEngine):
    """A :class:`PPAEngine` that forwards queries to a PPA service.

    Keeps the local cache and clock semantics of the base class; only the
    uncached computation goes over the wire.  ``area_mm2`` is computed by a
    locally supplied function (areas depend only on the hardware config).

    Transport hardening (all real-time, invisible to the simulated clock):

    * every network-level failure raises :class:`EvaluationError`, so
      :class:`~repro.costmodel.reliability.RetryingEngine` wrappers see it;
    * transient transport failures are retried up to
      ``max_network_retries`` times with exponential backoff
      (``backoff_base_s * 2**attempt``, capped at ``backoff_max_s``) plus
      seeded jitter;
    * after ``breaker_threshold`` consecutive request failures the circuit
      opens: queries fail fast for ``breaker_cooldown_s`` seconds, then a
      single probe is allowed through (half-open).

    4xx replies are semantic rejections (bad layer, malformed mapping):
    they raise immediately without transport retries and do not trip the
    breaker — the service is alive and answering.

    Batching: :meth:`evaluate_layers` groups cache misses into
    ``POST /evaluate_layers`` chunks of ``batch_size`` to amortize HTTP
    round trips; per-query accounting (clock, counters, cache) is
    identical to the one-by-one path.  The candidate-batch path
    (:meth:`evaluate_candidates`) likewise ships its cache misses as
    chunked ``POST /evaluate_candidates`` requests — one request per
    batch instead of one per candidate — and the server evaluates each
    request through its engine's vectorized kernel.
    """

    def __init__(
        self,
        network,
        base_url: str,
        area_fn: Callable[[object], float],
        timeout_s: float = 10.0,
        max_network_retries: int = 3,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        jitter_fraction: float = 0.25,
        jitter_seed: int = 0,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 30.0,
        batch_size: int = 16,
        **kwargs,
    ):
        super().__init__(network, **kwargs)
        if max_network_retries < 0:
            raise EvaluationError(
                f"max_network_retries must be >= 0, got {max_network_retries}"
            )
        if breaker_threshold < 1:
            raise EvaluationError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        if batch_size < 1:
            raise EvaluationError(f"batch_size must be >= 1, got {batch_size}")
        self.base_url = base_url.rstrip("/")
        self.area_fn = area_fn
        self.timeout_s = timeout_s
        self.max_network_retries = max_network_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.jitter_fraction = jitter_fraction
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.batch_size = batch_size
        self._jitter_rng = random.Random(jitter_seed)
        self.num_network_retries = 0
        self.num_circuit_rejections = 0
        self._breaker_failures = 0
        self._breaker_open_until = 0.0  # time.monotonic() deadline

    # -- transport --------------------------------------------------------------
    def _backoff_delay(self, attempt: int) -> float:
        base = min(self.backoff_base_s * (2 ** (attempt - 1)), self.backoff_max_s)
        with self._lock:
            jitter = self._jitter_rng.random()
        return base * (1.0 + self.jitter_fraction * jitter)

    def _breaker_check(self) -> None:
        with self._lock:
            if self._breaker_failures < self.breaker_threshold:
                return
            remaining = self._breaker_open_until - time.monotonic()
            if remaining > 0:
                self.num_circuit_rejections += 1
                self.metrics.counter("remote_circuit_rejections_total").inc()
                raise EvaluationError(
                    f"circuit breaker open ({remaining:.2f}s left) after "
                    f"{self._breaker_failures} consecutive failures to "
                    f"{self.base_url}"
                )
            # half-open: let one probe through; a failure re-opens at once
            self._breaker_failures = self.breaker_threshold - 1

    def _breaker_record(self, success: bool) -> None:
        with self._lock:
            if success:
                self._breaker_failures = 0
                return
            self._breaker_failures += 1
            if self._breaker_failures >= self.breaker_threshold:
                self._breaker_open_until = (
                    time.monotonic() + self.breaker_cooldown_s
                )
                self.metrics.counter("remote_circuit_opened_total").inc()

    def _http_error_detail(self, error: HTTPError) -> str:
        try:
            payload = json.loads(error.read())
            return str(payload.get("error", payload))
        except Exception as parse_error:
            # a non-JSON error body (proxy page, truncated response) is
            # routine, but the drop is counted per exception type so a
            # systematically malformed server shows up on /metrics
            self.metrics.counter("remote_error_body_unparsed_total").inc()
            self.metrics.counter(
                f"remote_error_body_{type(parse_error).__name__}_total"
            ).inc()
            return str(error)

    def _request_json(self, path: str, payload: Optional[Dict] = None) -> Dict:
        """One logical request: breaker gate, transport retries, JSON reply.

        Under a tracing client the request gets a ``remote<path>`` span,
        the trace context travels out in ``X-Repro-Trace``, and a
        server-side span returned in ``X-Repro-Span`` is adopted into the
        client trace (see :meth:`Tracer.record_remote`).
        """
        if self.tracer.enabled:
            with self.tracer.span("remote" + path) as span:
                return self._request_json_impl(path, payload, span)
        return self._request_json_impl(path, payload, None)

    def _request_json_impl(
        self, path: str, payload: Optional[Dict], span
    ) -> Dict:
        """Untraced transport loop behind :meth:`_request_json`."""
        self._breaker_check()
        data = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        self.metrics.counter("remote_requests_total").inc()
        headers = {"Content-Type": "application/json"}
        if span is not None:
            headers["X-Repro-Trace"] = format_trace_context(self.tracer, span)
        last_error: Optional[EvaluationError] = None
        for attempt in range(self.max_network_retries + 1):
            if attempt:
                self.num_network_retries += 1
                self.metrics.counter("remote_network_retries_total").inc()
                time.sleep(self._backoff_delay(attempt))
            try:
                request = Request(
                    f"{self.base_url}{path}",
                    data=data,
                    headers=dict(headers),
                    method="POST" if data is not None else "GET",
                )
                start = time.perf_counter()
                with urlopen(request, timeout=self.timeout_s) as response:
                    body = response.read()
                    server_span = response.headers.get("X-Repro-Span")
                elapsed = time.perf_counter() - start
                self.metrics.histogram("remote_request_seconds").observe(
                    elapsed
                )
                reply = json.loads(body)
                self._breaker_record(success=True)
                if span is not None and server_span:
                    try:
                        self.tracer.record_remote(
                            json.loads(server_span), span, elapsed
                        )
                    except (json.JSONDecodeError, TypeError, ValueError):
                        pass  # a garbled span header must not fail the query
                return reply
            except HTTPError as error:
                detail = self._http_error_detail(error)
                if error.code < 500:
                    # semantic rejection: the service is up and answered
                    self._breaker_record(success=True)
                    raise EvaluationError(
                        f"service rejected {path} ({error.code}): {detail}"
                    ) from error
                last_error = EvaluationError(
                    f"service error {error.code} on {path}: {detail}"
                )
            except _TRANSIENT_ERRORS as error:
                last_error = EvaluationError(
                    f"network failure on {path}: {type(error).__name__}: {error}"
                )
        self._breaker_record(success=False)
        assert last_error is not None
        raise last_error

    # -- engine contract --------------------------------------------------------
    def _compute_layer(self, hw, mapping, shape) -> LayerPPA:
        raise NotImplementedError(
            "RemotePPAEngine dispatches by layer name; "
            "_compute_layer_by_name handles all queries"
        )

    def _compute_layer_by_name(self, hw, mapping, layer_name, shape) -> LayerPPA:
        payload = {
            "hw": encode_object(hw),
            "mapping": encode_object(mapping),
            "layer": layer_name,
        }
        return _layer_ppa_from_dict(self._request_json("/evaluate_layer", payload))

    def evaluate_layers(
        self, hw, requests: Sequence[Tuple["GemmMapping", str]]
    ) -> List[LayerPPA]:
        """Batched evaluation: cache misses travel in chunked POSTs."""
        results: List[Optional[LayerPPA]] = [None] * len(requests)
        misses: List[Tuple[int, Tuple, "GemmMapping", str]] = []
        hw_id = self.hw_key(hw)
        for index, (mapping, layer_name) in enumerate(requests):
            self._charge_query(layer_name)
            key = (hw_id, layer_name, mapping.key())
            cached = self._cache_lookup(key)
            if cached is not None:
                results[index] = cached
            else:
                misses.append((index, key, mapping, layer_name))
        for chunk_start in range(0, len(misses), self.batch_size):
            chunk = misses[chunk_start : chunk_start + self.batch_size]
            payload = {
                "hw": encode_object(hw),
                "items": [
                    {"mapping": encode_object(mapping), "layer": layer_name}
                    for _index, _key, mapping, layer_name in chunk
                ],
            }
            start = time.perf_counter()
            reply = self._request_json("/evaluate_layers", payload)
            self.metrics.histogram("engine_compute_seconds").observe(
                time.perf_counter() - start
            )
            entries = reply.get("results")
            if not isinstance(entries, list) or len(entries) != len(chunk):
                raise EvaluationError(
                    f"batched reply shape mismatch: sent {len(chunk)} items, "
                    f"got {entries!r}"
                )
            failures: List[str] = []
            for (index, key, _mapping, layer_name), entry in zip(chunk, entries):
                if entry.get("ok"):
                    result = _layer_ppa_from_dict(entry["result"])
                    self._cache_store(key, result)
                    results[index] = result
                else:
                    failures.append(f"{layer_name}: {entry.get('error')}")
            if failures:
                raise EvaluationError(
                    f"batched evaluation failed for {len(failures)} item(s): "
                    + "; ".join(failures)
                )
        return results  # type: ignore[return-value]  # all slots filled above

    def _compute_layer_batch(
        self, hw, mappings, layer_name: str, shape
    ) -> List[LayerPPA]:
        """Cache misses of one candidate batch travel as chunked POSTs."""
        results: List[LayerPPA] = []
        for chunk_start in range(0, len(mappings), self.batch_size):
            chunk = mappings[chunk_start : chunk_start + self.batch_size]
            payload = {
                "hw": encode_object(hw),
                "layer": layer_name,
                "mappings": [encode_object(mapping) for mapping in chunk],
            }
            reply = self._request_json("/evaluate_candidates", payload)
            entries = reply.get("results")
            if not isinstance(entries, list) or len(entries) != len(chunk):
                raise EvaluationError(
                    f"candidate-batch reply shape mismatch: sent {len(chunk)} "
                    f"items, got {entries!r}"
                )
            failures: List[str] = []
            for entry in entries:
                if entry.get("ok"):
                    results.append(_layer_ppa_from_dict(entry["result"]))
                else:
                    failures.append(str(entry.get("error")))
            if failures:
                raise EvaluationError(
                    f"candidate-batch evaluation failed for {len(failures)} "
                    "item(s): " + "; ".join(failures)
                )
        return results

    def area_mm2(self, hw) -> float:
        return self.area_fn(hw)

    def health(self) -> Dict:
        """Service liveness probe; network failures raise EvaluationError."""
        return self._request_json("/health")

    def service_metrics(self) -> Dict:
        """Fetch the remote ``GET /metrics`` snapshot."""
        return self._request_json("/metrics")

    def stats(self) -> Dict:
        merged = super().stats()
        merged.update(
            {
                "base_url": self.base_url,
                "num_network_retries": self.num_network_retries,
                "num_circuit_rejections": self.num_circuit_rejections,
            }
        )
        return merged
