"""DNN workload definitions for the UNICO reproduction.

A workload is a :class:`~repro.workloads.network.Network`: a named tuple of
tensor operators (:class:`Conv2D`, :class:`DepthwiseConv2D`, :class:`Gemm`),
each lowering to a :class:`GemmShape` for the GEMMCore hardware intrinsic.

Use :func:`get_network` to obtain any of the paper's evaluation networks by
name, and the ``TABLE12_NETWORKS`` / ``FIG*_`` suite constants to replicate
the exact workload splits of Section 4.
"""

from repro.workloads.layers import (
    Conv2D,
    DepthwiseConv2D,
    Gemm,
    GemmShape,
    LayerSpec,
    pointwise_conv,
)
from repro.workloads.network import Network, merge_networks
from repro.workloads.registry import (
    FIG8_TRAIN,
    FIG8_VALIDATION,
    FIG9_TRAIN,
    FIG9_VALIDATION,
    FIG10_NETWORKS,
    FIG11_NETWORKS,
    TABLE12_NETWORKS,
    available_networks,
    get_network,
    get_networks,
)

__all__ = [
    "Conv2D",
    "DepthwiseConv2D",
    "Gemm",
    "GemmShape",
    "LayerSpec",
    "pointwise_conv",
    "Network",
    "merge_networks",
    "available_networks",
    "get_network",
    "get_networks",
    "TABLE12_NETWORKS",
    "FIG8_TRAIN",
    "FIG8_VALIDATION",
    "FIG9_TRAIN",
    "FIG9_VALIDATION",
    "FIG10_NETWORKS",
    "FIG11_NETWORKS",
]
