#!/usr/bin/env python
"""Inner-level tour: software-mapping search tools on a fixed hardware.

Shows the anytime/resumable contract UNICO builds on (Section 2.1):

* every tool exposes a monotone best-so-far curve,
* searches can be paused and resumed (the successive-halving primitive),
* FlexTensor-like and GAMMA-like search beat random sampling,
* the robustness metric R is computed from the very same trace.

Run:  python examples/mapping_search_tools.py
"""

from repro.core.robustness import robustness_metric
from repro.costmodel import MaestroEngine
from repro.hw import edge_design_space
from repro.mapping import FlexTensorSearch, GammaSearch, RandomMappingSearch
from repro.workloads import get_network


def sparkline(curve, buckets: int = 24) -> str:
    """Coarse text rendering of a descending loss curve."""
    blocks = " .:-=+*#%@"
    lo, hi = min(curve), max(curve)
    span = (hi - lo) or 1.0
    step = max(1, len(curve) // buckets)
    sampled = curve[::step][:buckets]
    return "".join(
        blocks[min(len(blocks) - 1, int((v - lo) / span * (len(blocks) - 1)))]
        for v in sampled
    )


def main() -> None:
    network = get_network("xception")
    hw = edge_design_space().to_config(
        {
            "pe_x": 12,
            "pe_y": 12,
            "l1_bytes": 6144,
            "l2_kb": 512,
            "noc_bw": 128,
            "dataflow": "ws",
        }
    )
    print(f"Workload: {network.description}")
    print(f"Hardware: {hw.short_name()}\n")

    for tool_cls in (FlexTensorSearch, GammaSearch, RandomMappingSearch):
        engine = MaestroEngine(network)
        search = tool_cls(network, hw, engine, seed=1)
        search.run(80)
        midway = search.best_objective
        search.run(120)  # resume, as a successive-halving round would
        curve = search.best_curve()
        robustness = robustness_metric(search.history)
        print(f"{search.name:<12s} "
              f"80 evals: {midway * 1e3:8.2f} ms -> "
              f"200 evals: {search.best_objective * 1e3:8.2f} ms   "
              f"R={robustness.r_value:.4f}")
        print(f"{'':<12s} convergence {sparkline(list(curve))}")

    print("\n(The monotone curves above are exactly what MSH's AUC "
          "criterion integrates, and the trial scatter behind them is what "
          "the robustness metric samples.)")


if __name__ == "__main__":
    main()
