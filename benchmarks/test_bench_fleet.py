"""Fleet throughput gate: 4 sharded replicas >= 3x one replica.

What the fleet actually buys on the estimation service (Fig. 6b at fleet
scale) is **aggregate cache capacity with shard affinity**: rendezvous
routing pins each candidate key to one replica, so N replicas hold N
bounded LRU caches over disjoint key slices.  The benchmark makes that
architectural effect the measured quantity — and deliberately *not* raw
CPU parallelism, so the gate holds on single-core runners too:

* the working set is ``W`` distinct candidates, re-evaluated round after
  round (the access pattern of an iterative mapping search revisiting a
  neighborhood);
* every replica's engine cache holds ``CAPACITY < W`` entries, so ONE
  replica thrashes (a sequential scan over W keys through an LRU of
  CAPACITY slots rehits nothing and recomputes everything), while FOUR
  replicas each own ~W/4 < CAPACITY keys and serve every round from
  cache after warmup;
* the replica engine is the cycle-accurate Ascend model, whose per-miss
  simulation cost dwarfs the per-item HTTP overhead — so the measured
  ratio is cache economics, not socket noise.

Both arms run the *same* client configuration (chunked fan-out, pooled
keep-alive connections, client cache too small to matter) and the gate
compares per-arm best-round throughput, which is robust to one-sided
timing noise on shared runners.  Results land in ``BENCH_fleet.json``,
and the fleet arm's replies are parity-checked against a local engine —
sharding must never change a single byte of the results.
"""

import itertools
import json
import time

from repro.camodel import AscendCAEngine
from repro.camodel.ascend_sim import ascend_area_mm2
from repro.camodel.mapping import AscendMapping
from repro.costmodel.service import PPAServiceServer
from repro.fleet.client import ShardedPPAEngine
from repro.hw import default_ascend_config
from repro.workloads import Gemm, Network

NETWORK = Network(
    name="fleetbench",
    layers=(Gemm(name="gemm", m=64, n=4096, k=1024),),
    family="bench",
    year=2023,
)
HW = default_ascend_config()
#: per-replica engine LRU bound; the working set below must exceed it
CAPACITY = 96
ROUNDS = 3
MIN_SPEEDUP = 3.0


def _working_set():
    """W distinct candidates with W > CAPACITY and W/4 well under it."""
    mappings = []
    for tile_m, tile_n, tile_k in itertools.product(
        (16, 32, 64), (64, 128, 256, 512), (64, 128, 256, 512)
    ):
        for fuse_input, fuse_output in (
            (False, False), (True, False), (False, True), (True, True),
        ):
            mappings.append(
                AscendMapping(
                    tile_m, tile_n, tile_k,
                    fuse_input=fuse_input, fuse_output=fuse_output,
                )
            )
    assert len(mappings) > CAPACITY
    assert len(mappings) / 4 < CAPACITY
    return mappings


def _start_replicas(count):
    servers = []
    for _ in range(count):
        engine = AscendCAEngine(NETWORK)
        engine.cache_capacity = CAPACITY
        server = PPAServiceServer(engine)
        server.start()
        servers.append(server)
    return servers


def _run_arm(replicas, mappings):
    """(best-round evals/s, results) for a fleet of ``replicas``."""
    servers = _start_replicas(replicas)
    client = ShardedPPAEngine(
        NETWORK,
        [server.url for server in servers],
        area_fn=ascend_area_mm2,
        cache_capacity=1,  # repeats must reach the network, both arms
        batch_size=16,
        max_inflight=4,
        timeout_s=60.0,
    )
    try:
        results = client.evaluate_candidates(HW, "gemm", mappings)  # warmup
        best = 0.0
        for _ in range(ROUNDS):
            start = time.perf_counter()
            round_results = client.evaluate_candidates(HW, "gemm", mappings)
            elapsed = time.perf_counter() - start
            assert round_results == results  # rounds must be byte-stable
            best = max(best, len(mappings) / elapsed)
        return best, results
    finally:
        client.close()
        for server in servers:
            server.stop()


def test_fleet_throughput_scales_with_replicas(results_dir):
    mappings = _working_set()

    # ground truth: one local engine, no service in between
    local = AscendCAEngine(NETWORK)
    expected = local.evaluate_candidates(HW, "gemm", mappings)

    solo_rate, solo_results = _run_arm(1, mappings)
    fleet_rate, fleet_results = _run_arm(4, mappings)

    # parity first: a fast wrong answer is not a speedup
    assert solo_results == expected
    assert fleet_results == expected

    speedup = fleet_rate / solo_rate
    record_path = results_dir / "BENCH_fleet.json"
    record = json.loads(record_path.read_text()) if record_path.exists() else {}
    record["fleet_cache_affinity"] = {
        "working_set": len(mappings),
        "replica_cache_capacity": CAPACITY,
        "rounds": ROUNDS,
        "solo_evals_per_s": solo_rate,
        "fleet_evals_per_s": fleet_rate,
        "replicas": 4,
        "speedup": speedup,
    }
    record_path.write_text(json.dumps(record, indent=2, sort_keys=True))

    assert speedup >= MIN_SPEEDUP, (
        f"4-replica fleet only {speedup:.2f}x one replica "
        f"({fleet_rate:.0f} vs {solo_rate:.0f} evals/s); "
        f"expected >= {MIN_SPEEDUP}x from shard-affinity caching"
    )
