"""Shared fixtures: tiny workloads and platform objects for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.costmodel import MaestroEngine
from repro.hw import edge_design_space
from repro.workloads import Conv2D, Gemm, Network


@pytest.fixture(scope="session")
def tiny_network() -> Network:
    """A 3-layer workload small enough for exhaustive-ish search in tests."""
    return Network(
        name="tinynet",
        layers=(
            Conv2D(
                name="conv",
                in_channels=8,
                out_channels=16,
                in_h=16,
                in_w=16,
                kernel=3,
            ),
            Gemm(name="gemm", m=32, n=64, k=48, count=2),
            Conv2D(
                name="pw",
                in_channels=16,
                out_channels=8,
                in_h=16,
                in_w=16,
                kernel=1,
            ),
        ),
        family="test",
        year=2023,
    )


@pytest.fixture()
def edge_space():
    return edge_design_space()


@pytest.fixture()
def sample_hw(edge_space):
    """A mid-size edge config that comfortably fits tiny_network tiles."""
    return edge_space.to_config(
        {
            "pe_x": 8,
            "pe_y": 8,
            "l1_bytes": 4096,
            "l2_kb": 256,
            "noc_bw": 64,
            "dataflow": "ws",
        }
    )


@pytest.fixture()
def tiny_engine(tiny_network):
    return MaestroEngine(tiny_network)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
