"""Server-Sent Events over the crash-safe JSONL journal.

The journal is already an event stream — one JSON object per atomically
appended line — so SSE maps onto it without an intermediate broker:

* the ``data:`` payload of each SSE event is the journal line **verbatim**
  (JSON never contains a raw newline, so one ``data:`` line per event
  suffices and the byte-identity guarantee is structural, not re-serialized);
* the ``id:`` of each SSE event is the **byte offset just past the
  event's line** in the journal file.  A reconnecting client sends that
  offset back as ``Last-Event-ID`` and the server seeks straight to it —
  no scan, no sequence-number bookkeeping, and the id doubles as the
  cursor for :func:`repro.tracking.journal.read_events_from`;
* the ``event:`` field carries the journal event's ``type`` so clients
  can route without parsing the JSON.

Truncation tolerance is inherited from the journal reader: a partial
line mid-write is simply not streamed yet — the cursor stops at the last
complete line and the next poll picks up whatever the writer finished.

:func:`parse_sse_lines` is the matching incremental client-side parser
(field parsing per the WHATWG EventSource algorithm, restricted to the
fields this server emits).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.tracking.journal import JournalScan, _scan_bytes

__all__ = [
    "SSEEvent",
    "format_sse_event",
    "format_sse_comment",
    "journal_events_since",
    "parse_sse_lines",
]


@dataclass
class SSEEvent:
    """One parsed Server-Sent Event."""

    data: str
    #: the journal byte-offset cursor (``id:`` field), if the event had one
    event_id: Optional[str] = None
    #: the ``event:`` field (journal event type, or a control event such
    #: as ``end_of_stream``)
    event: Optional[str] = None


def format_sse_event(
    data: str, event_id: Optional[int] = None, event: Optional[str] = None
) -> bytes:
    """Wire framing of one SSE event (``id`` / ``event`` / ``data`` / blank).

    ``data`` must be newline-free — journal lines are single-line JSON by
    construction, and a stray newline would silently split the payload
    into two ``data:`` fields.
    """
    if "\n" in data or "\r" in data:
        raise ValueError("SSE data payload must be a single line")
    lines: List[str] = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event is not None:
        lines.append(f"event: {event}")
    lines.append(f"data: {data}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def format_sse_comment(text: str = "keepalive") -> bytes:
    """An SSE comment frame — clients ignore it; proxies see live bytes."""
    return f": {text}\n\n".encode("utf-8")


def journal_events_since(
    path: Union[str, pathlib.Path], offset: int
) -> Tuple[List[Tuple[bytes, int, Dict]], JournalScan]:
    """Complete journal events past ``offset`` as ``(raw_line, end, event)``.

    ``raw_line`` is the exact bytes of the journal line (no trailing
    newline) — the SSE ``data:`` payload; ``end`` is the byte offset just
    past the line — the SSE ``id:``.  The returned scan carries
    ``valid_bytes`` (the next cursor) and ``truncated_tail`` exactly as
    :func:`~repro.tracking.journal.read_events_from` would.
    """
    path = pathlib.Path(path)
    with open(path, "rb") as handle:
        handle.seek(offset)
        raw = handle.read()
    scan = _scan_bytes(raw, offset)
    frames: List[Tuple[bytes, int, Dict]] = []
    previous = offset
    for event, end in zip(scan.events, scan.event_offsets):
        # strip() tolerates blank filler lines the scanner skipped over;
        # journal lines themselves are single-line JSON objects
        line = raw[previous - offset : end - offset - 1].strip()
        frames.append((line, end, event))
        previous = end
    return frames, scan


def parse_sse_lines(lines: Iterable[str]) -> Iterator[SSEEvent]:
    """Incrementally parse decoded SSE lines into :class:`SSEEvent` objects.

    ``lines`` yields text lines *without* their trailing newline (e.g.
    from iterating a ``TextIOWrapper``).  Comment lines are dropped; an
    event is dispatched at each blank line, per the EventSource
    processing model.  A final unterminated event (stream cut before its
    blank line) is deliberately not dispatched — mirroring the journal's
    own partial-line semantics.
    """
    data: List[str] = []
    event_id: Optional[str] = None
    event_type: Optional[str] = None
    for line in lines:
        # the EventSource spec admits CRLF line endings; a caller that
        # split on "\n" alone hands us lines with a trailing "\r" — strip
        # exactly one so a CRLF blank line still dispatches the event
        if line.endswith("\r"):
            line = line[:-1]
        if line == "":
            if data:
                yield SSEEvent(
                    data="\n".join(data), event_id=event_id, event=event_type
                )
            data = []
            event_id = None
            event_type = None
            continue
        if line.startswith(":"):
            continue  # comment / keepalive
        field, _, value = line.partition(":")
        if value.startswith(" "):
            value = value[1:]
        if field == "data":
            data.append(value)
        elif field == "id":
            event_id = value
        elif field == "event":
            event_type = value
        # unknown fields are ignored, per spec
