"""Property-based round-trip tests for run records."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.records import RunRecord, to_jsonable

_metric_values = st.one_of(
    st.integers(-(10**9), 10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
)

_metric_dicts = st.dictionaries(
    st.text(min_size=1, max_size=10), _metric_values, max_size=5
)


@given(_metric_dicts, _metric_dicts)
@settings(max_examples=50)
def test_record_roundtrip_property(parent_metrics, child_metrics):
    record = RunRecord("root")
    record.update(parent_metrics)
    record.child("sub").update(child_metrics)
    restored = RunRecord.from_dict(json.loads(record.to_json()))
    assert restored.metrics == to_jsonable(parent_metrics)
    assert restored.children["sub"].metrics == to_jsonable(child_metrics)


@given(st.lists(st.text(min_size=1, max_size=8), unique=True, max_size=6))
@settings(max_examples=30)
def test_rows_cover_all_children(child_names):
    record = RunRecord("root")
    record.put("x", 1)
    for name in child_names:
        record.child(name).put("y", 2)
    rows = record.rows()
    paths = {row["path"] for row in rows}
    assert "root" in paths
    for name in child_names:
        assert f"root/{name}" in paths
