"""Tests for successive halving and the modified (MSH) promotion rule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SearchBudgetError
from repro.optim.sh import (
    auc_score,
    plan_rounds,
    relative_auc_score,
    run_successive_halving,
    select_survivors,
    select_survivors_detailed,
    terminal_value,
)


class TestTerminalValue:
    def test_last_element(self):
        assert terminal_value(np.array([5.0, 3.0, 2.0])) == 2.0

    def test_empty_is_inf(self):
        assert terminal_value(np.array([])) == float("inf")


class TestAucScore:
    def test_flat_curve_zero(self):
        assert auc_score(np.array([2.0, 2.0, 2.0])) == 0.0

    def test_steep_converger_has_higher_auc(self):
        """Fig. 4b: the area between the curve and its end-value line."""
        lazy = np.array([10.0, 9.9, 9.8, 9.7])  # plateaued early
        steep = np.array([10.0, 9.0, 6.0, 3.0])  # still dropping
        assert auc_score(steep) > auc_score(lazy)

    def test_known_value(self):
        # heights above end value: [2, 1, 0]; trapezoid: 1.5 + 0.5 = 2.0
        assert auc_score(np.array([3.0, 2.0, 1.0])) == pytest.approx(2.0)

    def test_non_finite_ignored(self):
        assert auc_score(np.array([np.inf, np.inf])) == 0.0
        assert auc_score(np.array([np.inf, 3.0, 1.0])) == pytest.approx(1.0)

    def test_single_point_zero(self):
        assert auc_score(np.array([1.0])) == 0.0

    def test_relative_score_scale_free(self):
        curve = np.array([4.0, 2.0, 1.0])
        scaled = 1000 * curve
        assert relative_auc_score(curve) == pytest.approx(relative_auc_score(scaled))

    @given(st.lists(st.floats(0.1, 100), min_size=2, max_size=30))
    @settings(max_examples=50)
    def test_auc_non_negative_for_monotone_curves(self, raw):
        curve = np.minimum.accumulate(np.array(raw))
        assert auc_score(curve) >= -1e-12


class TestPlanRounds:
    def test_final_budget_is_max(self):
        plans = plan_rounds(30, 300)
        assert plans[-1].cumulative_budget == 300
        assert plans[0].num_candidates == 30

    def test_budgets_strictly_increasing(self):
        plans = plan_rounds(30, 300)
        budgets = [p.cumulative_budget for p in plans]
        assert all(b2 > b1 for b1, b2 in zip(budgets, budgets[1:]))

    def test_candidates_halve(self):
        plans = plan_rounds(16, 100, keep_fraction=0.5)
        counts = [p.num_candidates for p in plans]
        assert counts == [16, 8, 4, 2]

    def test_single_candidate_single_round(self):
        plans = plan_rounds(1, 50)
        assert len(plans) == 1
        assert plans[0].cumulative_budget == 50

    def test_tiny_budget_stays_positive(self):
        plans = plan_rounds(8, 2)
        assert all(p.cumulative_budget >= 1 for p in plans)

    def test_invalid_args(self):
        with pytest.raises(SearchBudgetError):
            plan_rounds(0, 10)
        with pytest.raises(SearchBudgetError):
            plan_rounds(4, 0)
        with pytest.raises(SearchBudgetError):
            plan_rounds(4, 10, eta=1.0)
        with pytest.raises(SearchBudgetError):
            plan_rounds(4, 10, keep_fraction=1.5)


class TestSelectSurvivors:
    TV = {0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0, 4: 5.0, 5: 6.0}

    def test_pure_tv_is_default_sh(self):
        auc = {i: 0.0 for i in range(6)}
        assert select_survivors(range(6), self.TV, auc, keep=3, auc_promotions=0) == [
            0,
            1,
            2,
        ]

    def test_auc_promotes_steep_converger(self):
        """MSH's second chance: a bad-TV candidate with the highest AUC."""
        auc = {i: 0.0 for i in range(6)}
        auc[5] = 99.0
        survivors = select_survivors(range(6), self.TV, auc, keep=3, auc_promotions=1)
        assert survivors == [0, 1, 5]

    def test_auc_promotion_is_disjoint(self):
        """A candidate already selected by TV cannot occupy the AUC slot."""
        auc = {i: 0.0 for i in range(6)}
        auc[0] = 99.0  # best TV also best AUC
        auc[4] = 50.0
        survivors = select_survivors(range(6), self.TV, auc, keep=3, auc_promotions=1)
        assert survivors == [0, 1, 4]

    def test_keep_all_when_small(self):
        auc = {i: 0.0 for i in range(3)}
        tv = {i: float(i) for i in range(3)}
        assert select_survivors(range(3), tv, auc, keep=5, auc_promotions=1) == [
            0,
            1,
            2,
        ]

    def test_promotions_cannot_exceed_keep(self):
        with pytest.raises(SearchBudgetError):
            select_survivors(range(4), self.TV, {i: 0 for i in range(4)}, 2, 3)

    def test_detailed_reports_auc_channel(self):
        auc = {i: 0.0 for i in range(6)}
        auc[5] = 99.0
        survivors, promoted = select_survivors_detailed(
            range(6), self.TV, auc, keep=3, auc_promotions=1
        )
        assert survivors == [0, 1, 5]
        assert promoted == [5]

    def test_detailed_promoted_even_when_tv_rank_inside_keep(self):
        """A candidate at TV rank between keep-p and keep that enters via
        the AUC slot is still an AUC promotion — the decision, not a
        re-derivation against the keep cutoff, is what gets reported."""
        auc = {i: 0.0 for i in range(6)}
        auc[2] = 99.0  # TV rank 2 (< keep=3) but selected through AUC
        survivors, promoted = select_survivors_detailed(
            range(6), self.TV, auc, keep=3, auc_promotions=1
        )
        assert survivors == [0, 1, 2]
        assert promoted == [2]

    def test_detailed_backfill_is_not_promotion(self):
        """When AUC cannot supply fresh candidates, TV backfill fills the
        quota and no promotion is attributed."""
        tv = {i: float(i) for i in range(3)}
        auc = {i: 0.0 for i in range(3)}
        survivors, promoted = select_survivors_detailed(
            range(3), tv, auc, keep=5, auc_promotions=1
        )
        assert survivors == [0, 1, 2]
        assert promoted == []

    @given(
        st.integers(2, 20),
        st.integers(1, 10),
        st.integers(0, 3),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50)
    def test_invariants(self, n, keep, promotions, seed):
        promotions = min(promotions, keep)
        rng = np.random.default_rng(seed)
        tv = {i: float(rng.uniform(0, 10)) for i in range(n)}
        auc = {i: float(rng.uniform(0, 10)) for i in range(n)}
        survivors, promoted = select_survivors_detailed(
            range(n), tv, auc, keep, promotions
        )
        assert len(survivors) == min(keep, n)
        assert len(set(survivors)) == len(survivors)
        assert set(promoted) <= set(survivors)
        assert len(promoted) <= promotions
        assert select_survivors(range(n), tv, auc, keep, promotions) == survivors
        if keep < n and promotions == 0:
            # pure TV: survivors are exactly the TV-best
            best = sorted(range(n), key=lambda i: (tv[i], i))[:keep]
            assert sorted(survivors) == sorted(best)
            assert promoted == []


class _FakeTrial:
    """Scripted trial: the curve is a predetermined sequence."""

    def __init__(self, script):
        self.script = list(script)
        self.curve = []

    def run(self, additional_budget):
        for _ in range(additional_budget):
            next_value = self.script.pop(0) if self.script else self.curve[-1]
            best = min(self.curve[-1], next_value) if self.curve else next_value
            self.curve.append(best)
        return self

    def best_curve(self):
        return np.array(self.curve)


class TestRunSuccessiveHalving:
    def test_best_candidate_survives(self):
        trials = [
            _FakeTrial([10.0] * 100),
            _FakeTrial([1.0] * 100),
            _FakeTrial([5.0] * 100),
            _FakeTrial([7.0] * 100),
        ]
        final, rounds = run_successive_halving(trials, max_budget=16, use_msh=False)
        assert 1 in final
        assert len(rounds) >= 2

    def test_all_trials_get_first_round_budget(self):
        trials = [_FakeTrial([float(i)] * 100) for i in range(8)]
        run_successive_halving(trials, max_budget=16)
        assert all(len(t.curve) > 0 for t in trials)

    def test_survivors_reach_max_budget(self):
        trials = [_FakeTrial([float(i)] * 200) for i in range(8)]
        final, _rounds = run_successive_halving(trials, max_budget=32)
        for trial_id in final:
            assert len(trials[trial_id].curve) == 32

    def test_msh_gives_steep_converger_second_chance(self):
        # candidate 3 has poor early TV but is converging steeply
        steep = [20.0, 15.0, 10.0, 6.0, 3.0, 1.5, 0.6, 0.1] + [0.1] * 100
        trials = [
            _FakeTrial([2.0] * 100),
            _FakeTrial([3.0] * 100),
            _FakeTrial([4.0] * 100),
            _FakeTrial(steep),
        ]
        final_msh, _ = run_successive_halving(
            [
                _FakeTrial([2.0] * 100),
                _FakeTrial([3.0] * 100),
                _FakeTrial([4.0] * 100),
                _FakeTrial(list(steep)),
            ],
            max_budget=64,
            auc_fraction=0.25,
            use_msh=True,
        )
        final_sh, _ = run_successive_halving(
            trials, max_budget=64, use_msh=False
        )
        assert 3 in final_msh  # MSH promotes it to the end and it wins
        assert 3 not in final_sh or final_sh == final_msh

    def test_empty(self):
        final, rounds = run_successive_halving([], max_budget=10)
        assert final == [] and rounds == []
