"""Vectorized batch version of the Timeloop-like loop-centric model.

:func:`analyze_gemm_loopnest_batch` is to
:func:`repro.costmodel.timeloop.analyze_gemm_loopnest` what
:func:`repro.costmodel.maestro_batch.analyze_gemm_batch` is to the scalar
MAESTRO-like model: one NumPy structure-of-arrays pass over B candidate
mappings with exact numerical parity (identical feasibility decisions and
reason strings, bit-identical latency/energy).

The scalar model counts tile fills by scanning the loop nest innermost to
outermost (``timeloop._tile_fills``).  Because the DRAM nest is always a
permutation of the three tile loops, the scan has a closed form that
vectorizes without any per-position loop:

* **DRAM nest** — member loops always multiply in, and the single
  non-member loop multiplies in exactly when it is not innermost; so
  ``fills = (product of member trips) * reload_factor`` with the same
  reload factors the data-centric model uses.
* **L1 nest** (DRAM loops + per-PE temporal ``m``/``n`` loops, ``n``
  innermost) — the tail loops make every DRAM loop count, so the fills
  collapse to ``sub_m * n_tiles`` for A and ``sub_m * sub_n * n_tiles``
  for B and C, independent of the loop order.

All products are exact int64; conversions to float happen at the same
operations (and in the same order) as the scalar accumulation, which is
what makes the results bit-identical rather than merely close.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

import numpy as np

from repro.costmodel.maestro_batch import BatchSoA
from repro.costmodel.results import LayerPPA
from repro.costmodel.technology import DEFAULT_TECHNOLOGY, Technology
from repro.hw.spatial import SpatialHWConfig
from repro.workloads.layers import GemmShape

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.mapping.gemm_mapping import GemmMapping

_STARTUP_CYCLES = 1000.0


def analyze_gemm_loopnest_batch(
    hw: SpatialHWConfig,
    mappings: Sequence["GemmMapping"],
    shape: GemmShape,
    tech: Technology = DEFAULT_TECHNOLOGY,
) -> List[LayerPPA]:
    """Batch equivalent of :func:`analyze_gemm_loopnest` (ordered results)."""
    if not mappings:
        return []
    soa = BatchSoA(hw, mappings, shape, tech)
    op_b = tech.operand_bytes
    acc_b = tech.accum_bytes
    reuse = shape.reuse_penalty
    tm, tn, tk = soa.tm, soa.tn, soa.tk
    n_tiles = soa.n_tiles
    reload_a, reload_b, reload_c = soa.reload_factors()

    # L2 tile footprints (what one fill moves)
    fp_a = tm * tk
    fp_b = tk * tn
    if op_b != 1:  # x * 1 is an integer identity — skip the array ops
        fp_a = fp_a * op_b
        fp_b = fp_b * op_b
    fp_c = soa.tmtn * acc_b

    # ---- DRAM traffic: fills = member-trips product x reload factor ----------
    fills_a = soa.trips_m * soa.trips_k * reload_a
    fills_b = soa.trips_k * soa.trips_n * reload_b
    dram_a = fills_a * fp_a
    dram_b = fills_b * fp_b
    if reuse != 1.0:
        penalty = 1.0 / reuse
        dram_a = dram_a * penalty
        dram_b = dram_b * penalty
    # C crosses DRAM once in operand precision plus partial-sum refetches:
    # extra_fills = max(0, trips_mn * reload_c - trips_mn), and reload >= 1
    extra_fills = soa.trips_mn * (reload_c - 1)
    dram_c = shape.m * shape.n * op_b + 2.0 * extra_fills * fp_c
    dram_bytes = dram_a + dram_b + dram_c

    # ---- NoC traffic ----------------------------------------------------------
    noc_a = n_tiles * fp_a
    if hw.dataflow == "ws":
        # weight-stationary: B's L1 residency follows the DRAM fill
        # pattern, so the scalar ws branch reproduces dram_b exactly
        noc_b = dram_b
        noc_c = n_tiles * fp_c
    else:
        noc_b = n_tiles * fp_b
        if reuse != 1.0:
            noc_b = noc_b * penalty
        # output-stationary C: trips_mn when the reduction is innermost
        # (reload_c == 1 there), else the DRAM fill pattern trips_mn*reload_c
        noc_c = soa.trips_mn * reload_c * fp_c
    if reuse != 1.0:
        noc_a = noc_a * penalty
    noc_bytes = noc_a + noc_b + noc_c

    # ---- L1 traffic: closed-form fills of the extended nest -------------------
    # one A row / one B column of the slice per step
    fp1_ab = tk if op_b == 1 else tk * op_b
    smsn_nt = soa.smsn * n_tiles
    l1_a = soa.sub_m * n_tiles * fp1_ab
    l1_b = smsn_nt * fp1_ab
    l1_c = smsn_nt * acc_b * tk  # one accumulator per (m, n) step, x tk
    # convert each term before adding, like the scalar += accumulation
    # (the exact integers can exceed 2**53, where add-then-convert differs)
    l1_access_bytes = l1_a.astype(np.float64) + l1_b + l1_c

    # ---- latency ---------------------------------------------------------------
    fill_cycles = hw.pe_x + hw.pe_y  # pe_m + pe_n under either spatial choice
    issue_overhead = 0.25 / soa.unroll
    compute_cycles = n_tiles * (
        soa.smsn * tk * (1.0 + issue_overhead) + fill_cycles
    )
    bank_boost = min(hw.l1_banks, 2) / 2.0 + 0.5
    noc_cycles = noc_bytes / (hw.noc_bw * bank_boost)
    dram_cycles = dram_bytes / tech.dram_bw_bytes_per_cycle
    latency_s = (
        np.maximum(np.maximum(compute_cycles, noc_cycles), dram_cycles)
        + _STARTUP_CYCLES
    ) / tech.frequency_hz

    # ---- energy ----------------------------------------------------------------
    macs = shape.macs
    reg_bytes = 2.0 * macs * op_b
    base_energy = (
        macs * tech.mac_energy_j + reg_bytes * tech.reg_energy_per_byte_j
    )
    energy_j = (
        base_energy
        + (l1_access_bytes + noc_bytes) * tech.l1_energy_per_byte(hw.l1_bytes)
        + (noc_bytes + dram_bytes) * tech.l2_energy_per_byte(hw.l2_bytes)
        + dram_bytes * tech.dram_energy_per_byte_j
    )
    return soa.build_results(
        hw, latency_s, energy_j, compute_cycles, noc_cycles, dram_cycles,
        dram_bytes,
    )


__all__ = ["analyze_gemm_loopnest_batch"]
