"""Determinism and encoding-geometry tests for the MOBO layer."""

import numpy as np
import pytest

from repro.hw import edge_design_space
from repro.optim.mobo import MOBOSampler


@pytest.fixture()
def space():
    return edge_design_space()


def _objectives(space, configs):
    ys = []
    for config in configs:
        x = space.encode(config)
        ys.append([1 + x[0], 0.5 + x[1], 0.2 + x[2]])
    return np.array(ys)


class TestSamplerDeterminism:
    def test_same_seed_same_batch(self, space):
        train = space.sample_batch(12, seed=0)
        y = _objectives(space, train)

        def run(seed):
            sampler = MOBOSampler(space, 3, seed=seed, pool_size=64)
            batch = sampler.suggest_batch(train, y, batch_size=4)
            return [space.config_key(c) for c in batch]

        assert run(7) == run(7)

    def test_different_seed_different_batch(self, space):
        train = space.sample_batch(12, seed=0)
        y = _objectives(space, train)

        def run(seed):
            sampler = MOBOSampler(space, 3, seed=seed, pool_size=64)
            batch = sampler.suggest_batch(train, y, batch_size=4)
            return [space.config_key(c) for c in batch]

        assert run(1) != run(2)


class TestEncodingGeometry:
    def test_mutation_is_local_in_encoding_space(self, space, rng):
        """A one-dimension grid step moves the encoded vector by at most one
        coordinate's span (1.0 for a binary axis) — the geometry the GP's
        smoothness assumption relies on."""
        mutation_distances = []
        for _ in range(40):
            config = space.sample(rng)
            neighbor = space.mutate(config, rng, num_moves=1, step=1)
            distance = np.linalg.norm(space.encode(config) - space.encode(neighbor))
            assert distance <= 1.0 + 1e-12  # single axis moved
            mutation_distances.append(distance)
        random_distances = []
        for _ in range(40):
            a, b = space.sample(rng), space.sample(rng)
            random_distances.append(
                np.linalg.norm(space.encode(a) - space.encode(b))
            )
        # mutations are much closer than random re-draws
        assert np.mean(mutation_distances) < 0.5 * np.mean(random_distances)
