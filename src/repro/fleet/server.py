"""Replica fleet supervisor: N PPA-service processes with graceful drain.

:class:`FleetSupervisor` forks ``replicas`` independent
:class:`~repro.costmodel.service.PPAServiceServer` processes from one
picklable :class:`ReplicaSpec`, reports their URLs back over pipes, and
stops them with SIGTERM so each replica drains its in-flight requests
(returning fast 503s to new ones) before closing the listener.  That is
the restart contract the sharded client relies on: a draining replica is
*redirecting*, not *failing*, so the client re-routes without charging
the replica's circuit breaker.

Each replica builds its **own** engine from the spec — separate processes
cannot share a cache, and that is the point: the router's rendezvous
placement gives every replica a stable slice of the key space, so N
replicas aggregate N bounded LRU caches instead of thrashing one.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional
from urllib.request import urlopen

from repro.errors import ConfigurationError

#: engines a replica knows how to build (same names as ``repro serve``)
REPLICA_ENGINES = ("maestro", "ascend")


@dataclass(frozen=True)
class ReplicaSpec:
    """Picklable recipe for one service replica's engine + server."""

    network: str
    engine: str = "maestro"
    cache_capacity: Optional[int] = None
    noise_fraction: float = 0.08
    host: str = "127.0.0.1"
    ports: tuple = field(default_factory=tuple)  # empty -> OS-assigned

    def __post_init__(self):
        if self.engine not in REPLICA_ENGINES:
            raise ConfigurationError(
                f"unknown replica engine {self.engine!r}; "
                f"available: {REPLICA_ENGINES}"
            )


def build_replica_engine(spec: ReplicaSpec):
    """Construct the engine a replica serves (same idiom as ``repro serve``)."""
    from repro.workloads import get_network

    network = get_network(spec.network)
    if spec.engine == "maestro":
        from repro.costmodel import MaestroEngine

        return MaestroEngine(network, cache_capacity=spec.cache_capacity)
    from repro.camodel import AscendCAEngine

    engine = AscendCAEngine(network, noise_fraction=spec.noise_fraction)
    engine.cache_capacity = spec.cache_capacity
    return engine


def _replica_main(spec: ReplicaSpec, index: int, conn) -> None:
    """Entry point of one replica process.

    Builds the engine + server, reports the bound URL through ``conn``,
    then parks until SIGTERM/SIGINT triggers the graceful drain-and-stop
    installed by ``install_signal_handlers``.
    """
    from repro.costmodel.service import PPAServiceServer

    stopped = threading.Event()
    try:
        engine = build_replica_engine(spec)
        port = spec.ports[index] if index < len(spec.ports) else 0
        server = PPAServiceServer(engine, host=spec.host, port=port)
        server.start()
        server.install_signal_handlers(on_stopped=stopped.set)
        conn.send({"ok": True, "url": server.url, "pid": os.getpid()})
    except Exception as error:  # pragma: no cover - startup failure path
        conn.send({"ok": False, "error": f"{type(error).__name__}: {error}"})
        return
    finally:
        conn.close()
    stopped.wait()


class FleetSupervisor:
    """Start, watch, and gracefully stop N service replica processes.

    >>> spec = ReplicaSpec(network="mobilenetv3_small")
    >>> with FleetSupervisor(spec, replicas=4) as fleet:
    ...     engine = ShardedPPAEngine(network, fleet.urls, area_fn)
    """

    def __init__(
        self,
        spec: ReplicaSpec,
        replicas: int = 2,
        start_timeout_s: float = 30.0,
    ):
        if replicas < 1:
            raise ConfigurationError(f"need at least 1 replica, got {replicas}")
        self.spec = spec
        self.replicas = replicas
        self.start_timeout_s = start_timeout_s
        self.urls: List[str] = []
        self._procs: List[multiprocessing.process.BaseProcess] = []

    @staticmethod
    def _context():
        """Prefer fork (cheap, inherits imports); fall back to the default."""
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def start(self) -> "FleetSupervisor":
        """Spawn every replica and block until each reports its URL."""
        if self._procs:
            raise ConfigurationError("fleet already started")
        ctx = self._context()
        pending = []
        for index in range(self.replicas):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_replica_main,
                args=(self.spec, index, child_conn),
                name=f"ppa-replica-{index}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            pending.append((index, proc, parent_conn))
        urls: List[str] = []
        try:
            for index, proc, conn in pending:
                if not conn.poll(self.start_timeout_s):
                    raise ConfigurationError(
                        f"replica {index} did not report within "
                        f"{self.start_timeout_s}s"
                    )
                report = conn.recv()
                conn.close()
                if not report.get("ok"):
                    raise ConfigurationError(
                        f"replica {index} failed to start: "
                        f"{report.get('error', 'unknown error')}"
                    )
                urls.append(report["url"])
        except Exception:
            self._procs = [proc for _, proc, _ in pending]
            self.stop(graceful=False)
            raise
        self._procs = [proc for _, proc, _ in pending]
        self.urls = urls
        return self

    def status(self, timeout_s: float = 2.0) -> List[Dict]:
        """Liveness + ``/health`` of every replica (best effort)."""
        rows: List[Dict] = []
        for index, proc in enumerate(self._procs):
            row: Dict = {
                "replica": index,
                "pid": proc.pid,
                "alive": proc.is_alive(),
                "url": self.urls[index] if index < len(self.urls) else None,
            }
            if row["alive"] and row["url"]:
                try:
                    with urlopen(
                        f"{row['url']}/health", timeout=timeout_s
                    ) as response:
                        row["health"] = json.loads(response.read())
                except OSError as error:
                    row["health"] = {"error": f"{type(error).__name__}: {error}"}
            rows.append(row)
        return rows

    def terminate_replica(self, index: int) -> None:
        """SIGTERM one replica (graceful drain); used by failover tests."""
        proc = self._procs[index]
        if proc.is_alive() and proc.pid is not None:
            os.kill(proc.pid, signal.SIGTERM)

    def stop(self, graceful: bool = True, timeout_s: float = 10.0) -> None:
        """SIGTERM every replica, escalating to SIGKILL on stragglers."""
        if graceful:
            for proc in self._procs:
                if proc.is_alive() and proc.pid is not None:
                    os.kill(proc.pid, signal.SIGTERM)
        deadline = time.monotonic() + timeout_s
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        self._procs = []
        self.urls = []

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = [
    "FleetSupervisor",
    "REPLICA_ENGINES",
    "ReplicaSpec",
    "build_replica_engine",
]
