"""Tests for the experiment harness plumbing."""

import numpy as np
import pytest

from repro.core.base import CoSearchResult, TimelineEntry
from repro.errors import ConfigurationError
from repro.experiments import (
    combined_reference,
    get_preset,
    hv_difference_curve,
    ideal_front,
    make_platform,
    resolve_workload,
    run_method,
    sw_search_on,
    time_grid,
)
from repro.optim.hypervolume import hypervolume
from repro.optim.pareto import ParetoFront
from repro.workloads import Network, get_network


class TestPresets:
    def test_known_names(self):
        for name in ("smoke", "bench", "paper"):
            preset = get_preset(name)
            assert preset.name == name

    def test_paper_matches_section4(self):
        preset = get_preset("paper")
        assert preset.unico_batch == 30
        assert preset.unico_budget == 300
        assert preset.ascend_batch == 8
        assert preset.ascend_iterations == 30
        assert preset.ascend_budget == 200

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_preset("gigantic")


class TestResolveWorkload:
    def test_string(self):
        assert resolve_workload("bert").name == "bert"

    def test_network_passthrough(self, tiny_network):
        assert resolve_workload(tiny_network) is tiny_network

    def test_list_merges(self):
        merged = resolve_workload(["bert", "vit"])
        assert merged.family == "multi"
        assert merged.name == "bert+vit"

    def test_singleton_list(self):
        assert resolve_workload(["bert"]).name == "bert"


class TestMakePlatform:
    def test_edge(self):
        space, engine, caps, tool, workers = make_platform("edge", get_network("bert"))
        assert space.name == "spatial-edge"
        assert caps["power_cap_w"] == 2.0
        assert tool == "flextensor"
        assert workers == 8  # multiprocessing SH jobs on the server's cores

    def test_ascend(self):
        space, engine, caps, tool, workers = make_platform(
            "ascend", get_network("fsrcnn_120x320")
        )
        assert space.name == "ascend-like"
        assert caps["area_cap_mm2"] == 200.0
        assert tool == "fusion"
        assert workers == 4

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_platform("fpga", get_network("bert"))


class TestRunMethod:
    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            run_method("cmaes", "edge", "bert", "smoke")

    @pytest.mark.parametrize("method", ["unico", "hasco", "nsgaii", "mobohb", "random"])
    def test_each_method_runs(self, method, tiny_network):
        result = run_method(method, "edge", tiny_network, "smoke", seed=1)
        assert result.method == method
        assert result.total_hw_evaluated > 0

    @pytest.mark.parametrize("method", ["unico_no_r", "msh_champion", "sh_champion"])
    def test_unico_variants_run(self, method, tiny_network):
        result = run_method(method, "edge", tiny_network, "smoke", seed=1)
        assert result.method == method

    def test_seed_changes_outcome_reproducibly(self, tiny_network):
        a = run_method("random", "edge", tiny_network, "smoke", seed=1)
        b = run_method("random", "edge", tiny_network, "smoke", seed=1)
        assert a.total_time_s == b.total_time_s


class TestSwSearchOn:
    def test_transfer_search(self, tiny_network):
        from repro.hw import edge_design_space

        hw = edge_design_space().sample(seed=4)
        trial = sw_search_on(hw, tiny_network, "edge", budget=20, seed=0)
        assert trial.spent_budget == 20


def _fake_result(times_and_points):
    pareto = ParetoFront(num_objectives=3)
    timeline = []
    for t, point in times_and_points:
        timeline.append(
            TimelineEntry(time_s=t, ppa_vector=np.array(point), feasible=True)
        )
        pareto.add(tuple(point), point)
    return CoSearchResult(
        method="fake",
        network="net",
        pareto=pareto,
        timeline=timeline,
        total_time_s=max(t for t, _ in times_and_points),
        total_hw_evaluated=len(timeline),
    )


class TestHVCurves:
    def test_curve_monotone_nonincreasing(self):
        result = _fake_result(
            [(1.0, [3, 3, 3]), (2.0, [2, 2, 2]), (3.0, [1, 1, 1])]
        )
        reference = combined_reference([result])
        ideal = ideal_front([result])
        ideal_hv = hypervolume(ideal, reference)
        curve = hv_difference_curve(result, reference, ideal_hv, [1.0, 2.0, 3.0])
        values = [v for _t, v in curve]
        assert values == sorted(values, reverse=True)
        assert values[-1] == pytest.approx(0.0)

    def test_curve_before_first_eval_is_full_gap(self):
        result = _fake_result([(10.0, [1, 1, 1])])
        reference = combined_reference([result])
        ideal_hv = hypervolume(ideal_front([result]), reference)
        curve = hv_difference_curve(result, reference, ideal_hv, [5.0, 10.0])
        assert curve[0][1] == pytest.approx(ideal_hv)
        assert curve[1][1] == pytest.approx(0.0)

    def test_time_grid_spans_runs(self):
        a = _fake_result([(1.0, [1, 1, 1])])
        b = _fake_result([(9.0, [2, 2, 2])])
        grid = time_grid([a, b], num_points=10)
        assert grid[-1] == pytest.approx(9.0)
        assert len(grid) == 10

    def test_combined_reference_beyond_all(self):
        a = _fake_result([(1.0, [5, 1, 1])])
        b = _fake_result([(1.0, [1, 7, 2])])
        reference = combined_reference([a, b])
        assert np.all(reference >= [5, 7, 2])
