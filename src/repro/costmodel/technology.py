"""Technology constants for the analytical PPA model.

All per-operation energies, per-area leakage, and component areas are
collected in one frozen :class:`Technology` object so a single 16nm-class
process assumption flows through latency/energy/area consistently.  Values
are representative of published accelerator characterizations (Eyeriss,
SIMBA, TPU die shots scaled to 16nm); the co-optimization only depends on
their *relative* magnitudes (DRAM >> L2 > L1 > MAC).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """Process/technology parameters shared by the cost models.

    Energies are Joules per unit; areas are mm^2 per unit; the clock is Hz.
    """

    # timing
    frequency_hz: float = 1.0e9
    dram_bw_bytes_per_cycle: float = 32.0

    # dynamic energy
    mac_energy_j: float = 0.20e-12  # int8 MAC at 16nm-class node
    reg_energy_per_byte_j: float = 0.015e-12
    l1_energy_per_byte_base_j: float = 0.06e-12  # at 1 KB; scales with size^0.25
    l2_energy_per_byte_base_j: float = 0.35e-12  # at 64 KB; scales with size^0.25
    dram_energy_per_byte_j: float = 8.0e-12

    # static (leakage) power, proportional to area
    leakage_w_per_mm2: float = 0.020

    # area
    pe_area_mm2: float = 0.0040  # MAC + registers + control per PE
    sram_area_mm2_per_kb: float = 0.0012
    bank_area_overhead: float = 0.03  # +3% SRAM area per extra bank
    noc_area_mm2_per_pe_per_lane: float = 0.000008  # per PE per byte-lane
    base_area_mm2: float = 0.35  # controller, DMA engines, PLL, pads

    # data widths
    operand_bytes: int = 1  # int8 activations/weights
    accum_bytes: int = 4  # fp32/int32 accumulators

    def l1_energy_per_byte(self, l1_bytes: int) -> float:
        """SRAM access energy grows ~size^0.25 (bitline/wordline length)."""
        scale = max(l1_bytes / 1024.0, 0.0625) ** 0.25
        return self.l1_energy_per_byte_base_j * scale

    def l2_energy_per_byte(self, l2_bytes: int) -> float:
        scale = max(l2_bytes / (64.0 * 1024.0), 0.0625) ** 0.25
        return self.l2_energy_per_byte_base_j * scale


DEFAULT_TECHNOLOGY = Technology()
