"""Tests for the from-scratch Gaussian process."""

import numpy as np
import pytest

from repro.errors import SurrogateError
from repro.optim.gp import GaussianProcess, GPHyperparameters, matern52_kernel, rbf_kernel


def _toy_data(n=40, d=3, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, (n, d))
    y = np.sin(5 * x[:, 0]) + x[:, 1] ** 2
    if d > 2:
        y = y - 0.5 * x[:, 2]
    return x, y


class TestKernels:
    def test_rbf_diagonal_is_variance(self):
        x = np.random.default_rng(0).uniform(0, 1, (5, 2))
        k = rbf_kernel(x, x, np.ones(2), 2.0)
        assert np.allclose(np.diag(k), 2.0)

    def test_matern_diagonal_is_variance(self):
        x = np.random.default_rng(0).uniform(0, 1, (5, 2))
        k = matern52_kernel(x, x, np.ones(2), 3.0)
        assert np.allclose(np.diag(k), 3.0)

    def test_kernels_decay_with_distance(self):
        a = np.zeros((1, 2))
        near = np.array([[0.1, 0.1]])
        far = np.array([[3.0, 3.0]])
        for kernel in (rbf_kernel, matern52_kernel):
            assert kernel(a, near, np.ones(2), 1.0) > kernel(a, far, np.ones(2), 1.0)

    def test_kernel_psd(self):
        x = np.random.default_rng(1).uniform(0, 1, (20, 3))
        k = matern52_kernel(x, x, np.full(3, 0.5), 1.0)
        eigenvalues = np.linalg.eigvalsh(k)
        assert eigenvalues.min() > -1e-8


class TestFitPredict:
    def test_interpolates_training_data(self):
        x, y = _toy_data()
        gp = GaussianProcess().fit(x, y)
        mean, std = gp.predict(x)
        assert np.max(np.abs(mean - y)) < 0.05
        assert np.all(std < 0.2)

    def test_uncertainty_grows_away_from_data(self):
        x, y = _toy_data(n=20, d=2)
        gp = GaussianProcess().fit(x, y)
        _near_mean, near_std = gp.predict(x[:1] + 0.01)
        _far_mean, far_std = gp.predict(np.full((1, 2), 5.0))
        assert far_std[0] > near_std[0]

    def test_generalizes_on_smooth_function(self):
        x, y = _toy_data(n=60, d=3, seed=1)
        x_test, y_test = _toy_data(n=20, d=3, seed=2)
        gp = GaussianProcess().fit(x, y)
        mean, _std = gp.predict(x_test)
        rmse = float(np.sqrt(np.mean((mean - y_test) ** 2)))
        assert rmse < 0.25

    def test_constant_targets(self):
        x = np.random.default_rng(0).uniform(0, 1, (10, 2))
        gp = GaussianProcess().fit(x, np.full(10, 3.0))
        mean, _std = gp.predict(x[:3])
        assert np.allclose(mean, 3.0, atol=1e-6)

    def test_single_observation(self):
        gp = GaussianProcess().fit(np.array([[0.5, 0.5]]), np.array([2.0]))
        mean, std = gp.predict(np.array([[0.5, 0.5]]))
        assert mean[0] == pytest.approx(2.0, abs=0.2)
        assert std[0] >= 0

    def test_fixed_hyper_skips_optimization(self):
        x, y = _toy_data(n=15, d=2)
        hyper = GPHyperparameters(np.array([0.3, 0.3]), 1.0, 1e-4)
        gp = GaussianProcess().fit(x, y, hyper=hyper)
        assert np.allclose(gp.hyper.lengthscales, [0.3, 0.3])
        assert gp.hyper.variance == 1.0

    def test_rbf_kernel_option(self):
        x, y = _toy_data(n=25, d=2)
        gp = GaussianProcess(kernel="rbf").fit(x, y)
        mean, _ = gp.predict(x[:5])
        assert np.max(np.abs(mean - y[:5])) < 0.1


class TestErrors:
    def test_unknown_kernel(self):
        with pytest.raises(SurrogateError):
            GaussianProcess(kernel="periodic")

    def test_mismatched_sizes(self):
        with pytest.raises(SurrogateError):
            GaussianProcess().fit(np.zeros((3, 2)), np.zeros(4))

    def test_non_finite_data(self):
        with pytest.raises(SurrogateError):
            GaussianProcess().fit(np.array([[np.nan, 0]]), np.array([1.0]))

    def test_predict_before_fit(self):
        with pytest.raises(SurrogateError):
            GaussianProcess().predict(np.zeros((1, 2)))


class TestPosteriorSampling:
    def test_sample_shape(self):
        x, y = _toy_data(n=20, d=2)
        gp = GaussianProcess().fit(x, y)
        draw = gp.sample_posterior(np.random.default_rng(0).uniform(0, 1, (7, 2)))
        assert draw.shape == (7,)

    def test_samples_vary_with_seed(self):
        x, y = _toy_data(n=20, d=2)
        gp = GaussianProcess().fit(x, y)
        query = np.full((3, 2), 5.0)  # far from data -> high variance
        assert not np.allclose(
            gp.sample_posterior(query, seed=0), gp.sample_posterior(query, seed=1)
        )

    def test_samples_near_mean_at_training_points(self):
        x, y = _toy_data(n=25, d=2)
        gp = GaussianProcess().fit(x, y)
        draw = gp.sample_posterior(x[:5], seed=0)
        assert np.max(np.abs(draw - y[:5])) < 0.5
