"""NSGA-II (Deb et al., 2002) — the evolutionary co-search baseline.

Generic over any :class:`~repro.hw.space.DiscreteDesignSpace`: individuals
are hardware configurations, fitness is the objective vector returned by a
user-supplied evaluation function (minimization).  Non-finite objective
vectors (infeasible hardware) are ranked behind every feasible individual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.hw.space import DiscreteDesignSpace
from repro.optim.pareto import crowding_distance, non_dominated_sort
from repro.utils.rng import SeedLike, as_generator

EvaluateFn = Callable[[object], np.ndarray]


@dataclass
class Individual:
    """A genome (hardware config) with its objective vector."""

    config: object
    objectives: np.ndarray
    rank: int = 0
    crowding: float = 0.0

    @property
    def feasible(self) -> bool:
        return bool(np.all(np.isfinite(self.objectives)))


class NSGA2:
    """Elitist non-dominated-sorting genetic algorithm."""

    def __init__(
        self,
        space: DiscreteDesignSpace,
        evaluate: EvaluateFn,
        population_size: int = 20,
        seed: SeedLike = None,
        crossover_prob: float = 0.9,
        mutation_prob: float = 0.3,
    ):
        if population_size < 2:
            raise ValueError(f"population_size must be >= 2, got {population_size}")
        self.space = space
        self.evaluate = evaluate
        self.population_size = population_size
        self.rng = as_generator(seed)
        self.crossover_prob = crossover_prob
        self.mutation_prob = mutation_prob
        self.population: List[Individual] = []
        self.num_evaluations = 0
        self.generation = 0

    # ------------------------------------------------------------------- setup
    def initialize(self, initial_configs: Optional[Sequence] = None) -> None:
        configs = list(initial_configs or [])
        while len(configs) < self.population_size:
            configs.append(self.space.sample(self.rng))
        self.population = [self._make_individual(c) for c in configs]
        self._assign_ranks(self.population)

    def _make_individual(self, config) -> Individual:
        objectives = np.asarray(self.evaluate(config), dtype=float)
        self.num_evaluations += 1
        return Individual(config=config, objectives=objectives)

    # ------------------------------------------------------------------ ranking
    @staticmethod
    def _penalized(points: np.ndarray) -> np.ndarray:
        """Replace non-finite rows with a large dominated sentinel."""
        points = points.copy()
        bad = ~np.all(np.isfinite(points), axis=1)
        if bad.any():
            finite_rows = points[~bad]
            ceiling = (
                finite_rows.max(axis=0) * 10.0 + 1.0
                if finite_rows.size
                else np.ones(points.shape[1])
            )
            points[bad] = ceiling
        return points

    def _assign_ranks(self, individuals: List[Individual]) -> None:
        points = self._penalized(
            np.vstack([ind.objectives for ind in individuals])
        )
        fronts = non_dominated_sort(points)
        for rank, front in enumerate(fronts):
            front_points = points[front]
            crowd = crowding_distance(front_points)
            for local_index, individual_index in enumerate(front):
                individuals[individual_index].rank = rank
                individuals[individual_index].crowding = float(crowd[local_index])

    # ---------------------------------------------------------------- breeding
    def _tournament(self) -> Individual:
        a, b = (
            self.population[int(self.rng.integers(0, len(self.population)))],
            self.population[int(self.rng.integers(0, len(self.population)))],
        )
        if a.rank != b.rank:
            return a if a.rank < b.rank else b
        return a if a.crowding > b.crowding else b

    def step(self) -> None:
        """One generation: breed, evaluate, environmental selection."""
        if not self.population:
            self.initialize()
        offspring: List[Individual] = []
        while len(offspring) < self.population_size:
            parent_a = self._tournament()
            parent_b = self._tournament()
            if self.rng.random() < self.crossover_prob:
                child_config = self.space.crossover(
                    parent_a.config, parent_b.config, self.rng
                )
            else:
                child_config = parent_a.config
            if self.rng.random() < self.mutation_prob:
                child_config = self.space.mutate(child_config, self.rng)
            offspring.append(self._make_individual(child_config))
        combined = self.population + offspring
        self._assign_ranks(combined)
        combined.sort(key=lambda ind: (ind.rank, -ind.crowding))
        self.population = combined[: self.population_size]
        self._assign_ranks(self.population)
        self.generation += 1

    def run(self, num_generations: int) -> "NSGA2":
        for _ in range(num_generations):
            self.step()
        return self

    # ------------------------------------------------------------------- views
    def pareto_individuals(self) -> List[Individual]:
        return [ind for ind in self.population if ind.rank == 0 and ind.feasible]

    def pareto_points(self) -> np.ndarray:
        members = self.pareto_individuals()
        if not members:
            return np.zeros((0, 0))
        return np.vstack([ind.objectives for ind in members])
