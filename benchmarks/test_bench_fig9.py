"""Figure 9: UNICO vs HASCO generalization to 8 unseen DNNs.

Both methods co-optimize on {MobileNetV2, ResNet, SRGAN, VGG}; each
min-Euclidean-distance design is then given an individual SW mapping search
on every validation network.  The per-network gain ratio compares HASCO's
normalized PPA distance to UNICO's (> 1 = UNICO generalizes better).
Expected shape (paper): UNICO wins on most validation networks with a
substantially positive mean improvement (paper: 44%).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once, save_record
from repro.experiments import run_fig9
from repro.workloads import FIG9_VALIDATION

SEED = 0


@pytest.mark.benchmark(group="fig9")
def test_fig9_generalization(benchmark, results_dir):
    record = run_once(benchmark, run_fig9, "bench", seed=SEED)
    save_record(results_dir, "fig9", record)

    print("\n=== Fig. 9: generalization to unseen DNNs, bench preset ===")
    print(f"UNICO hw: {record.get('unico_hw')}")
    print(f"HASCO hw: {record.get('hasco_hw')}")
    assert "error" not in record.metrics, record.get("error")
    for network in FIG9_VALIDATION:
        child = record.children[network]
        print(
            f"{network:<20s} gain ratio {child.get('gain_ratio'):>6.2f}  "
            f"(latency unico {child.get('unico_latency_ms'):.2f} ms "
            f"vs hasco {child.get('hasco_latency_ms'):.2f} ms)"
        )
    print(f"mean gain ratio: {record.get('mean_gain_ratio'):.2f} "
          f"({record.get('mean_improvement_pct'):.0f}% improvement)")

    # UNICO's hardware generalizes at least as well as HASCO's on average
    assert record.get("mean_gain_ratio") >= 1.0
    assert record.get("fraction_unico_wins") >= 0.5
