"""Sharded PPA-service client: one engine, N replicas, concurrent fan-out.

:class:`ShardedPPAEngine` extends
:class:`~repro.costmodel.service.RemotePPAEngine` with a
:class:`~repro.fleet.router.ShardRouter`: every cache-miss query is
consistent-hashed to the replica that owns its key range (so that
replica's bounded LRU stays hot), chunked ``POST /evaluate_candidates`` /
``/evaluate_layers`` requests to *different* shards fly concurrently, and
the replies are re-merged in request order.

Bit-identical accounting: all query counting, clock charging, client-side
caching and journal events happen in the :class:`PPAEngine` base class
*above* this transport — the fan-out only changes who computes a miss and
when, never the order results are returned, stored or journaled.  The
replica engines are deterministic, so sharded and serial runs produce the
same bytes.

Failover: when a key's owner is down (marked by a health check, draining,
or its breaker is open) the key falls to the next shard in its rendezvous
ranking — and snaps back, unmoved, when the owner returns.  A ``503
service draining`` reply marks the shard down *without* charging its
breaker: a replica restart is routine, not an outage.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.costmodel.results import LayerPPA
from repro.costmodel.service import (
    RemotePPAEngine,
    _layer_ppa_from_dict,
    encode_object,
)
from repro.errors import EvaluationError, TransportError
from repro.fleet.hashing import candidate_key
from repro.fleet.router import Shard, ShardRouter

__all__ = ["ShardedPPAEngine"]


class ShardedPPAEngine(RemotePPAEngine):
    """A :class:`RemotePPAEngine` spread over N service replicas.

    ``max_inflight`` bounds the number of chunk requests in flight at
    once across all shards (they run on a small worker-thread pool).
    All other knobs — retries, backoff, breaker thresholds, batch_size —
    keep their :class:`RemotePPAEngine` meaning, applied per shard.
    """

    def __init__(
        self,
        network,
        base_urls: Sequence[str],
        area_fn: Callable[[object], float],
        max_inflight: int = 8,
        **kwargs,
    ):
        urls = [url.rstrip("/") for url in base_urls]
        if not urls:
            raise EvaluationError("ShardedPPAEngine needs at least one URL")
        if max_inflight < 1:
            raise EvaluationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        super().__init__(network, urls[0], area_fn, **kwargs)
        self.max_inflight = max_inflight
        self.router = ShardRouter(
            urls,
            timeout_s=self.timeout_s,
            breaker_threshold=self.breaker_threshold,
            breaker_cooldown_s=self.breaker_cooldown_s,
            metrics=self.metrics,
            max_idle_per_shard=max(2, max_inflight),
        )
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()

    # -- fan-out plumbing -------------------------------------------------------
    def _pool_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_inflight,
                    thread_name_prefix="fleet-client",
                )
            return self._executor

    def close(self) -> None:
        """Release worker threads and pooled connections."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        self.router.close()

    def _query_key(self, hw_id, layer_name: str, mapping) -> str:
        return candidate_key(hw_id, layer_name, mapping.key())

    def _shard_request(
        self, shard: Shard, path: str, payload: Dict, parent_span
    ) -> Dict:
        """One chunk request to one shard, with its own span.

        Worker threads have an empty tracer context stack, so the parent
        is attached explicitly; the span carries the shard name, and the
        server-side span stitches under it exactly as in the serial path.
        """
        if self.tracer.enabled:
            span = self.tracer.start_span(
                "remote" + path,
                parent_id=parent_span.span_id if parent_span is not None else None,
                shard=shard.name,
            )
            try:
                return self._transport_request(
                    shard.pool, shard.breaker, path, payload, span,
                    shard=shard.name,
                )
            finally:
                self.tracer.finish_span(span)
        return self._transport_request(
            shard.pool, shard.breaker, path, payload, None, shard=shard.name
        )

    def _shard_request_failover(
        self, key: str, path: str, payload: Dict, parent_span
    ) -> Dict:
        """Route by ``key`` and retry down the rendezvous ranking.

        Only transport-level failures fail over (the next replica may be
        healthy); semantic 4xx rejections raise immediately — every
        replica would reject the same query.  A ``503 draining`` reply
        marks the shard down for its TTL without charging the breaker.
        """
        ranked = self.router.ranking(key)
        last_error: Optional[TransportError] = None
        tried = 0
        for shard in ranked:
            if not shard.available() and tried == 0 and shard is not ranked[-1]:
                # the owner is known-down: skip straight to the failover
                # target its keys remap to (stable under rendezvous)
                continue
            tried += 1
            try:
                return self._shard_request(shard, path, payload, parent_span)
            except EvaluationError as error:
                if self._is_draining_rejection(error):
                    shard.mark_down("draining")
                    shard.breaker.record(True)  # a restart is not an outage
                    last_error = TransportError(str(error))
                    continue
                if isinstance(error, TransportError):
                    self.router.num_failovers += 1
                    self.metrics.counter(
                        f"fleet_failovers_total[shard={shard.name}]"
                    ).inc()
                    last_error = error
                    continue
                raise  # semantic rejection: no replica will answer differently
        assert last_error is not None
        raise last_error

    @staticmethod
    def _is_draining_rejection(error: EvaluationError) -> bool:
        message = str(error)
        return "503" in message and "draining" in message

    def _fanout(
        self,
        requests: Sequence[Tuple[str, str, Dict]],
    ) -> List[Dict]:
        """Issue ``(key, path, payload)`` chunk requests concurrently.

        Replies come back in submission order regardless of completion
        order, so downstream accounting is order-identical to the serial
        loop.  The calling thread's current span (if any) parents every
        chunk span.
        """
        if not requests:
            return []
        parent_span = (
            self.tracer.current_span() if self.tracer.enabled else None
        )
        if len(requests) == 1:
            key, path, payload = requests[0]
            return [
                self._shard_request_failover(key, path, payload, parent_span)
            ]
        executor = self._pool_executor()
        futures = [
            executor.submit(
                self._shard_request_failover, key, path, payload, parent_span
            )
            for key, path, payload in requests
        ]
        # collect everything before raising so no future is abandoned
        # mid-flight with its connection checked out
        outcomes: List = []
        for future in futures:
            try:
                outcomes.append(future.result())
            except BaseException as error:  # noqa: BLE001 - re-raised below
                outcomes.append(error)
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
        return outcomes

    # -- engine transport overrides ---------------------------------------------
    def _compute_layer_by_name(self, hw, mapping, layer_name, shape) -> LayerPPA:
        payload = {
            "hw": encode_object(hw),
            "mapping": encode_object(mapping),
            "layer": layer_name,
        }
        key = self._query_key(self.hw_key(hw), layer_name, mapping)
        parent_span = (
            self.tracer.current_span() if self.tracer.enabled else None
        )
        return _layer_ppa_from_dict(
            self._shard_request_failover(
                key, "/evaluate_layer", payload, parent_span
            )
        )

    def _compute_layer_batch(
        self, hw, mappings, layer_name: str, shape
    ) -> List[LayerPPA]:
        """Shard-partitioned, concurrently fanned ``/evaluate_candidates``.

        The base class charges queries, splits hits from misses, stores
        results and emits journal events; this override only decides where
        each miss chunk is computed.  Chunks preserve the miss order
        within each shard, and the reply merge is by original position —
        so the returned list is ordered exactly like ``mappings``.
        """
        hw_id = self.hw_key(hw)
        hw_wire = encode_object(hw)
        by_shard_key: Dict[str, List[int]] = {}
        for index, mapping in enumerate(mappings):
            key = self._query_key(hw_id, layer_name, mapping)
            by_shard_key.setdefault(key, []).append(index)
        # group positions by their routing key's chunk: one request per
        # (key-group chunk); keys sharing an owner batch together
        groups: Dict[str, List[int]] = {}
        for key, positions in by_shard_key.items():
            owner = self.router.route(key).name
            groups.setdefault(owner, []).extend(positions)
        requests: List[Tuple[str, str, Dict]] = []
        request_positions: List[List[int]] = []
        for owner, positions in groups.items():
            positions.sort()
            for chunk_start in range(0, len(positions), self.batch_size):
                chunk = positions[chunk_start : chunk_start + self.batch_size]
                payload = {
                    "hw": hw_wire,
                    "layer": layer_name,
                    "mappings": [
                        encode_object(mappings[index]) for index in chunk
                    ],
                }
                # route by the first key of the chunk: all keys in the
                # chunk share the same owner by construction
                requests.append(
                    (
                        self._query_key(hw_id, layer_name, mappings[chunk[0]]),
                        "/evaluate_candidates",
                        payload,
                    )
                )
                request_positions.append(chunk)
        replies = self._fanout(requests)
        results: List[Optional[LayerPPA]] = [None] * len(mappings)
        failures: List[str] = []
        for positions, reply in zip(request_positions, replies):
            entries = reply.get("results")
            if not isinstance(entries, list) or len(entries) != len(positions):
                raise EvaluationError(
                    f"candidate-batch reply shape mismatch: sent "
                    f"{len(positions)} items, got {entries!r}"
                )
            for index, entry in zip(positions, entries):
                if entry.get("ok"):
                    results[index] = _layer_ppa_from_dict(entry["result"])
                else:
                    failures.append(str(entry.get("error")))
        if failures:
            raise EvaluationError(
                f"candidate-batch evaluation failed for {len(failures)} "
                "item(s): " + "; ".join(failures)
            )
        return results  # type: ignore[return-value]  # all slots filled above

    def evaluate_layers(
        self, hw, requests: Sequence[Tuple[object, str]]
    ) -> List[LayerPPA]:
        """Batched mixed-layer evaluation, sharded like the candidate path.

        Accounting is identical to :meth:`RemotePPAEngine.evaluate_layers`
        (charge every query, serve hits locally, ship misses in chunks);
        the chunks just go to each miss's owning shard, concurrently.
        """
        results: List[Optional[LayerPPA]] = [None] * len(requests)
        misses: List[Tuple[int, Tuple, object, str]] = []
        hw_id = self.hw_key(hw)
        for index, (mapping, layer_name) in enumerate(requests):
            self._charge_query(layer_name)
            key = (hw_id, layer_name, mapping.key())
            cached = self._cache_lookup(key)
            if cached is not None:
                results[index] = cached
            else:
                misses.append((index, key, mapping, layer_name))
        if not misses:
            return results  # type: ignore[return-value]
        hw_wire = encode_object(hw)
        groups: Dict[str, List[int]] = {}
        for miss_index, (_index, _key, mapping, layer_name) in enumerate(misses):
            owner = self.router.route(
                self._query_key(hw_id, layer_name, mapping)
            ).name
            groups.setdefault(owner, []).append(miss_index)
        chunk_requests: List[Tuple[str, str, Dict]] = []
        chunk_members: List[List[int]] = []
        for owner, miss_indices in groups.items():
            miss_indices.sort()
            for chunk_start in range(0, len(miss_indices), self.batch_size):
                chunk = miss_indices[chunk_start : chunk_start + self.batch_size]
                payload = {
                    "hw": hw_wire,
                    "items": [
                        {
                            "mapping": encode_object(misses[mi][2]),
                            "layer": misses[mi][3],
                        }
                        for mi in chunk
                    ],
                }
                first = misses[chunk[0]]
                chunk_requests.append(
                    (
                        self._query_key(hw_id, first[3], first[2]),
                        "/evaluate_layers",
                        payload,
                    )
                )
                chunk_members.append(chunk)
        replies = self._fanout(chunk_requests)
        failures: List[str] = []
        # store strictly in miss order so LRU recency (and therefore any
        # eviction sequence) matches the serial client byte for byte
        pending: Dict[int, LayerPPA] = {}
        for members, reply in zip(chunk_members, replies):
            entries = reply.get("results")
            if not isinstance(entries, list) or len(entries) != len(members):
                raise EvaluationError(
                    f"batched reply shape mismatch: sent {len(members)} "
                    f"items, got {entries!r}"
                )
            for miss_index, entry in zip(members, entries):
                if entry.get("ok"):
                    pending[miss_index] = _layer_ppa_from_dict(entry["result"])
                else:
                    failures.append(
                        f"{misses[miss_index][3]}: {entry.get('error')}"
                    )
        if failures:
            raise EvaluationError(
                f"batched evaluation failed for {len(failures)} item(s): "
                + "; ".join(failures)
            )
        for miss_index, (index, key, _mapping, _layer_name) in enumerate(misses):
            result = pending[miss_index]
            self._cache_store(key, result)
            results[index] = result
        return results  # type: ignore[return-value]

    # -- fleet operations -------------------------------------------------------
    def health(self) -> Dict:
        """Probe every shard; returns ``{shard_name: payload_or_None}``."""
        return self.router.health_check()

    def stats(self) -> Dict:
        merged = super().stats()
        merged["fleet"] = self.router.stats()
        return merged

    # -- pickling ---------------------------------------------------------------
    def __getstate__(self) -> Dict:
        state = super().__getstate__()
        del state["_executor"]
        del state["_executor_lock"]
        return state

    def __setstate__(self, state: Dict) -> None:
        super().__setstate__(state)
        self._executor = None
        self._executor_lock = threading.Lock()
