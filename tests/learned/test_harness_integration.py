"""Harness wiring: parity, provenance, resume and sample recording.

The acceptance bar of the learned subsystem: with screening disabled a
fixed-seed co-search is bit-identical to a build without the subsystem,
and with screening enabled every Pareto point is still exact analytical
PPA (screened-out candidates can never reach a front).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TrackingError
from repro.experiments.harness import build_optimizer, run_method
from repro.learned import LearnedCostModel, ScreeningPPAEngine, build_dataset
from repro.tracking import RunStore, read_events, resume_run

WORKLOAD = "mobilenet"


def _points(result):
    return sorted(map(tuple, result.pareto.points.tolist()))


@pytest.fixture(scope="module")
def recorded_run(tmp_path_factory):
    """A tracked smoke run that records engine samples, plus its store."""
    runs_dir = tmp_path_factory.mktemp("runs")
    result = run_method(
        "unico", "edge", WORKLOAD, "smoke", seed=11,
        run_store=runs_dir, record_samples=True, eval_batch_size=8,
    )
    return RunStore(runs_dir), result


@pytest.fixture(scope="module")
def trained_model(recorded_run, tmp_path_factory):
    store, _result = recorded_run
    dataset = build_dataset(store)
    model = LearnedCostModel.fit(
        dataset.x, dataset.latency_s, dataset.energy_j, dataset.feasible,
        seed=0, hidden=16, ensemble=2, epochs=80,
    )
    path = tmp_path_factory.mktemp("model") / "model.json"
    model.save(path)
    return model, path


class TestParity:
    def test_no_screen_run_is_bit_identical(self):
        plain = run_method("unico", "edge", WORKLOAD, "smoke", seed=11)
        unscreened = run_method(
            "unico", "edge", WORKLOAD, "smoke", seed=11, screen=None
        )
        assert _points(plain) == _points(unscreened)
        assert plain.total_time_s == unscreened.total_time_s
        assert "screening" not in unscreened.extras

    def test_wrapper_without_model_is_bit_identical(self):
        plain = run_method("unico", "edge", WORKLOAD, "smoke", seed=11)
        optimizer = build_optimizer("unico", "edge", WORKLOAD, "smoke", seed=11)
        optimizer.engine = ScreeningPPAEngine(optimizer.engine, model=None)
        wrapped = optimizer.optimize()
        assert _points(plain) == _points(wrapped)
        assert plain.total_time_s == wrapped.total_time_s


class TestRecording:
    def test_samples_land_in_journal(self, recorded_run):
        store, result = recorded_run
        run = store.get(result.extras["run_id"])
        scan = read_events(run.journal_path)
        samples = scan.of_type("engine_sample")
        assert len(samples) > 0
        assert run.read_manifest()["record_samples"] is True
        dataset = build_dataset(store)
        assert len(dataset) > 0

    def test_record_samples_requires_journal(self):
        with pytest.raises(ConfigurationError, match="record_samples"):
            run_method(
                "unico", "edge", WORKLOAD, "smoke", seed=11,
                record_samples=True,
            )


class TestScreenedRun:
    def test_screened_run_pareto_is_analytical(
        self, trained_model, tmp_path
    ):
        _model, path = trained_model
        screened = run_method(
            "unico", "edge", WORKLOAD, "smoke", seed=12,
            run_store=tmp_path / "runs", screen=str(path), screen_topk=4,
            eval_batch_size=8,
        )
        stats = screened.extras["screening"]
        assert stats["enabled"] is True
        # every surfaced point is finite exact PPA (screened placeholders
        # are infinite/infeasible and can never reach a front)
        assert np.isfinite(screened.pareto.points).all()
        for entry in screened.timeline:
            if entry.feasible:
                assert np.isfinite(entry.ppa_vector).all()
        # provenance is in the manifest and the journal
        run = RunStore(tmp_path / "runs").get(screened.extras["run_id"])
        manifest = run.read_manifest()
        assert manifest["screen"]["model_path"] == str(path)
        assert manifest["screen"]["model_sha256"]
        events = read_events(run.journal_path).of_type("learned_model")
        assert len(events) == 1
        assert events[0]["model_path"] == str(path)

    def test_screening_saves_analytical_evals(self, trained_model):
        _model, path = trained_model
        plain = run_method(
            "unico", "edge", WORKLOAD, "smoke", seed=12, eval_batch_size=8
        )
        screened = run_method(
            "unico", "edge", WORKLOAD, "smoke", seed=12,
            screen=str(path), screen_topk=4, eval_batch_size=8,
        )
        saved = screened.extras["screening"]["evals_saved"]
        assert saved > 0
        assert screened.total_engine_queries < plain.total_engine_queries

    def test_loaded_model_object_is_accepted(self, trained_model):
        model, _path = trained_model
        result = run_method(
            "unico", "edge", WORKLOAD, "smoke", seed=12,
            screen=model, screen_topk=4, eval_batch_size=8,
        )
        assert result.extras["screen_model"]["model_path"] is None

    def test_tool_override_reaches_the_search(self):
        result = run_method(
            "unico", "edge", WORKLOAD, "smoke", seed=11, tool="oneloop"
        )
        assert len(result.pareto.points) > 0


class TestScreenedResume:
    def test_resume_restores_the_wrapper(self, trained_model, tmp_path):
        _model, path = trained_model
        screened = run_method(
            "unico", "edge", WORKLOAD, "smoke", seed=12,
            run_store=tmp_path / "runs", screen=str(path), screen_topk=4,
            eval_batch_size=8,
        )
        run = RunStore(tmp_path / "runs").get(screened.extras["run_id"])
        # drop the final checkpoint: the journal is now one iteration
        # ahead, so resume re-executes the last iteration — through the
        # re-wrapped screening engine
        run.checkpoints()[-1].unlink()
        resumed = resume_run(run)
        assert _points(resumed) == _points(screened)

    def test_resume_refuses_missing_model(self, trained_model, tmp_path):
        import shutil

        model, original = trained_model
        moved = tmp_path / "moved-model.json"
        shutil.copy(original, moved)
        screened = run_method(
            "unico", "edge", WORKLOAD, "smoke", seed=12,
            run_store=tmp_path / "runs", screen=str(moved), screen_topk=4,
            eval_batch_size=8,
        )
        run = RunStore(tmp_path / "runs").get(screened.extras["run_id"])
        run.checkpoints()[-1].unlink()
        moved.unlink()
        with pytest.raises(TrackingError, match="no longer exists"):
            resume_run(run)
