"""Fleet supervisor: replica lifecycle, health, graceful SIGTERM stops."""

import json
from urllib.request import urlopen

import pytest

from repro.errors import ConfigurationError
from repro.fleet.server import FleetSupervisor, ReplicaSpec, build_replica_engine

SPEC = ReplicaSpec(network="mobilenetv3_small", cache_capacity=256)


class TestSpec:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicaSpec(network="mobilenetv3_small", engine="verilog")

    def test_build_maestro_engine(self):
        engine = build_replica_engine(SPEC)
        assert engine.network.name == "mobilenetv3_small"
        assert engine.cache_capacity == 256

    def test_build_ascend_engine(self):
        spec = ReplicaSpec(network="mobilenetv3_small", engine="ascend")
        engine = build_replica_engine(spec)
        assert engine.network.name == "mobilenetv3_small"


class TestLifecycle:
    def test_replicas_rejected_below_one(self):
        with pytest.raises(ConfigurationError):
            FleetSupervisor(SPEC, replicas=0)

    def test_start_serves_and_stop_kills(self):
        with FleetSupervisor(SPEC, replicas=2) as fleet:
            assert len(fleet.urls) == 2
            assert len(set(fleet.urls)) == 2
            for url in fleet.urls:
                with urlopen(f"{url}/health", timeout=5.0) as response:
                    payload = json.loads(response.read())
                assert payload["status"] == "ok"
                assert payload["workload"] == "mobilenetv3_small"
            rows = fleet.status()
            assert all(row["alive"] for row in rows)
            assert all(row["health"]["status"] == "ok" for row in rows)
            procs = list(fleet._procs)
        # context exit stopped everything
        assert fleet.urls == []
        assert all(not proc.is_alive() for proc in procs)

    def test_sigterm_is_a_clean_exit(self):
        """SIGTERM runs the drain path, not a hard kill (exitcode 0)."""
        fleet = FleetSupervisor(SPEC, replicas=2).start()
        try:
            proc = fleet._procs[0]
            fleet.terminate_replica(0)
            proc.join(timeout=10.0)
            assert not proc.is_alive()
            assert proc.exitcode == 0
            rows = fleet.status()
            assert rows[0]["alive"] is False
            assert rows[1]["alive"] is True
        finally:
            fleet.stop()

    def test_double_start_rejected(self):
        fleet = FleetSupervisor(SPEC, replicas=1).start()
        try:
            with pytest.raises(ConfigurationError):
                fleet.start()
        finally:
            fleet.stop()

    def test_fixed_ports_honored(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        spec = ReplicaSpec(network="mobilenetv3_small", ports=(port,))
        with FleetSupervisor(spec, replicas=1) as fleet:
            assert fleet.urls[0].endswith(f":{port}")
