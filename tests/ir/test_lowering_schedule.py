"""Tests for lowering/raising between schedules and mappings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.ir import (
    LoopNest,
    Schedule,
    gemm_domain,
    lower_to_mapping,
    raise_from_mapping,
)
from repro.mapping.gemm_mapping import GemmMapping, GemmMappingSpace
from repro.workloads.layers import GemmShape


def _scheduled_nest(m=64, n=48, k=32):
    """Hand-schedule a GEMM: tile m/n, spatially bind tiles, unroll k."""
    schedule = Schedule(LoopNest.from_domain(gemm_domain(m, n, k)))
    schedule.split("m.0", 16).split("n.0", 8).split("k.0", 16)
    schedule.reorder(["n.0", "m.0", "k.0", "m.1", "n.1", "k.1"])
    schedule.bind("m.1", "spatial_x")
    schedule.bind("n.1", "spatial_y")
    schedule.split("k.1", 4)
    schedule.bind("k.2", "unroll")
    return schedule


class TestLowering:
    def test_hand_schedule_lowers(self):
        schedule = _scheduled_nest()
        mapping = lower_to_mapping(schedule.nest)
        assert mapping.tile_m == 16
        assert mapping.tile_n == 8
        assert mapping.tile_k == 16
        assert mapping.loop_order == ("n", "m", "k")
        assert mapping.spatial == "mn"
        assert mapping.unroll == 4

    def test_missing_spatial_rejected(self):
        nest = LoopNest.from_domain(gemm_domain(8, 8, 8))
        with pytest.raises(MappingError):
            lower_to_mapping(nest)

    def test_spatial_on_k_rejected(self):
        nest = (
            LoopNest.from_domain(gemm_domain(8, 8, 8))
            .bind("k.0", "spatial_x")
            .bind("m.0", "spatial_y")
        )
        with pytest.raises(MappingError):
            lower_to_mapping(nest)

    def test_two_unrolls_rejected(self):
        schedule = _scheduled_nest()
        nest = schedule.nest.split("k.0", 2).bind("k.3", "unroll")
        with pytest.raises(MappingError):
            lower_to_mapping(nest)

    def test_nm_spatial_mode(self):
        schedule = Schedule(LoopNest.from_domain(gemm_domain(32, 32, 8)))
        schedule.split("m.0", 8).split("n.0", 8)
        schedule.reorder(["m.0", "n.0", "k.0", "n.1", "m.1"])
        schedule.bind("n.1", "spatial_x").bind("m.1", "spatial_y")
        mapping = lower_to_mapping(schedule.nest)
        assert mapping.spatial == "nm"


class TestRoundTrip:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=40)
    def test_raise_then_lower_is_identity(self, seed):
        shape = GemmShape(m=96, n=360, k=48)
        space = GemmMappingSpace(shape)
        mapping = space.sample(seed=seed)
        nest = raise_from_mapping(mapping, shape.m, shape.n, shape.k)
        assert nest.is_equivalent_to_domain()
        recovered = lower_to_mapping(nest)
        assert recovered.tile_m == mapping.tile_m
        assert recovered.tile_n == mapping.tile_n
        assert recovered.tile_k == mapping.tile_k
        assert recovered.loop_order == mapping.loop_order
        assert recovered.spatial == mapping.spatial
        # unroll degrades to 1 only when it does not divide the k tile
        if mapping.tile_k % mapping.unroll == 0:
            assert recovered.unroll == mapping.unroll

    def test_non_dividing_tiles_rejected(self):
        with pytest.raises(MappingError):
            raise_from_mapping(GemmMapping(7, 8, 8), 64, 64, 64)


class TestSchedule:
    def test_trace_replay_matches(self):
        schedule = _scheduled_nest()
        replayed = schedule.replay()
        assert replayed == schedule.nest

    def test_serialization_roundtrip(self):
        schedule = _scheduled_nest()
        restored = Schedule.from_dict(schedule.to_dict())
        assert restored.nest == schedule.nest
        assert lower_to_mapping(restored.nest) == lower_to_mapping(schedule.nest)

    def test_trace_records_every_step(self):
        schedule = _scheduled_nest()
        kinds = [step.kind for step in schedule.trace]
        assert kinds.count("split") == 4
        assert kinds.count("bind") == 3
        assert kinds.count("reorder") == 1
