"""Tests for the hub's single-worker run scheduler."""

import json
import time

import pytest

from repro.errors import ConfigurationError, TrackingError
from repro.hub.scheduler import RunScheduler
from repro.tracking import RunStore, read_events


SMOKE_SPEC = {
    "method": "unico",
    "scenario": "edge",
    "workload": "fsrcnn_120x320",
    "preset": "smoke",
    "seed": 0,
}


def wait_for_status(run, statuses, timeout_s=90.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = run.read_manifest().get("status")
        if status in statuses:
            return status
        time.sleep(0.1)
    raise AssertionError(
        f"run never reached {statuses}; stuck at "
        f"{run.read_manifest().get('status')!r}"
    )


class TestSubmitValidation:
    """Bad specs must fail at submit time (HTTP 400), not as failed runs."""

    def setup_method(self):
        self.store = None

    def make_scheduler(self, tmp_path):
        return RunScheduler(RunStore(tmp_path / "runs"))

    def test_unknown_field_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown run-spec"):
            self.make_scheduler(tmp_path).submit(
                dict(SMOKE_SPEC, bogus_field=1)
            )

    def test_missing_required_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="lacks"):
            self.make_scheduler(tmp_path).submit({"method": "unico"})

    def test_unknown_method_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown method"):
            self.make_scheduler(tmp_path).submit(
                dict(SMOKE_SPEC, method="grad_student_descent")
            )

    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            self.make_scheduler(tmp_path).submit(
                dict(SMOKE_SPEC, scenario="A")
            )

    def test_unknown_workload_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            self.make_scheduler(tmp_path).submit(
                dict(SMOKE_SPEC, workload="tiny_cnn")
            )

    def test_manifest_carries_resume_keys(self, tmp_path):
        """A hub-submitted manifest must be resumable by the existing
        resume path: full preset params, not just a preset name."""
        scheduler = self.make_scheduler(tmp_path)
        run_id = scheduler.submit(dict(SMOKE_SPEC))
        manifest = scheduler.store.get(run_id).read_manifest()
        assert manifest["status"] == "queued"
        assert manifest["submitted_via"] == "hub"
        assert manifest["preset"] == "smoke"
        assert isinstance(manifest["preset_params"], dict)
        for key in ("method", "scenario", "workload", "seed"):
            assert key in manifest


class TestExecution:
    def test_smoke_run_completes_with_journal(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        with RunScheduler(store) as scheduler:
            run_id = scheduler.submit(dict(SMOKE_SPEC))
            run = store.get(run_id)
            status = wait_for_status(run, ("completed", "failed"))
        assert status == "completed"
        scan = read_events(run.journal_path)
        types = [e["type"] for e in scan.events]
        assert types[0] == "run_start"
        assert types[-1] == "run_end"
        assert scheduler.metrics.counter(
            "hub_runs_completed_total"
        ).value == 1

    def test_fifo_order(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        with RunScheduler(store) as scheduler:
            first = scheduler.submit(dict(SMOKE_SPEC, run_id="run-a"))
            second = scheduler.submit(dict(SMOKE_SPEC, seed=1,
                                           run_id="run-b"))
            wait_for_status(store.get(second), ("completed", "failed"))
        a_end = read_events(store.get(first).journal_path).events[-1]
        b_start = read_events(store.get(second).journal_path).events[0]
        assert a_end["wall_time"] <= b_start["wall_time"]


class TestCancellation:
    def test_cancel_queued_is_immediate(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        scheduler = RunScheduler(store)  # not started: stays queued
        run_id = scheduler.submit(dict(SMOKE_SPEC))
        assert scheduler.cancel(run_id) == "cancelled"
        assert store.get(run_id).read_manifest()["status"] == "cancelled"
        assert scheduler.state()["queued"] == []

    def test_cancel_terminal_run_rejected(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        scheduler = RunScheduler(store)
        run_id = scheduler.submit(dict(SMOKE_SPEC))
        scheduler.cancel(run_id)
        with pytest.raises(TrackingError, match="not cancellable"):
            scheduler.cancel(run_id)

    def test_cancel_running_terminates_worker(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        # the "paper" preset runs long enough to be caught mid-flight
        with RunScheduler(store) as scheduler:
            run_id = scheduler.submit(
                dict(SMOKE_SPEC, preset="paper")
            )
            run = store.get(run_id)
            wait_for_status(run, ("running",))
            assert scheduler.cancel(run_id) == "cancelling"
            status = wait_for_status(run, ("cancelled", "failed"))
        assert status == "cancelled"
        manifest = run.read_manifest()
        assert manifest["interrupted"] is True

    def test_cancel_works_under_parent_signal_handlers(self, tmp_path):
        """`repro hub serve` installs SIGTERM/SIGINT drain handlers; a
        forked run child inherits them, so it must reset to the defaults
        or cancellation's SIGTERM is swallowed and the run completes."""
        import signal

        previous = signal.signal(signal.SIGTERM, lambda *_: None)
        try:
            store = RunStore(tmp_path / "runs")
            with RunScheduler(store) as scheduler:
                run_id = scheduler.submit(dict(SMOKE_SPEC, preset="paper"))
                run = store.get(run_id)
                wait_for_status(run, ("running",))
                assert scheduler.cancel(run_id) == "cancelling"
                status = wait_for_status(run, ("cancelled", "failed"))
            assert status == "cancelled"
        finally:
            signal.signal(signal.SIGTERM, previous)


class TestReconcile:
    def test_orphaned_running_marked_failed(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        run = store.create_run(dict(SMOKE_SPEC, status="running"))
        touched = RunScheduler(store).reconcile()
        assert run.run_id in touched
        manifest = run.read_manifest()
        assert manifest["status"] == "failed"
        assert manifest["interrupted"] is True
        assert manifest["resumable"] is False  # no checkpoint written

    def test_orphaned_hub_queued_requeued(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        run = store.create_run(
            dict(SMOKE_SPEC, status="queued", submitted_via="hub")
        )
        scheduler = RunScheduler(store)
        assert run.run_id in scheduler.reconcile()
        assert run.run_id in scheduler.state()["queued"]

    def test_cli_queued_left_alone(self, tmp_path):
        """Only hub-submitted queued runs are requeued; a foreign manifest
        in the store is not the hub's to execute."""
        store = RunStore(tmp_path / "runs")
        run = store.create_run(dict(SMOKE_SPEC, status="queued"))
        scheduler = RunScheduler(store)
        assert scheduler.reconcile() == []
        assert run.run_id not in scheduler.state()["queued"]


class TestResume:
    def test_completed_run_not_resumable(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        with RunScheduler(store) as scheduler:
            run_id = scheduler.submit(dict(SMOKE_SPEC))
            wait_for_status(store.get(run_id), ("completed", "failed"))
            with pytest.raises(TrackingError, match="already completed"):
                scheduler.submit_resume(run_id)

    def test_interrupted_run_resumes_to_completion(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        with RunScheduler(store) as scheduler:
            run_id = scheduler.submit(dict(SMOKE_SPEC, preset="paper"))
            run = store.get(run_id)
            wait_for_status(run, ("running",))
            # give the child time to write at least one checkpoint
            deadline = time.monotonic() + 60
            while (run.latest_checkpoint() is None
                   and time.monotonic() < deadline):
                time.sleep(0.1)
            assert run.latest_checkpoint() is not None
            scheduler.cancel(run_id)
            wait_for_status(run, ("cancelled",))
            assert run.read_manifest()["resumable"] is True
            scheduler.submit_resume(run_id)
            status = wait_for_status(run, ("completed", "failed"),
                                     timeout_s=300.0)
        assert status == "completed"
        events = read_events(run.journal_path).events
        assert "resume" in {e["type"] for e in events}
        assert events[-1]["type"] == "run_end"
