"""Ascend-like commercial accelerator configuration and design space.

Section 4.1 (Ascend-like platform): the search space covers the buffer sizes
and bank groups of each of L0A, L0B, L0C, L1, the vector (unified) buffer and
the parameter buffer, the ICache size, and the M/N/K cube dimensions —
about 1e9 configurations.

The memory hierarchy modeled (after Liao et al., HPCA'21 DaVinci):

    DDR -> L1 (big on-chip) -> { L0A (left matrix), L0B (right matrix) }
                                -> 3D cube (M x K x N MACs) -> L0C
    L0C -> vector unit (unified buffer) -> out
    parameter buffer / ICache feed the scalar pipeline.

The expert-tuned default configuration (``default_ascend_config``) is the
baseline that Fig. 11 compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Tuple

from repro.errors import ConfigurationError
from repro.hw.space import Dimension, DiscreteDesignSpace

ASCEND_AREA_CAP_MM2 = 200.0  # edge-device chip area constraint of Section 4.6


@dataclass(frozen=True)
class AscendHWConfig:
    """One Ascend-like core configuration.

    Buffer sizes are in KB; bank groups control double/quad buffering of the
    tile pipeline; ``cube_m/k/n`` are the 3D-cube MAC array dimensions (the
    cube performs an (m x k) @ (k x n) matmul per cycle).
    """

    l0a_kb: int
    l0b_kb: int
    l0c_kb: int
    l1_kb: int
    ub_kb: int  # unified (vector) buffer
    pb_kb: int  # parameter buffer
    icache_kb: int
    l0a_banks: int
    l0b_banks: int
    l0c_banks: int
    cube_m: int
    cube_k: int
    cube_n: int

    def __post_init__(self) -> None:
        sizes = {
            "l0a_kb": self.l0a_kb,
            "l0b_kb": self.l0b_kb,
            "l0c_kb": self.l0c_kb,
            "l1_kb": self.l1_kb,
            "ub_kb": self.ub_kb,
            "pb_kb": self.pb_kb,
            "icache_kb": self.icache_kb,
        }
        for field_name, value in sizes.items():
            if value < 1:
                raise ConfigurationError(f"{field_name} must be >= 1 KB, got {value}")
        for field_name, value in (
            ("l0a_banks", self.l0a_banks),
            ("l0b_banks", self.l0b_banks),
            ("l0c_banks", self.l0c_banks),
        ):
            if value < 1:
                raise ConfigurationError(f"{field_name} must be >= 1, got {value}")
        for field_name, value in (
            ("cube_m", self.cube_m),
            ("cube_k", self.cube_k),
            ("cube_n", self.cube_n),
        ):
            if value < 1:
                raise ConfigurationError(f"{field_name} must be >= 1, got {value}")

    @property
    def cube_macs_per_cycle(self) -> int:
        return self.cube_m * self.cube_k * self.cube_n

    @property
    def total_sram_kb(self) -> int:
        return (
            self.l0a_kb
            + self.l0b_kb
            + self.l0c_kb
            + self.l1_kb
            + self.ub_kb
            + self.pb_kb
            + self.icache_kb
        )

    def short_name(self) -> str:
        return (
            f"cube{self.cube_m}x{self.cube_k}x{self.cube_n}_"
            f"l0a{self.l0a_kb}_l0b{self.l0b_kb}_l0c{self.l0c_kb}_l1-{self.l1_kb}"
        )

    def with_updates(self, **kwargs: Any) -> "AscendHWConfig":
        return replace(self, **kwargs)


_BUFFER_GRID: Tuple[int, ...] = (8, 16, 32, 48, 64, 96, 128, 192, 256, 384, 512)
_L1_GRID: Tuple[int, ...] = (256, 384, 512, 768, 1024, 1536, 2048)
_SMALL_GRID: Tuple[int, ...] = (8, 16, 32, 64, 128)
_BANKS: Tuple[int, ...] = (1, 2, 4)
_CUBE_GRID: Tuple[int, ...] = (8, 16, 32)


class AscendDesignSpace(DiscreteDesignSpace[AscendHWConfig]):
    """Design space over :class:`AscendHWConfig` (~1e9 configurations)."""

    def __init__(self) -> None:
        dims = (
            Dimension("l0a_kb", _BUFFER_GRID),
            Dimension("l0b_kb", _BUFFER_GRID),
            Dimension("l0c_kb", _BUFFER_GRID),
            Dimension("l1_kb", _L1_GRID),
            Dimension("ub_kb", _BUFFER_GRID),
            Dimension("pb_kb", _SMALL_GRID),
            Dimension("icache_kb", _SMALL_GRID),
            Dimension("l0a_banks", _BANKS),
            Dimension("l0b_banks", _BANKS),
            Dimension("l0c_banks", _BANKS),
            Dimension("cube_m", _CUBE_GRID),
            Dimension("cube_k", _CUBE_GRID),
            Dimension("cube_n", _CUBE_GRID),
        )
        super().__init__("ascend-like", dims)

    def to_config(self, assignment: Dict[str, Any]) -> AscendHWConfig:
        return AscendHWConfig(**assignment)

    def from_config(self, config: AscendHWConfig) -> Dict[str, Any]:
        return {
            "l0a_kb": config.l0a_kb,
            "l0b_kb": config.l0b_kb,
            "l0c_kb": config.l0c_kb,
            "l1_kb": config.l1_kb,
            "ub_kb": config.ub_kb,
            "pb_kb": config.pb_kb,
            "icache_kb": config.icache_kb,
            "l0a_banks": config.l0a_banks,
            "l0b_banks": config.l0b_banks,
            "l0c_banks": config.l0c_banks,
            "cube_m": config.cube_m,
            "cube_k": config.cube_k,
            "cube_n": config.cube_n,
        }


def ascend_design_space() -> AscendDesignSpace:
    """The Ascend-like design space of Section 4.1."""
    return AscendDesignSpace()


def default_ascend_config() -> AscendHWConfig:
    """The expert-selected default architecture (Fig. 11 baseline).

    Sizes follow the DaVinci convention of setting L0 buffers directly from
    the cube parameters (the paper notes "the default values of these are
    simply set by engineers by referring to cube parameters").
    """
    return AscendHWConfig(
        l0a_kb=64,
        l0b_kb=64,
        l0c_kb=256,
        l1_kb=1024,
        ub_kb=256,
        pb_kb=64,
        icache_kb=32,
        l0a_banks=2,
        l0b_banks=2,
        l0c_banks=2,
        cube_m=16,
        cube_k=16,
        cube_n=16,
    )
