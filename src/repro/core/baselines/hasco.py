"""HASCO-like baseline co-optimizer.

HASCO (Xiao et al., ISCA'21) drives hardware selection with single-point
Bayesian optimization and gives *every* sampled hardware configuration the
full software-mapping search budget — no early stopping.  Section 4.5
characterizes it as "ChampionUpdate without SH", which is exactly what this
class implements:

* one hardware candidate per BO iteration (qParEGO EI with a fresh random
  weight vector, trained on all completed observations),
* a full ``full_budget`` SW mapping search per candidate,
* serial execution (evaluations charge the simulated clock one by one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.base import CoOptimizer, CoSearchResult
from repro.optim.mobo import MOBOSampler
from repro.optim.pareto import ObjectiveNormalizer


@dataclass
class HascoConfig:
    """Knobs of the HASCO-like baseline."""

    max_candidates: int = 60
    full_budget: int = 300
    bo_overhead_s: float = 2.0
    time_budget_s: Optional[float] = None
    min_observations: int = 8
    pool_size: int = 256


class HascoBaseline(CoOptimizer):
    """Single-point BO over hardware with full-budget SW search."""

    method_name = "hasco"

    def __init__(self, space, network, engine, config: Optional[HascoConfig] = None, **kwargs):
        super().__init__(space, network, engine, include_robustness=False, **kwargs)
        self.config = config or HascoConfig()
        self.engine.charge_clock = False
        self.num_objectives = 3
        self.sampler = MOBOSampler(
            space,
            self.num_objectives,
            seed=self.seeds.generator("hasco-bo"),
            pool_size=self.config.pool_size,
            min_observations=self.config.min_observations,
        )
        self.normalizer = ObjectiveNormalizer(self.num_objectives)
        self.observed_configs: List = []
        self.observed_objectives: List[np.ndarray] = []

    def _normalized(self) -> np.ndarray:
        if not self.observed_objectives:
            return np.zeros((0, self.num_objectives))
        return np.vstack(
            [self.normalizer.transform(y) for y in self.observed_objectives]
        )

    def optimize(self) -> CoSearchResult:
        config = self.config
        for _candidate_index in range(config.max_candidates):
            if (
                config.time_budget_s is not None
                and self.clock.now_s >= config.time_budget_s
            ):
                break
            incumbents = [design.hw for design in self.pareto.items]
            batch = self.sampler.suggest_batch(
                self.observed_configs,
                self._normalized(),
                batch_size=1,
                incumbents=incumbents,
            )
            self.clock.advance(config.bo_overhead_s, label="bo")
            if not batch:
                break
            hw = batch[0]
            trial = self.new_trial(hw)
            trial.run(config.full_budget)
            self.clock.advance(
                trial.queries_spent * self.engine.eval_cost_s, label="sw-search"
            )
            evaluation = self.finish_candidate(trial)
            self.normalizer.observe(evaluation.objectives)
            self.observed_configs.append(hw)
            self.observed_objectives.append(evaluation.objectives)
        return self.make_result(
            extras={"candidates": len(self.observed_configs)}
        )
