"""Vectorized batch version of the MAESTRO-like analytical model.

:func:`analyze_gemm_batch` evaluates B candidate mappings for one
``(hw, shape)`` pair in a single NumPy structure-of-arrays pass instead of
B Python calls to :func:`repro.costmodel.maestro.analyze_gemm`.  The inner
mapping-search loop issues hundreds of thousands of such queries per
co-search, so this is the hot path the ROADMAP's "fast as the hardware
allows" goal targets.

The contract is **exact parity** with the scalar model:

* feasibility decisions and ``infeasible_reason`` strings are identical
  (integer arithmetic, L1 checked before L2);
* latency/energy match the scalar floating-point results bit-for-bit,
  because every expression keeps integer subexpressions exact (int64)
  until the same float operation that converts them in the scalar code,
  and float constants are folded with the scalar code's associativity;
* the returned list is ordered like the input ``mappings``.

Vectorization notes.  At the production batch width (B = 64) NumPy's
per-call dispatch overhead — not element throughput — is the cost that
matters, so the kernel is written to minimize the *number* and the
*per-op cost* of array operations:

* per-candidate attributes come from ``GemmMapping._row`` (precomputed at
  mapping construction) and land in one ``(B, 6)`` int64 table via
  ``np.fromiter`` over the flattened rows, which skips the
  nested-sequence protocol of ``np.array(list-of-tuples)``;
* ``loop_order`` is a permutation of ``(m, n, k)``, so each operand's
  classic reload factor depends only on the *innermost* loop: one
  ``(B, 3)`` select of "1 where that dim is innermost, else its trip
  count" yields all three factors as column views (operand X's factor is
  the column of the dimension X excludes) — no per-operand scan;
* Python scalars bound into array ops go through NumPy 2's weak-promotion
  path, which costs nearly as much as the 64-element op itself; constants
  are therefore pre-wrapped as 0-d/1-d arrays, cached per ``Technology``
  and per PE-array geometry where they are call-invariant;
* scalar-only subexpressions (``fill = pe_x + pe_y`` under either spatial
  choice, the energy base term, DRAM/NoC byte constants) are computed once
  in Python floats.
"""

from __future__ import annotations

from itertools import chain
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from repro.costmodel.results import LayerPPA
from repro.costmodel.technology import DEFAULT_TECHNOLOGY, Technology
from repro.hw.spatial import SpatialHWConfig
from repro.workloads.layers import GemmShape

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.mapping.gemm_mapping import GemmMapping

#: 0-d arrays: NumPy 2 binds an array-op Python scalar through the weak
#: promotion path on every call, which costs almost as much again as the
#: 64-element op itself; pre-wrapped 0-d operands skip it.
_STARTUP_CYCLES = np.array(1000.0)
_ONE = np.array(1, dtype=np.int64)
_ONE_F = np.array(1.0)
_QUARTER = np.array(0.25)

#: GEMM dimension codes m=0, n=1, k=2 (see ``gemm_mapping.DIM_INDEX``)
_ALL_CODES = np.array([0, 1, 2], dtype=np.int64)

#: per-Technology 0-d constants:
#: (two_op, acc_b, dram_bw, frequency, dram_energy)
_TECH_CONSTS: Dict[Technology, Tuple[np.ndarray, ...]] = {}

#: per-(pe_x, pe_y) operand arrays: spatial "mn" -> (pe_x, pe_y),
#: "nm" -> (pe_y, pe_x)
_PE_CONSTS: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}

#: per-(shape, tech) constants (both keys are frozen dataclasses):
#: (dims, dims - 1, A/B DRAM byte constants, c0, c2, c0 - c2,
#:  base energy, register bytes / 4)
_SHAPE_CONSTS: Dict[Tuple[GemmShape, Technology], Tuple] = {}

#: per-(hw, tech) 0-d constants: (fill cycles, NoC denominator,
#: L1 energy/byte, L2 energy/byte).  The energy-per-byte methods scale
#: with capacity**0.25 — worth caching, the search loop re-queries one
#: hw config thousands of times.
_HW_CONSTS: Dict[Tuple[SpatialHWConfig, Technology], Tuple[np.ndarray, ...]] = {}


def _tech_consts(tech: Technology) -> Tuple[np.ndarray, ...]:
    consts = _TECH_CONSTS.get(tech)
    if consts is None:
        consts = _TECH_CONSTS[tech] = (
            np.array(2 * tech.operand_bytes, dtype=np.int64),
            np.array(tech.accum_bytes, dtype=np.int64),
            np.array(tech.dram_bw_bytes_per_cycle),
            np.array(tech.frequency_hz),
            np.array(tech.dram_energy_per_byte_j),
        )
    return consts


def _pe_consts(px: int, py: int) -> Tuple[np.ndarray, np.ndarray]:
    consts = _PE_CONSTS.get((px, py))
    if consts is None:
        consts = _PE_CONSTS[(px, py)] = (
            np.array((px, py), dtype=np.int64),
            np.array((py, px), dtype=np.int64),
        )
    return consts


def _hw_consts(
    hw: SpatialHWConfig, tech: Technology
) -> Tuple[np.ndarray, ...]:
    consts = _HW_CONSTS.get((hw, tech))
    if consts is None:
        bank_boost = min(hw.l1_banks, 2) / 2.0 + 0.5
        consts = _HW_CONSTS[(hw, tech)] = (
            np.array(float(hw.pe_x + hw.pe_y)),
            np.array(hw.noc_bw * bank_boost),
            np.array(tech.l1_energy_per_byte(hw.l1_bytes)),
            np.array(tech.l2_energy_per_byte(hw.l2_bytes)),
        )
    return consts


def _shape_consts(shape: GemmShape, tech: Technology) -> Tuple:
    consts = _SHAPE_CONSTS.get((shape, tech))
    if consts is None:
        op_b = tech.operand_bytes
        c0 = shape.m * shape.n * op_b
        c2 = 2.0 * shape.m * shape.n * tech.accum_bytes
        macs = shape.macs
        reg_bytes = 2.0 * macs * op_b
        dims = np.array((shape.m, shape.n, shape.k), dtype=np.int64)
        consts = _SHAPE_CONSTS[(shape, tech)] = (
            dims,
            dims - _ONE,
            np.array(shape.m * shape.k * op_b, dtype=np.int64),
            np.array(shape.k * shape.n * op_b, dtype=np.int64),
            c0,
            c2,
            c0 - c2,
            np.array(
                macs * tech.mac_energy_j
                + reg_bytes * tech.reg_energy_per_byte_j
            ),
            np.array(reg_bytes / 4.0),
        )
    return consts


class BatchSoA:
    """Structure-of-arrays view of B candidate mappings on one (hw, shape).

    Holds everything the scalar models derive before their traffic
    analysis: clipped tiles, PE-array sub-tiles, capacity needs, DRAM-level
    trip counts and the per-candidate innermost-loop code.  Shared by the
    MAESTRO-like and the Timeloop-like batch kernels.  ``l1_bad`` and
    ``l2_bad`` are the raw capacity comparisons; the scalar models'
    L1-before-L2 reason precedence is applied in :meth:`build_results`.
    Requires a non-empty ``mappings`` sequence of :class:`GemmMapping`.
    """

    __slots__ = (
        "size", "tm", "tn", "tk", "unroll", "inner_code", "sub_m", "sub_n",
        "smsn", "tmtn", "l1_need", "l2_need", "l1_bad", "l2_bad",
        "trips", "trips_m", "trips_n", "trips_k", "trips_mn", "n_tiles",
    )

    def __init__(
        self,
        hw: SpatialHWConfig,
        mappings: Sequence["GemmMapping"],
        shape: GemmShape,
        tech: Technology,
    ):
        self.size = size = len(mappings)
        # rows precomputed at GemmMapping construction:
        # (tile_m, tile_n, tile_k, unroll, spatial == "mn", innermost code)
        columns = np.fromiter(
            chain.from_iterable([m._row for m in mappings]),
            np.int64,
            count=size * 6,
        ).reshape(size, 6)
        # tiles can never exceed the problem dimensions
        dims, dims1 = _shape_consts(shape, tech)[:2]
        clipped = np.minimum(columns[:, 0:3], dims)
        self.tm = tm = clipped[:, 0]
        self.tn = tn = clipped[:, 1]
        self.tk = tk = clipped[:, 2]
        self.unroll = columns[:, 3]
        self.inner_code = columns[:, 5]

        # (pe_m, pe_n) under each candidate's spatial choice.  The ceil
        # divisions run per dimension: 1-D ops on B elements dispatch
        # ~4x cheaper than the equivalent (B, 2) broadcast ops.
        pe_mn, pe_nm = _pe_consts(hw.pe_x, hw.pe_y)
        pe = np.where(columns[:, 4:5], pe_mn, pe_nm)
        pe_m = pe[:, 0]
        pe_n = pe[:, 1]
        self.sub_m = sub_m = (tm + (pe_m - _ONE)) // pe_m
        self.sub_n = sub_n = (tn + (pe_n - _ONE)) // pe_n

        two_op, acc_b = _tech_consts(tech)[:2]
        self.smsn = smsn = sub_m * sub_n
        self.tmtn = tmtn = tm * tn
        self.l1_need = tk * (sub_m + sub_n) * two_op + smsn * acc_b
        self.l2_need = tk * (tm + tn) * two_op + tmtn * acc_b
        self.l1_bad = self.l1_need > hw.l1_bytes
        self.l2_bad = self.l2_need > hw.l2_bytes

        self.trips = trips = (clipped + dims1) // clipped
        self.trips_m = trips[:, 0]
        self.trips_n = trips[:, 1]
        self.trips_k = trips[:, 2]
        self.trips_mn = trips_mn = self.trips_m * self.trips_n
        self.n_tiles = trips_mn * self.trips_k

    def reload_matrix(self) -> np.ndarray:
        """(B, 3) per-dimension select: 1 where that dimension's loop is
        innermost, else its DRAM-level trip count.

        See ``maestro._reload_factor``: with ``loop_order`` a permutation
        of (m, n, k), a two-dimension operand excludes exactly one loop;
        its reload factor is that loop's trip count unless the excluded
        loop is innermost, where it is 1.  Operand X's factor is therefore
        the column of the dimension X excludes: A(m,k) -> column n,
        B(k,n) -> column m, C(m,n) -> column k.
        """
        return np.where(
            self.inner_code[:, None] == _ALL_CODES, _ONE, self.trips
        )

    def reload_factors(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Classic reload factors for operands A(m,k), B(k,n), C(m,n)."""
        exc = self.reload_matrix()
        return exc[:, 1], exc[:, 0], exc[:, 2]

    def build_results(
        self,
        hw: SpatialHWConfig,
        latency_s: np.ndarray,
        energy_j: np.ndarray,
        compute_cycles: np.ndarray,
        noc_cycles: np.ndarray,
        dram_cycles: np.ndarray,
        dram_bytes: np.ndarray,
    ) -> List[LayerPPA]:
        """Assemble per-candidate :class:`LayerPPA` objects in input order.

        Feasible results bypass the frozen-dataclass ``__init__`` (one
        ``object.__setattr__`` per field) by installing a ready instance
        ``__dict__`` — ~3x cheaper, and this runs once per candidate on
        the search hot path.  Fields whose value equals the dataclass
        default are omitted from the instance dict: attribute lookup falls
        back to the class-level default (dataclass defaults are class
        attributes), so equality, repr, ``dataclasses.asdict`` and pickling
        all see the same values as a normally-constructed instance.  The
        all-feasible fast path skips the per-item flag checks entirely.
        """
        # bulk ndarray -> python-float conversion: one C call per column
        # instead of one float() per cell
        rows = zip(
            latency_s.tolist(), energy_j.tolist(), compute_cycles.tolist(),
            noc_cycles.tolist(), dram_cycles.tolist(), dram_bytes.tolist(),
        )
        new = object.__new__
        put = object.__setattr__
        results: List[LayerPPA] = []
        append = results.append
        if not (self.l1_bad.any() or self.l2_bad.any()):
            for lat, en, co, no, dr, vol in rows:
                r = new(LayerPPA)
                put(r, "__dict__", {
                    "latency_s": lat, "energy_j": en,
                    "compute_cycles": co, "noc_cycles": no,
                    "dram_cycles": dr, "dram_bytes": vol,
                })
                append(r)
            return results
        l1_bad = self.l1_bad.tolist()
        l2_bad = self.l2_bad.tolist()
        l1_need = self.l1_need.tolist()
        l2_need = self.l2_need.tolist()
        inf = float("inf")
        for i, (lat, en, co, no, dr, vol) in enumerate(rows):
            if l1_bad[i]:
                reason = (
                    f"L1 overflow: need {l1_need[i]} B per PE, "
                    f"have {hw.l1_bytes} B"
                )
            elif l2_bad[i]:
                reason = (
                    f"L2 overflow: need {l2_need[i]} B, have {hw.l2_bytes} B"
                )
            else:
                r = new(LayerPPA)
                put(r, "__dict__", {
                    "latency_s": lat, "energy_j": en,
                    "compute_cycles": co, "noc_cycles": no,
                    "dram_cycles": dr, "dram_bytes": vol,
                })
                append(r)
                continue
            r = new(LayerPPA)
            put(r, "__dict__", {
                "latency_s": inf, "energy_j": inf, "feasible": False,
                "infeasible_reason": reason,
            })
            append(r)
        return results


def analyze_gemm_batch(
    hw: SpatialHWConfig,
    mappings: Sequence["GemmMapping"],
    shape: GemmShape,
    tech: Technology = DEFAULT_TECHNOLOGY,
) -> List[LayerPPA]:
    """Batch equivalent of :func:`repro.costmodel.maestro.analyze_gemm`.

    Returns one :class:`LayerPPA` per input mapping, in order, each equal
    to what the scalar call would produce.
    """
    if not mappings:
        return []
    soa = BatchSoA(hw, mappings, shape, tech)
    op_b = tech.operand_bytes
    reuse = shape.reuse_penalty
    tm, tn, tk = soa.tm, soa.tn, soa.tk
    n_tiles = soa.n_tiles
    _, acc_b, dram_bw, freq, dram_e = _tech_consts(tech)
    _, _, const_a, const_b, c0, c2, c0_less_c2, base_energy, reg4 = (
        _shape_consts(shape, tech)
    )

    # --- DRAM <-> L2 traffic -------------------------------------------------
    # Integer products stay int64 (exact); x / 1.0 is a bitwise identity in
    # the scalar code, so the division is skipped when reuse_penalty is 1.
    # reload_matrix columns are (B-factor, A-factor, C-factor).
    exc = soa.reload_matrix()
    dram_a = const_a * exc[:, 1]
    dram_b = const_b * exc[:, 0]
    if reuse != 1.0:
        dram_a = dram_a / reuse
        dram_b = dram_b / reuse
    # scalar form: c0 + c2 * (reload_c - 1); distributing c2 saves an array
    # op and stays bit-identical while every intermediate is an exact
    # integer (true for any realistic shape: |values| << 2**53)
    dram_c = c2 * exc[:, 2] + c0_less_c2
    dram_bytes = dram_a + dram_b + dram_c

    # --- L2 <-> L1 (NoC) traffic ---------------------------------------------
    if hw.dataflow == "ws":
        nt_tm = n_tiles * tm
        noc_a = nt_tm * tk
        if op_b != 1:  # x * 1 is an integer identity — skip the array op
            noc_a = noc_a * op_b
        if reuse != 1.0:
            noc_a = noc_a / reuse
        # the scalar ws branch recomputes dram_b's exact expression
        noc_b = dram_b
        noc_c = nt_tm * tn * acc_b
    else:  # output stationary
        noc_a = n_tiles * tm * tk
        noc_b = n_tiles * tk * tn
        if op_b != 1:
            noc_a = noc_a * op_b
            noc_b = noc_b * op_b
        if reuse != 1.0:
            noc_a = noc_a / reuse
            noc_b = noc_b / reuse
        # reduction innermost: accumulator completes inside the PE;
        # otherwise the partial sums refetch, c0 + c2 * (trips_k - 1)
        noc_c = np.where(
            soa.inner_code == 2, c0, c2 * soa.trips_k + c0_less_c2
        )
    noc_bytes = noc_a + noc_b + noc_c

    # --- latency ---------------------------------------------------------------
    # fill = pe_m + pe_n, identical under either spatial choice
    fill, noc_denom, l1_e, l2_e = _hw_consts(hw, tech)
    issue_overhead = _QUARTER / soa.unroll
    compute_cycles = n_tiles * (
        soa.smsn * tk * (_ONE_F + issue_overhead) + fill
    )
    noc_cycles = noc_bytes / noc_denom
    dram_cycles = dram_bytes / dram_bw
    latency_s = (
        np.maximum(np.maximum(compute_cycles, noc_cycles), dram_cycles)
        + _STARTUP_CYCLES
    ) / freq

    # --- energy ----------------------------------------------------------------
    l1_access_bytes = reg4 + noc_bytes
    l2_access_bytes = noc_bytes + dram_bytes
    energy_j = (
        base_energy
        + l1_access_bytes * l1_e
        + l2_access_bytes * l2_e
        + dram_bytes * dram_e
    )

    return soa.build_results(
        hw, latency_s, energy_j, compute_cycles, noc_cycles, dram_cycles,
        dram_bytes,
    )


__all__ = ["BatchSoA", "analyze_gemm_batch"]
