"""The high-fidelity surrogate update rule (Section 3.2, Steps 1-4).

After each MOBO iteration evaluates a batch of N hardware configurations,
only a *high-fidelity subset* refits the GP surrogate:

1. collapse each configuration's normalized objective vector into the
   fidelity scalar ``v_ParEGO`` (Eq. 1, rho = 0.2, importance weights W),
2. measure ``d = | v_ParEGO - v_ParEGO^Best |`` against the best scalar
   seen so far,
3. admit configurations with ``d <= UUL`` and append their ``d`` values to
   the distance archive ``D_dist``,
4. recompute ``UUL`` as the 95th percentile of ``D_dist``.

UUL tends to shrink over iterations, tightening selection toward
exploitation — exactly the behaviour the paper describes.  The alternative
**champion update** (used by the Fig. 10 ablations and the HASCO-like
baseline) admits only the single best configuration of the batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.optim.scalarize import DEFAULT_RHO, parego_scalar, uniform_weights

DEFAULT_UUL_PERCENTILE = 95.0


@dataclass
class HighFidelitySelector:
    """Stateful implementation of the UUL update rule."""

    num_objectives: int
    weights: Optional[np.ndarray] = None
    rho: float = DEFAULT_RHO
    percentile: float = DEFAULT_UUL_PERCENTILE
    _best_scalar: float = field(default=float("inf"), init=False)
    _distance_archive: List[float] = field(default_factory=list, init=False)
    _uul: float = field(default=float("inf"), init=False)

    def __post_init__(self) -> None:
        if self.weights is None:
            self.weights = uniform_weights(self.num_objectives)
        self.weights = np.asarray(self.weights, dtype=float)
        if self.weights.shape != (self.num_objectives,):
            raise ValueError(
                f"weights shape {self.weights.shape} != ({self.num_objectives},)"
            )
        if not 0 < self.percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {self.percentile}")

    @property
    def uul(self) -> float:
        """Current Upper Update Limit."""
        return self._uul

    @property
    def best_scalar(self) -> float:
        return self._best_scalar

    def fidelity_scalars(self, normalized_objectives: np.ndarray) -> np.ndarray:
        """Step 1: v_ParEGO per batch member (rows must be normalized)."""
        matrix = np.atleast_2d(np.asarray(normalized_objectives, dtype=float))
        return np.array(
            [parego_scalar(row, self.weights, self.rho) for row in matrix]
        )

    def select(self, normalized_objectives: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Steps 1-4 for one batch.

        Returns ``(selected_mask, scalars)``.  On the very first batch (no
        UUL yet) every finite-scalar member is admitted, seeding the
        distance archive.
        """
        scalars = self.fidelity_scalars(normalized_objectives)
        finite = np.isfinite(scalars)
        if finite.any():
            batch_best = float(scalars[finite].min())
            self._best_scalar = min(self._best_scalar, batch_best)
        distances = np.abs(scalars - self._best_scalar)

        if np.isinf(self._uul):
            selected = finite.copy()
        else:
            selected = finite & (distances <= self._uul)
            if not selected.any() and finite.any():
                # never starve the surrogate: admit the batch champion
                champion = int(np.argmin(np.where(finite, scalars, np.inf)))
                selected[champion] = True

        self._distance_archive.extend(float(d) for d in distances[selected])
        if self._distance_archive:
            self._uul = float(
                np.percentile(np.array(self._distance_archive), self.percentile)
            )
        return selected, scalars


@dataclass
class ChampionSelector:
    """Vanilla update rule: only the batch's best scalar is admitted."""

    num_objectives: int
    weights: Optional[np.ndarray] = None
    rho: float = DEFAULT_RHO

    def __post_init__(self) -> None:
        if self.weights is None:
            self.weights = uniform_weights(self.num_objectives)
        self.weights = np.asarray(self.weights, dtype=float)

    @property
    def uul(self) -> float:
        return 0.0

    def fidelity_scalars(self, normalized_objectives: np.ndarray) -> np.ndarray:
        matrix = np.atleast_2d(np.asarray(normalized_objectives, dtype=float))
        return np.array(
            [parego_scalar(row, self.weights, self.rho) for row in matrix]
        )

    def select(self, normalized_objectives: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        scalars = self.fidelity_scalars(normalized_objectives)
        selected = np.zeros(scalars.shape[0], dtype=bool)
        finite = np.isfinite(scalars)
        if finite.any():
            champion = int(np.argmin(np.where(finite, scalars, np.inf)))
            selected[champion] = True
        return selected, scalars
