"""Connection pool: keep-alive reuse, stale-socket replay, telemetry."""

import json
import pickle

import pytest

from repro.costmodel import MaestroEngine
from repro.costmodel.service import PPAServiceServer
from repro.errors import EvaluationError
from repro.fleet.pool import ConnectionPool


@pytest.fixture()
def server(tiny_network):
    with PPAServiceServer(MaestroEngine(tiny_network)) as srv:
        yield srv


@pytest.fixture()
def pool(server):
    instance = ConnectionPool(server.url, timeout_s=2.0)
    yield instance
    instance.close()


class TestParsing:
    def test_url_parsed_once_at_construction(self):
        pool = ConnectionPool("http://example.com:8080/prefix/")
        assert pool.host == "example.com"
        assert pool.port == 8080
        assert pool.path_prefix == "/prefix"

    def test_bad_scheme_rejected(self):
        with pytest.raises(EvaluationError):
            ConnectionPool("ftp://example.com")

    def test_missing_host_rejected(self):
        with pytest.raises(EvaluationError):
            ConnectionPool("http://")


class TestKeepAlive:
    def test_sequential_requests_reuse_one_connection(self, pool):
        for _ in range(4):
            response = pool.request("GET", "/health")
            assert response.status == 200
            assert json.loads(response.body)["status"] == "ok"
        stats = pool.stats()
        assert stats["num_created"] == 1
        assert stats["num_reused"] == 3
        assert stats["idle"] == 1

    def test_headers_lowercased(self, pool):
        response = pool.request("GET", "/health")
        assert response.header("Content-Type") == "application/json"
        assert "content-type" in response.headers

    def test_stale_idle_socket_replayed_once(self, pool):
        pool.request("GET", "/health")
        # simulate the server reaping the idle keep-alive socket; killing
        # the raw socket (not HTTPConnection.close, which would cleanly
        # auto-reconnect) leaves the connection looking alive but stale
        pool._idle[0].sock.close()
        response = pool.request("GET", "/health")
        assert response.status == 200
        stats = pool.stats()
        assert stats["num_stale_retries"] == 1
        assert stats["num_discarded"] == 1

    def test_close_empties_idle(self, pool):
        pool.request("GET", "/health")
        pool.close()
        assert pool.stats()["idle"] == 0

    def test_connection_refused_raises_for_caller(self, server, pool):
        server.stop()
        with pytest.raises(OSError):
            pool.request("GET", "/health")

    def test_max_idle_bounds_pool(self, server):
        pool = ConnectionPool(server.url, timeout_s=2.0, max_idle=0)
        pool.request("GET", "/health")
        stats = pool.stats()
        assert stats["idle"] == 0
        assert stats["num_discarded"] == 1
        pool.close()


class TestPickling:
    def test_roundtrip_drops_sockets(self, pool):
        pool.request("GET", "/health")
        clone = pickle.loads(pickle.dumps(pool))
        assert clone.stats()["idle"] == 0
        assert clone.base_url == pool.base_url
        response = clone.request("GET", "/health")
        assert response.status == 200
        clone.close()
