"""Checkpoint / resume for long-running UNICO searches.

A paper-preset run on the cycle-accurate engine spans days of simulated
(and hours of real) time; production co-search must survive restarts.
:func:`save_checkpoint` captures everything Algorithm 1 accumulates between
iterations — the high-fidelity training set, the objective normalizer, the
UUL selector state, the Pareto archive, the timeline and the simulated
clock — plus the MOBO sampler's RNG state, into one JSON document.
:func:`load_checkpoint` restores it onto a freshly constructed
:class:`~repro.core.unico.Unico` (same spaces/config/seed), after which
``optimize()`` continues from the saved iteration.

Version history
---------------
* **v2** (current) — serializes the full :class:`RobustnessResult` per
  archived design (delta, theta, optimal/sub-optimal latency+power) and
  records ``completed_iterations`` explicitly; loading sets
  :attr:`Unico.completed_iterations` instead of shrinking
  ``config.max_iterations`` in place, so repeated save/load cycles no
  longer erode the budget.
* **v1** — still readable.  v1 files carry only ``r_value``, so restored
  designs get the historical placeholder geometry (``delta=r_value``,
  ``theta=pi/2``, sub-optimal PPA copied from optimal).

Hardware configs serialize through the design space's assignment dicts;
per-layer mappings are *not* checkpointed (a resumed run re-derives
mappings for new candidates; archived designs keep their recorded PPA).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Union

import numpy as np

from repro.core.base import HWDesign, TimelineEntry
from repro.core.robustness import RobustnessResult
from repro.core.unico import IterationRecord, Unico
from repro.costmodel.results import NetworkPPA
from repro.errors import ConfigurationError

CHECKPOINT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)


def _config_to_payload(space, config) -> Dict:
    return {str(k): v for k, v in space.from_config(config).items()}


def _config_from_payload(space, payload: Dict):
    return space.to_config(dict(payload))


def _robustness_to_payload(robustness: RobustnessResult) -> Dict:
    return {
        "r_value": robustness.r_value,
        "delta": robustness.delta,
        "theta": robustness.theta,
        "optimal_latency_s": robustness.optimal_latency_s,
        "optimal_power_w": robustness.optimal_power_w,
        "suboptimal_latency_s": robustness.suboptimal_latency_s,
        "suboptimal_power_w": robustness.suboptimal_power_w,
    }


def _robustness_from_payload(design_payload: Dict, ppa: NetworkPPA) -> RobustnessResult:
    robustness = design_payload.get("robustness")
    if robustness is not None:  # v2: full geometry round-trips
        return RobustnessResult(**robustness)
    # v1 fallback: only R survived serialization; reconstruct the old
    # placeholder geometry (delta=R, theta=pi/2, sub-optimal == optimal)
    return RobustnessResult(
        r_value=design_payload["r_value"],
        delta=design_payload["r_value"],
        theta=np.pi / 2,
        optimal_latency_s=ppa.latency_s,
        optimal_power_w=ppa.power_w,
        suboptimal_latency_s=ppa.latency_s,
        suboptimal_power_w=ppa.power_w,
    )


def save_checkpoint(unico: Unico, path: Union[str, pathlib.Path]) -> None:
    """Write the optimizer's inter-iteration state to ``path`` (JSON).

    The write is atomic (same-directory temp file + rename) so a crash
    mid-save never clobbers the previous checkpoint.
    """
    space = unico.space
    designs = []
    for design, point in zip(unico.pareto.items, unico.pareto.points):
        designs.append(
            {
                "hw": _config_to_payload(space, design.hw),
                "ppa": {
                    "latency_s": design.ppa.latency_s,
                    "energy_j": design.ppa.energy_j,
                    "power_w": design.ppa.power_w,
                    "area_mm2": design.ppa.area_mm2,
                },
                "r_value": design.robustness.r_value,
                "robustness": _robustness_to_payload(design.robustness),
                "point": [float(v) for v in point],
            }
        )
    selector_state: Dict = {}
    if hasattr(unico.selector, "_distance_archive"):
        selector_state = {
            "best_scalar": unico.selector._best_scalar,
            "distance_archive": list(unico.selector._distance_archive),
            "uul": unico.selector._uul,
        }
    payload = {
        "version": CHECKPOINT_VERSION,
        "iteration": unico.completed_iterations,
        "completed_iterations": unico.completed_iterations,
        "clock_s": unico.clock.now_s,
        "train_configs": [
            _config_to_payload(space, c) for c in unico.train_configs
        ],
        "train_objectives": [
            [float(v) for v in y] for y in unico.train_objectives_raw
        ],
        "normalizer": {
            "low": [float(v) for v in unico.normalizer._low],
            "high": [float(v) for v in unico.normalizer._high],
        },
        "selector": selector_state,
        "sampler_rng": unico.sampler.rng.bit_generator.state,
        "trial_counter": unico._trial_counter,
        "total_hw_evaluated": unico.total_hw_evaluated,
        "pareto": designs,
        "timeline": [
            {
                "time_s": entry.time_s,
                "ppa": [float(v) for v in entry.ppa_vector],
                "feasible": entry.feasible,
            }
            for entry in unico.timeline
        ],
        "iteration_records": [
            {
                "iteration": r.iteration,
                "time_s": r.time_s,
                "uul": r.uul,
                "num_selected": r.num_selected,
                "num_feasible": r.num_feasible,
                "pareto_size": r.pareto_size,
                "best_scalar": r.best_scalar,
            }
            for r in unico.iteration_records
        ],
    }
    target = pathlib.Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(json.dumps(payload))
    tmp.replace(target)


def load_checkpoint(unico: Unico, path: Union[str, pathlib.Path]) -> Unico:
    """Restore state saved by :func:`save_checkpoint` onto ``unico``.

    ``unico`` must be freshly constructed with the same design space and
    configuration; continuing with mismatched objective counts raises.
    Completed iterations are tracked on the optimizer
    (:attr:`Unico.completed_iterations`) — the configured
    ``max_iterations`` budget is left untouched, so save/load cycles are
    idempotent.
    """
    payload = json.loads(pathlib.Path(path).read_text())
    version = payload.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise ConfigurationError(
            f"checkpoint version {version} unsupported "
            f"(supported: {SUPPORTED_VERSIONS})"
        )
    space = unico.space
    train_objectives = [np.array(y, dtype=float) for y in payload["train_objectives"]]
    if train_objectives and train_objectives[0].shape[0] != unico.num_objectives:
        raise ConfigurationError(
            "checkpoint objective count does not match the optimizer's "
            f"({train_objectives[0].shape[0]} vs {unico.num_objectives})"
        )
    unico.train_configs = [
        _config_from_payload(space, c) for c in payload["train_configs"]
    ]
    unico.train_objectives_raw = train_objectives
    unico.normalizer._low = np.array(payload["normalizer"]["low"])
    unico.normalizer._high = np.array(payload["normalizer"]["high"])
    selector_state = payload.get("selector") or {}
    if selector_state and hasattr(unico.selector, "_distance_archive"):
        unico.selector._best_scalar = selector_state["best_scalar"]
        unico.selector._distance_archive = list(selector_state["distance_archive"])
        unico.selector._uul = selector_state["uul"]
    unico.sampler.rng.bit_generator.state = payload["sampler_rng"]
    unico._trial_counter = payload["trial_counter"]
    unico.total_hw_evaluated = payload["total_hw_evaluated"]
    unico.clock.reset()
    unico.clock.advance(payload["clock_s"], label="restored")
    for design_payload in payload["pareto"]:
        ppa = NetworkPPA(
            latency_s=design_payload["ppa"]["latency_s"],
            energy_j=design_payload["ppa"]["energy_j"],
            power_w=design_payload["ppa"]["power_w"],
            area_mm2=design_payload["ppa"]["area_mm2"],
            feasible=True,
        )
        design = HWDesign(
            hw=_config_from_payload(space, design_payload["hw"]),
            mapping={},
            ppa=ppa,
            robustness=_robustness_from_payload(design_payload, ppa),
        )
        unico.pareto.add(design, design_payload["point"])
    unico.timeline = [
        TimelineEntry(
            time_s=entry["time_s"],
            ppa_vector=np.array(entry["ppa"], dtype=float),
            feasible=entry["feasible"],
        )
        for entry in payload["timeline"]
    ]
    unico.iteration_records = [
        IterationRecord(**record) for record in payload["iteration_records"]
    ]
    # resume point: completed iterations live on the optimizer, not in a
    # destructively shrunk config budget
    unico.completed_iterations = int(
        payload.get("completed_iterations", payload["iteration"])
    )
    return unico
