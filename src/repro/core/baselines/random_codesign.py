"""Random co-design baseline: uniform hardware sampling, full SW budget.

The sanity floor every guided method must beat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.base import CoOptimizer, CoSearchResult


@dataclass
class RandomCodesignConfig:
    """Knobs of the random baseline."""

    max_candidates: int = 60
    full_budget: int = 300
    time_budget_s: Optional[float] = None


class RandomCodesign(CoOptimizer):
    """Uniform random hardware sampling with full-budget SW search."""

    method_name = "random"

    def __init__(
        self, space, network, engine, config: Optional[RandomCodesignConfig] = None, **kwargs
    ):
        super().__init__(space, network, engine, include_robustness=False, **kwargs)
        self.config = config or RandomCodesignConfig()
        self.engine.charge_clock = False

    def optimize(self) -> CoSearchResult:
        config = self.config
        rng = self.seeds.generator("random-codesign")
        seen = set()
        for _index in range(config.max_candidates):
            if (
                config.time_budget_s is not None
                and self.clock.now_s >= config.time_budget_s
            ):
                break
            hw = self.space.sample(rng)
            key = self.space.config_key(hw)
            if key in seen:
                continue
            seen.add(key)
            trial = self.new_trial(hw)
            trial.run(config.full_budget)
            self.clock.advance(
                trial.queries_spent * self.engine.eval_cost_s, label="sw-search"
            )
            self.finish_candidate(trial)
        return self.make_result(extras={"candidates": len(seen)})
