"""Shared co-optimizer machinery: result types and the common base class.

Every co-search method (UNICO, HASCO-like, NSGA-II, MOBOHB, random) emits a
:class:`CoSearchResult` with the same anatomy, so the experiment harness can
compare them uniformly:

* a PPA :class:`ParetoFront` over (latency, power, area) — the reporting
  space of Tables 1-2 and the hypervolume figures, regardless of whether a
  method optimized extra objectives internally,
* a **timeline** of completed hardware evaluations stamped with simulated
  wall-clock seconds — the raw material of the HV-vs-time curves,
* the selected representative design (min-Euclidean-distance rule).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.evaluation import HWEvaluation, SWSearchTrial, assemble_objectives
from repro.core.robustness import RobustnessResult
from repro.costmodel.engine import PPAEngine
from repro.costmodel.results import NetworkPPA
from repro.hw.space import DiscreteDesignSpace
from repro.mapping.gemm_mapping import NetworkMapping
from repro.obs.trace import NULL_TRACER, Tracer
from repro.optim.pareto import ParetoFront
from repro.tracking.tracker import NullTracker, Tracker
from repro.utils.clock import SimulatedClock
from repro.utils.rng import SeedSequenceFactory
from repro.workloads.network import Network


@dataclass(frozen=True)
class HWDesign:
    """A completed hardware/software design point."""

    hw: object
    mapping: NetworkMapping
    ppa: NetworkPPA
    robustness: RobustnessResult

    @property
    def ppa_vector(self) -> np.ndarray:
        return np.array([self.ppa.latency_s, self.ppa.power_w, self.ppa.area_mm2])


@dataclass(frozen=True)
class TimelineEntry:
    """One completed HW evaluation, stamped with simulated wall-clock."""

    time_s: float
    ppa_vector: np.ndarray
    feasible: bool


@dataclass
class CoSearchResult:
    """Uniform outcome of any co-search method."""

    method: str
    network: str
    pareto: ParetoFront
    timeline: List[TimelineEntry] = field(default_factory=list)
    total_time_s: float = 0.0
    total_hw_evaluated: int = 0
    total_engine_queries: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def total_time_h(self) -> float:
        return self.total_time_s / 3600.0

    def best_design(self) -> Optional[HWDesign]:
        """Min-Euclidean-distance representative (Tables 1-2 rule)."""
        selection = self.pareto.min_euclidean()
        if selection is None:
            return None
        return selection[0]

    def feasible_timeline_points(self) -> np.ndarray:
        points = [e.ppa_vector for e in self.timeline if e.feasible]
        if not points:
            return np.zeros((0, 3))
        return np.vstack(points)


class CoOptimizer(ABC):
    """Base class: trial construction, recording, and clock plumbing."""

    method_name = "base"
    #: whether this optimizer's ``optimize()`` drives the tracker's
    #: run/iteration lifecycle hooks itself (run_start, iteration_*,
    #: run_end).  The harness emits run_start/run_end on behalf of
    #: optimizers that don't, so tracked baseline runs still reach a
    #: terminal manifest status.
    emits_lifecycle_events = False

    def __init__(
        self,
        space: DiscreteDesignSpace,
        network: Network,
        engine: PPAEngine,
        objective: str = "latency",
        tool: str = "flextensor",
        power_cap_w: Optional[float] = None,
        area_cap_mm2: Optional[float] = None,
        include_robustness: bool = False,
        robustness_alpha: float = 0.05,
        seed: int = 0,
        trial_factory=None,
        tracker: Optional[Tracker] = None,
        eval_batch_size: int = 1,
    ):
        self.space = space
        self.network = network
        self.engine = engine
        self.clock: SimulatedClock = engine.clock
        self.objective = objective
        self.tool = tool
        self.power_cap_w = power_cap_w
        self.area_cap_mm2 = area_cap_mm2
        self.include_robustness = include_robustness
        self.robustness_alpha = robustness_alpha
        self.seeds = SeedSequenceFactory(seed)
        self.pareto: ParetoFront[HWDesign] = ParetoFront(num_objectives=3)
        self.timeline: List[TimelineEntry] = []
        self._trial_counter = 0
        self.total_hw_evaluated = 0
        self._trial_factory = trial_factory
        #: speculative-batch width handed to every SW search trial; 1 keeps
        #: the scalar propose/evaluate/fold loop
        self.eval_batch_size = int(eval_batch_size)
        #: observer of search events (journaling, checkpointing); the
        #: default NullTracker keeps the untracked hot path free
        self.tracker: Tracker = tracker if tracker is not None else NullTracker()
        #: span tracer (time attribution); NULL_TRACER unless a traced run
        #: installs a real one via :meth:`set_tracer`
        self.tracer: Tracer = NULL_TRACER

    def set_tracer(self, tracer: Tracer) -> None:
        """Install a span tracer on this optimizer and its engine.

        Sub-components read the tracer through the engine (the one object
        every layer of the stack already shares), so installing it here is
        enough to light up engine-eval and mapping-search spans too.
        """
        self.tracer = tracer
        self.engine.tracer = tracer

    # --------------------------------------------------------------- plumbing
    def new_trial(self, hw) -> SWSearchTrial:
        """Create a fresh SW-mapping-search trial for ``hw``.

        A custom ``trial_factory(hw, seed_rng)`` (e.g. the multi-workload
        job bundle of Fig. 6a) takes precedence when supplied.
        """
        self._trial_counter += 1
        seed_rng = self.seeds.generator("sw-search", index=self._trial_counter)
        if self._trial_factory is not None:
            return self._trial_factory(hw, seed_rng)
        return SWSearchTrial(
            hw,
            self.network,
            self.engine,
            tool=self.tool,
            objective=self.objective,
            seed=seed_rng,
            batch_size=self.eval_batch_size,
        )

    def finish_candidate(
        self,
        trial: SWSearchTrial,
        batch_id: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> HWEvaluation:
        """Assemble Y, update the PPA Pareto front and the timeline."""
        evaluation = assemble_objectives(
            trial,
            include_robustness=self.include_robustness,
            power_cap_w=self.power_cap_w,
            area_cap_mm2=self.area_cap_mm2,
            robustness_alpha=self.robustness_alpha,
        )
        self.total_hw_evaluated += 1
        added = False
        if evaluation.feasible:
            design = HWDesign(
                hw=trial.hw,
                mapping=trial.search.best_mapping,
                ppa=evaluation.ppa,
                robustness=evaluation.robustness,
            )
            added = self.pareto.add(design, evaluation.ppa_vector)
        if self.tracker.enabled:
            self.tracker.on_evaluation(
                self, evaluation, added, batch_id=batch_id, batch_size=batch_size
            )
        self.timeline.append(
            TimelineEntry(
                time_s=self.clock.now_s,
                ppa_vector=evaluation.ppa_vector,
                feasible=evaluation.feasible,
            )
        )
        return evaluation

    def make_result(self, extras: Optional[dict] = None) -> CoSearchResult:
        return CoSearchResult(
            method=self.method_name,
            network=self.network.name,
            pareto=self.pareto,
            timeline=list(self.timeline),
            total_time_s=self.clock.now_s,
            total_hw_evaluated=self.total_hw_evaluated,
            total_engine_queries=self.engine.num_queries,
            extras=dict(extras or {}),
        )

    # ----------------------------------------------------------------- driver
    @abstractmethod
    def optimize(self) -> CoSearchResult:
        """Run the co-search to completion."""
