"""Figure 7: hypervolume-difference vs wall-clock, edge and cloud.

For each network the four methods (HASCO, NSGAII, MOBOHB, UNICO) run to
their budget; the reference front is the non-dominated union of everything
any method found, and each method's HV-difference-to-reference is sampled
on a shared simulated-time grid.  The expected shape: UNICO's curve drops
fastest (reaching HASCO-level HV up to ~4x sooner) and ends lowest.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

import numpy as np

from repro.experiments.harness import (
    combined_reference,
    hv_difference_curve,
    hypervolume,
    ideal_front,
    run_method,
    time_grid,
)
from repro.experiments.presets import Preset
from repro.utils.records import RunRecord

FIG7_METHODS = ("hasco", "nsgaii", "mobohb", "unico")


def run_fig7_network(
    scenario: str,
    network: str,
    preset: Union[str, Preset] = "smoke",
    methods: Sequence[str] = FIG7_METHODS,
    seed: int = 0,
    grid_points: int = 16,
) -> RunRecord:
    """HV-difference curves for one network (one panel of Fig. 7)."""
    results = {
        method: run_method(method, scenario, network, preset, seed=seed)
        for method in methods
    }
    all_results = list(results.values())
    reference = combined_reference(all_results)
    ideal = ideal_front(all_results)
    ideal_hv = hypervolume(ideal, reference)
    grid = time_grid(all_results, grid_points)

    record = RunRecord(f"fig7-{scenario}-{network}")
    record.put("scenario", scenario)
    record.put("network", network)
    record.put("ideal_hv", ideal_hv)
    record.put("time_grid_s", [float(t) for t in grid])
    for method, result in results.items():
        curve = hv_difference_curve(result, reference, ideal_hv, grid)
        child = record.child(method)
        child.put("hv_diff_curve", [value for _t, value in curve])
        child.put("final_hv_diff", curve[-1][1])
        child.put("total_time_h", result.total_time_h)
        child.put("hw_evaluated", result.total_hw_evaluated)
        # complementary front-quality indicators vs the shared reference
        achieved = result.pareto.points
        if achieved.size and ideal.size:
            from repro.optim.indicators import inverted_generational_distance

            scale = np.where(reference > 0, reference, 1.0)
            child.put(
                "igd",
                inverted_generational_distance(achieved / scale, ideal / scale),
            )
    return record


def speedup_to_reach(
    record: RunRecord, target_method: str = "hasco", by_method: str = "unico"
) -> float:
    """How much faster ``by_method`` reaches ``target_method``'s final HV.

    Returns the ratio t_target / t_by (>= 1 means ``by_method`` is faster);
    inf if ``by_method`` never reaches the target level.
    """
    grid = np.asarray(record.get("time_grid_s"))
    target_final = record.children[target_method].get("final_hv_diff")
    by_curve = np.asarray(record.children[by_method].get("hv_diff_curve"))
    reached = np.flatnonzero(by_curve <= target_final + 1e-15)
    if reached.size == 0:
        return float("inf") if by_curve[-1] > target_final else 1.0
    t_by = grid[reached[0]]
    t_target = grid[-1]
    return float(t_target / max(t_by, 1e-9))


def run_fig7(
    scenario: str,
    networks: Sequence[str],
    preset: Union[str, Preset] = "smoke",
    seed: int = 0,
) -> RunRecord:
    """One full panel set (Fig. 7a edge or Fig. 7b cloud)."""
    record = RunRecord(f"fig7-{scenario}")
    speedups: List[float] = []
    for network in networks:
        panel = run_fig7_network(scenario, network, preset, seed=seed)
        record.children[network] = panel
        speedups.append(speedup_to_reach(panel))
    finite = [s for s in speedups if np.isfinite(s)]
    record.put("mean_speedup_vs_hasco", float(np.mean(finite)) if finite else None)
    return record
