"""Shared low-level utilities used across the UNICO reproduction.

The sub-modules here are deliberately dependency-free (NumPy only) so that
every other subsystem — workloads, cost models, optimizers, the UNICO core —
can build on a common, well-tested foundation:

* :mod:`repro.utils.rng` — seeded random-number plumbing.  Every stochastic
  component in the library draws from an explicitly seeded
  :class:`numpy.random.Generator` so whole experiments replay bit-for-bit.
* :mod:`repro.utils.intmath` — integer helpers (divisors, tilings,
  two-three-smooth value grids) used by design spaces and mapping spaces.
* :mod:`repro.utils.clock` — the simulated wall clock that charges a modeled
  cost per PPA evaluation; search-cost curves are measured against it.
* :mod:`repro.utils.records` — lightweight JSON-serializable run records.
* :mod:`repro.utils.metrics` — thread-safe counters and real-time latency
  histograms threaded through the estimation-service path (engines, the
  REST server, the job runner) and surfaced via ``GET /metrics``.
"""

from repro.utils.clock import SimulatedClock
from repro.utils.metrics import Counter, Histogram, MetricsRegistry
from repro.utils.intmath import (
    divisors,
    nearest_divisor,
    power_two_three_grid,
    round_up_div,
)
from repro.utils.records import RunRecord, to_jsonable
from repro.utils.rng import SeedSequenceFactory, as_generator

__all__ = [
    "SimulatedClock",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "divisors",
    "nearest_divisor",
    "power_two_three_grid",
    "round_up_div",
    "RunRecord",
    "to_jsonable",
    "SeedSequenceFactory",
    "as_generator",
]
