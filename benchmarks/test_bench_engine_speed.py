"""Micro-benchmarks: real compute throughput of the core kernels.

Unlike the experiment benches (one expensive round each), these use
pytest-benchmark properly — many rounds over hot loops — and guard the
performance envelope the search algorithms depend on: the analytical
models must stay in the sub-millisecond regime (they are called hundreds
of thousands of times per experiment), the CA simulator in the
tens-of-milliseconds regime, and a GP fit on a typical training-set size
well under a second.
"""

import json
import time

import numpy as np
import pytest

from repro.camodel.ascend_sim import simulate_layer
from repro.camodel.mapping import AscendMapping
from repro.costmodel.maestro import analyze_gemm
from repro.costmodel.maestro_batch import analyze_gemm_batch
from repro.costmodel.timeloop import analyze_gemm_loopnest
from repro.costmodel.timeloop_batch import analyze_gemm_loopnest_batch
from repro.hw import SpatialHWConfig, default_ascend_config
from repro.mapping import GemmMapping
from repro.mapping.gemm_mapping import GemmMappingSpace
from repro.optim.gp import GaussianProcess
from repro.optim.hypervolume import hypervolume
from repro.workloads.layers import GemmShape

HW = SpatialHWConfig(
    pe_x=12, pe_y=12, l1_bytes=6144, l2_kb=512, noc_bw=128, dataflow="ws"
)
SHAPE = GemmShape(m=256, n=3136, k=576)
MAPPING = GemmMapping(tile_m=64, tile_n=56, tile_k=64)


@pytest.mark.benchmark(group="kernels")
def test_speed_analytical_maestro(benchmark):
    result = benchmark(analyze_gemm, HW, MAPPING, SHAPE)
    assert result.feasible
    assert benchmark.stats["mean"] < 0.005  # sub-5ms per query


@pytest.mark.benchmark(group="kernels")
def test_speed_analytical_timeloop(benchmark):
    result = benchmark(analyze_gemm_loopnest, HW, MAPPING, SHAPE)
    assert result.feasible
    assert benchmark.stats["mean"] < 0.005


@pytest.mark.benchmark(group="kernels")
@pytest.mark.parametrize(
    "scalar_fn, batch_fn",
    [
        (analyze_gemm, analyze_gemm_batch),
        (analyze_gemm_loopnest, analyze_gemm_loopnest_batch),
    ],
    ids=["maestro", "timeloop"],
)
def test_speed_analytical_maestro_batch(
    benchmark, results_dir, scalar_fn, batch_fn
):
    """Vectorized batch evaluation vs the scalar loop at B=64.

    The acceptance bar of the batched path: >= 5x per-candidate
    throughput on one shape.  Candidates are sampled feasible-on-HW so
    both paths run the full analysis — the regime the scalar bench above
    measures (on infeasible mappings the scalar model early-exits at the
    capacity check, which would understate the work the batch path
    replaces).

    The speedup is measured *paired*: each round times the scalar loop
    and the batch kernel back to back, so slow CPU-frequency / thermal
    drift (several percent over a pytest session on shared runners) hits
    both sides of a round's ratio equally, and the median over rounds is
    robust to the occasional GC or scheduler pause landing in one chunk.
    Both medians land in ``BENCH_engine.json``.
    """
    space = GemmMappingSpace(SHAPE)
    rng = np.random.default_rng(0)
    mappings = []
    for _ in range(10_000):
        candidate = space.sample(rng)
        if scalar_fn(HW, candidate, SHAPE).feasible:
            mappings.append(candidate)
            if len(mappings) == 64:
                break
    assert len(mappings) == 64, "sampler failed to find 64 feasible mappings"

    # the benchmark fixture reports the batch kernel's own timing (and
    # doubles as warmup for the paired loop below)
    results = benchmark.pedantic(
        batch_fn, args=(HW, mappings, SHAPE),
        rounds=30, iterations=16, warmup_rounds=2,
    )
    assert len(results) == 64

    # paired rounds: both chunks are sized to a couple of milliseconds so
    # a single GC pause cannot dominate either side
    scalar_times, batch_times, ratios = [], [], []
    for _ in range(9):
        t0 = time.perf_counter()
        for _ in range(3):
            for mapping in mappings:
                scalar_fn(HW, mapping, SHAPE)
        t1 = time.perf_counter()
        for _ in range(16):
            batch_fn(HW, mappings, SHAPE)
        t2 = time.perf_counter()
        scalar_times.append((t1 - t0) / (3 * len(mappings)))
        batch_times.append((t2 - t1) / (16 * len(mappings)))
        ratios.append(scalar_times[-1] / batch_times[-1])

    speedup = sorted(ratios)[len(ratios) // 2]
    scalar_per_item = sorted(scalar_times)[len(scalar_times) // 2]
    batch_per_item = sorted(batch_times)[len(batch_times) // 2]
    record_path = results_dir / "BENCH_engine.json"
    record = json.loads(record_path.read_text()) if record_path.exists() else {}
    record[f"batch_speedup_{scalar_fn.__name__}"] = {
        "batch_size": len(mappings),
        "scalar_per_item_s": scalar_per_item,
        "batch_per_item_s": batch_per_item,
        "speedup": speedup,
    }
    record_path.write_text(json.dumps(record, indent=2, sort_keys=True))
    assert speedup >= 5.0, (
        f"batch path only {speedup:.1f}x faster per candidate "
        f"({scalar_per_item * 1e6:.1f} us scalar vs "
        f"{batch_per_item * 1e6:.1f} us batched)"
    )


@pytest.mark.benchmark(group="kernels")
def test_speed_camodel(benchmark):
    hw = default_ascend_config()
    mapping = AscendMapping(tile_m=32, tile_n=128, tile_k=64)
    shape = GemmShape(m=64, n=4096, k=128)
    result = benchmark(simulate_layer, hw, mapping, shape)
    assert result.feasible
    # cycle-level simulation is orders of magnitude slower than analytical,
    # but must stay usable (< 100 ms per layer query)
    assert benchmark.stats["mean"] < 0.1


@pytest.mark.benchmark(group="kernels")
def test_speed_gp_fit(benchmark):
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (60, 6))
    y = np.sin(4 * x[:, 0]) + x[:, 1] ** 2

    def fit():
        return GaussianProcess().fit(x, y, num_restarts=1)

    gp = benchmark(fit)
    assert gp.num_observations == 60
    assert benchmark.stats["mean"] < 1.0


@pytest.mark.benchmark(group="kernels")
def test_speed_hypervolume_3d(benchmark):
    rng = np.random.default_rng(1)
    points = rng.uniform(0, 1, (40, 3))
    value = benchmark(hypervolume, points, [1.1, 1.1, 1.1])
    assert value > 0
    assert benchmark.stats["mean"] < 0.5
