"""Tests for the robustness (sensitivity) metric R of Eq. (2)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.robustness import RobustnessResult, f_theta, robustness_metric
from repro.mapping.base import MappingSearchPoint


def _point(step, trial_obj, trial_lat, trial_pow, best_obj, best_lat, best_pow):
    return MappingSearchPoint(
        step=step,
        trial_objective=trial_obj,
        trial_latency_s=trial_lat,
        trial_power_w=trial_pow,
        best_objective=best_obj,
        best_latency_s=best_lat,
        best_power_w=best_pow,
    )


def _history(trial_latencies, trial_powers, final_latency, final_power):
    """Build a history whose trials have the given latency/power."""
    points = []
    for index, (lat, pow_) in enumerate(zip(trial_latencies, trial_powers)):
        points.append(
            _point(index + 1, lat, lat, pow_, final_latency, final_latency, final_power)
        )
    return points


class TestFTheta:
    def test_paper_anchor_points(self):
        """F(0) = 1, F(pi/2) = 0, F(pi) = 2 (Section 3.4)."""
        assert f_theta(0.0) == pytest.approx(1.0)
        assert f_theta(math.pi / 2) == pytest.approx(0.0)
        assert f_theta(math.pi) == pytest.approx(2.0)

    def test_decreasing_then_increasing(self):
        thetas = np.linspace(0, math.pi, 50)
        values = [f_theta(t) for t in thetas]
        minimum_at = thetas[int(np.argmin(values))]
        # vertex of the parabola is at 5*pi/12, left of pi/2
        assert minimum_at < math.pi / 2

    def test_domain_enforced(self):
        with pytest.raises(ValueError):
            f_theta(-0.1)
        with pytest.raises(ValueError):
            f_theta(math.pi + 0.2)

    def test_asymmetry_prefers_first_quadrant(self):
        """Penalty above pi/2 (power regression) exceeds the mirror below."""
        eps = 0.4
        assert f_theta(math.pi / 2 + eps) > f_theta(math.pi / 2 - eps)


class TestRobustnessMetric:
    def test_zero_when_no_variation(self):
        history = _history([1.0] * 50, [2.0] * 50, 1.0, 2.0)
        result = robustness_metric(history)
        assert result.r_value == pytest.approx(0.0)
        assert result.delta == 0.0

    def test_infinite_when_never_feasible(self):
        history = _history(
            [np.inf] * 10, [np.inf] * 10, float("inf"), float("inf")
        )
        assert not robustness_metric(history).finite

    def test_empty_history_infinite(self):
        assert not robustness_metric([]).finite

    def test_r_equals_delta_when_power_unchanged(self):
        """theta = pi/2 when power does not move: R = Delta."""
        trial_lats = [2.0] * 95 + [1.5] * 5
        history = _history(trial_lats, [4.0] * 100, 1.0, 4.0)
        result = robustness_metric(history)
        assert result.theta == pytest.approx(math.pi / 2)
        assert result.r_value == pytest.approx(result.delta)

    def test_power_regression_penalized_more(self):
        """If converging increased power, R exceeds the symmetric case."""
        # sub-optimal: lat 1.5, power 3.0; optimal: lat 1.0, power 4.0 (worse!)
        regress = robustness_metric(_history([1.5] * 100, [3.0] * 100, 1.0, 4.0))
        # sub-optimal: lat 1.5, power 5.0; optimal power 4.0 (better)
        improve = robustness_metric(_history([1.5] * 100, [5.0] * 100, 1.0, 4.0))
        assert regress.theta > math.pi / 2 > improve.theta
        assert regress.r_value > improve.r_value

    def test_larger_variation_larger_r(self):
        small = robustness_metric(_history([1.1] * 100, [4.0] * 100, 1.0, 4.0))
        large = robustness_metric(_history([3.0] * 100, [4.0] * 100, 1.0, 4.0))
        assert large.r_value > small.r_value

    def test_scale_invariance(self):
        """R is computed on relative deltas: units must not matter."""
        base = robustness_metric(_history([1.5] * 100, [5.0] * 100, 1.0, 4.0))
        scaled = robustness_metric(
            _history([1.5e-3] * 100, [5.0e3] * 100, 1.0e-3, 4.0e3)
        )
        assert base.r_value == pytest.approx(scaled.r_value, rel=1e-9)

    def test_suboptimal_selected_from_low_loss_tail(self):
        """The sub-optimal point is a *promising* mapping (alpha quantile),
        not a terrible one."""
        trial_lats = [10.0] * 80 + [1.2] * 19 + [1.0]
        history = _history(trial_lats, [4.0] * 100, 1.0, 4.0)
        result = robustness_metric(history, alpha=0.05)
        assert result.suboptimal_latency_s == pytest.approx(1.2)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            robustness_metric(_history([1.0], [1.0], 1.0, 1.0), alpha=0.0)

    def test_ingredients_recorded(self):
        history = _history([1.5] * 100, [5.0] * 100, 1.0, 4.0)
        result = robustness_metric(history)
        assert result.optimal_latency_s == 1.0
        assert result.optimal_power_w == 4.0
        assert result.suboptimal_latency_s == 1.5
        assert result.suboptimal_power_w == 5.0

    @given(
        st.floats(1.0, 10.0),
        st.floats(1.0, 10.0),
        st.floats(0.0, 5.0),
        st.floats(-0.9, 5.0),
    )
    @settings(max_examples=60)
    def test_r_formula_bounds(self, opt_lat, opt_pow, extra_lat, extra_pow_rel):
        """R is within [(1 - 1/24) Delta, 3 Delta]: the parabola F has its
        vertex at theta = 5 pi / 12 with F = -1/24, and F(pi) = 2."""
        sub_lat = opt_lat + extra_lat
        sub_pow = opt_pow * (1 + extra_pow_rel)
        history = _history([sub_lat] * 100, [sub_pow] * 100, opt_lat, opt_pow)
        result = robustness_metric(history)
        assert result.finite
        low = result.delta * (1.0 - 1.0 / 24.0)
        assert low - 1e-12 <= result.r_value <= 3 * result.delta + 1e-12
