"""Hub observability gates: SSE streaming overhead and fleet-merge latency.

Two promises the hub makes, measured:

1. **Watching a run must not slow it down.**  A live SSE consumer reads
   the run's journal from the side — the writer path (one ``O_APPEND``
   write per event) is untouched, so the only possible costs are server
   poll threads and filesystem contention.  The gate runs the same
   tracked co-search with and without a streaming client attached,
   paired round-robin with best-of-N per arm (robust to one-sided
   scheduler noise), and requires the streamed arm within
   ``MAX_OVERHEAD`` of the plain arm.  The run is sized to ~1s (a
   scaled-up smoke preset) so the gate measures relative drag, not
   timing noise on a 25ms sprint.  The stream itself is validated —
   every journal event must actually arrive, in order, or the "overhead"
   number measures a broken stream.

2. **A fleet dashboard refresh must feel instant.**  One
   ``scrape + merge`` sweep over 4 live replicas — parallel scrapes,
   strict parse, per-replica relabeling, ``fleet:*`` rollups — must
   complete in under ``MAX_MERGE_MS`` (best of ``ROUNDS``; the dashboard
   refreshes every ~2s, so 50ms is >97% idle).

Results land in ``BENCH_hub.json``.
"""

import dataclasses
import json
import threading
import time

from repro.costmodel import MaestroEngine
from repro.costmodel.service import PPAServiceServer
from repro.experiments.harness import run_method
from repro.experiments.presets import get_preset
from repro.hub import FleetAggregator, HubClient, HubServer
from repro.obs.prom import parse_prometheus_text
from repro.tracking import JournalTracker, RunStore, read_events

WORKLOAD = "fsrcnn_120x320"
ROUNDS = 3
MAX_OVERHEAD = 0.05   # streamed run within 5% of unstreamed
MAX_MERGE_MS = 50.0   # one 4-replica scrape+merge sweep
MERGE_REPLICAS = 4


def _bench_preset():
    """A ~1s co-search (vs ~25ms smoke): long enough that the gate
    measures streaming drag, not scheduler jitter."""
    return dataclasses.replace(
        get_preset("smoke"), name="bench",
        unico_batch=12, unico_iterations=8, unico_budget=200,
    )


def _tracked_run(store, seed, client=None):
    """One tracked bench co-search; returns (elapsed_s, run, streamed)."""
    manifest = {
        "method": "unico", "scenario": "edge", "workload": WORKLOAD,
        "preset": "bench", "seed": seed, "status": "created",
    }
    run = store.create_run(manifest, run_id=f"bench-{seed}-{time.time_ns()}")
    streamed = []
    consumer = None
    if client is not None:
        ready = threading.Event()

        def consume():
            ready.set()
            for event in client.stream_events(run.run_id):
                streamed.append(event)

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        ready.wait()
    tracker = JournalTracker(run)
    start = time.perf_counter()
    run_method("unico", "edge", WORKLOAD, _bench_preset(), seed=seed,
               tracker=tracker)
    elapsed = time.perf_counter() - start
    if consumer is not None:
        consumer.join(timeout=60.0)
        assert not consumer.is_alive(), "SSE stream never reached run_end"
    return elapsed, run, streamed


def test_sse_streaming_overhead(results_dir, tmp_path):
    store = RunStore(tmp_path / "runs")
    server = HubServer(store, sse_poll_interval_s=0.02,
                       reconcile_on_start=False)
    server.start()
    client = HubClient(server.url)
    try:
        # warmup arm: JIT-ish caches (imports, engine constants) off the clock
        _tracked_run(store, seed=99)

        plain_times, streamed_times = [], []
        for round_index in range(ROUNDS):
            elapsed, _run, _ = _tracked_run(store, seed=2 * round_index)
            plain_times.append(elapsed)
            elapsed, run, streamed = _tracked_run(
                store, seed=2 * round_index + 1, client=client
            )
            streamed_times.append(elapsed)
            # the stream must be exact, or the timing is meaningless
            scan = read_events(run.journal_path)
            assert [e.event for e in streamed] == scan.events
    finally:
        client.close()
        server.stop()

    plain, streamed_best = min(plain_times), min(streamed_times)
    overhead = streamed_best / plain - 1.0

    record_path = results_dir / "BENCH_hub.json"
    record = (
        json.loads(record_path.read_text()) if record_path.exists() else {}
    )
    record["sse_streaming_overhead"] = {
        "rounds": ROUNDS,
        "plain_best_s": plain,
        "streamed_best_s": streamed_best,
        "overhead_fraction": overhead,
        "events_per_run": len(read_events(run.journal_path).events),
    }
    record_path.write_text(json.dumps(record, indent=2, sort_keys=True))

    assert overhead <= MAX_OVERHEAD, (
        f"live SSE streaming slowed the tracked co-search by "
        f"{overhead:.1%} (plain {plain:.3f}s vs streamed "
        f"{streamed_best:.3f}s); gate is {MAX_OVERHEAD:.0%}"
    )


def test_fleet_scrape_merge_latency(results_dir):
    from repro.workloads import Gemm, Network

    network = Network(
        name="hubbench",
        layers=(Gemm(name="gemm", m=32, n=64, k=48),),
        family="bench",
        year=2023,
    )
    servers = [
        PPAServiceServer(MaestroEngine(network))
        for _ in range(MERGE_REPLICAS)
    ]
    for server in servers:
        server.start()
    aggregator = FleetAggregator([server.url for server in servers])
    try:
        # prime keep-alive connections + replica counters, off the clock
        merged = aggregator.merge(aggregator.scrape())
        parse_prometheus_text(merged)  # the merge must be strictly valid

        best_ms = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            scrapes = aggregator.scrape()
            merged = aggregator.merge(scrapes)
            elapsed_ms = (time.perf_counter() - start) * 1e3
            assert all(s.ok for s in scrapes)
            best_ms = min(best_ms, elapsed_ms)
    finally:
        aggregator.close()
        for server in servers:
            server.stop()

    record_path = results_dir / "BENCH_hub.json"
    record = (
        json.loads(record_path.read_text()) if record_path.exists() else {}
    )
    record["fleet_scrape_merge"] = {
        "replicas": MERGE_REPLICAS,
        "rounds": ROUNDS,
        "best_ms": best_ms,
        "merged_families": len(parse_prometheus_text(merged)),
    }
    record_path.write_text(json.dumps(record, indent=2, sort_keys=True))

    assert best_ms < MAX_MERGE_MS, (
        f"4-replica scrape+merge took {best_ms:.1f}ms; "
        f"gate is {MAX_MERGE_MS:.0f}ms"
    )
