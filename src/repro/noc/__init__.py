"""On-chip network substrate: mesh topology and transfer models.

Provides the concrete interconnect structure behind the spatial template's
``NoCBW`` parameter: X-Y routed meshes with multicast trees, bisection-
bandwidth congestion, and a mesh-aware variant of the analytical engine.
"""

from repro.noc.model import (
    LINK_ENERGY_PER_BYTE_HOP_J,
    MeshAwareMaestroEngine,
    TransferEstimate,
    congestion_factor,
    mesh_for,
    multicast_transfer,
)
from repro.noc.topology import MeshTopology

__all__ = [
    "MeshTopology",
    "MeshAwareMaestroEngine",
    "TransferEstimate",
    "congestion_factor",
    "mesh_for",
    "multicast_transfer",
    "LINK_ENERGY_PER_BYTE_HOP_J",
]
