"""Keep-alive HTTP connection pool (stdlib ``http.client`` only).

The pre-fleet :class:`~repro.costmodel.service.RemotePPAEngine` opened a
fresh TCP connection per request via ``urllib.request.urlopen``; at the
chunk sizes the batched evaluate paths ship, connection setup was a
measurable slice of every round trip.  :class:`ConnectionPool` holds
persistent HTTP/1.1 keep-alive connections to one origin and hands them
out to concurrent callers, so the sharded client's in-flight fan-out
reuses warm sockets instead of paying a handshake per chunk.

Failure handling is deliberately conservative:

* a connection that errors mid-exchange is **discarded**, never pooled;
* an exchange that fails on a *reused* connection is retried once on a
  fresh one — the server closing an idle keep-alive socket between
  requests is routine, not an outage (the PPA endpoints are idempotent
  evaluations, so the replay is safe);
* non-2xx statuses are returned, not raised — the transport layer of the
  engine owns retry/breaker policy.
"""

from __future__ import annotations

import threading
from http.client import HTTPConnection, HTTPException, HTTPSConnection
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import EvaluationError

__all__ = ["ConnectionPool", "PoolResponse"]


class PoolResponse:
    """One completed HTTP exchange: status, headers, body bytes."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: Dict[str, str], body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    def header(self, name: str) -> Optional[str]:
        return self.headers.get(name.lower())


class ConnectionPool:
    """Thread-safe keep-alive connection pool for a single ``base_url``.

    The URL is parsed exactly once, at construction — request paths are
    joined onto the parsed prefix, not re-parsed per call.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 10.0,
        max_idle: int = 8,
    ):
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", "https"):
            raise EvaluationError(
                f"unsupported service URL scheme {parts.scheme!r} in "
                f"{base_url!r} (need http or https)"
            )
        if not parts.hostname:
            raise EvaluationError(f"service URL {base_url!r} has no host")
        self.base_url = base_url.rstrip("/")
        self.scheme = parts.scheme
        self.host = parts.hostname
        self.port = parts.port  # None lets http.client pick the default
        self.path_prefix = parts.path.rstrip("/")
        self.timeout_s = timeout_s
        self.max_idle = max_idle
        self._idle: List[HTTPConnection] = []
        self._lock = threading.Lock()
        # pool telemetry (surfaced through the engine's stats())
        self.num_created = 0
        self.num_reused = 0
        self.num_discarded = 0
        self.num_stale_retries = 0

    # -- connection lifecycle ---------------------------------------------------
    def _connect(self) -> HTTPConnection:
        conn_cls = HTTPSConnection if self.scheme == "https" else HTTPConnection
        connection = conn_cls(self.host, self.port, timeout=self.timeout_s)
        with self._lock:
            self.num_created += 1
        return connection

    def _acquire(self) -> Tuple[HTTPConnection, bool]:
        """A pooled connection (reused=True) or a fresh one."""
        with self._lock:
            if self._idle:
                self.num_reused += 1
                return self._idle.pop(), True
        return self._connect(), False

    def _release(self, connection: HTTPConnection) -> None:
        with self._lock:
            if len(self._idle) < self.max_idle:
                self._idle.append(connection)
                return
            self.num_discarded += 1
        connection.close()

    def _discard(self, connection: HTTPConnection) -> None:
        with self._lock:
            self.num_discarded += 1
        connection.close()

    def close(self) -> None:
        """Close every idle connection (in-flight ones close on discard)."""
        with self._lock:
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()

    # -- request path -----------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> PoolResponse:
        """One HTTP exchange; transport failures raise ``http.client`` /
        ``OSError`` exceptions for the caller's retry policy."""
        connection, reused = self._acquire()
        try:
            return self._roundtrip(connection, method, path, body, headers)
        except (HTTPException, OSError):
            self._discard(connection)
            if not reused:
                raise
            # stale keep-alive socket: replay once on a fresh connection
            with self._lock:
                self.num_stale_retries += 1
            fresh = self._connect()
            try:
                return self._roundtrip(fresh, method, path, body, headers)
            except (HTTPException, OSError):
                self._discard(fresh)
                raise

    def _roundtrip(
        self,
        connection: HTTPConnection,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Optional[Dict[str, str]],
    ) -> PoolResponse:
        connection.request(
            method, f"{self.path_prefix}{path}", body=body, headers=headers or {}
        )
        response = connection.getresponse()
        payload = response.read()  # drain fully so the socket is reusable
        reply_headers = {
            key.lower(): value for key, value in response.getheaders()
        }
        if response.will_close:
            self._discard(connection)
        else:
            self._release(connection)
        return PoolResponse(response.status, reply_headers, payload)

    def stats(self) -> Dict:
        with self._lock:
            return {
                "base_url": self.base_url,
                "idle": len(self._idle),
                "num_created": self.num_created,
                "num_reused": self.num_reused,
                "num_discarded": self.num_discarded,
                "num_stale_retries": self.num_stale_retries,
            }

    # -- pickling (process-backend rounds ship engine copies) -------------------
    def __getstate__(self) -> Dict:
        state = self.__dict__.copy()
        del state["_lock"]
        state["_idle"] = []  # sockets never cross a process boundary
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
