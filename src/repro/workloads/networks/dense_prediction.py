"""Dense-prediction workloads: UNet, ResUNet, SRGAN, FSRCNN, DLEU.

These networks keep high spatial resolution through most of the model, which
stresses L2 capacity and NoC bandwidth very differently from classification
backbones — exactly why the paper uses them in the robustness studies and the
industrial (Ascend-like) deployment.

``DLEU`` (Deep Learning image Enhancement and Upscaling) is proprietary; per
the substitution rule we model it as a DLSS-2.0-style upscaling network:
a shallow feature extractor on the low-resolution frame, a recurrent-style
fusion stack, and a pixel-shuffle upsampling head.  The operator mix (3x3
convs at video resolutions with modest channel counts) matches the public
description of such workloads.
"""

from __future__ import annotations

from typing import List

from repro.workloads.layers import Conv2D, Gemm, LayerSpec, pointwise_conv
from repro.workloads.network import Network


def unet(resolution: int = 256) -> Network:
    """UNet (Ronneberger et al., 2015) encoder-decoder at ``resolution``^2."""
    r = resolution
    layers: List[LayerSpec] = []

    def enc(name: str, cin: int, cout: int, hw: int) -> None:
        layers.append(
            Conv2D(name=f"{name}_a", in_channels=cin, out_channels=cout, in_h=hw, in_w=hw, kernel=3)
        )
        layers.append(
            Conv2D(name=f"{name}_b", in_channels=cout, out_channels=cout, in_h=hw, in_w=hw, kernel=3)
        )

    enc("enc1", 3, 64, r)
    enc("enc2", 64, 128, r // 2)
    enc("enc3", 128, 256, r // 4)
    enc("enc4", 256, 512, r // 8)
    enc("bottleneck", 512, 1024, r // 16)
    # decoder: upconv (2x2) + two 3x3 convs on concatenated features
    for idx, (cin, cout, hw) in enumerate(
        [(1024, 512, r // 8), (512, 256, r // 4), (256, 128, r // 2), (128, 64, r)],
        start=1,
    ):
        layers.append(
            Conv2D(
                name=f"up{idx}",
                in_channels=cin,
                out_channels=cout,
                in_h=hw,
                in_w=hw,
                kernel=2,
            )
        )
        layers.append(
            Conv2D(
                name=f"dec{idx}_a",
                in_channels=cin,
                out_channels=cout,
                in_h=hw,
                in_w=hw,
                kernel=3,
            )
        )
        layers.append(
            Conv2D(
                name=f"dec{idx}_b",
                in_channels=cout,
                out_channels=cout,
                in_h=hw,
                in_w=hw,
                kernel=3,
            )
        )
    layers.append(pointwise_conv("head", 64, 2, r, r))
    return Network(
        name="unet",
        layers=tuple(layers),
        family="segmentation",
        year=2015,
        description=f"UNet @ {r}x{r}",
    )


def resunet(resolution: int = 256) -> Network:
    """ResUNet-a (Diakogiannis et al., 2020): UNet with residual blocks."""
    r = resolution
    layers: List[LayerSpec] = [
        Conv2D(name="stem", in_channels=3, out_channels=32, in_h=r, in_w=r, kernel=3),
    ]

    def res_block(name: str, ch: int, hw: int, count: int = 1) -> None:
        layers.append(
            Conv2D(
                name=f"{name}_c1",
                count=count,
                in_channels=ch,
                out_channels=ch,
                in_h=hw,
                in_w=hw,
                kernel=3,
            )
        )
        layers.append(
            Conv2D(
                name=f"{name}_c2",
                count=count,
                in_channels=ch,
                out_channels=ch,
                in_h=hw,
                in_w=hw,
                kernel=3,
            )
        )

    res_block("enc1", 32, r, count=2)
    layers.append(pointwise_conv("down1", 32, 64, r // 2, r // 2))
    res_block("enc2", 64, r // 2, count=2)
    layers.append(pointwise_conv("down2", 64, 128, r // 4, r // 4))
    res_block("enc3", 128, r // 4, count=2)
    layers.append(pointwise_conv("down3", 128, 256, r // 8, r // 8))
    res_block("bridge", 256, r // 8, count=2)
    layers.append(pointwise_conv("up3", 256, 128, r // 4, r // 4))
    res_block("dec3", 128, r // 4)
    layers.append(pointwise_conv("up2", 128, 64, r // 2, r // 2))
    res_block("dec2", 64, r // 2)
    layers.append(pointwise_conv("up1", 64, 32, r, r))
    res_block("dec1", 32, r)
    layers.append(pointwise_conv("head", 32, 1, r, r))
    return Network(
        name="resunet",
        layers=tuple(layers),
        family="segmentation",
        year=2020,
        description=f"ResUNet-a @ {r}x{r}",
    )


def srgan(lr_resolution: int = 96) -> Network:
    """SRGAN generator (Ledig et al., 2017): 16 residual blocks + upsampling."""
    r = lr_resolution
    layers: List[LayerSpec] = [
        Conv2D(name="head", in_channels=3, out_channels=64, in_h=r, in_w=r, kernel=9),
        Conv2D(
            name="res_conv",
            count=32,  # 16 residual blocks x 2 convs
            in_channels=64,
            out_channels=64,
            in_h=r,
            in_w=r,
            kernel=3,
        ),
        Conv2D(
            name="post_res", in_channels=64, out_channels=64, in_h=r, in_w=r, kernel=3
        ),
        # two pixel-shuffle upsample stages (conv to 256ch then shuffle 2x)
        Conv2D(
            name="up1", in_channels=64, out_channels=256, in_h=r, in_w=r, kernel=3
        ),
        Conv2D(
            name="up2",
            in_channels=64,
            out_channels=256,
            in_h=2 * r,
            in_w=2 * r,
            kernel=3,
        ),
        Conv2D(
            name="tail",
            in_channels=64,
            out_channels=3,
            in_h=4 * r,
            in_w=4 * r,
            kernel=9,
        ),
    ]
    return Network(
        name="srgan",
        layers=tuple(layers),
        family="sr",
        year=2017,
        description=f"SRGAN generator, LR {r}x{r} -> {4 * r}x{4 * r}",
    )


def fsrcnn(height: int = 120, width: int = 320, scale: int = 2) -> Network:
    """FSRCNN (Dong et al., 2016) with d=56, s=12, m=4 at a given LR size.

    The industrial study (Fig. 11) evaluates FSRCNN at several video
    resolutions; ``height`` x ``width`` is the low-resolution input.
    """
    d, s, m = 56, 12, 4
    layers: List[LayerSpec] = [
        Conv2D(
            name="feature",
            in_channels=1,
            out_channels=d,
            in_h=height,
            in_w=width,
            kernel=5,
        ),
        pointwise_conv("shrink", d, s, height, width),
        Conv2D(
            name="map",
            count=m,
            in_channels=s,
            out_channels=s,
            in_h=height,
            in_w=width,
            kernel=3,
        ),
        pointwise_conv("expand", s, d, height, width),
        # deconvolution 9x9 modeled as conv at the upscaled resolution
        Conv2D(
            name="deconv",
            in_channels=d,
            out_channels=1,
            in_h=scale * height,
            in_w=scale * width,
            kernel=9,
        ),
    ]
    return Network(
        name=f"fsrcnn_{height}x{width}",
        layers=tuple(layers),
        family="sr",
        year=2016,
        description=f"FSRCNN d56s12m4, LR {height}x{width}, x{scale}",
    )


def dleu(height: int = 270, width: int = 480, scale: int = 2) -> Network:
    """DLEU: DLSS-style deep-learning enhancement & upscaling (substitute).

    Proprietary in the paper; modeled as a shallow video-upscaler: feature
    extraction on the LR frame (+ motion features), a fusion trunk of 3x3
    convs, and a pixel-shuffle head.  See module docstring for rationale.
    """
    layers: List[LayerSpec] = [
        Conv2D(
            name="feat_rgb",
            in_channels=3,
            out_channels=32,
            in_h=height,
            in_w=width,
            kernel=3,
        ),
        Conv2D(
            name="feat_motion",
            in_channels=4,  # motion vectors + depth
            out_channels=16,
            in_h=height,
            in_w=width,
            kernel=3,
        ),
        Conv2D(
            name="fuse",
            in_channels=48,
            out_channels=48,
            in_h=height,
            in_w=width,
            kernel=3,
            count=6,
        ),
        pointwise_conv("bottleneck", 48, 32, height, width),
        Conv2D(
            name="upsample",
            in_channels=32,
            out_channels=3 * scale * scale,
            in_h=height,
            in_w=width,
            kernel=3,
        ),
        Conv2D(
            name="refine",
            in_channels=3,
            out_channels=3,
            in_h=scale * height,
            in_w=scale * width,
            kernel=3,
        ),
    ]
    return Network(
        name="dleu",
        layers=tuple(layers),
        family="sr",
        year=2020,
        description=f"DLEU-style upscaler, LR {height}x{width}, x{scale}",
    )
