"""Append-only, crash-safe JSONL event journal for tracked search runs.

A search that spans days of simulated MAESTRO / cycle-accurate time is an
experiment whose *trajectory* matters as much as its final front: which
hardware was sampled, which MSH candidates were promoted on TV vs AUC,
which batch members the UUL rule admitted into the surrogate, when the
Pareto front grew.  The journal records those decisions as typed events,
one JSON object per line:

    {"seq": 17, "type": "iteration_end", "time_s": 1234.5, ...payload}

Crash safety comes from two properties:

* **Atomic line appends** — every event is serialized to one complete
  line and written with a single ``os.write`` on an ``O_APPEND`` file
  descriptor, so concurrent writers interleave whole lines and a crash
  can only lose (truncate) the final line, never corrupt earlier ones.
* **Tolerant reads** — :func:`read_events` stops at the first malformed
  or unterminated line and reports it as a truncated tail instead of
  failing, so a journal cut mid-write is still fully usable up to the
  last complete event.

``fsync=True`` additionally flushes each line to stable storage before
returning — the right trade for cycle-accurate runs where one event per
2-10 simulated minutes is cheap insurance.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import TrackingError

#: The journal's own format version, stamped on every ``run_start`` event.
JOURNAL_VERSION = 1

#: Event types emitted by :class:`~repro.tracking.tracker.JournalTracker`,
#: plus ``span``, written by
#: :class:`~repro.obs.trace.JournalSpanSink` and carrying its own
#: ``span_schema`` version so the span payload can grow independently of
#: :data:`JOURNAL_VERSION`.  Readers are type-agnostic (forward-compat):
#: replay/resume tooling filters by the types it understands.
EVENT_TYPES = (
    "run_start",
    "resume",
    "iteration_start",
    "hw_sampled",
    "msh_round",
    "surrogate_update",
    "evaluation",
    "pareto_update",
    "engine_snapshot",
    "checkpoint",
    "iteration_end",
    "run_end",
    "span",
    # additive (journal version unchanged): per-candidate engine samples
    # for learned-model training, and the learned-model provenance stamp
    # of a screened run.  Replay/resume of journals without them — and of
    # journals with them, by older readers — is unaffected because all
    # consumers filter by type.
    "engine_sample",
    "learned_model",
)


@dataclass
class JournalScan:
    """Outcome of reading a journal file from disk."""

    events: List[Dict] = field(default_factory=list)
    #: bytes of a trailing partial/corrupt line (crash artifact), if any
    truncated_tail: bool = False
    last_seq: int = -1
    #: byte offset just past the last complete, parseable line — the safe
    #: truncation point when reopening a crash-damaged journal for append
    valid_bytes: int = 0

    def of_type(self, event_type: str) -> List[Dict]:
        return [e for e in self.events if e.get("type") == event_type]


class EventJournal:
    """Writer for one run's ``journal.jsonl``.

    Sequence numbers are monotonically increasing per journal; a resumed
    run continues from the last complete event's ``seq`` (see
    :meth:`open_resume`).  The writer is thread-safe — the ``thread`` job
    runner backend may surface events from worker threads.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        fsync: bool = False,
        _next_seq: int = 0,
    ):
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self._next_seq = _next_seq
        self._lock = threading.Lock()
        self._fd: Optional[int] = None

    @classmethod
    def open_resume(
        cls, path: Union[str, pathlib.Path], fsync: bool = False
    ) -> "EventJournal":
        """Open an existing journal, continuing its sequence numbering.

        If the journal carries crash damage (a partial final line, or
        corruption that :func:`read_events` would stop at), the file is
        first truncated back to the end of its last complete line —
        otherwise the next ``O_APPEND`` write would weld onto the partial
        bytes and form one malformed line, poisoning every later event.
        """
        scan = read_events(path)
        if scan.truncated_tail:
            os.truncate(str(path), scan.valid_bytes)
        return cls(path, fsync=fsync, _next_seq=scan.last_seq + 1)

    # ------------------------------------------------------------------ write
    def _ensure_open(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self._fd

    def append(self, event_type: str, payload: Optional[Dict] = None) -> int:
        """Write one event atomically; returns its sequence number."""
        if event_type not in EVENT_TYPES:
            raise TrackingError(
                f"unknown event type {event_type!r}; use one of {EVENT_TYPES}"
            )
        record = {"seq": 0, "type": event_type}
        record.update(payload or {})
        with self._lock:
            record["seq"] = self._next_seq
            line = json.dumps(record, sort_keys=True, default=_jsonable) + "\n"
            data = line.encode("utf-8")
            fd = self._ensure_open()
            written = os.write(fd, data)
            if written != len(data):  # pragma: no cover - disk-full path
                raise TrackingError(
                    f"short write to journal {self.path} "
                    f"({written}/{len(data)} bytes)"
                )
            if self.fsync:
                os.fsync(fd)
            self._next_seq += 1
            return record["seq"]

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _jsonable(value):
    """Fallback serializer: NumPy scalars/arrays and everything repr-able."""
    from repro.utils.records import to_jsonable

    return to_jsonable(value)


# ---------------------------------------------------------------------- read
def iter_events(path: Union[str, pathlib.Path]) -> Iterator[Dict]:
    """Yield complete events in order; silently stops at a truncated tail."""
    yield from read_events(path).events


def read_events(path: Union[str, pathlib.Path]) -> JournalScan:
    """Read a journal, tolerating a crash-truncated final line.

    Raises :class:`TrackingError` only if the file is missing — corruption
    confined to the tail is expected after a kill and is reported through
    :attr:`JournalScan.truncated_tail`.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise TrackingError(f"journal {path} does not exist")
    scan = JournalScan()
    raw = path.read_bytes()
    if not raw:
        return scan
    lines = raw.split(b"\n")
    # a journal written exclusively via atomic line appends ends with "\n";
    # anything after the final newline is a partial (crashed) write
    complete, tail = lines[:-1], lines[-1]
    if tail:
        scan.truncated_tail = True
    for line in complete:
        if not line.strip():
            scan.valid_bytes += len(line) + 1
            continue
        try:
            event = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            # corruption mid-file: everything after it is untrustworthy
            scan.truncated_tail = True
            break
        scan.events.append(event)
        scan.valid_bytes += len(line) + 1
    if scan.events:
        scan.last_seq = int(scan.events[-1].get("seq", len(scan.events) - 1))
    return scan


def verify_sequence(scan: JournalScan) -> None:
    """Assert the scan's events carry contiguous sequence numbers from 0."""
    for expected, event in enumerate(scan.events):
        seq = event.get("seq")
        if seq != expected:
            raise TrackingError(
                f"journal sequence broken at position {expected}: "
                f"expected seq {expected}, found {seq!r}"
            )


__all__ = [
    "EVENT_TYPES",
    "JOURNAL_VERSION",
    "EventJournal",
    "JournalScan",
    "iter_events",
    "read_events",
    "verify_sequence",
]
