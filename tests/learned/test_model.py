"""LearnedCostModel: fit, predict, gradients, serialization, guards."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, EvaluationError
from repro.learned import FEATURE_VERSION, LearnedCostModel, feature_dim


def _synthetic(n=120, seed=3):
    """A fast synthetic regression problem with known structure.

    Targets depend linearly on a few feature columns in log space, so
    even a tiny ensemble should recover the ranking.
    """
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, feature_dim()))
    latency = np.exp(0.8 * x[:, 0] - 0.5 * x[:, 20] + 0.05 * rng.normal(size=n))
    energy = np.exp(0.4 * x[:, 1] + 0.3 * x[:, 21] + 0.05 * rng.normal(size=n))
    feasible = x[:, 5] > -1.0
    latency[~feasible] = np.inf
    energy[~feasible] = np.inf
    return x, latency, energy, feasible


def _fit_synthetic(**kwargs):
    x, latency, energy, feasible = _synthetic()
    defaults = dict(seed=0, hidden=16, ensemble=2, epochs=120)
    defaults.update(kwargs)
    return (
        LearnedCostModel.fit(x, latency, energy, feasible, **defaults),
        (x, latency, energy, feasible),
    )


class TestFitPredict:
    def test_smoke_fit_and_rank(self):
        model, (x, latency, _energy, feasible) = _fit_synthetic()
        mean, std = model.predict(x)
        assert mean.shape == (len(x), 2)
        assert std.shape == (len(x), 2)
        assert np.all(std > 0)
        # ranking of feasible rows should correlate strongly with truth
        rows = np.flatnonzero(feasible)
        true_rank = np.argsort(np.argsort(latency[rows]))
        pred_rank = np.argsort(np.argsort(mean[rows, 0]))
        rho = np.corrcoef(true_rank, pred_rank)[0, 1]
        assert rho > 0.8

    def test_deterministic_under_seed(self):
        model_a, (x, *_rest) = _fit_synthetic()
        model_b, _ = _fit_synthetic()
        assert np.array_equal(model_a.predict(x)[0], model_b.predict(x)[0])

    def test_feasibility_head(self):
        model, (x, _lat, _eng, feasible) = _fit_synthetic()
        proba = model.feasible_proba(x)
        assert proba.shape == (len(x),)
        accuracy = ((proba >= 0.5) == feasible).mean()
        assert accuracy > 0.7

    def test_objective_scores(self):
        model, (x, *_rest) = _fit_synthetic()
        lat, _ = model.predict_objective(x, "latency")
        edp, _ = model.predict_objective(x, "edp")
        mean, _ = model.predict(x)
        assert lat == pytest.approx(mean[:, 0])
        assert edp == pytest.approx(mean.sum(axis=1))
        with pytest.raises(ConfigurationError, match="unknown objective"):
            model.predict_objective(x, "power")

    def test_grad_matches_finite_difference(self):
        model, (x, *_rest) = _fit_synthetic()
        row = x[0]
        score, grad = model.grad_objective(row, "latency")
        eps = 1e-6
        for dim in (0, 5, 20):
            bumped = row.copy()
            bumped[dim] += eps
            bumped_score, _ = model.grad_objective(bumped, "latency")
            assert (bumped_score - score) / eps == pytest.approx(
                grad[dim], rel=1e-3, abs=1e-6
            )

    def test_needs_enough_feasible_rows(self):
        x = np.random.default_rng(0).normal(size=(20, feature_dim()))
        latency = np.full(20, np.inf)
        with pytest.raises(ConfigurationError, match="feasible samples"):
            LearnedCostModel.fit(x, latency, latency, np.zeros(20, dtype=bool))

    def test_rejects_wrong_feature_width(self):
        model, _ = _fit_synthetic()
        with pytest.raises(EvaluationError, match="feature width"):
            model.predict(np.zeros((4, feature_dim() + 1)))


class TestSerialization:
    def test_save_load_round_trip(self, tmp_path):
        model, (x, *_rest) = _fit_synthetic()
        path = tmp_path / "model.json"
        model.save(path)
        loaded = LearnedCostModel.load(path)
        assert np.array_equal(model.predict(x)[0], loaded.predict(x)[0])
        assert np.array_equal(model.predict(x)[1], loaded.predict(x)[1])
        assert loaded.calibration == model.calibration
        assert loaded.meta["n_train"] == model.meta["n_train"]

    def test_artifact_is_plain_json(self, tmp_path):
        model, _ = _fit_synthetic()
        path = tmp_path / "model.json"
        model.save(path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro.learned.model"
        assert data["feature_version"] == FEATURE_VERSION

    def test_load_rejects_feature_version_mismatch(self, tmp_path):
        model, _ = _fit_synthetic()
        data = model.to_dict()
        data["feature_version"] = FEATURE_VERSION + 1
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError, match="feature version"):
            LearnedCostModel.load(path)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            LearnedCostModel.load(path)


class TestOnRealPPA:
    def test_fits_analytical_labels(self, labelled_batch):
        x, latency, energy, feasible = labelled_batch
        if feasible.sum() < 8:
            pytest.skip("sampled batch too infeasible for this hw")
        model = LearnedCostModel.fit(
            x, latency, energy, feasible, seed=0, hidden=16, ensemble=2, epochs=80
        )
        mean, _std = model.predict(x[feasible])
        err = np.abs(mean[:, 0] - np.log(latency[feasible]))
        assert float(err.mean()) < 1.0  # within ~e^1 of truth on train data
