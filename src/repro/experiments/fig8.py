"""Figure 8: is the metric R a reliable indicator of HW generalization?

Protocol of Section 4.3:

1. run UNICO *without* the sensitivity objective on the training set
   {UNET, SRGAN, BERT} (merged multi-workload),
2. on the resulting Pareto front, select pairs of designs whose training
   PPAs differ by less than ``pair_tolerance`` (10% in the paper),
3. compute R for each member (the robustness metric is recorded for every
   evaluated design regardless of whether it was an objective),
4. run an individual SW mapping search for each member on every validation
   network {ResNet, ResUNet, VIT, MobileNet},
5. check that the lower-R member of each pair achieves lower average
   validation latency.

The headline statistic is ``fraction_pairs_consistent`` — how often the
more-robust (smaller R) design wins on unseen workloads.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.base import HWDesign
from repro.experiments.harness import run_method, sw_search_on
from repro.experiments.presets import Preset, get_preset
from repro.utils.records import RunRecord
from repro.workloads import FIG8_TRAIN, FIG8_VALIDATION


def select_comparable_pairs(
    designs: Sequence[HWDesign],
    tolerance: float = 0.10,
    max_pairs: int = 3,
) -> List[Tuple[int, int]]:
    """Indices of design pairs with similar PPA but different R.

    Similarity: every PPA component within ``tolerance`` relative
    difference.  Pairs are ranked by how much their R values differ, so the
    contrast the figure relies on is maximal.
    """
    candidates: List[Tuple[float, int, int]] = []
    for i in range(len(designs)):
        for j in range(i + 1, len(designs)):
            a = designs[i].ppa_vector
            b = designs[j].ppa_vector
            relative = np.abs(a - b) / np.maximum(np.abs(a), 1e-30)
            if np.all(relative <= tolerance):
                r_i = designs[i].robustness.r_value
                r_j = designs[j].robustness.r_value
                if np.isfinite(r_i) and np.isfinite(r_j) and r_i != r_j:
                    candidates.append((-abs(r_i - r_j), i, j))
    candidates.sort()
    return [(i, j) for _gap, i, j in candidates[:max_pairs]]


def run_fig8(
    preset: Union[str, Preset] = "smoke",
    seed: int = 0,
    train_networks: Sequence[str] = FIG8_TRAIN,
    validation_networks: Sequence[str] = FIG8_VALIDATION,
    pair_tolerance: float = 0.10,
    max_pairs: int = 3,
    scenario: str = "edge",
) -> RunRecord:
    """Run the full R-reliability study."""
    preset = get_preset(preset) if isinstance(preset, str) else preset
    result = run_method("unico_no_r", scenario, list(train_networks), preset, seed=seed)
    designs = list(result.pareto.items)

    record = RunRecord("fig8")
    record.put("train_networks", list(train_networks))
    record.put("validation_networks", list(validation_networks))
    record.put("pareto_size", len(designs))
    record.put(
        "pareto_points",
        [
            {
                "latency_ms": d.ppa.latency_s * 1e3,
                "power_mw": d.ppa.power_w * 1e3,
                "r_value": d.robustness.r_value,
            }
            for d in designs
        ],
    )

    pairs = select_comparable_pairs(designs, pair_tolerance, max_pairs)
    # widen the tolerance if the front is too sparse for close pairs
    widened = pair_tolerance
    while not pairs and widened < 1.0 and len(designs) >= 2:
        widened *= 2.0
        pairs = select_comparable_pairs(designs, widened, max_pairs)
    record.put("pair_tolerance_used", widened)
    record.put("num_pairs", len(pairs))

    consistent = 0
    for pair_index, (i, j) in enumerate(pairs):
        robust_idx, fragile_idx = (
            (i, j)
            if designs[i].robustness.r_value <= designs[j].robustness.r_value
            else (j, i)
        )
        pair_record = record.child(f"pair_{pair_index}")
        latencies = {"robust": [], "fragile": []}
        for v_index, validation in enumerate(validation_networks):
            for label, idx in (("robust", robust_idx), ("fragile", fragile_idx)):
                trial = sw_search_on(
                    designs[idx].hw,
                    validation,
                    scenario,
                    budget=preset.validation_budget,
                    seed=seed * 100 + v_index,
                )
                latency = trial.best_ppa.latency_s
                latencies[label].append(latency)
                pair_record.child(validation).put(
                    f"{label}_latency_ms",
                    latency * 1e3 if np.isfinite(latency) else float("inf"),
                )
        robust_mean = float(np.mean(latencies["robust"]))
        fragile_mean = float(np.mean(latencies["fragile"]))
        pair_record.put("robust_r", designs[robust_idx].robustness.r_value)
        pair_record.put("fragile_r", designs[fragile_idx].robustness.r_value)
        pair_record.put("robust_mean_latency_ms", robust_mean * 1e3)
        pair_record.put("fragile_mean_latency_ms", fragile_mean * 1e3)
        wins = robust_mean <= fragile_mean
        pair_record.put("robust_wins", bool(wins))
        if wins:
            gain = 100.0 * (fragile_mean - robust_mean) / max(fragile_mean, 1e-30)
            pair_record.put("robust_gain_pct", gain)
            consistent += 1
    record.put(
        "fraction_pairs_consistent",
        consistent / len(pairs) if pairs else None,
    )
    return record
