"""The pre-vectorization MOBO batch sampler, preserved as a benchmark baseline.

This is the outer loop as it stood before the structure-of-arrays rewrite
of :mod:`repro.optim.mobo`: a fresh 512-candidate pool drawn *and encoded*
per batch slot, a per-row Python loop for the ParEGO scalarization, a full
:math:`O(n^3)` GP re-factorization per slot, and finite-difference
marginal-likelihood fitting.  ``benchmarks/test_bench_outer_loop.py``
measures the vectorized sampler against this implementation and gates the
speedup; nothing in the production search path imports it.

Kept deliberately verbatim (same RNG call sequence, same numerics) so the
baseline cannot silently drift as the main sampler evolves.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.hw.space import DiscreteDesignSpace
from repro.obs.trace import NULL_TRACER
from repro.optim.acquisition import expected_improvement
from repro.optim.gp import GaussianProcess, GPHyperparameters
from repro.optim.scalarize import DEFAULT_RHO, sample_weight_vector, uniform_weights
from repro.utils.rng import SeedLike, as_generator


def _parego_scalar_loop(
    objectives: Sequence[float], weights: Sequence[float], rho: float
) -> float:
    """The original scalar augmented-Tchebycheff formula (BLAS ``ddot``)."""
    y = np.asarray(objectives, dtype=float)
    w = np.asarray(weights, dtype=float)
    if y.shape != w.shape:
        raise ValueError(f"objectives {y.shape} vs weights {w.shape}")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"weights must sum to 1, got {total}")
    if not np.all(np.isfinite(y)):
        return float("inf")
    return float(np.max(w * y) + rho * float(y @ w))


def parego_scalars_loop(
    objective_matrix: np.ndarray,
    weights: Sequence[float],
    rho: float = DEFAULT_RHO,
) -> np.ndarray:
    """The original per-row Python loop behind ``parego_scalars``."""
    matrix = np.asarray(objective_matrix, dtype=float)
    return np.array([_parego_scalar_loop(row, weights, rho) for row in matrix])


class LegacyMOBOSampler:
    """The pre-PR batched hardware sampler (per-slot pools and refits)."""

    def __init__(
        self,
        space: DiscreteDesignSpace,
        num_objectives: int,
        seed: SeedLike = None,
        kernel: str = "matern52",
        rho: float = 0.2,
        pool_size: int = 512,
        min_observations: int = 8,
    ):
        self.space = space
        self.num_objectives = num_objectives
        self.rng = as_generator(seed)
        self.kernel = kernel
        self.rho = rho
        self.pool_size = pool_size
        self.min_observations = min_observations
        self._shared_hyper: Optional[GPHyperparameters] = None
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------ pools
    def _candidate_pool(
        self,
        exclude_keys: Set[Tuple],
        incumbents: Sequence,
    ) -> List:
        """Random configs + local mutations of incumbents, de-duplicated."""
        pool: List = []
        keys = set(exclude_keys)
        attempts = 0
        target_random = self.pool_size
        while len(pool) < target_random and attempts < 20 * target_random:
            candidate = self.space.sample(self.rng)
            key = self.space.config_key(candidate)
            if key not in keys:
                keys.add(key)
                pool.append(candidate)
            attempts += 1
        for incumbent in incumbents:
            for _ in range(4):
                candidate = self.space.mutate(incumbent, self.rng, num_moves=1)
                key = self.space.config_key(candidate)
                if key not in keys:
                    keys.add(key)
                    pool.append(candidate)
        return pool

    # ---------------------------------------------------------------- suggest
    def suggest_batch(
        self,
        train_configs: Sequence,
        train_objectives: np.ndarray,
        batch_size: int,
        incumbents: Sequence = (),
    ) -> List:
        """Propose ``batch_size`` new configurations (pre-PR algorithm)."""
        observed_keys = {self.space.config_key(c) for c in train_configs}
        if len(train_configs) < self.min_observations:
            return self._random_batch(batch_size, observed_keys)

        x_train = np.vstack([self.space.encode(c) for c in train_configs])
        y_train = np.asarray(train_objectives, dtype=float)
        if y_train.ndim != 2 or y_train.shape[1] != self.num_objectives:
            raise ValueError(
                f"expected objectives of shape (n, {self.num_objectives}), "
                f"got {y_train.shape}"
            )

        # one finite-difference marginal-likelihood optimization per iteration
        uniform_scalar = parego_scalars_loop(
            y_train, uniform_weights(self.num_objectives), self.rho
        )
        shared_gp = GaussianProcess(self.kernel)
        shared_gp.fit(
            x_train,
            uniform_scalar,
            seed=int(self.rng.integers(0, 2**31)),
            num_restarts=1,
            use_gradient=False,
        )
        self._shared_hyper = shared_gp.hyper

        batch: List = []
        batch_keys: Set[Tuple] = set()
        for _slot in range(batch_size):
            # one ParEGO scalarization + GP refit + EI maximization per slot
            weights = sample_weight_vector(self.num_objectives, self.rng)
            scalar = parego_scalars_loop(y_train, weights, self.rho)
            gp = GaussianProcess(self.kernel)
            gp.fit(x_train, scalar, hyper=self._shared_hyper)
            pool = self._candidate_pool(observed_keys | batch_keys, incumbents)
            if not pool:
                break
            x_pool = np.vstack([self.space.encode(c) for c in pool])
            mean, std = gp.predict(x_pool)
            ei = expected_improvement(mean, std, best=float(scalar.min()))
            chosen = pool[int(np.argmax(ei))]
            batch.append(chosen)
            batch_keys.add(self.space.config_key(chosen))
        # top up with randoms if pools were exhausted
        if len(batch) < batch_size:
            batch.extend(
                self._random_batch(
                    batch_size - len(batch), observed_keys | batch_keys
                )
            )
        return batch

    def _random_batch(self, count: int, exclude_keys: Set[Tuple]) -> List:
        batch: List = []
        keys = set(exclude_keys)
        attempts = 0
        while len(batch) < count and attempts < max(1000, 100 * count):
            candidate = self.space.sample(self.rng)
            key = self.space.config_key(candidate)
            if key not in keys:
                keys.add(key)
                batch.append(candidate)
            attempts += 1
        return batch
