"""Declarative SLO rules over the metrics store, with hold and hysteresis.

The scrape loop calls :meth:`AlertManager.evaluate` once per tick; rules
are pure declarations over :class:`~repro.obs.timeseries.MetricsStore`
queries, and the manager owns the per-(rule, target) state machine:

    inactive --cond true--> pending --held for_s--> firing
    firing --cond false held resolve_for_s--> resolved (-> inactive)

* ``for_s`` is the Prometheus ``for:`` hold — a condition must stay true
  that long before the alert fires, so one noisy tick cannot page;
* ``resolve_for_s`` is the symmetric resolve hold, and ``resolve_value``
  is optional hysteresis: while firing, the condition is re-evaluated
  against the resolve threshold instead of the firing one, so a series
  oscillating across the firing threshold does not flap.

Rule kinds:

``threshold``
    Compare a query (``mode``: ``value``/``rate``/``increase``/
    ``ratio_rate``) against ``value`` with ``op``.  ``ratio_rate``
    divides the series' rate by ``denominator``'s rate (error-rate
    style); a zero denominator reads as ratio 0.
``absence``
    Fire when a series that has reported before goes silent for
    ``window_s``.
``rate_drop``
    Fire when the current window's rate falls below ``value`` times the
    preceding window's rate (throughput collapse without an absolute
    floor).
``stall``
    Fire when ``progress_series`` advanced by at least ``min_progress``
    over the window while ``series`` improved by no more than ``value``
    (relative) — the hypervolume-stall detector.

A rule whose query returns ``None`` (series never seen on the target) is
skipped for that target: absent telemetry is not the same as a bad
signal, and the built-in ``replica_down`` rule covers the scraped-target
disappearance case via the pipeline's explicit ``up`` series.

Rules may gate on activity (``activation_window_s``): the condition only
arms once the series has shown a positive increase within that lookback.
The ``evals_per_sec_floor`` built-in uses this so an idle fleet (no
search running yet) does not page, while a replica that *was* serving
evaluations and stopped does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.timeseries import MetricsStore, counter_increase

__all__ = [
    "Alert",
    "AlertManager",
    "Rule",
    "builtin_rules",
]

_KINDS = ("threshold", "absence", "rate_drop", "stall")
_MODES = ("value", "rate", "increase", "ratio_rate")
_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


@dataclass(frozen=True)
class Rule:
    """One declarative SLO rule; see the module docstring for semantics."""

    name: str
    series: str
    kind: str = "threshold"
    op: str = ">"
    value: float = 0.0
    mode: str = "value"
    #: ratio_rate denominator series (required for that mode)
    denominator: Optional[str] = None
    window_s: float = 60.0
    for_s: float = 0.0
    resolve_for_s: float = 0.0
    #: hysteresis: threshold used while firing (defaults to ``value``)
    resolve_value: Optional[float] = None
    #: fnmatch patterns of targets the rule applies to
    targets: Tuple[str, ...] = ("*",)
    description: str = ""
    #: stall: the series that must advance for a stall to be meaningful
    progress_series: Optional[str] = None
    #: stall: minimum progress_series advance per window
    min_progress: float = 1.0
    #: threshold: arm only after the series increased within this lookback
    activation_window_s: Optional[float] = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(use one of {_KINDS})"
            )
        if self.op not in _OPS:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown op {self.op!r}"
            )
        if self.mode not in _MODES:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown mode {self.mode!r} "
                f"(use one of {_MODES})"
            )
        if self.mode == "ratio_rate" and not self.denominator:
            raise ConfigurationError(
                f"rule {self.name!r}: ratio_rate needs a denominator series"
            )
        if self.kind == "stall" and not self.progress_series:
            raise ConfigurationError(
                f"rule {self.name!r}: stall needs a progress_series"
            )
        if self.window_s <= 0.0:
            raise ConfigurationError(
                f"rule {self.name!r}: window_s must be > 0"
            )
        if self.for_s < 0.0 or self.resolve_for_s < 0.0:
            raise ConfigurationError(
                f"rule {self.name!r}: hold durations must be >= 0"
            )

    def matches(self, target: str) -> bool:
        return any(fnmatchcase(target, pattern) for pattern in self.targets)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "series": self.series,
            "kind": self.kind,
            "op": self.op,
            "value": self.value,
            "mode": self.mode,
            "denominator": self.denominator,
            "window_s": self.window_s,
            "for_s": self.for_s,
            "resolve_for_s": self.resolve_for_s,
            "resolve_value": self.resolve_value,
            "targets": list(self.targets),
            "description": self.description,
            "progress_series": self.progress_series,
            "min_progress": self.min_progress,
            "activation_window_s": self.activation_window_s,
        }


@dataclass
class Alert:
    """Live state of one (rule, target) pair."""

    rule: str
    target: str
    #: "pending" | "firing"
    state: str = "pending"
    since_t: float = 0.0
    fired_t: Optional[float] = None
    #: last observed condition value (for dashboards)
    value: Optional[float] = None
    description: str = ""
    #: while firing: when the condition first went continuously false
    clear_since_t: Optional[float] = None

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "target": self.target,
            "state": self.state,
            "since_t": self.since_t,
            "fired_t": self.fired_t,
            "value": self.value,
            "description": self.description,
        }


def builtin_rules(
    interval_s: float,
    evals_floor_per_s: float = 0.5,
    error_rate_max: float = 0.05,
    queue_depth_max: float = 10.0,
    hv_stall_window_s: float = 600.0,
    hv_stall_min_iterations: float = 3.0,
) -> List[Rule]:
    """The shipped SLO rules, with windows scaled to the scrape interval."""
    window = max(2.0 * interval_s, 1e-6)
    return [
        Rule(
            name="replica_down",
            series="up",
            kind="threshold",
            op="<",
            value=1.0,
            mode="value",
            window_s=window,
            for_s=0.0,
            resolve_for_s=interval_s,
            targets=("replica:*",),
            description="replica failed its scrape",
        ),
        Rule(
            name="breaker_open",
            series="remote_circuit_opened_total",
            kind="threshold",
            op=">",
            value=0.0,
            mode="increase",
            window_s=window,
            resolve_for_s=2.0 * interval_s,
            targets=("*",),
            description="a client circuit breaker opened",
        ),
        Rule(
            name="evals_per_sec_floor",
            series="engine_queries_total",
            kind="threshold",
            op="<",
            value=evals_floor_per_s,
            mode="rate",
            window_s=window,
            for_s=0.0,
            resolve_for_s=interval_s,
            # hysteresis: resolve only once clearly back above the floor
            resolve_value=evals_floor_per_s * 1.5,
            targets=("replica:*", "fleet"),
            description="engine evaluation rate below floor",
            activation_window_s=max(30.0 * interval_s, 10.0 * window),
        ),
        Rule(
            name="http_error_rate",
            series="service_errors_total",
            kind="threshold",
            op=">",
            value=error_rate_max,
            mode="ratio_rate",
            denominator="service_requests_total",
            window_s=max(5.0 * interval_s, window),
            for_s=interval_s,
            resolve_for_s=2.0 * interval_s,
            targets=("replica:*", "fleet"),
            description="HTTP error rate above budget",
        ),
        Rule(
            name="queue_depth",
            series="hub_queue_depth",
            kind="threshold",
            op=">",
            value=queue_depth_max,
            mode="value",
            window_s=window,
            for_s=2.0 * interval_s,
            resolve_for_s=interval_s,
            targets=("hub",),
            description="scheduler queue backing up",
        ),
        Rule(
            name="hv_stall",
            series="search_hypervolume",
            kind="stall",
            op=">",  # unused by stall, kept valid
            value=1e-4,  # relative improvement considered progress
            window_s=hv_stall_window_s,
            min_progress=hv_stall_min_iterations,
            progress_series="search_iteration",
            resolve_for_s=interval_s,
            targets=("run:*",),
            description="hypervolume flat while iterations advance",
        ),
    ]


class AlertManager:
    """Evaluate rules each tick and drive the alert state machines.

    ``on_transition(event_dict)`` is called for every ``firing`` /
    ``resolved`` transition — the pipeline journals these and counts
    them in the hub registry.  ``history`` keeps the last
    ``history_limit`` transitions for ``GET /alerts``.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        on_transition: Optional[Callable[[Dict], None]] = None,
        history_limit: int = 256,
    ):
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate rule names: {sorted(names)}"
            )
        self.rules = list(rules)
        self.on_transition = on_transition
        self.history_limit = history_limit
        self.history: List[Dict] = []
        self._states: Dict[Tuple[str, str], Alert] = {}

    # ------------------------------------------------------------ conditions
    def _condition_value(
        self, store: MetricsStore, rule: Rule, target: str, now: float
    ) -> Optional[float]:
        """The raw number the rule compares (None = not evaluable)."""
        if rule.kind == "absence":
            points = store.series(
                target, rule.series, start_t=now - rule.window_s, end_t=now
            )
            if points:
                return 0.0
            if store._series_ever(target, rule.series, now):
                return 1.0  # seen before, silent now
            return None
        if rule.kind == "rate_drop":
            current = store.query(
                target, rule.series, "rate", rule.window_s, now=now
            )
            previous = store.query(
                target, rule.series, "rate", rule.window_s,
                now=now - rule.window_s,
            )
            if current is None or previous is None or previous <= 0.0:
                return None
            return current / previous
        if rule.kind == "stall":
            progress = store.series(
                target, rule.progress_series,
                start_t=now - rule.window_s, end_t=now,
            )
            signal = store.series(
                target, rule.series, start_t=now - rule.window_s, end_t=now
            )
            if len(progress) < 2 or len(signal) < 2:
                return None
            advanced = progress[-1][1] - progress[0][1]
            if advanced < rule.min_progress:
                return None  # not enough work done to call it a stall
            base = abs(signal[0][1])
            improvement = signal[-1][1] - signal[0][1]
            return improvement / base if base > 0.0 else improvement
        # threshold
        if rule.mode == "value":
            return store.query(
                target, rule.series, "last", rule.window_s, now=now
            )
        if rule.mode in ("rate", "increase"):
            return store.query(
                target, rule.series, rule.mode, rule.window_s, now=now
            )
        # ratio_rate
        numerator = store.query(
            target, rule.series, "rate", rule.window_s, now=now
        )
        denominator = store.query(
            target, rule.denominator, "rate", rule.window_s, now=now
        )
        if numerator is None or denominator is None:
            return None
        return numerator / denominator if denominator > 0.0 else 0.0

    def _condition(
        self,
        store: MetricsStore,
        rule: Rule,
        target: str,
        now: float,
        firing: bool,
    ) -> Tuple[Optional[bool], Optional[float]]:
        value = self._condition_value(store, rule, target, now)
        if value is None:
            return None, None
        if rule.kind == "absence":
            return value >= 1.0, value
        if rule.kind in ("rate_drop", "stall"):
            # both fire when the observed ratio/improvement is "too small"
            return value <= rule.value, value
        if rule.activation_window_s is not None and not firing:
            if not self._activation_open(store, rule, target, now):
                return False, value
        threshold = rule.value
        if firing and rule.resolve_value is not None:
            threshold = rule.resolve_value
        return _OPS[rule.op](value, threshold), value

    def _activation_open(
        self, store: MetricsStore, rule: Rule, target: str, now: float
    ) -> bool:
        """True once the series showed real traffic within the lookback.

        Counters register lazily on the first event, so a series that is
        *born* inside the lookback at a positive value is growth too —
        without that case a replica whose only samples are post-burst and
        flat (e.g. it served one query between two scrapes) never arms.
        """
        start = now - rule.activation_window_s
        lookback = store.series(
            target, rule.series, start_t=start, end_t=now
        )
        if counter_increase(lookback) > 0.0:
            return True
        if not lookback or lookback[0][1] <= 0.0:
            return False
        full = store.series(target, rule.series)
        return bool(full) and full[0][0] >= start

    # ------------------------------------------------------------- evaluate
    def evaluate(
        self,
        store: MetricsStore,
        now: Optional[float] = None,
        targets: Optional[Sequence[str]] = None,
    ) -> List[Dict]:
        """One tick: update every (rule, target) state; return transitions."""
        now = time.time() if now is None else now
        if targets is None:
            targets = store.targets()
        transitions: List[Dict] = []
        for rule in self.rules:
            for target in targets:
                if not rule.matches(target):
                    continue
                transitions.extend(
                    self._step(store, rule, target, now)
                )
        return transitions

    def _step(
        self, store: MetricsStore, rule: Rule, target: str, now: float
    ) -> List[Dict]:
        key = (rule.name, target)
        state = self._states.get(key)
        firing = state is not None and state.state == "firing"
        condition, value = self._condition(store, rule, target, now, firing)
        out: List[Dict] = []
        if condition is None:
            # not evaluable: drop a pending alert (signal went away before
            # the hold elapsed), keep a firing one (it resolves explicitly)
            if state is not None and state.state == "pending":
                del self._states[key]
            return out
        if state is None:
            if condition:
                state = Alert(
                    rule=rule.name,
                    target=target,
                    state="pending",
                    since_t=now,
                    value=value,
                    description=rule.description,
                )
                self._states[key] = state
                if rule.for_s <= 0.0:
                    out.append(self._fire(state, now))
            return out
        state.value = value
        if state.state == "pending":
            if not condition:
                del self._states[key]
            elif now - state.since_t >= rule.for_s:
                out.append(self._fire(state, now))
            return out
        # firing
        if condition:
            state.clear_since_t = None
            return out
        if state.clear_since_t is None:
            state.clear_since_t = now
        if now - state.clear_since_t >= rule.resolve_for_s:
            out.append(self._resolve(state, now))
            del self._states[key]
        return out

    def _fire(self, state: Alert, now: float) -> Dict:
        state.state = "firing"
        state.fired_t = now
        state.clear_since_t = None
        return self._transition(state, "firing", now)

    def _resolve(self, state: Alert, now: float) -> Dict:
        return self._transition(state, "resolved", now)

    def _transition(self, state: Alert, kind: str, now: float) -> Dict:
        event = {
            "state": kind,
            "rule": state.rule,
            "target": state.target,
            "value": state.value,
            "t": now,
            "description": state.description,
        }
        self.history.append(event)
        if len(self.history) > self.history_limit:
            del self.history[: len(self.history) - self.history_limit]
        if self.on_transition is not None:
            self.on_transition(dict(event))
        return event

    # -------------------------------------------------------------- surface
    def active(self) -> List[Dict]:
        """Pending + firing alerts, stable order for dashboards."""
        return [
            self._states[key].to_dict()
            for key in sorted(self._states)
        ]

    def firing(self) -> List[Dict]:
        return [a for a in self.active() if a["state"] == "firing"]

    def rules_dict(self) -> List[Dict]:
        return [rule.to_dict() for rule in self.rules]
