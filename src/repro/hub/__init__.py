"""Control-plane hub: run lifecycle, live journal streaming, fleet metrics.

UNICO co-searches run for hours to days (MSH keeps many concurrent trials
alive, robustness assessment multiplies evaluation cost), and PR 7's fleet
spreads the estimation load over replicas — but before this module the
only views were post-hoc: ``runs tail`` after the fact, one replica's
``/metrics`` at a time.  :mod:`repro.hub` turns those pieces into one
observable system:

* :mod:`repro.hub.sse` — Server-Sent Events framing over the crash-safe
  JSONL journal, with byte-offset cursors as event ids so a dropped
  client resumes exactly where it left off (``Last-Event-ID``);
* :mod:`repro.hub.aggregate` — scrape every replica's Prometheus
  exposition, merge into one fleet view with ``replica=`` labels plus
  ``fleet:*`` rollup series;
* :mod:`repro.hub.scheduler` — a single-worker run scheduler over the
  :class:`~repro.tracking.RunStore` (submit/cancel/reconcile, resume of
  crash-interrupted runs);
* :mod:`repro.hub.server` — the HTTP control plane tying them together
  (``POST /runs``, ``GET /runs/<id>/events`` SSE, ``GET /fleet/metrics``);
* :mod:`repro.hub.client` — the pooled client behind
  ``repro runs tail --follow`` and ``repro fleet status --watch``;
* :mod:`repro.hub.telemetry` — the scrape loop: poll every replica's
  ``/metrics`` on an interval into a crash-safe
  :class:`~repro.obs.timeseries.MetricsStore`, evaluate SLO rules
  (:mod:`repro.obs.alerts`) each tick, journal alert transitions for
  ``GET /alerts`` + SSE and ``repro fleet top``.
"""

from repro.hub.aggregate import FleetAggregator, ReplicaScrape
from repro.hub.client import HubClient, StreamedEvent
from repro.hub.scheduler import RunScheduler
from repro.hub.server import HubServer
from repro.hub.sse import SSEEvent, format_sse_event, parse_sse_lines
from repro.hub.telemetry import TelemetryPipeline, replica_target

__all__ = [
    "FleetAggregator",
    "HubClient",
    "HubServer",
    "ReplicaScrape",
    "RunScheduler",
    "SSEEvent",
    "StreamedEvent",
    "TelemetryPipeline",
    "format_sse_event",
    "parse_sse_lines",
    "replica_target",
]
