"""Tests for warm-start seeding and the experiment selection rules."""

import numpy as np
import pytest

from repro.core import Unico, UnicoConfig
from repro.core.base import CoSearchResult, HWDesign
from repro.core.robustness import RobustnessResult
from repro.costmodel import MaestroEngine
from repro.costmodel.results import NetworkPPA
from repro.experiments.fig9 import ppa_distance, shared_scale_best
from repro.experiments.fig11 import select_deployment_design
from repro.optim.pareto import ParetoFront


class TestInitialConfigs:
    def test_warm_start_config_is_evaluated(self, tiny_network, edge_space):
        seed_hw = edge_space.to_config(
            {
                "pe_x": 8,
                "pe_y": 8,
                "l1_bytes": 4096,
                "l2_kb": 256,
                "noc_bw": 128,
                "dataflow": "ws",
            }
        )
        engine = MaestroEngine(tiny_network)
        unico = Unico(
            edge_space,
            tiny_network,
            engine,
            UnicoConfig(
                batch_size=4,
                max_iterations=1,
                max_budget=12,
                initial_configs=(seed_hw,),
            ),
            power_cap_w=100.0,
            seed=0,
        )
        unico.optimize()
        evaluated = {edge_space.config_key(e.hw) for e in unico.evaluations}
        assert edge_space.config_key(seed_hw) in evaluated

    def test_without_warm_start_config_usually_absent(self, tiny_network, edge_space):
        seed_hw = edge_space.to_config(
            {
                "pe_x": 8,
                "pe_y": 8,
                "l1_bytes": 4096,
                "l2_kb": 256,
                "noc_bw": 128,
                "dataflow": "ws",
            }
        )
        engine = MaestroEngine(tiny_network)
        unico = Unico(
            edge_space,
            tiny_network,
            engine,
            UnicoConfig(batch_size=4, max_iterations=1, max_budget=12),
            power_cap_w=100.0,
            seed=0,
        )
        unico.optimize()
        evaluated = {edge_space.config_key(e.hw) for e in unico.evaluations}
        assert edge_space.config_key(seed_hw) not in evaluated


def _design(latency, power, area, r=0.0):
    ppa = NetworkPPA(
        latency_s=latency, energy_j=latency * power, power_w=power,
        area_mm2=area, feasible=True,
    )
    robustness = RobustnessResult(
        r_value=r, delta=r, theta=np.pi / 2,
        optimal_latency_s=latency, optimal_power_w=power,
        suboptimal_latency_s=latency, suboptimal_power_w=power,
    )
    return HWDesign(hw=f"hw-{latency}-{power}", mapping={}, ppa=ppa, robustness=robustness)


def _result(designs):
    front = ParetoFront(num_objectives=3)
    for design in designs:
        front.add(design, design.ppa_vector)
    return CoSearchResult(method="m", network="n", pareto=front)


class TestSharedScaleBest:
    def test_shared_scale_picks_comparable_knees(self):
        result_a = _result([_design(1.0, 10.0, 1.0), _design(10.0, 1.0, 1.0)])
        result_b = _result([_design(2.0, 2.0, 1.0)])
        best_a, best_b = shared_scale_best(result_a, result_b)
        assert best_b.ppa.latency_s == 2.0
        # a's knee under the shared scale is one of its two extremes
        assert best_a.ppa.latency_s in (1.0, 10.0)

    def test_wider_front_not_penalized(self):
        """The method with a strictly better extra point should win it."""
        good = _design(0.5, 1.5, 1.0)
        result_a = _result([good, _design(50.0, 0.1, 1.0)])
        result_b = _result([_design(2.0, 2.0, 1.0)])
        best_a, _best_b = shared_scale_best(result_a, result_b)
        assert best_a.ppa.latency_s == pytest.approx(0.5)

    def test_empty_front_fallback(self):
        result_a = _result([])
        result_b = _result([_design(1.0, 1.0, 1.0)])
        best_a, best_b = shared_scale_best(result_a, result_b)
        assert best_a is None
        assert best_b is not None


class TestPpaDistance:
    def test_symmetric(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([2.0, 1.0, 3.0])
        d = ppa_distance(a, b)
        d_swapped = ppa_distance(b, a)
        assert d["a"] == pytest.approx(d_swapped["b"])

    def test_bounded_ratio_when_nearly_equal(self):
        a = np.array([1.0, 1.0, 1.0])
        b = np.array([1.0 + 1e-12, 1.0, 1.0])
        d = ppa_distance(a, b)
        assert 0.5 < d["a"] / d["b"] < 2.0

    def test_dominating_vector_has_smaller_distance(self):
        a = np.array([1.0, 1.0, 1.0])
        b = np.array([2.0, 2.0, 2.0])
        d = ppa_distance(a, b)
        assert d["a"] < d["b"]


class TestDeploymentSelection:
    def test_minimizes_worst_ratio(self):
        default = _design(10.0, 10.0, 1.0).ppa
        balanced = _design(9.0, 9.0, 1.0)  # worst ratio 0.9
        lopsided = _design(2.0, 12.0, 1.0)  # worst ratio 1.2
        result = _result([balanced, lopsided])
        chosen = select_deployment_design(result, default)
        assert chosen is balanced

    def test_empty_front_returns_none(self):
        default = _design(1.0, 1.0, 1.0).ppa
        assert select_deployment_design(_result([]), default) is None


class TestCapacityAwareSeed:
    def test_seed_fits_l1(self, sample_hw):
        from repro.costmodel.maestro import analyze_gemm
        from repro.mapping.gemm_mapping import GemmMappingSpace
        from repro.workloads.layers import GemmShape

        shape = GemmShape(m=256, n=4096, k=512)
        space = GemmMappingSpace(shape)
        seed = space.seeded_mapping_for(sample_hw)
        result = analyze_gemm(sample_hw, seed, shape)
        assert result.feasible

    def test_seed_uses_pe_array(self, sample_hw):
        from repro.mapping.gemm_mapping import GemmMappingSpace
        from repro.workloads.layers import GemmShape

        space = GemmMappingSpace(GemmShape(m=256, n=4096, k=512))
        seed = space.seeded_mapping_for(sample_hw)
        # tiles at least cover the PE array (no immediate under-utilization)
        assert seed.tile_m >= sample_hw.pe_x
        assert seed.tile_n >= sample_hw.pe_y

    def test_fallback_without_capacity_attrs(self):
        from repro.mapping.gemm_mapping import GemmMappingSpace
        from repro.workloads.layers import GemmShape

        class BarePE:
            pe_x, pe_y = 4, 4

        space = GemmMappingSpace(GemmShape(m=64, n=64, k=64))
        seed = space.seeded_mapping_for(BarePE())
        assert seed.tile_m >= 1
