"""Exhaustive per-layer mapping enumeration — the ground-truth oracle.

For small operators the full mapping space (tile grid x loop orders x
spatial x unroll) is enumerable; this module finds the true per-layer
optimum, which the test suite uses to measure the *regret* of the heuristic
search tools (how far FlexTensor/GAMMA land from optimal under a budget).

Not a co-optimization component — an evaluation instrument.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.costmodel.engine import PPAEngine
from repro.costmodel.results import LayerPPA
from repro.errors import MappingError
from repro.mapping.gemm_mapping import (
    LOOP_ORDERS,
    SPATIAL_CHOICES,
    UNROLL_CHOICES,
    GemmMapping,
    GemmMappingSpace,
    NetworkMapping,
)
from repro.workloads.network import Network


@dataclass(frozen=True)
class ExhaustiveResult:
    """The optimum of one layer's space plus enumeration statistics."""

    mapping: GemmMapping
    result: LayerPPA
    evaluated: int
    feasible_count: int


def enumerate_layer(
    engine: PPAEngine,
    hw,
    layer_name: str,
    objective: str = "latency",
    max_points: int = 200_000,
) -> ExhaustiveResult:
    """Evaluate every mapping of one layer; returns the optimum.

    Raises :class:`MappingError` when the space exceeds ``max_points``
    (use the heuristic tools there — that is the whole point of them).
    """
    shape, _count = engine.layer_shapes[layer_name]
    space = GemmMappingSpace(shape)
    if space.size > max_points:
        raise MappingError(
            f"layer {layer_name!r} space has {space.size} points "
            f"(> {max_points}); exhaustive enumeration refused"
        )
    best_mapping: Optional[GemmMapping] = None
    best_result: Optional[LayerPPA] = None
    best_score = float("inf")
    evaluated = 0
    feasible = 0
    for tm, tn, tk, order, spatial, unroll in itertools.product(
        space.tile_m_choices,
        space.tile_n_choices,
        space.tile_k_choices,
        LOOP_ORDERS,
        SPATIAL_CHOICES,
        UNROLL_CHOICES,
    ):
        mapping = GemmMapping(
            tile_m=tm,
            tile_n=tn,
            tile_k=tk,
            loop_order=order,
            spatial=spatial,
            unroll=unroll,
        )
        result = engine.evaluate_layer(hw, mapping, layer_name)
        evaluated += 1
        if not result.feasible:
            continue
        feasible += 1
        score = (
            result.latency_s
            if objective == "latency"
            else result.latency_s * result.energy_j
        )
        if score < best_score:
            best_score = score
            best_mapping = mapping
            best_result = result
    if best_mapping is None:
        raise MappingError(
            f"no feasible mapping exists for layer {layer_name!r} on this hardware"
        )
    return ExhaustiveResult(
        mapping=best_mapping,
        result=best_result,
        evaluated=evaluated,
        feasible_count=feasible,
    )


def optimal_network_mapping(
    engine: PPAEngine,
    hw,
    objective: str = "latency",
    max_points_per_layer: int = 200_000,
) -> Tuple[NetworkMapping, Dict[str, ExhaustiveResult]]:
    """Per-layer exhaustive optima for a whole (small) network."""
    mappings: NetworkMapping = {}
    details: Dict[str, ExhaustiveResult] = {}
    for layer_name in engine.layer_shapes:
        outcome = enumerate_layer(
            engine, hw, layer_name, objective, max_points_per_layer
        )
        mappings[layer_name] = outcome.mapping
        details[layer_name] = outcome
    return mappings, details
