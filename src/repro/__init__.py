"""UNICO: Unified Hardware-Software Co-Optimization for Robust Neural
Network Acceleration - a full reproduction (MICRO 2023).

Package map
-----------
* :mod:`repro.workloads`   - DNN workload definitions (19 networks).
* :mod:`repro.hw`          - hardware config types and design spaces
  (open-source spatial template; Ascend-like commercial core).
* :mod:`repro.mapping`     - SW mapping representation + anytime search
  tools (FlexTensor-like, GAMMA-like, depth-first fusion, random).
* :mod:`repro.costmodel`   - MAESTRO-like analytical PPA engine.
* :mod:`repro.camodel`     - Ascend-like cycle-accurate PPA engine.
* :mod:`repro.optim`       - GP/MOBO, ParEGO, SH/MSH, NSGA-II, hypervolume.
* :mod:`repro.core`        - UNICO (Algorithm 1), robustness metric R,
  high-fidelity update rule, baselines.
* :mod:`repro.tracking`    - persistent run store, search event journal,
  crash-safe resume (``repro runs`` CLI).
* :mod:`repro.experiments` - one harness per table/figure of the paper.

Quickstart
----------
>>> from repro.workloads import get_network
>>> from repro.hw import edge_design_space, power_cap_for
>>> from repro.costmodel import MaestroEngine
>>> from repro.core import Unico, UnicoConfig
>>> network = get_network("resnet")
>>> unico = Unico(
...     edge_design_space(), network, MaestroEngine(network),
...     UnicoConfig(batch_size=8, max_iterations=3, max_budget=60),
...     power_cap_w=power_cap_for("edge"), seed=0,
... )
>>> result = unico.optimize()
>>> design = result.best_design()
"""

from repro.version import __version__

__all__ = ["__version__"]
