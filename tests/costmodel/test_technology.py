"""Tests for technology constants."""

from repro.costmodel.technology import DEFAULT_TECHNOLOGY, Technology


class TestEnergyHierarchy:
    def test_dram_most_expensive(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.dram_energy_per_byte_j > tech.l2_energy_per_byte_base_j
        assert tech.l2_energy_per_byte_base_j > tech.l1_energy_per_byte_base_j
        assert tech.l1_energy_per_byte_base_j > tech.reg_energy_per_byte_j

    def test_sram_energy_scales_with_capacity(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.l1_energy_per_byte(64 * 1024) > tech.l1_energy_per_byte(1024)
        assert tech.l2_energy_per_byte(10**6) > tech.l2_energy_per_byte(64 * 1024)

    def test_tiny_buffers_floor(self):
        """Energy doesn't vanish for pathologically small buffers."""
        tech = DEFAULT_TECHNOLOGY
        assert tech.l1_energy_per_byte(1) > 0

    def test_custom_technology(self):
        tech = Technology(mac_energy_j=1e-12)
        assert tech.mac_energy_j == 1e-12
        # other fields keep defaults
        assert tech.frequency_hz == DEFAULT_TECHNOLOGY.frequency_hz

    def test_frozen(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_TECHNOLOGY.mac_energy_j = 0.0
