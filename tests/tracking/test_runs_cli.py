"""Tests for the ``repro runs`` CLI (list / show / tail / compare / resume)."""

import json

import pytest

from repro.cli import main
from repro.tracking import RunStore

WORKLOAD = "fsrcnn_120x320"


@pytest.fixture()
def tracked_run(tmp_path, capsys):
    """One tracked smoke run; returns (runs_dir, run_id)."""
    runs_dir = str(tmp_path / "runs")
    code = main(
        [
            "run", "unico", WORKLOAD, "--preset", "smoke", "--seed", "2",
            "--track", "--runs-dir", runs_dir,
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "tracked as run " in out
    run_id = out.split("tracked as run ")[1].splitlines()[0].strip()
    return runs_dir, run_id


class TestRunsCommands:
    def test_list(self, tracked_run, capsys):
        runs_dir, run_id = tracked_run
        assert main(["runs", "list", "--runs-dir", runs_dir]) == 0
        out = capsys.readouterr().out
        assert run_id in out
        assert "completed" in out

    def test_list_empty(self, tmp_path, capsys):
        assert main(["runs", "list", "--runs-dir", str(tmp_path / "none")]) == 0
        assert "no runs" in capsys.readouterr().out

    def test_show(self, tracked_run, capsys):
        runs_dir, run_id = tracked_run
        assert main(["runs", "show", run_id, "--runs-dir", runs_dir]) == 0
        out = capsys.readouterr().out
        assert "journal:" in out
        assert "iterations (replayed from journal):" in out
        assert "latest_checkpoint" in out

    def test_tail_filters_by_type(self, tracked_run, capsys):
        runs_dir, run_id = tracked_run
        assert (
            main(
                [
                    "runs", "tail", run_id, "--runs-dir", runs_dir,
                    "-n", "3", "--type", "iteration_end",
                ]
            )
            == 0
        )
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line.strip()
        ]
        assert lines
        for line in lines:
            assert json.loads(line)["type"] == "iteration_end"

    def test_compare(self, tracked_run, capsys):
        runs_dir, run_id = tracked_run
        code = main(
            [
                "run", "unico", WORKLOAD, "--preset", "smoke", "--seed", "3",
                "--track", "--runs-dir", runs_dir,
            ]
        )
        assert code == 0
        other_id = next(
            run.run_id
            for run in RunStore(runs_dir).list_runs()
            if run.run_id != run_id
        )
        capsys.readouterr()
        assert (
            main(["runs", "compare", run_id, other_id, "--runs-dir", runs_dir])
            == 0
        )
        out = capsys.readouterr().out
        assert "final pareto size" in out
        assert "pareto size by iteration:" in out

    def test_resume_extends_completed_run(self, tracked_run, capsys):
        runs_dir, run_id = tracked_run
        code = main(
            [
                "runs", "resume", run_id, "--runs-dir", runs_dir,
                "--max-iterations", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed from iteration 2, now at 3" in out
        run = RunStore(runs_dir).get(run_id)
        assert run.status == "completed"
        assert run.latest_checkpoint().name == "ckpt-000003.json"

    def test_unknown_run_id_errors(self, tmp_path):
        from repro.errors import TrackingError

        with pytest.raises(TrackingError):
            main(["runs", "show", "ghost", "--runs-dir", str(tmp_path)])


@pytest.fixture()
def traced_run(tmp_path, capsys):
    """One traced smoke run; returns (runs_dir, run_id)."""
    runs_dir = str(tmp_path / "runs")
    code = main(
        [
            "run", "unico", WORKLOAD, "--preset", "smoke", "--seed", "2",
            "--track", "--trace", "--runs-dir", runs_dir,
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "trace written to" in out
    run_id = out.split("tracked as run ")[1].splitlines()[0].strip()
    return runs_dir, run_id


class TestObservabilityCommands:
    def test_trace_requires_track(self, capsys):
        code = main(["run", "unico", WORKLOAD, "--preset", "smoke", "--trace"])
        assert code == 2
        assert "--trace requires --track" in capsys.readouterr().err

    def test_profile(self, traced_run, capsys):
        runs_dir, run_id = traced_run
        assert (
            main(["runs", "profile", run_id, "--runs-dir", runs_dir]) == 0
        )
        out = capsys.readouterr().out
        assert "spans" in out
        assert "msh_round" in out
        assert "evals/s" in out
        assert "slowest spans:" in out

    def test_profile_untraced_run_errors(self, tracked_run, capsys):
        runs_dir, run_id = tracked_run
        assert (
            main(["runs", "profile", run_id, "--runs-dir", runs_dir]) == 1
        )
        assert "no recorded spans" in capsys.readouterr().err

    def test_trace_export(self, traced_run, tmp_path, capsys):
        runs_dir, run_id = traced_run
        out_path = tmp_path / "exported.json"
        assert (
            main(
                [
                    "runs", "trace", run_id, "--runs-dir", runs_dir,
                    "--out", str(out_path),
                ]
            )
            == 0
        )
        assert "perfetto" in capsys.readouterr().out.lower()
        document = json.loads(out_path.read_text())
        names = {
            e["name"] for e in document["traceEvents"] if e["ph"] == "X"
        }
        assert {"run", "iteration", "msh_round"} <= names
