"""Tests for the crash-safe JSONL event journal."""

import json

import pytest

from repro.errors import TrackingError
from repro.tracking.journal import (
    EventJournal,
    read_events,
    verify_sequence,
)


class TestAppendRead:
    def test_round_trip_preserves_order_and_seq(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            for i in range(5):
                seq = journal.append("iteration_start", {"iteration": i})
                assert seq == i
        scan = read_events(path)
        assert len(scan.events) == 5
        assert [e["seq"] for e in scan.events] == list(range(5))
        assert [e["iteration"] for e in scan.events] == list(range(5))
        assert scan.last_seq == 4
        assert not scan.truncated_tail
        verify_sequence(scan)

    def test_unknown_event_type_rejected(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        with pytest.raises(TrackingError):
            journal.append("made_up_event", {})

    def test_numpy_payloads_serialize(self, tmp_path):
        import numpy as np

        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append(
                "evaluation",
                {"objectives": np.array([1.5, 2.5]), "count": np.int64(3)},
            )
        event = read_events(path).events[0]
        assert event["objectives"] == [1.5, 2.5]
        assert event["count"] == 3

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TrackingError):
            read_events(tmp_path / "nope.jsonl")


class TestCrashSafety:
    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {"a": 1})
            journal.append("iteration_start", {"iteration": 0})
        # simulate a kill mid-write: a partial line with no newline
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 2, "type": "iterati')
        scan = read_events(path)
        assert len(scan.events) == 2
        assert scan.truncated_tail
        verify_sequence(scan)

    def test_corrupt_middle_line_stops_scan(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [
            json.dumps({"seq": 0, "type": "run_start"}),
            "{not json at all",
            json.dumps({"seq": 2, "type": "run_end"}),
        ]
        path.write_text("\n".join(lines) + "\n")
        scan = read_events(path)
        assert len(scan.events) == 1
        assert scan.truncated_tail

    def test_append_is_one_complete_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {"x": "y"})
        raw = path.read_bytes()
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1

    def test_fsync_mode_writes_identically(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path, fsync=True) as journal:
            journal.append("run_start", {})
        assert len(read_events(path).events) == 1


class TestResumeSequencing:
    def test_open_resume_continues_seq(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {})
            journal.append("iteration_start", {"iteration": 0})
        with EventJournal.open_resume(path) as journal:
            seq = journal.append("resume", {})
        assert seq == 2
        scan = read_events(path)
        verify_sequence(scan)
        assert scan.events[-1]["type"] == "resume"

    def test_open_resume_skips_truncated_tail_seq(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {})
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 1, "type": "run_e')
        with EventJournal.open_resume(path) as journal:
            assert journal.append("resume", {}) == 1

    def test_open_resume_truncates_partial_tail_before_append(self, tmp_path):
        """Post-resume appends must not weld onto crash-partial bytes —
        the journal has to be fully readable again afterwards."""
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {})
            journal.append("iteration_start", {"iteration": 0})
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 2, "type": "iterati')
        with EventJournal.open_resume(path) as journal:
            journal.append("resume", {})
            journal.append("iteration_start", {"iteration": 1})
        scan = read_events(path)
        assert not scan.truncated_tail
        assert [e["type"] for e in scan.events] == [
            "run_start",
            "iteration_start",
            "resume",
            "iteration_start",
        ]
        verify_sequence(scan)

    def test_open_resume_truncates_mid_file_corruption(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {})
        with open(path, "ab") as handle:
            handle.write(b"{garbage line\n")
            handle.write(
                b'{"seq": 99, "type": "run_end"}\n'
            )  # untrustworthy: follows corruption
        with EventJournal.open_resume(path) as journal:
            assert journal.append("resume", {}) == 1
        scan = read_events(path)
        assert not scan.truncated_tail
        assert [e["seq"] for e in scan.events] == [0, 1]
        verify_sequence(scan)

    def test_verify_sequence_rejects_gap(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps({"seq": 0, "type": "run_start"})
            + "\n"
            + json.dumps({"seq": 5, "type": "run_end"})
            + "\n"
        )
        with pytest.raises(TrackingError):
            verify_sequence(read_events(path))


class TestConcurrency:
    def test_threaded_appends_interleave_whole_lines(self, tmp_path):
        import threading

        path = tmp_path / "j.jsonl"
        journal = EventJournal(path)

        def writer(tag):
            for _ in range(50):
                journal.append("evaluation", {"tag": tag, "pad": "x" * 200})

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        journal.close()
        scan = read_events(path)
        assert len(scan.events) == 200
        assert not scan.truncated_tail
        verify_sequence(scan)


class TestSchemaGrowth:
    """The ``span`` event type (added for repro.obs) must not disturb any
    journal consumer: replay, verification and resume are type-agnostic."""

    def test_span_event_round_trips(self, tmp_path):
        path = tmp_path / "j.jsonl"
        span = {
            "span_schema": 1,
            "name": "iteration",
            "trace_id": "t",
            "span_id": "abc-1",
            "parent_id": None,
            "wall_start_s": 1.0,
            "wall_dur_s": 0.5,
            "sim_start_s": 0.0,
            "sim_dur_s": 100.0,
            "thread": 1,
            "attrs": {"iteration": 0},
        }
        with EventJournal(path) as journal:
            journal.append("span", dict(span))
        event = read_events(path).of_type("span")[0]
        for key, value in span.items():
            assert event[key] == value

    def test_mixed_journal_replays_and_verifies(self, tmp_path):
        """A traced run's journal (spans interleaved with the decision
        events) still replays its iteration records and verify_runs."""
        from repro.experiments.harness import run_method
        from repro.tracking import (
            RunStore,
            replay_iteration_records,
            verify_run,
        )

        store = RunStore(tmp_path / "runs")
        result = run_method(
            "unico", "edge", "mobilenet", "smoke", seed=11,
            run_store=store, trace=True,
        )
        run = store.get(result.extras["run_id"])
        scan = read_events(run.journal_path)
        types = {e["type"] for e in scan.events}
        assert "span" in types and "iteration_end" in types
        verify_sequence(scan)
        health = verify_run(run)
        assert health["journal_iterations"] == 2
        assert (
            replay_iteration_records(run.journal_path)
            == result.extras["iteration_records"]
        )

    def test_mixed_journal_resumes(self, tmp_path):
        """Resume over a span-bearing journal: delete the last checkpoint
        so the journal is ahead, then resume and match the straight run."""
        from repro.experiments.harness import run_method
        from repro.tracking import RunStore, replay_iteration_records
        from repro.tracking.resume import resume_run

        straight = run_method("unico", "edge", "mobilenet", "smoke", seed=11)

        store = RunStore(tmp_path / "runs")
        result = run_method(
            "unico", "edge", "mobilenet", "smoke", seed=11,
            run_store=store, trace=True,
        )
        run = store.get(result.extras["run_id"])
        checkpoints = run.checkpoints()
        assert len(checkpoints) == 2
        checkpoints[-1].unlink()  # journal now one iteration ahead

        resumed = resume_run(run)
        assert resumed.extras["resumed_from_iteration"] == 1
        assert sorted(
            map(tuple, resumed.pareto.points.tolist())
        ) == sorted(map(tuple, straight.pareto.points.tolist()))
        assert (
            replay_iteration_records(run.journal_path)
            == straight.extras["iteration_records"]
        )
