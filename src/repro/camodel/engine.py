"""Cycle-accurate PPA engine for the Ascend-like platform.

Implements the same estimation-service contract as the analytical
:class:`~repro.costmodel.engine.MaestroEngine`, but backed by the tile-
pipeline simulator — and correspondingly expensive: each layer query
charges minutes of modeled wall-clock (Section 4.1 quotes 2-10 minutes per
CA-model evaluation), which is what makes UNICO's evaluation frugality
matter on this platform.

An optional multiplicative noise channel reproduces the benchmarked
simulation error of "8 +/- 3 %": when enabled, every fresh (hw, layer,
mapping) query perturbs latency and energy by a deterministic pseudo-random
factor derived from the query key, so repeated queries stay consistent (a
simulator is deterministic) while different designs see different model
error.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from repro.camodel.ascend_sim import ascend_area_mm2, simulate_layer
from repro.camodel.mapping import AscendMapping
from repro.costmodel.engine import PPAEngine
from repro.costmodel.results import LayerPPA
from repro.costmodel.technology import DEFAULT_TECHNOLOGY, Technology
from repro.hw.ascend import AscendHWConfig
from repro.utils.clock import SimulatedClock
from repro.workloads.layers import GemmShape
from repro.workloads.network import Network

#: modeled wall-clock per CA-model layer query (seconds) — a full-network
#: evaluation of a ~10-unique-layer workload lands in the paper's 2-10 min.
CAMODEL_EVAL_COST_S = 30.0


class AscendCAEngine(PPAEngine):
    """Cycle-accurate estimation service for the Ascend-like core."""

    def __init__(
        self,
        network: Network,
        clock: Optional[SimulatedClock] = None,
        eval_cost_s: float = CAMODEL_EVAL_COST_S,
        tech: Technology = DEFAULT_TECHNOLOGY,
        noise_fraction: float = 0.0,
        noise_seed: int = 0,
    ):
        super().__init__(network, clock=clock, eval_cost_s=eval_cost_s, tech=tech)
        if noise_fraction < 0:
            raise ValueError(f"noise_fraction must be >= 0, got {noise_fraction}")
        self.noise_fraction = noise_fraction
        self.noise_seed = noise_seed

    def _noise_factor(self, hw, mapping: AscendMapping, shape: GemmShape) -> float:
        """Deterministic per-query model-error factor around 1.0."""
        if self.noise_fraction <= 0:
            return 1.0
        digest = hashlib.sha256(
            repr((self.noise_seed, self.hw_key(hw), mapping.key(), shape)).encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "little") / 2**64
        # triangular-ish spread in [-2, 2] sigma
        return 1.0 + self.noise_fraction * (2.0 * unit - 1.0)

    def _compute_layer(
        self, hw: AscendHWConfig, mapping: AscendMapping, shape: GemmShape
    ) -> LayerPPA:
        result = simulate_layer(hw, mapping, shape, self.tech)
        if not result.feasible or self.noise_fraction <= 0:
            return result
        factor = self._noise_factor(hw, mapping, shape)
        return LayerPPA(
            latency_s=result.latency_s * factor,
            energy_j=result.energy_j * factor,
            feasible=True,
            compute_cycles=result.compute_cycles,
            noc_cycles=result.noc_cycles,
            dram_cycles=result.dram_cycles,
            dram_bytes=result.dram_bytes,
        )

    def area_mm2(self, hw: AscendHWConfig) -> float:
        return ascend_area_mm2(hw, self.tech)
