"""The open-source 2D spatial accelerator template (Fig. 1) and its spaces.

Design parameters follow Section 4.1 exactly:

* PE array shape ``(pe_x, pe_y)`` from 1x1 up to 24x24,
* per-PE private scratchpad ``L1 in {2^i * 3^j} bytes``,
* shared global buffer ``L2 in {2^i * 3^j} KB``,
* NoC bandwidth in {64, 128} bytes/cycle,
* dataflow style: weight-stationary (``"ws"``) or output-stationary
  (``"os"``) for the GEMMCore intrinsic.

Two search scenarios are provided: **edge** (~1e5 configurations, power cap
2 W downstream) and **cloud** (~1e9 configurations, power cap 20 W).  The
cloud space reaches the full grids and additionally opens L1/L2 banking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.errors import ConfigurationError
from repro.hw.space import Dimension, DiscreteDesignSpace
from repro.utils.intmath import power_two_three_grid

DATAFLOWS: Tuple[str, ...] = ("ws", "os")

EDGE_POWER_CAP_W = 2.0
CLOUD_POWER_CAP_W = 20.0


@dataclass(frozen=True)
class SpatialHWConfig:
    """One concrete instance of the spatial-accelerator template.

    Attributes
    ----------
    pe_x, pe_y:
        PE array shape.
    l1_bytes:
        Private scratchpad size per PE, in bytes.
    l2_kb:
        Shared global buffer size, in KB.
    noc_bw:
        NoC bandwidth in bytes per cycle (global buffer <-> PE array).
    dataflow:
        ``"ws"`` (weight stationary) or ``"os"`` (output stationary).
    l1_banks, l2_banks:
        Banking factors; more banks raise concurrency (and area) slightly.
    """

    pe_x: int
    pe_y: int
    l1_bytes: int
    l2_kb: int
    noc_bw: int
    dataflow: str
    l1_banks: int = 2
    l2_banks: int = 2

    def __post_init__(self) -> None:
        if self.pe_x < 1 or self.pe_y < 1:
            raise ConfigurationError(f"PE array must be >= 1x1, got {self.pe_x}x{self.pe_y}")
        if self.l1_bytes < 1 or self.l2_kb < 1:
            raise ConfigurationError("buffer sizes must be positive")
        if self.dataflow not in DATAFLOWS:
            raise ConfigurationError(
                f"dataflow must be one of {DATAFLOWS}, got {self.dataflow!r}"
            )
        if self.noc_bw < 1:
            raise ConfigurationError(f"noc_bw must be positive, got {self.noc_bw}")
        if self.l1_banks < 1 or self.l2_banks < 1:
            raise ConfigurationError("bank counts must be positive")

    @property
    def num_pes(self) -> int:
        return self.pe_x * self.pe_y

    @property
    def l1_total_bytes(self) -> int:
        """Aggregate private scratchpad across the PE array."""
        return self.l1_bytes * self.num_pes

    @property
    def l2_bytes(self) -> int:
        return self.l2_kb * 1024

    def short_name(self) -> str:
        return (
            f"pe{self.pe_x}x{self.pe_y}_l1-{self.l1_bytes}B_l2-{self.l2_kb}KB_"
            f"noc{self.noc_bw}_{self.dataflow}"
        )


class SpatialDesignSpace(DiscreteDesignSpace[SpatialHWConfig]):
    """Design space over :class:`SpatialHWConfig`."""

    def __init__(self, name: str, dimensions):
        super().__init__(name, dimensions)

    def to_config(self, assignment: Dict[str, Any]) -> SpatialHWConfig:
        return SpatialHWConfig(
            pe_x=assignment["pe_x"],
            pe_y=assignment["pe_y"],
            l1_bytes=assignment["l1_bytes"],
            l2_kb=assignment["l2_kb"],
            noc_bw=assignment["noc_bw"],
            dataflow=assignment["dataflow"],
            l1_banks=assignment.get("l1_banks", 2),
            l2_banks=assignment.get("l2_banks", 2),
        )

    def from_config(self, config: SpatialHWConfig) -> Dict[str, Any]:
        assignment = {
            "pe_x": config.pe_x,
            "pe_y": config.pe_y,
            "l1_bytes": config.l1_bytes,
            "l2_kb": config.l2_kb,
            "noc_bw": config.noc_bw,
            "dataflow": config.dataflow,
        }
        if "l1_banks" in self._by_name:
            assignment["l1_banks"] = config.l1_banks
        if "l2_banks" in self._by_name:
            assignment["l2_banks"] = config.l2_banks
        return assignment


def edge_design_space() -> SpatialDesignSpace:
    """The edge scenario: ~1e5 configurations, small buffers & arrays.

    L1 grid uses ``2^i * 3^j`` with i <= 8, j <= 2 (64 B .. 9 KB usable),
    L2 with i <= 8, j <= 2 KB; PEs up to 16x16.
    """
    l1_grid = tuple(
        v for v in power_two_three_grid(8, 2) if 64 <= v <= 16 * 1024
    )
    l2_grid = tuple(v for v in power_two_three_grid(8, 2) if 8 <= v <= 1024)
    dims = (
        Dimension("pe_x", tuple(range(1, 17))),
        Dimension("pe_y", tuple(range(1, 17))),
        Dimension("l1_bytes", l1_grid),
        Dimension("l2_kb", l2_grid),
        Dimension("noc_bw", (64, 128)),
        Dimension("dataflow", DATAFLOWS),
    )
    return SpatialDesignSpace("spatial-edge", dims)


def cloud_design_space() -> SpatialDesignSpace:
    """The cloud scenario: ~1e9 configurations, full grids plus banking."""
    l1_grid = tuple(
        v for v in power_two_three_grid(10, 10) if 64 <= v <= 512 * 1024
    )
    l2_grid = tuple(v for v in power_two_three_grid(10, 10) if 8 <= v <= 64 * 1024)
    dims = (
        Dimension("pe_x", tuple(range(1, 25))),
        Dimension("pe_y", tuple(range(1, 25))),
        Dimension("l1_bytes", l1_grid),
        Dimension("l2_kb", l2_grid),
        Dimension("noc_bw", (64, 128)),
        Dimension("dataflow", DATAFLOWS),
        Dimension("l1_banks", (1, 2, 4, 8)),
        Dimension("l2_banks", (1, 2, 4, 8)),
    )
    return SpatialDesignSpace("spatial-cloud", dims)


def design_space_for(scenario: str) -> SpatialDesignSpace:
    """Return the design space for ``"edge"`` or ``"cloud"``."""
    if scenario == "edge":
        return edge_design_space()
    if scenario == "cloud":
        return cloud_design_space()
    raise ConfigurationError(f"unknown scenario {scenario!r}; use 'edge' or 'cloud'")


def power_cap_for(scenario: str) -> float:
    """Power constraint (W) for a scenario, per Section 4.2."""
    if scenario == "edge":
        return EDGE_POWER_CAP_W
    if scenario == "cloud":
        return CLOUD_POWER_CAP_W
    raise ConfigurationError(f"unknown scenario {scenario!r}; use 'edge' or 'cloud'")
