"""Additional coverage: Hyperband bracket arithmetic properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim.hyperband import hyperband_brackets


@given(st.integers(2, 500), st.sampled_from([2.0, 3.0, 4.0]))
@settings(max_examples=50)
def test_bracket_properties(max_budget, eta):
    brackets = hyperband_brackets(max_budget, eta)
    # bracket count = s_max + 1
    s_max = int(np.floor(np.log(max_budget) / np.log(eta)))
    assert len(brackets) == s_max + 1
    for bracket in brackets:
        assert bracket.num_candidates >= 1
        assert 1 <= bracket.initial_budget <= max_budget
        assert bracket.num_rounds >= 1
        # within a bracket, halving num_rounds times must reach max_budget
        reached = bracket.initial_budget * eta ** (bracket.num_rounds - 1)
        assert reached <= max_budget * eta  # never overshoots by > one step
    # the last bracket is plain full-budget evaluation
    assert brackets[-1].initial_budget == max_budget
    assert brackets[-1].num_rounds == 1


@given(st.integers(2, 500))
@settings(max_examples=30)
def test_total_work_comparable_across_brackets(max_budget):
    """Hyperband's design: each bracket spends roughly the same budget."""
    brackets = hyperband_brackets(max_budget, eta=3.0)
    totals = []
    for bracket in brackets:
        n = bracket.num_candidates
        budget = bracket.initial_budget
        total = 0
        while True:
            total += n * budget
            if budget >= bracket.max_budget or n <= 1:
                break
            n = max(1, int(np.floor(n / bracket.eta)))
            budget = min(bracket.max_budget, int(round(budget * bracket.eta)))
        totals.append(total)
    # within an order of magnitude of each other (discretization slack)
    assert max(totals) <= 10 * min(totals)
