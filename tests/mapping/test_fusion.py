"""Tests for the depth-first buffer-fusion search (Ascend-like tool)."""

import numpy as np
import pytest

from repro.camodel import AscendCAEngine
from repro.camodel.mapping import AscendMapping, AscendMappingSpace
from repro.hw import default_ascend_config
from repro.mapping import DepthFirstFusionSearch
from repro.workloads import get_network
from repro.workloads.layers import GemmShape


@pytest.fixture(scope="module")
def network():
    return get_network("fsrcnn_120x320")


@pytest.fixture()
def search(network):
    engine = AscendCAEngine(network)
    return DepthFirstFusionSearch(
        network, default_ascend_config(), engine, seed=9
    )


class TestAscendMappingSpace:
    SHAPE = GemmShape(m=56, n=38400, k=25)

    def test_sample_valid(self, rng):
        space = AscendMappingSpace(self.SHAPE)
        mapping = space.sample(rng)
        assert self.SHAPE.m % mapping.tile_m == 0
        assert self.SHAPE.n % mapping.tile_n == 0

    def test_seeded_for_hw(self):
        space = AscendMappingSpace(self.SHAPE)
        seeded = space.seeded_mapping_for(default_ascend_config())
        assert seeded.tile_m >= 1
        assert not seeded.fuse_input and not seeded.fuse_output

    def test_mutate_can_toggle_fusion(self, rng):
        space = AscendMappingSpace(self.SHAPE)
        base = space.seeded_mapping_for(default_ascend_config())
        toggled = False
        for _ in range(60):
            mutated = space.mutate(base, rng)
            if mutated.fuse_input != base.fuse_input or (
                mutated.fuse_output != base.fuse_output
            ):
                toggled = True
                break
        assert toggled

    def test_size_includes_fusion(self):
        space = AscendMappingSpace(self.SHAPE)
        assert space.size % 4 == 0


class TestDepthFirstFusionSearch:
    def test_monotone_resumable(self, search):
        search.run(30)
        first = search.best_objective
        search.run(30)
        curve = search.best_curve()
        assert np.all(np.diff(curve) <= 1e-18)
        assert search.best_objective <= first

    def test_uses_ascend_mappings(self, search):
        search.run(10)
        for mapping in search.best_mapping.values():
            assert isinstance(mapping, AscendMapping)

    def test_finds_feasible(self, search):
        search.run(20)
        assert np.isfinite(search.best_objective)
        assert search.best_ppa.feasible

    def test_fusion_flags_consistent_pairs(self, network):
        """When the tool fuses, the producer/consumer flags line up."""
        engine = AscendCAEngine(network)
        search = DepthFirstFusionSearch(
            network,
            default_ascend_config(),
            engine,
            fusion_probability=0.8,
            seed=4,
        )
        search.run(120)
        names = search.layer_names
        current = search._current
        for i in range(len(names) - 1):
            if current[names[i]].fuse_output:
                assert current[names[i + 1]].fuse_input
