"""Mesh-aware NoC transfer model and the refined analytical engine.

Replaces the baseline model's scalar ``bytes / noc_bw`` with a transfer
model over the concrete mesh:

* **serialization** — bytes over the per-link bandwidth at the injection
  port (scaled by the configured NoC width),
* **pipeline fill** — one cycle per hop of the multicast-tree depth,
* **congestion** — a contention factor when the offered aggregate traffic
  approaches the mesh's bisection bandwidth,
* **energy** — per byte-hop, so multicast (one tree) beats repeated
  unicast, which is exactly the reuse pattern weight/input distribution
  exploits.

:class:`MeshAwareMaestroEngine` swaps this model into the analytical
engine: same interface, slightly different latency/energy landscape —
useful for studying how sensitive the co-search outcome is to interconnect
modeling fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.engine import MaestroEngine
from repro.costmodel.maestro import analyze_gemm
from repro.costmodel.results import LayerPPA
from repro.costmodel.technology import DEFAULT_TECHNOLOGY, Technology
from repro.hw.spatial import SpatialHWConfig
from repro.noc.topology import MeshTopology
from repro.workloads.layers import GemmShape

#: energy per byte per hop on a mesh link (wire + router), Joules
LINK_ENERGY_PER_BYTE_HOP_J = 0.025e-12


@dataclass(frozen=True)
class TransferEstimate:
    """Latency/energy of one NoC transfer."""

    cycles: float
    energy_j: float
    links_used: int


def mesh_for(hw: SpatialHWConfig) -> MeshTopology:
    """The mesh implied by a spatial-accelerator configuration."""
    # noc_bw is the aggregate injection bandwidth; each of the mesh's
    # injection-row links carries an equal share
    per_link = hw.noc_bw / max(1, hw.pe_x)
    return MeshTopology(
        width=hw.pe_x, height=hw.pe_y, link_bw_bytes_per_cycle=max(per_link, 1.0)
    )


def multicast_transfer(
    mesh: MeshTopology,
    num_bytes: float,
    destinations_per_row: bool,
    tech: Technology = DEFAULT_TECHNOLOGY,
) -> TransferEstimate:
    """Estimate one operand tile's distribution across the array.

    ``destinations_per_row=True`` models row-wise multicast (each row gets
    a distinct slice, broadcast along the row); ``False`` models
    column-wise distribution.
    """
    if destinations_per_row:
        destinations = mesh.row_nodes(0)
    else:
        destinations = mesh.column_nodes(0)
    links = mesh.multicast_links((0, 0), destinations)
    depth = mesh.multicast_depth((0, 0), destinations)
    serialization = num_bytes / (mesh.link_bw_bytes_per_cycle * max(1, len(destinations)))
    cycles = serialization + depth
    energy = num_bytes * max(1, depth) * LINK_ENERGY_PER_BYTE_HOP_J
    return TransferEstimate(cycles=cycles, energy_j=energy, links_used=links)


def congestion_factor(
    offered_bytes_per_cycle: float, mesh: MeshTopology
) -> float:
    """>= 1 multiplier as offered traffic approaches bisection bandwidth.

    A standard M/D/1-flavoured blow-up: factor = 1 / (1 - rho) clamped,
    with rho the bisection utilization.
    """
    bisection = mesh.bisection_bandwidth
    rho = min(offered_bytes_per_cycle / max(bisection, 1e-9), 0.95)
    return 1.0 / (1.0 - rho)


class MeshAwareMaestroEngine(MaestroEngine):
    """Analytical engine with mesh-resolved NoC latency and energy."""

    def _compute_layer(
        self, hw: SpatialHWConfig, mapping, shape: GemmShape
    ) -> LayerPPA:
        base = analyze_gemm(hw, mapping, shape, self.tech)
        if not base.feasible:
            return base
        mesh = mesh_for(hw)
        # refine NoC cycles: add tree fill depth per tile pass and a
        # congestion factor computed from the layer's average offered load
        total_cycles = max(base.compute_cycles, base.noc_cycles, base.dram_cycles)
        noc_bytes = base.noc_cycles * hw.noc_bw  # invert the baseline model
        offered = noc_bytes / max(total_cycles, 1.0)
        factor = congestion_factor(offered, mesh)
        depth = mesh.multicast_depth(
            (0, 0),
            [(mesh.width - 1, 0), (0, mesh.height - 1)],
        )
        refined_noc_cycles = base.noc_cycles * factor + depth
        latency_cycles = (
            max(base.compute_cycles, refined_noc_cycles, base.dram_cycles)
            + 1000.0
        )
        hop_energy = noc_bytes * max(1, depth) * LINK_ENERGY_PER_BYTE_HOP_J
        return LayerPPA(
            latency_s=latency_cycles / self.tech.frequency_hz,
            energy_j=base.energy_j + hop_energy,
            feasible=True,
            compute_cycles=base.compute_cycles,
            noc_cycles=refined_noc_cycles,
            dram_cycles=base.dram_cycles,
            dram_bytes=base.dram_bytes,
        )
