"""Tests for the one-shot reproduction driver."""

import json

import pytest

from repro.experiments.paper_runner import EXPERIMENTS, run_everything


class TestRunEverything:
    def test_subset_runs_and_writes(self, tmp_path):
        messages = []
        summary = run_everything(
            preset="smoke",
            seed=3,
            results_dir=tmp_path,
            only=["fig10"],
            progress=messages.append,
        )
        assert "fig10" in summary.children
        payload = json.loads((tmp_path / "fig10.json").read_text())
        assert payload["name"] == "fig10"
        assert any("running fig10" in m for m in messages)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_everything(only=["fig99"])

    def test_registry_covers_all_paper_artifacts(self):
        assert set(EXPERIMENTS) == {
            "table1_edge",
            "table2_cloud",
            "fig7a_edge",
            "fig7b_cloud",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
        }

    def test_summary_metadata(self, tmp_path):
        summary = run_everything(
            preset="smoke", seed=1, results_dir=None, only=["fig10"]
        )
        assert summary.get("preset") == "smoke"
        assert summary.get("seed") == 1
        assert summary.get("experiments") == ["fig10"]
