"""Job execution backends for the parallel implementation (Section 3.5).

"Within each successive halving round, we run standalone Jobs via
multi-processing in parallel, where each job handles the SW mapping search
for a selected hardware configuration."

Two layers of parallelism are modeled in this reproduction:

* **Simulated-time parallelism** — the co-optimizers always account for the
  worker count through :meth:`SimulatedClock.advance_parallel`; this is what
  the reported Cost(h) columns measure.
* **Real compute parallelism** — :class:`JobRunner` dispatches the actual
  Python work.  The in-process analytical engine is so fast that the serial
  backend is the default, but the ``thread`` backend genuinely overlaps
  remote-engine jobs (e.g. several :class:`RemotePPAEngine` clients talking
  to PPA services on slave machines, the deployment of Fig. 6(b)).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Sequence, TypeVar

from repro.errors import ConfigurationError

ResultT = TypeVar("ResultT")

BACKENDS = ("serial", "thread")


class JobRunner:
    """Run a list of no-argument jobs and return their results in order."""

    def __init__(self, backend: str = "serial", max_workers: int = 4):
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; use one of {BACKENDS}"
            )
        if max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        self.backend = backend
        self.max_workers = max_workers

    def map(self, jobs: Sequence[Callable[[], ResultT]]) -> List[ResultT]:
        """Execute every job; results keep the submission order.

        A failing job propagates its exception (after all submitted jobs
        have been scheduled) — silent partial results would corrupt a
        successive-halving round.
        """
        if not jobs:
            return []
        if self.backend == "serial" or len(jobs) == 1:
            return [job() for job in jobs]
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [pool.submit(job) for job in jobs]
            return [future.result() for future in futures]

    def starmap(
        self, fn: Callable[..., ResultT], args_list: Sequence[tuple]
    ) -> List[ResultT]:
        """Convenience: apply ``fn`` to each argument tuple."""
        return self.map([_bind(fn, args) for args in args_list])


def _bind(fn: Callable[..., ResultT], args: tuple) -> Callable[[], ResultT]:
    def job() -> ResultT:
        return fn(*args)

    return job
