"""Tests for the paper's workload-suite constants."""

from repro.workloads import (
    FIG8_TRAIN,
    FIG8_VALIDATION,
    FIG9_TRAIN,
    FIG9_VALIDATION,
    FIG10_NETWORKS,
    FIG11_NETWORKS,
    TABLE12_NETWORKS,
    available_networks,
    get_network,
)


class TestSuiteRegistration:
    def test_every_suite_member_is_registered(self):
        registered = set(available_networks())
        for suite in (
            TABLE12_NETWORKS,
            FIG8_TRAIN,
            FIG8_VALIDATION,
            FIG9_TRAIN,
            FIG9_VALIDATION,
            FIG10_NETWORKS,
            FIG11_NETWORKS,
        ):
            assert set(suite) <= registered

    def test_table12_has_seven_networks(self):
        assert len(TABLE12_NETWORKS) == 7

    def test_fig9_validation_has_eight(self):
        """Section 4.4: a validation set consisting of eight new networks."""
        assert len(FIG9_VALIDATION) == 8

    def test_generalization_splits_are_disjoint(self):
        assert not set(FIG8_TRAIN) & set(FIG8_VALIDATION)
        assert not set(FIG9_TRAIN) & set(FIG9_VALIDATION)

    def test_fig11_covers_fsrcnn_resolutions(self):
        fsrcnn = [n for n in FIG11_NETWORKS if n.startswith("fsrcnn")]
        assert len(fsrcnn) == 3

    def test_fig10_subset_of_paper_workloads(self):
        assert set(FIG10_NETWORKS) == {"unet", "srgan", "bert", "vit"}

    def test_fig11_workloads_are_dense_prediction(self):
        for name in FIG11_NETWORKS:
            network = get_network(name)
            assert network.family in ("sr", "segmentation")
