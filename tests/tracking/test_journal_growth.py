"""Journal schema growth: new event types coexist with old readers.

This PR added two event types (``engine_sample``, ``learned_model``) to
the whitelist without bumping ``JOURNAL_VERSION``.  The compatibility
contract: journals mixing old and new event types — including a
crash-truncated tail — replay, verify and resume exactly as before,
because every reader filters by type instead of assuming a fixed set.
"""

import json

import pytest

from repro.errors import TrackingError
from repro.experiments.harness import run_method
from repro.tracking import (
    EVENT_TYPES,
    EventJournal,
    RunStore,
    read_events,
    replay_iteration_records,
    resume_run,
    verify_run,
)

WORKLOAD = "mobilenet"


class TestEventTypeWhitelist:
    def test_new_types_are_registered(self):
        assert "engine_sample" in EVENT_TYPES
        assert "learned_model" in EVENT_TYPES

    def test_journal_version_unchanged(self):
        from repro.tracking import JOURNAL_VERSION

        # additive growth must not bump the format version: old journals
        # and new journals are the same format
        assert JOURNAL_VERSION == 1

    def test_unknown_type_still_rejected(self, tmp_path):
        journal = EventJournal(tmp_path / "journal.jsonl")
        with pytest.raises(TrackingError, match="unknown event type"):
            journal.append("engine_sample_v2", {})


class TestMixedJournalReplay:
    def _tracked_run(self, tmp_path, record_samples):
        result = run_method(
            "unico", "edge", WORKLOAD, "smoke", seed=11,
            run_store=tmp_path / "runs",
            record_samples=record_samples,
            eval_batch_size=8,
        )
        return RunStore(tmp_path / "runs").get(result.extras["run_id"]), result

    def test_sample_events_do_not_change_replay(self, tmp_path):
        run_old, _ = self._tracked_run(tmp_path / "old", record_samples=False)
        run_new, _ = self._tracked_run(tmp_path / "new", record_samples=True)
        old_types = {e["type"] for e in read_events(run_old.journal_path).events}
        new_types = {e["type"] for e in read_events(run_new.journal_path).events}
        assert "engine_sample" not in old_types  # opt-in: old runs unchanged
        assert "engine_sample" in new_types
        # iteration replay sees through the interleaved sample events
        assert replay_iteration_records(
            run_new.journal_path
        ) == replay_iteration_records(run_old.journal_path)

    def test_verify_run_accepts_mixed_events(self, tmp_path):
        run, _ = self._tracked_run(tmp_path, record_samples=True)
        health = verify_run(run)
        assert health["truncated_tail"] is False
        assert health["journal_iterations"] == 2

    def test_verify_run_with_truncated_sample_tail(self, tmp_path):
        run, _ = self._tracked_run(tmp_path, record_samples=True)
        with open(run.journal_path, "ab") as handle:
            handle.write(b'{"seq": 99999, "type": "engine_sample", "samp')
        health = verify_run(run)
        assert health["truncated_tail"] is True

    def test_resume_over_mixed_events_with_truncated_tail(self, tmp_path):
        straight = run_method(
            "unico", "edge", WORKLOAD, "smoke", seed=11, eval_batch_size=8
        )
        run, _ = self._tracked_run(tmp_path, record_samples=True)
        # simulate a crash: drop the last checkpoint and cut the journal
        # mid-way through an engine_sample line
        run.checkpoints()[-1].unlink()
        with open(run.journal_path, "ab") as handle:
            handle.write(b'{"seq": 99999, "type": "engine_sample", "samp')
        resumed = resume_run(run)
        assert sorted(map(tuple, resumed.pareto.points.tolist())) == sorted(
            map(tuple, straight.pareto.points.tolist())
        )
        # the damaged tail was truncated away and the journal is clean again
        assert read_events(run.journal_path).truncated_tail is False

    def test_learned_model_event_round_trips(self, tmp_path):
        journal = EventJournal(tmp_path / "journal.jsonl")
        payload = {"model_path": "m.json", "feature_version": 1, "topk": 4}
        journal.append("learned_model", payload)
        journal.close()
        events = read_events(tmp_path / "journal.jsonl").of_type("learned_model")
        assert len(events) == 1
        assert {k: events[0][k] for k in payload} == payload
