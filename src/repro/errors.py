"""Exception hierarchy for the UNICO reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch the whole family with one clause while the tests can still assert the
specific subtype.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or out-of-range fields."""


class DesignSpaceError(ReproError):
    """A hardware configuration is outside its declared design space."""


class MappingError(ReproError):
    """A software mapping is malformed or incompatible with a workload."""


class InfeasibleMappingError(MappingError):
    """A mapping violates hardware capacity constraints (e.g. L1 overflow)."""


class WorkloadError(ReproError):
    """A workload/layer definition is invalid or unknown."""


class EvaluationError(ReproError):
    """A PPA engine failed to evaluate a (hw, mapping, workload) triple."""


class TransportError(EvaluationError):
    """A remote PPA request failed at the transport level.

    Network failures, 5xx replies and open circuit breakers are
    *retryable* (and, under the sharded client, *failover-able* to
    another replica) — unlike a 4xx semantic rejection, which stays a
    plain :class:`EvaluationError` because every replica would reject the
    same query."""


class SearchBudgetError(ReproError):
    """A search was invoked with a non-positive or inconsistent budget."""


class SurrogateError(ReproError):
    """The GP surrogate could not be fit or queried."""


class TrackingError(ReproError):
    """A run store, event journal, or resume operation is inconsistent."""
