"""Rendezvous hashing: determinism, balance, and minimal remapping."""

import pytest

from repro.fleet.hashing import (
    candidate_key,
    choose_shard,
    rank_shards,
    rendezvous_score,
)

SHARDS = ["shard-0", "shard-1", "shard-2", "shard-3"]
KEYS = [candidate_key(h, f"layer{h % 3}", (h, h * 7, "mn")) for h in range(2000)]


class TestScores:
    def test_deterministic_across_calls(self):
        assert rendezvous_score("k", "s") == rendezvous_score("k", "s")

    def test_key_and_shard_both_matter(self):
        assert rendezvous_score("k1", "s") != rendezvous_score("k2", "s")
        assert rendezvous_score("k", "s1") != rendezvous_score("k", "s2")


class TestRanking:
    def test_ranking_is_permutation(self):
        for key in KEYS[:50]:
            assert sorted(rank_shards(key, SHARDS)) == sorted(SHARDS)

    def test_choose_matches_ranking_head(self):
        for key in KEYS[:50]:
            assert choose_shard(key, SHARDS) == rank_shards(key, SHARDS)[0]

    def test_member_order_irrelevant(self):
        shuffled = list(reversed(SHARDS))
        for key in KEYS[:50]:
            assert choose_shard(key, SHARDS) == choose_shard(key, shuffled)

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            choose_shard("k", [])


class TestBalanceAndRemap:
    def test_roughly_balanced(self):
        counts = {shard: 0 for shard in SHARDS}
        for key in KEYS:
            counts[choose_shard(key, SHARDS)] += 1
        for shard, count in counts.items():
            # each of 4 shards should own 25% +- 10 points of 2000 keys
            assert 0.15 < count / len(KEYS) < 0.35, (shard, count)

    def test_removal_remaps_only_the_lost_shards_keys(self):
        """The consistent-hashing contract: survivors keep every key."""
        removed = "shard-2"
        survivors = [shard for shard in SHARDS if shard != removed]
        moved = 0
        for key in KEYS:
            before = choose_shard(key, SHARDS)
            after = choose_shard(key, survivors)
            if before == removed:
                moved += 1
                # orphaned keys land on their rank-2 shard, exactly
                assert after == rank_shards(key, SHARDS)[1]
            else:
                assert after == before  # survivors' keys never move
        assert moved / len(KEYS) == pytest.approx(1 / 4, abs=0.1)

    def test_addition_steals_only_for_itself(self):
        grown = SHARDS + ["shard-4"]
        stolen = 0
        for key in KEYS:
            before = choose_shard(key, SHARDS)
            after = choose_shard(key, grown)
            if after != before:
                stolen += 1
                assert after == "shard-4"  # moves only go to the newcomer
        assert stolen / len(KEYS) == pytest.approx(1 / 5, abs=0.1)


class TestCandidateKey:
    def test_mirrors_cache_key_fields(self):
        key_a = candidate_key("hw1", "conv", (1, 2, 3))
        key_b = candidate_key("hw1", "conv", (1, 2, 3))
        key_c = candidate_key("hw2", "conv", (1, 2, 3))
        assert key_a == key_b
        assert key_a != key_c

    def test_stable_across_processes(self):
        # repr of plain data, no id()s or salted hashes
        assert candidate_key("hw", "l", (4, 8, "mn")) == "('hw', 'l', (4, 8, 'mn'))"
