"""DOSA-style differentiable one-loop mapping search.

Black-box inner tools (FlexTensor, GAMMA) only ever sample the mapping
space point by point.  With a trained
:class:`~repro.learned.model.LearnedCostModel` the space becomes
*differentiable*: tile sizes relax to continuous log2 coordinates,
:func:`~repro.learned.features.relaxed_features` provides the Jacobian
of the feature vector with respect to them, and gradient descent walks
the model's landscape directly — the "one-loop" search of DOSA, where
the same descent that tunes the mapping implicitly co-tunes against the
hardware configuration baked into the feature prefix.

Honesty contract (same discipline as the screening engine): the model
only ever *proposes*.  Every proposal is projected back to a legal
divisor-aligned :class:`~repro.mapping.gemm_mapping.GemmMapping` and
evaluated by the analytical engine through the standard
:class:`~repro.mapping.base.AnytimeMappingSearch` fold, so incumbents,
history and PPA numbers are exactly as trustworthy as any other tool's.
Without a model (none trained yet, or the engine has no
``learned_model``) the tool degrades to an honest mutation-based local
search rather than failing.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.errors import ReproError
from repro.learned.features import relaxed_features
from repro.learned.model import LearnedCostModel
from repro.mapping.base import AnytimeMappingSearch
from repro.mapping.gemm_mapping import (
    DIM_INDEX,
    LOOP_ORDERS,
    SPATIAL_CHOICES,
    UNROLL_CHOICES,
    GemmMapping,
    GemmMappingSpace,
)


class OneLoopMappingSearch(AnytimeMappingSearch):
    """Projected gradient descent over relaxed tiles against the model.

    Parameters
    ----------
    model:
        Trained learned cost model.  Defaults to the engine's
        ``learned_model`` attribute (a :class:`ScreeningPPAEngine`
        exposes the model it screens with), else ``None`` = fallback
        mutation search.
    gd_steps / lr:
        Descent steps and learning rate per proposal, in log2-tile space.
    jitter:
        Std of the Gaussian perturbation applied to the incumbent's
        log2 tiles before descending — restarts from slightly different
        basins across proposals.
    explore_prob:
        Probability of proposing a plain mutation instead of a descent,
        keeping coverage of the categorical axes the gradient cannot see.
    """

    name = "oneloop"
    #: drafting would mutate the per-layer visited sets the replay pass
    #: re-reads, breaking the speculation-safety contract
    supports_speculation = False

    def __init__(
        self,
        *args,
        model: Optional[LearnedCostModel] = None,
        gd_steps: int = 12,
        lr: float = 0.4,
        jitter: float = 0.25,
        explore_prob: float = 0.25,
        **kwargs,
    ):
        self.gd_steps = gd_steps
        self.lr = lr
        self.jitter = jitter
        self.explore_prob = explore_prob
        self._visited: Dict[str, Set[tuple]] = {}
        self.num_gradient_proposals = 0
        self.num_fallback_proposals = 0
        super().__init__(*args, **kwargs)
        if model is None:
            model = getattr(self.engine, "learned_model", None)
        self.model = model
        # the model scores log latency / log(latency*energy); both search
        # objectives have a direct counterpart
        self._model_objective = "latency" if self.objective == "latency" else "edp"

    # ---------------------------------------------------------------- strategy
    def _pick_layer(self) -> str:
        """Weight layers by their share of incumbent network latency."""
        weights = np.array(
            [
                self.layer_counts[name]
                * max(self.best_layer_result[name].latency_s, 1e-12)
                for name in self.layer_names
            ]
        )
        if not np.all(np.isfinite(weights)) or weights.sum() <= 0:
            return self.layer_names[
                int(self.rng.integers(0, len(self.layer_names)))
            ]
        probabilities = weights / weights.sum()
        return self.layer_names[
            int(self.rng.choice(len(self.layer_names), p=probabilities))
        ]

    def _propose(self) -> Tuple[str, GemmMapping]:
        layer_name = self._pick_layer()
        space = self.spaces[layer_name]
        incumbent = self.best_layer_mapping[layer_name]
        candidate: Optional[GemmMapping] = None
        if self.model is not None and self.rng.random() >= self.explore_prob:
            try:
                candidate = self._descend(space, incumbent)
                self.num_gradient_proposals += 1
            except (AttributeError, TypeError, ValueError, ReproError):
                # foreign hw/mapping types or a stale model artifact:
                # degrade to the mutation fallback for this proposal
                candidate = None
        if candidate is None:
            candidate = space.mutate(incumbent, self.rng)
            self.num_fallback_proposals += 1
        visited = self._visited.setdefault(layer_name, set())
        attempts = 0
        while candidate.key() in visited and attempts < 4:
            candidate = space.mutate(candidate, self.rng)
            attempts += 1
        visited.add(candidate.key())
        return layer_name, candidate

    def _descend(
        self, space: GemmMappingSpace, incumbent: GemmMapping
    ) -> GemmMapping:
        """One restart of projected descent; returns the projected mapping."""
        grids = (
            np.asarray(space.tile_m_choices, dtype=np.float64),
            np.asarray(space.tile_n_choices, dtype=np.float64),
            np.asarray(space.tile_k_choices, dtype=np.float64),
        )
        lo = np.array([np.log2(grid.min()) for grid in grids])
        hi = np.array([np.log2(grid.max()) for grid in grids])
        start = np.log2(np.asarray(incumbent.tiles(), dtype=np.float64))
        start = np.clip(start + self.rng.normal(0.0, self.jitter, 3), lo, hi)

        # the gradient cannot see the categorical axes; score the incumbent's
        # choice against two random alternatives and descend under the best
        categorical = [(incumbent.loop_order, incumbent.spatial, incumbent.unroll)]
        for _ in range(2):
            categorical.append(
                (
                    LOOP_ORDERS[int(self.rng.integers(0, len(LOOP_ORDERS)))],
                    SPATIAL_CHOICES[
                        int(self.rng.integers(0, len(SPATIAL_CHOICES)))
                    ],
                    UNROLL_CHOICES[
                        int(self.rng.integers(0, len(UNROLL_CHOICES)))
                    ],
                )
            )

        best_score = float("inf")
        best: Optional[Tuple[np.ndarray, Tuple]] = None
        for order, spatial, unroll in categorical:
            spatial_mn = 1 if spatial == "mn" else 0
            inner_index = DIM_INDEX[order[2]]
            logs = start.copy()
            for _ in range(self.gd_steps):
                x, jac = relaxed_features(
                    self.hw, space.shape, logs, spatial_mn, unroll, inner_index
                )
                _score, grad_x = self.model.grad_objective(
                    x, self._model_objective
                )
                grad = jac.T @ grad_x
                if not np.all(np.isfinite(grad)) or np.linalg.norm(grad) < 1e-12:
                    break
                logs = np.clip(logs - self.lr * grad, lo, hi)
            x, _ = relaxed_features(
                self.hw, space.shape, logs, spatial_mn, unroll, inner_index
            )
            score = float(
                self.model.predict_objective(
                    x.reshape(1, -1), self._model_objective
                )[0][0]
            )
            if score < best_score:
                best_score = score
                best = (logs, (order, spatial, unroll))

        logs, (order, spatial, unroll) = best
        tiles = [
            int(grid[int(np.argmin(np.abs(np.log2(grid) - value)))])
            for grid, value in zip(grids, logs)
        ]
        return GemmMapping(
            tile_m=tiles[0],
            tile_n=tiles[1],
            tile_k=tiles[2],
            loop_order=tuple(order),
            spatial=spatial,
            unroll=unroll,
        )


__all__ = ["OneLoopMappingSearch"]
