"""Ablation: the MSH promotion mix p (share of AUC-promoted candidates).

Section 3.3 fixes ``k = 0.5 N`` and ``p = 0.15 N``.  This bench sweeps the
AUC fraction p/N over {0 (= default SH), 0.15 (paper), 0.3} on one workload
and reports the final hypervolume of each setting, checking that the
paper's operating point is not dominated by plain SH.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once, save_record
from repro.core import Unico, UnicoConfig
from repro.costmodel import MaestroEngine
from repro.experiments import combined_reference, final_hypervolume
from repro.hw import edge_design_space, power_cap_for
from repro.utils.records import RunRecord
from repro.workloads import get_network

AUC_FRACTIONS = (0.0, 0.15, 0.3)
SEEDS = (0, 1)
NETWORK = "srgan"


def _run_sweep() -> RunRecord:
    network = get_network(NETWORK)
    space = edge_design_space()
    record = RunRecord("ablation-msh")
    results = {}
    for fraction in AUC_FRACTIONS:
        per_seed = []
        for seed in SEEDS:
            engine = MaestroEngine(network)
            unico = Unico(
                space,
                network,
                engine,
                UnicoConfig(
                    batch_size=10,
                    max_iterations=3,
                    max_budget=80,
                    auc_fraction=fraction,
                    use_msh=fraction > 0,
                    workers=8,
                ),
                power_cap_w=power_cap_for("edge"),
                seed=seed,
            )
            per_seed.append(unico.optimize())
        results[fraction] = per_seed
    reference = combined_reference(
        [r for group in results.values() for r in group]
    )
    for fraction, group in results.items():
        hvs = [final_hypervolume(r, reference) for r in group]
        record.child(f"p_{fraction}").update(
            {"mean_hv": float(np.mean(hvs)), "hvs": hvs}
        )
    return record


@pytest.mark.benchmark(group="ablation")
def test_ablation_msh_auc_fraction(benchmark, results_dir):
    record = run_once(benchmark, _run_sweep)
    save_record(results_dir, "ablation_msh", record)
    print(f"\n=== Ablation: MSH AUC fraction on {NETWORK} ===")
    for fraction in AUC_FRACTIONS:
        mean_hv = record.children[f"p_{fraction}"].get("mean_hv")
        print(f"p/N = {fraction:.2f}  mean hypervolume {mean_hv:.4f}")
    paper_hv = record.children["p_0.15"].get("mean_hv")
    sh_hv = record.children["p_0.0"].get("mean_hv")
    # the paper's operating point should not be dominated by plain SH
    assert paper_hv >= 0.9 * sh_hv
