"""Hyperband bracket planning (Li et al., 2017).

Hyperband answers SH's "n versus B/n" dilemma by running several SH
*brackets* that trade off the number of candidates against the starting
budget per candidate.  The MOBOHB baseline (Section 4.2's "multi-objective
version of BOHB") combines these brackets with model-based candidate
sampling; the bracket arithmetic lives here, the model lives in
:mod:`repro.core.baselines.mobohb`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import SearchBudgetError


@dataclass(frozen=True)
class Bracket:
    """One Hyperband bracket: start with ``num_candidates`` at budget
    ``initial_budget``, halving down over ``num_rounds`` rounds to
    ``max_budget``."""

    index: int
    num_candidates: int
    initial_budget: int
    max_budget: int
    eta: float

    @property
    def num_rounds(self) -> int:
        if self.initial_budget >= self.max_budget:
            return 1
        return (
            int(
                np.floor(
                    np.log(self.max_budget / self.initial_budget)
                    / np.log(self.eta)
                )
            )
            + 1
        )


def hyperband_brackets(max_budget: int, eta: float = 3.0) -> List[Bracket]:
    """The standard bracket set: s = s_max .. 0.

    Bracket s starts ``ceil((s_max+1)/(s+1) * eta^s)`` candidates at budget
    ``max_budget * eta^-s``.
    """
    if max_budget < 1:
        raise SearchBudgetError(f"max_budget must be >= 1, got {max_budget}")
    if eta <= 1:
        raise SearchBudgetError(f"eta must be > 1, got {eta}")
    s_max = int(np.floor(np.log(max_budget) / np.log(eta)))
    brackets: List[Bracket] = []
    for s in range(s_max, -1, -1):
        num_candidates = int(np.ceil((s_max + 1) / (s + 1) * eta**s))
        initial_budget = max(1, int(round(max_budget * eta**-s)))
        brackets.append(
            Bracket(
                index=s_max - s,
                num_candidates=num_candidates,
                initial_budget=initial_budget,
                max_budget=max_budget,
                eta=eta,
            )
        )
    return brackets
