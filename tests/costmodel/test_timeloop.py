"""Tests for the loop-centric (Timeloop-like) engine, incl. cross-validation
against the data-centric (MAESTRO-like) engine.

The two engines model the same hardware with independent formulations, so
strong rank-correlation between them on random (hw, mapping) pairs is a
meaningful check of both.
"""

import numpy as np
import pytest

from repro.costmodel import MaestroEngine
from repro.costmodel.maestro import analyze_gemm
from repro.costmodel.timeloop import TimeloopEngine, analyze_gemm_loopnest, _tile_fills, _Loop
from repro.hw import SpatialHWConfig, edge_design_space
from repro.mapping import FlexTensorSearch, GemmMapping, GemmMappingSpace
from repro.workloads.layers import GemmShape

SHAPE = GemmShape(m=64, n=256, k=128)


def _hw(**overrides) -> SpatialHWConfig:
    base = dict(pe_x=8, pe_y=8, l1_bytes=4096, l2_kb=512, noc_bw=64, dataflow="ws")
    base.update(overrides)
    return SpatialHWConfig(**base)


class TestTileFills:
    def test_no_loops_one_fill(self):
        assert _tile_fills([], ("m", "k")) == 1

    def test_indexing_loops_multiply(self):
        loops = [_Loop("m", 4), _Loop("k", 3)]
        assert _tile_fills(loops, ("m", "k")) == 12

    def test_inner_non_indexing_loop_reuses(self):
        # n innermost: the A tile stays resident across the n loop
        loops = [_Loop("m", 4), _Loop("k", 3), _Loop("n", 5)]
        assert _tile_fills(loops, ("m", "k")) == 12

    def test_outer_non_indexing_loop_refills(self):
        # n outermost: every n iteration revisits all A tiles
        loops = [_Loop("n", 5), _Loop("m", 4), _Loop("k", 3)]
        assert _tile_fills(loops, ("m", "k")) == 60

    def test_middle_non_indexing_loop_refills_outer_part(self):
        loops = [_Loop("m", 4), _Loop("n", 5), _Loop("k", 3)]
        assert _tile_fills(loops, ("m", "k")) == 60


class TestAgainstDataCentricModel:
    def test_feasibility_identical(self):
        """Capacity rules are shared: both engines agree exactly."""
        rng = np.random.default_rng(0)
        space = edge_design_space()
        mapping_space = GemmMappingSpace(SHAPE)
        agreements = 0
        for _ in range(60):
            hw = space.sample(rng)
            mapping = mapping_space.sample(rng)
            a = analyze_gemm(hw, mapping, SHAPE)
            b = analyze_gemm_loopnest(hw, mapping, SHAPE)
            assert a.feasible == b.feasible
            agreements += 1
        assert agreements == 60

    def test_latency_rank_correlation(self):
        """Log-latencies of the two models correlate strongly."""
        rng = np.random.default_rng(1)
        space = edge_design_space()
        mapping_space = GemmMappingSpace(SHAPE)
        lat_a, lat_b = [], []
        while len(lat_a) < 50:
            hw = space.sample(rng)
            mapping = mapping_space.sample(rng)
            a = analyze_gemm(hw, mapping, SHAPE)
            b = analyze_gemm_loopnest(hw, mapping, SHAPE)
            if a.feasible and b.feasible:
                lat_a.append(np.log(a.latency_s))
                lat_b.append(np.log(b.latency_s))
        corr = np.corrcoef(lat_a, lat_b)[0, 1]
        assert corr > 0.9

    def test_energy_rank_correlation(self):
        rng = np.random.default_rng(2)
        space = edge_design_space()
        mapping_space = GemmMappingSpace(SHAPE)
        e_a, e_b = [], []
        while len(e_a) < 50:
            hw = space.sample(rng)
            mapping = mapping_space.sample(rng)
            a = analyze_gemm(hw, mapping, SHAPE)
            b = analyze_gemm_loopnest(hw, mapping, SHAPE)
            if a.feasible and b.feasible:
                e_a.append(np.log(a.energy_j))
                e_b.append(np.log(b.energy_j))
        corr = np.corrcoef(e_a, e_b)[0, 1]
        assert corr > 0.9

    def test_compute_cycles_identical(self):
        """Compute is model-independent: exactly equal by construction."""
        mapping = GemmMapping(32, 32, 32)
        a = analyze_gemm(_hw(), mapping, SHAPE)
        b = analyze_gemm_loopnest(_hw(), mapping, SHAPE)
        assert a.compute_cycles == pytest.approx(b.compute_cycles)

    def test_single_tile_minimal_traffic(self):
        hw = _hw(l1_bytes=10**7, l2_kb=10**6)
        mapping = GemmMapping(SHAPE.m, SHAPE.n, SHAPE.k)
        result = analyze_gemm_loopnest(hw, mapping, SHAPE)
        minimum = SHAPE.m * SHAPE.k + SHAPE.k * SHAPE.n + SHAPE.m * SHAPE.n
        assert result.dram_bytes == pytest.approx(minimum)


class TestTimeloopEngineDropIn:
    def test_search_runs_on_timeloop_engine(self, tiny_network, sample_hw):
        engine = TimeloopEngine(tiny_network)
        search = FlexTensorSearch(tiny_network, sample_hw, engine, seed=0)
        search.run(40)
        assert np.isfinite(search.best_objective)
        assert search.best_ppa.feasible

    def test_engines_prefer_similar_mappings(self, tiny_network, sample_hw):
        """The best mapping found under one model is near-optimal under the
        other (within 2x) — the property that makes analytical engines
        interchangeable for prototyping."""
        results = {}
        for name, engine_cls in (("maestro", MaestroEngine), ("timeloop", TimeloopEngine)):
            engine = engine_cls(tiny_network)
            search = FlexTensorSearch(tiny_network, sample_hw, engine, seed=3)
            search.run(150)
            results[name] = search.best_mapping
        cross = MaestroEngine(tiny_network)
        own = cross.aggregate(sample_hw, results["maestro"]).latency_s
        transferred = cross.aggregate(sample_hw, results["timeloop"]).latency_s
        assert transferred <= 2.0 * own
