"""Journal -> dataset extraction: dedup, damage tolerance, run splits."""

import json

import numpy as np
import pytest

from repro.costmodel import MaestroEngine
from repro.learned import build_dataset, feature_dim, split_by_run
from repro.learned.dataset import SAMPLE_SCHEMA
from repro.mapping.gemm_mapping import GemmMappingSpace
from repro.tracking import EventJournal, JournalSampleSink, RunStore


def _record_run(store, network, hw, seed, batch=16):
    """One tracked pseudo-run: journal engine_sample events for a batch."""
    run = store.create_run({"method": "test", "seed": seed})
    journal = EventJournal(run.journal_path)
    engine = MaestroEngine(network)
    engine.sample_sink = JournalSampleSink(journal)
    layer_name = next(iter(engine.layer_shapes))
    shape, _count = engine.layer_shapes[layer_name]
    space = GemmMappingSpace(shape)
    rng = np.random.default_rng(seed)
    mappings = [space.sample(rng) for _ in range(batch)]
    engine.evaluate_candidates(hw, layer_name, mappings)
    journal.close()
    return run, mappings


class TestBuildDataset:
    def test_extracts_samples_with_exact_features(
        self, tiny_network, sample_hw, tmp_path
    ):
        store = RunStore(tmp_path / "runs")
        _run, mappings = _record_run(store, tiny_network, sample_hw, seed=0)
        dataset = build_dataset(store)
        unique = len({m.key() for m in mappings})
        assert len(dataset) == unique
        assert dataset.x.shape == (unique, feature_dim())
        assert dataset.stats["skipped"] == 0
        # infeasible rows carry inf targets, never NaN
        assert not np.isnan(dataset.latency_s).any()
        assert np.isfinite(dataset.latency_s[dataset.feasible]).all()

    def test_cache_hits_do_not_duplicate(self, tiny_network, sample_hw, tmp_path):
        store = RunStore(tmp_path / "runs")
        run, mappings = _record_run(store, tiny_network, sample_hw, seed=0)
        # drive the same batch through a fresh engine against the same
        # journal: identical candidates are recomputed and re-journaled,
        # and dedup must fold them away
        journal = EventJournal.open_resume(run.journal_path)
        engine = MaestroEngine(tiny_network)
        engine.sample_sink = JournalSampleSink(journal)
        layer_name = next(iter(engine.layer_shapes))
        engine.evaluate_candidates(sample_hw, layer_name, mappings)
        journal.close()

        deduped = build_dataset(store)
        raw = build_dataset(store, dedup=False)
        assert deduped.stats["duplicates"] > 0
        assert len(raw) == len(deduped) + deduped.stats["duplicates"]

    def test_accepts_many_source_shapes(self, tiny_network, sample_hw, tmp_path):
        store = RunStore(tmp_path / "runs")
        run, _mappings = _record_run(store, tiny_network, sample_hw, seed=0)
        by_store = build_dataset(store)
        by_root = build_dataset(tmp_path / "runs")
        by_run_dir = build_dataset(run.dir)
        by_journal = build_dataset(run.journal_path)
        by_handle = build_dataset(run)
        for dataset in (by_root, by_run_dir, by_journal, by_handle):
            assert len(dataset) == len(by_store)

    def test_truncated_tail_is_tolerated(self, tiny_network, sample_hw, tmp_path):
        store = RunStore(tmp_path / "runs")
        run, _mappings = _record_run(store, tiny_network, sample_hw, seed=0)
        full = build_dataset(store)
        raw = run.journal_path.read_bytes()
        run.journal_path.write_bytes(raw[: int(len(raw) * 0.6)])
        damaged = build_dataset(store)
        assert damaged.stats["truncated_journals"] == 1
        assert 0 < len(damaged) < len(full)

    def test_malformed_and_future_schema_events_skipped(
        self, tiny_network, sample_hw, tmp_path
    ):
        store = RunStore(tmp_path / "runs")
        run, _mappings = _record_run(store, tiny_network, sample_hw, seed=0)
        baseline = build_dataset(store)
        journal = EventJournal.open_resume(run.journal_path)
        journal.append("engine_sample", {"sample_schema": SAMPLE_SCHEMA + 1})
        journal.append("engine_sample", {"sample_schema": 1, "hw": {}})
        journal.close()
        dataset = build_dataset(store)
        assert len(dataset) == len(baseline)
        assert dataset.stats["skipped"] == 2

    def test_missing_source_raises(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="no runs or journal"):
            build_dataset(tmp_path / "nope")


class TestSplitByRun:
    def test_whole_runs_stay_on_one_side(self, tiny_network, edge_space, tmp_path):
        store = RunStore(tmp_path / "runs")
        rng = np.random.default_rng(0)
        for seed in range(4):
            _record_run(store, tiny_network, edge_space.sample(rng), seed=seed)
        dataset = build_dataset(store)
        train, val = split_by_run(dataset, val_fraction=0.25, seed=0)
        assert len(train) + len(val) == len(dataset)
        assert len(val) > 0
        assert not (set(train.run_ids) & set(val.run_ids))

    def test_single_run_falls_back_to_row_split(
        self, tiny_network, sample_hw, tmp_path
    ):
        store = RunStore(tmp_path / "runs")
        _record_run(store, tiny_network, sample_hw, seed=0, batch=20)
        dataset = build_dataset(store)
        train, val = split_by_run(dataset, val_fraction=0.25, seed=0)
        assert len(train) + len(val) == len(dataset)
        assert len(val) == round(0.25 * len(dataset))

    def test_split_is_deterministic(self, tiny_network, edge_space, tmp_path):
        store = RunStore(tmp_path / "runs")
        rng = np.random.default_rng(1)
        for seed in range(3):
            _record_run(store, tiny_network, edge_space.sample(rng), seed=seed)
        dataset = build_dataset(store)
        first = split_by_run(dataset, seed=42)
        second = split_by_run(dataset, seed=42)
        assert np.array_equal(first[0].x, second[0].x)
        assert np.array_equal(first[1].x, second[1].x)
