"""Additional workloads beyond the paper's evaluation set.

These extend the registry for the repo's own studies (seed sweeps, the
R-vs-generalization correlation experiment) with operator mixes the paper
set under-represents: autoregressive decoding (GPT-2), squeeze-excite
MBConv at compound scaling (EfficientNet-B0), and dense feature reuse
(DenseNet-121).
"""

from __future__ import annotations

from typing import List

from repro.workloads.layers import Conv2D, DepthwiseConv2D, Gemm, LayerSpec, pointwise_conv
from repro.workloads.network import Network
from repro.workloads.networks.mobile_nets import _inverted_residual


def gpt2_decode(seq_len: int = 1024, batch_tokens: int = 16) -> Network:
    """GPT-2 small in incremental decoding: 12 layers, hidden 768.

    During decoding each step processes ``batch_tokens`` new tokens against
    a ``seq_len`` KV cache — the skinny-GEMM regime that stresses operand
    bandwidth instead of compute.
    """
    hidden, heads, ffn, blocks = 768, 12, 3072, 12
    head_dim = hidden // heads
    layers: List[LayerSpec] = [
        Gemm(name="qkv", m=3 * hidden, n=batch_tokens, k=hidden, count=blocks),
        Gemm(
            name="attn_scores",
            m=batch_tokens,
            n=seq_len,
            k=head_dim,
            count=blocks * heads,
        ),
        Gemm(
            name="attn_context",
            m=batch_tokens,
            n=head_dim,
            k=seq_len,
            count=blocks * heads,
        ),
        Gemm(name="out_proj", m=hidden, n=batch_tokens, k=hidden, count=blocks),
        Gemm(name="ffn_up", m=ffn, n=batch_tokens, k=hidden, count=blocks),
        Gemm(name="ffn_down", m=hidden, n=batch_tokens, k=ffn, count=blocks),
        Gemm(name="lm_head", m=50257, n=batch_tokens, k=hidden),
    ]
    return Network(
        name="gpt2_decode",
        layers=tuple(layers),
        family="transformer",
        year=2019,
        description=f"GPT-2 small decode, KV cache {seq_len}, {batch_tokens} tokens",
    )


def efficientnet_b0() -> Network:
    """EfficientNet-B0 (Tan & Le, 2019): MBConv backbone at 224x224."""
    layers: List[LayerSpec] = [
        Conv2D(
            name="stem",
            in_channels=3,
            out_channels=32,
            in_h=224,
            in_w=224,
            kernel=3,
            stride=2,
        )
    ]
    layers += _inverted_residual("mb1", 32, 16, 112, 112, expand=1)
    layers += _inverted_residual("mb2a", 16, 24, 112, 112, expand=6, stride=2)
    layers += _inverted_residual("mb2b", 24, 24, 56, 56, expand=6)
    layers += _inverted_residual("mb3a", 24, 40, 56, 56, expand=6, stride=2, kernel=5)
    layers += _inverted_residual("mb3b", 40, 40, 28, 28, expand=6, kernel=5)
    layers += _inverted_residual("mb4a", 40, 80, 28, 28, expand=6, stride=2)
    layers += _inverted_residual("mb4b", 80, 80, 14, 14, expand=6, count=2)
    layers += _inverted_residual("mb5", 80, 112, 14, 14, expand=6, kernel=5, count=3)
    layers += _inverted_residual(
        "mb6a", 112, 192, 14, 14, expand=6, stride=2, kernel=5
    )
    layers += _inverted_residual("mb6b", 192, 192, 7, 7, expand=6, kernel=5, count=3)
    layers += _inverted_residual("mb7", 192, 320, 7, 7, expand=6)
    layers.append(pointwise_conv("head", 320, 1280, 7, 7))
    layers.append(Gemm(name="fc", m=1000, n=1, k=1280))
    return Network(
        name="efficientnet_b0",
        layers=tuple(layers),
        family="mobile",
        year=2019,
        description="EfficientNet-B0 @ 224x224",
    )


def densenet121() -> Network:
    """DenseNet-121 (Huang et al., 2017), growth rate 32, 224x224.

    Each dense layer is a 1x1 bottleneck (4x growth) + 3x3 conv on the
    concatenated features; channel counts below are stage averages, the
    standard compression for analytical evaluation.
    """
    growth = 32

    def dense_block(prefix: str, in_ch: int, num_layers: int, hw: int) -> List[LayerSpec]:
        avg_in = in_ch + growth * (num_layers - 1) // 2
        return [
            pointwise_conv(f"{prefix}_bottleneck", avg_in, 4 * growth, hw, hw, count=num_layers),
            Conv2D(
                name=f"{prefix}_conv3",
                count=num_layers,
                in_channels=4 * growth,
                out_channels=growth,
                in_h=hw,
                in_w=hw,
                kernel=3,
            ),
        ]

    layers: List[LayerSpec] = [
        Conv2D(
            name="stem",
            in_channels=3,
            out_channels=64,
            in_h=224,
            in_w=224,
            kernel=7,
            stride=2,
        )
    ]
    layers += dense_block("db1", 64, 6, 56)
    layers.append(pointwise_conv("trans1", 256, 128, 56, 56))
    layers += dense_block("db2", 128, 12, 28)
    layers.append(pointwise_conv("trans2", 512, 256, 28, 28))
    layers += dense_block("db3", 256, 24, 14)
    layers.append(pointwise_conv("trans3", 1024, 512, 14, 14))
    layers += dense_block("db4", 512, 16, 7)
    layers.append(Gemm(name="fc", m=1000, n=1, k=1024))
    return Network(
        name="densenet121",
        layers=tuple(layers),
        family="cnn",
        year=2017,
        description="DenseNet-121 @ 224x224",
    )
