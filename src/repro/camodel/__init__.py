"""Cycle-accurate (Ascend-like) platform model.

* :class:`AscendMapping` / :class:`AscendMappingSpace` — the depth-first
  buffer-fusion mapping representation,
* :func:`simulate_layer` — the tile-pipeline cycle-level simulator,
* :class:`AscendCAEngine` — the expensive estimation service (minutes of
  modeled wall-clock per query, optional 8 +/- 3 % model-error channel).
"""

from repro.camodel.ascend_sim import (
    MAX_SIMULATED_TILES,
    ascend_area_mm2,
    simulate_layer,
)
from repro.camodel.engine import CAMODEL_EVAL_COST_S, AscendCAEngine
from repro.camodel.mapping import AscendMapping, AscendMappingSpace
from repro.camodel.trace import PipelineTrace, StageStats, explain_layer, trace_layer

__all__ = [
    "MAX_SIMULATED_TILES",
    "ascend_area_mm2",
    "simulate_layer",
    "CAMODEL_EVAL_COST_S",
    "AscendCAEngine",
    "AscendMapping",
    "AscendMappingSpace",
    "PipelineTrace",
    "StageStats",
    "explain_layer",
    "trace_layer",
]
