"""Cross-module integration tests: the full co-optimization stack.

Where unit tests validate each piece, these validate the *claims* the
system rests on, end to end, at small scale:

* UNICO produces better-or-equal hypervolume than random search at a
  comparable evaluation budget,
* the high-fidelity surrogate actually learns (prediction error shrinks
  with training data),
* the whole pipeline is deterministic under a fixed seed,
* the Ascend path (CA model + fusion tool + UNICO + area cap) holds up.
"""

import numpy as np
import pytest

from repro.camodel import AscendCAEngine
from repro.core import (
    RandomCodesign,
    RandomCodesignConfig,
    Unico,
    UnicoConfig,
)
from repro.costmodel import MaestroEngine
from repro.experiments import combined_reference, final_hypervolume
from repro.hw import ascend_design_space, edge_design_space
from repro.workloads import get_network


class TestUnicoVsRandom:
    def test_unico_hypervolume_not_worse(self, tiny_network, edge_space):
        """Averaged over seeds, UNICO's front should at least match random's
        under a similar total evaluation budget."""
        unico_hvs = []
        random_hvs = []
        for seed in (0, 1, 2):
            engine = MaestroEngine(tiny_network)
            unico = Unico(
                edge_space,
                tiny_network,
                engine,
                UnicoConfig(batch_size=6, max_iterations=3, max_budget=40),
                power_cap_w=100.0,
                seed=seed,
            )
            unico_result = unico.optimize()
            engine2 = MaestroEngine(tiny_network)
            rand = RandomCodesign(
                edge_space,
                tiny_network,
                engine2,
                RandomCodesignConfig(max_candidates=12, full_budget=40),
                power_cap_w=100.0,
                seed=seed,
            )
            random_result = rand.optimize()
            reference = combined_reference([unico_result, random_result])
            unico_hvs.append(final_hypervolume(unico_result, reference))
            random_hvs.append(final_hypervolume(random_result, reference))
        assert np.mean(unico_hvs) >= 0.9 * np.mean(random_hvs)


class TestSurrogateLearns:
    def test_prediction_error_shrinks(self, tiny_network, edge_space):
        """GP error on PPA objectives drops as observations accumulate."""
        from repro.core.evaluation import SWSearchTrial, assemble_objectives
        from repro.optim.mobo import MOBOSampler
        from repro.optim.pareto import ObjectiveNormalizer

        engine = MaestroEngine(tiny_network)
        engine.charge_clock = False
        configs = edge_space.sample_batch(40, seed=0)
        normalizer = ObjectiveNormalizer(3)
        observations = []
        for hw in configs:
            trial = SWSearchTrial(hw, tiny_network, engine, seed=1)
            trial.run(12)
            evaluation = assemble_objectives(trial, include_robustness=False)
            observations.append(evaluation.objectives)
            normalizer.observe(evaluation.objectives)
        y = np.vstack([normalizer.transform(obs) for obs in observations])
        sampler = MOBOSampler(edge_space, 3, seed=0)
        query, truth = configs[30:], y[30:]

        def rmse(train_n):
            mean, _ = sampler.predict_objectives(
                configs[:train_n], y[:train_n], query
            )
            return float(np.sqrt(np.mean((mean - truth) ** 2)))

        assert rmse(30) < rmse(5) * 1.05  # learning, modulo noise


class TestDeterminism:
    def test_unico_fully_deterministic(self, tiny_network, edge_space):
        def run_once():
            engine = MaestroEngine(tiny_network)
            unico = Unico(
                edge_space,
                tiny_network,
                engine,
                UnicoConfig(batch_size=5, max_iterations=2, max_budget=20),
                power_cap_w=100.0,
                seed=99,
            )
            result = unico.optimize()
            return (
                result.total_time_s,
                result.total_engine_queries,
                tuple(sorted(map(tuple, result.pareto.points.tolist()))),
            )

        assert run_once() == run_once()


class TestAscendPipeline:
    def test_unico_on_ascend_with_area_cap(self):
        network = get_network("fsrcnn_120x320")
        engine = AscendCAEngine(network, noise_fraction=0.08)
        unico = Unico(
            ascend_design_space(),
            network,
            engine,
            UnicoConfig(
                batch_size=4,
                max_iterations=2,
                max_budget=16,
                workers=4,
            ),
            tool="fusion",
            area_cap_mm2=200.0,
            seed=5,
        )
        result = unico.optimize()
        best = result.best_design()
        assert best is not None
        assert best.ppa.area_mm2 <= 200.0
        assert np.isfinite(best.ppa.latency_s)
        # CA-model evaluations dominate the simulated cost: even this tiny
        # run (4 workers) burns a large fraction of an hour of modeled time
        assert result.total_time_h > 0.2


class TestClockAccounting:
    def test_simulated_cost_scales_with_queries(self, tiny_network, edge_space):
        engine = MaestroEngine(tiny_network)
        unico = Unico(
            edge_space,
            tiny_network,
            engine,
            UnicoConfig(batch_size=4, max_iterations=1, max_budget=16, workers=1),
            power_cap_w=100.0,
            seed=0,
        )
        result = unico.optimize()
        expected = engine.num_queries * engine.eval_cost_s
        # serial workers: SW-search time == queries x eval cost (+ MOBO overhead)
        assert result.total_time_s == pytest.approx(
            expected + unico.config.mobo_overhead_s, rel=0.01
        )
