"""Uniform-random mapping search — the sanity baseline.

Each step samples a fresh random mapping for a random layer.  Used in tests
(any smarter tool must beat it) and as a budget-normalized control.
"""

from __future__ import annotations

from typing import Tuple

from repro.mapping.base import AnytimeMappingSearch
from repro.mapping.gemm_mapping import GemmMapping


class RandomMappingSearch(AnytimeMappingSearch):
    """IID random sampling over per-layer mapping spaces."""

    name = "random"
    #: pure-RNG proposals: drafting touches nothing but the generator, so
    #: speculative replay regenerates the exact same candidates every time
    supports_speculation = True

    def _propose(self) -> Tuple[str, GemmMapping]:
        layer_name = self.layer_names[int(self.rng.integers(0, len(self.layer_names)))]
        return layer_name, self.spaces[layer_name].sample(self.rng)
