"""Tests for the Ascend-like configuration and design space."""

import pytest

from repro.errors import ConfigurationError
from repro.hw import (
    ASCEND_AREA_CAP_MM2,
    AscendHWConfig,
    ascend_design_space,
    default_ascend_config,
)


class TestAscendHWConfig:
    def test_cube_macs(self):
        hw = default_ascend_config()
        assert hw.cube_macs_per_cycle == 16**3

    def test_total_sram(self):
        hw = default_ascend_config()
        expected = 64 + 64 + 256 + 1024 + 256 + 64 + 32
        assert hw.total_sram_kb == expected

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            default_ascend_config().with_updates(l0a_kb=0)

    def test_invalid_banks(self):
        with pytest.raises(ConfigurationError):
            default_ascend_config().with_updates(l0c_banks=0)

    def test_with_updates_returns_new(self):
        base = default_ascend_config()
        bigger = base.with_updates(l0a_kb=128)
        assert bigger.l0a_kb == 128
        assert base.l0a_kb == 64

    def test_short_name(self):
        assert "cube16x16x16" in default_ascend_config().short_name()


class TestAscendSpace:
    def test_size_order_of_magnitude(self):
        # Section 4.1: "a HW space of size 1e9"
        size = ascend_design_space().size
        assert 1e8 <= size <= 1e11

    def test_default_config_in_space(self):
        space = ascend_design_space()
        assert space.contains(default_ascend_config())

    def test_roundtrip(self):
        space = ascend_design_space()
        for seed in range(10):
            hw = space.sample(seed=seed)
            assert space.decode(space.encode(hw)) == hw

    def test_mutate_stays_inside(self, rng):
        space = ascend_design_space()
        hw = default_ascend_config()
        for _ in range(30):
            hw = space.mutate(hw, rng)
            assert space.contains(hw)

    def test_area_cap_constant(self):
        assert ASCEND_AREA_CAP_MM2 == 200.0
