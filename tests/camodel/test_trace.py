"""Tests for the CA-model pipeline trace / bottleneck analysis."""

import pytest

from repro.camodel.ascend_sim import simulate_layer
from repro.camodel.mapping import AscendMapping
from repro.camodel.trace import PipelineTrace, explain_layer, trace_layer
from repro.errors import EvaluationError
from repro.hw import default_ascend_config
from repro.workloads.layers import GemmShape

SHAPE = GemmShape(m=64, n=1024, k=128)
MAPPING = AscendMapping(tile_m=32, tile_n=128, tile_k=64)


class TestTraceLayer:
    def test_trace_matches_simulator_latency(self):
        hw = default_ascend_config()
        trace = trace_layer(hw, MAPPING, SHAPE)
        sim = simulate_layer(hw, MAPPING, SHAPE)
        if trace.n_tiles <= trace.simulated_tiles:
            assert trace.total_cycles == pytest.approx(
                sim.latency_s * 1e9, rel=1e-9
            )

    def test_stage_names(self):
        trace = trace_layer(default_ascend_config(), MAPPING, SHAPE)
        names = [stage.name for stage in trace.stages]
        assert names == ["scalar", "dma_in", "mte", "cube", "vector", "dma_out"]

    def test_utilizations_bounded(self):
        trace = trace_layer(default_ascend_config(), MAPPING, SHAPE)
        for stage in trace.stages:
            assert 0.0 <= stage.utilization <= 1.0 + 1e-9
            assert stage.stall_cycles >= 0.0

    def test_bottleneck_is_max_utilization(self):
        trace = trace_layer(default_ascend_config(), MAPPING, SHAPE)
        assert trace.bottleneck.utilization == max(
            stage.utilization for stage in trace.stages
        )

    def test_compute_bound_case_has_cube_bottleneck(self):
        """A tall fused tile amortizes operand loads: cube-bound.

        Per tile, cube cycles / DMA cycles ~ tile_m / 128 for the default
        16^3 cube at 32 B/cy DDR, so tile_m = 256 is compute-bound.
        """
        hw = default_ascend_config()
        mapping = AscendMapping(
            tile_m=256, tile_n=128, tile_k=128, fuse_input=True, fuse_output=True
        )
        trace = trace_layer(hw, mapping, GemmShape(m=256, n=1024, k=2048))
        assert trace.bottleneck.name == "cube"

    def test_bandwidth_bound_case_has_dma_bottleneck(self):
        """A tiny cube makes compute cheap; skinny operands load-bound."""
        hw = default_ascend_config().with_updates(cube_m=32, cube_k=32, cube_n=32)
        mapping = AscendMapping(tile_m=32, tile_n=32, tile_k=32)
        trace = trace_layer(hw, mapping, GemmShape(m=32, n=8192, k=32))
        assert trace.bottleneck.name in ("dma_in", "dma_out", "scalar")

    def test_infeasible_raises(self):
        hw = default_ascend_config().with_updates(l0a_kb=1)
        with pytest.raises(EvaluationError):
            trace_layer(hw, MAPPING, SHAPE)

    def test_stage_lookup(self):
        trace = trace_layer(default_ascend_config(), MAPPING, SHAPE)
        assert trace.stage("cube").name == "cube"
        with pytest.raises(EvaluationError):
            trace.stage("tensor-core")


class TestExplainLayer:
    def test_report_mentions_bottleneck(self):
        report = explain_layer(default_ascend_config(), MAPPING, SHAPE)
        assert "bottleneck:" in report
        assert "util" in report
        assert "tiles:" in report
