#!/usr/bin/env python
"""Industrial deployment: tune an Ascend-like core for a video upscaler.

Reproduces the Fig. 11 workflow at small scale: UNICO explores the
Ascend-like design space (buffer sizes, bank groups, cube shape) under a
200 mm^2 area cap, driving the cycle-accurate engine through the
depth-first buffer-fusion mapping tool, and the result is compared against
the expert-selected default configuration.

Run:  python examples/ascend_deployment.py [network]
"""

import sys

from repro.experiments import run_method
from repro.experiments.fig11 import evaluate_default
from repro.hw import default_ascend_config


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "fsrcnn_120x320"
    default_hw = default_ascend_config()
    print(f"Workload: {network}")
    print(f"Expert default: {default_hw}")

    print("\nEvaluating the default with a fresh fusion-mapping search...")
    default_trial = evaluate_default(network, budget=40, seed=0)
    default_ppa = default_trial.best_ppa
    print(
        f"  default: {default_ppa.latency_s * 1e3:.2f} ms, "
        f"{default_ppa.power_w * 1e3:.0f} mW, {default_ppa.area_mm2:.1f} mm2"
    )

    print("\nRunning UNICO on the Ascend-like space "
          "(cycle-accurate engine, 4 slave workers)...")
    result = run_method("unico", "ascend", network, "smoke", seed=0)
    best = result.best_design()
    if best is None:
        print("No feasible design found at this tiny budget; try preset 'bench'.")
        return
    print(
        f"  UNICO:   {best.ppa.latency_s * 1e3:.2f} ms, "
        f"{best.ppa.power_w * 1e3:.0f} mW, {best.ppa.area_mm2:.1f} mm2 "
        f"(search cost {result.total_time_h:.1f} simulated h)"
    )
    print(f"  found HW: {best.hw}")

    latency_saving = 100 * (1 - best.ppa.latency_s / default_ppa.latency_s)
    power_saving = 100 * (1 - best.ppa.power_w / default_ppa.power_w)
    print(f"\nSavings vs default: latency {latency_saving:+.1f}%, "
          f"power {power_saving:+.1f}%")
    print(
        "L0 buffer rebalance (default -> UNICO): "
        f"L0A {default_hw.l0a_kb}->{best.hw.l0a_kb} KB, "
        f"L0B {default_hw.l0b_kb}->{best.hw.l0b_kb} KB, "
        f"L0C {default_hw.l0c_kb}->{best.hw.l0c_kb} KB"
    )


if __name__ == "__main__":
    main()
