"""Feature layout: width, batch/scalar parity, relaxation and Jacobian."""

import numpy as np
import pytest

from repro.learned import (
    FEATURE_VERSION,
    feature_dim,
    feature_names,
    featurize,
    featurize_batch,
    relaxed_features,
)
from repro.mapping.gemm_mapping import DIM_INDEX


class TestLayout:
    def test_names_match_dim_and_are_unique(self):
        names = feature_names()
        assert len(names) == feature_dim()
        assert len(set(names)) == len(names)

    def test_version_is_stable(self):
        # bump FEATURE_VERSION whenever the layout changes; this pin makes
        # an accidental layout change fail loudly
        assert FEATURE_VERSION == 1
        assert feature_dim() == 29

    def test_empty_batch(self, sample_hw, layer_and_shape):
        _layer, shape = layer_and_shape
        out = featurize_batch(sample_hw, [], shape)
        assert out.shape == (0, feature_dim())


class TestExactFeaturization:
    def test_batch_matches_scalar(self, sample_hw, layer_and_shape, mapping_batch):
        _layer, shape = layer_and_shape
        batch = featurize_batch(sample_hw, mapping_batch, shape)
        assert batch.shape == (len(mapping_batch), feature_dim())
        assert np.isfinite(batch).all()
        for index in (0, len(mapping_batch) // 2, -1):
            single = featurize(sample_hw, mapping_batch[index], shape)
            assert np.array_equal(single, batch[index])

    def test_distinct_mappings_differ(self, sample_hw, layer_and_shape, mapping_batch):
        _layer, shape = layer_and_shape
        batch = featurize_batch(sample_hw, mapping_batch, shape)
        keys = {m.key() for m in mapping_batch}
        rows = {tuple(row) for row in batch}
        assert len(rows) == len(keys)

    def test_foreign_hw_raises(self, layer_and_shape, mapping_batch):
        _layer, shape = layer_and_shape

        class ForeignHW:
            pass

        with pytest.raises(AttributeError):
            featurize_batch(ForeignHW(), mapping_batch[:2], shape)


class TestRelaxation:
    def test_matches_exact_at_integer_tiles(
        self, sample_hw, layer_and_shape, mapping_batch
    ):
        _layer, shape = layer_and_shape
        for mapping in mapping_batch[:8]:
            exact = featurize(sample_hw, mapping, shape)
            relaxed, jac = relaxed_features(
                sample_hw,
                shape,
                np.log2(np.asarray(mapping.tiles(), dtype=float)),
                1 if mapping.spatial == "mn" else 0,
                mapping.unroll,
                DIM_INDEX[mapping.loop_order[2]],
            )
            assert relaxed == pytest.approx(exact, abs=1e-12)
            assert jac.shape == (feature_dim(), 3)

    def test_jacobian_matches_finite_differences(
        self, sample_hw, layer_and_shape, mapping_batch
    ):
        _layer, shape = layer_and_shape
        mapping = mapping_batch[0]
        log_tiles = np.log2(np.asarray(mapping.tiles(), dtype=float)) + 0.3
        args = (1, mapping.unroll, DIM_INDEX[mapping.loop_order[2]])
        x0, jac = relaxed_features(sample_hw, shape, log_tiles, *args)
        eps = 1e-6
        for dim in range(3):
            bumped = log_tiles.copy()
            bumped[dim] += eps
            x1, _ = relaxed_features(sample_hw, shape, bumped, *args)
            finite_diff = (x1 - x0) / eps
            assert finite_diff == pytest.approx(jac[:, dim], abs=1e-5)

    def test_hw_prefix_has_zero_gradient(self, sample_hw, layer_and_shape):
        _layer, shape = layer_and_shape
        _x, jac = relaxed_features(sample_hw, shape, [2.0, 2.0, 2.0], 1, 2, 0)
        # only the tile block depends on the tile coordinates
        assert np.all(jac[:17] == 0.0)
        assert np.any(jac[17:] != 0.0)
