"""Batch-vs-scalar parity of the vectorized analytical kernels.

The acceptance bar of the batched evaluation path is *exact* agreement
with the scalar kernels: zero tolerance on feasibility (including the
infeasibility reason strings) and bit-level equality on latency/energy —
the vectorized code replicates the scalar expression evaluation order, so
nothing weaker is needed.  The sweep covers both dataflows, both spatial
orientations, feasible and infeasible candidates, divisor-aligned and
arbitrary clipped tiles, and unit and non-unit reuse penalties.
"""

import numpy as np
import pytest

from repro.costmodel import MaestroEngine, TimeloopEngine
from repro.costmodel.maestro import analyze_gemm
from repro.costmodel.maestro_batch import analyze_gemm_batch
from repro.costmodel.timeloop import analyze_gemm_loopnest
from repro.costmodel.timeloop_batch import analyze_gemm_loopnest_batch
from repro.hw import SpatialHWConfig
from repro.mapping.gemm_mapping import (
    LOOP_ORDERS,
    SPATIAL_CHOICES,
    UNROLL_CHOICES,
    GemmMapping,
    GemmMappingSpace,
)
from repro.workloads.layers import GemmShape


def _random_hw(rng) -> SpatialHWConfig:
    return SpatialHWConfig(
        pe_x=int(rng.choice([2, 4, 8, 12, 16])),
        pe_y=int(rng.choice([2, 4, 8, 12, 16])),
        l1_bytes=int(rng.choice([512, 2048, 6144, 16384])),
        l2_kb=int(rng.choice([32, 128, 512, 1024])),
        noc_bw=int(rng.choice([32, 64, 128, 256])),
        dataflow=str(rng.choice(["ws", "os"])),
        l1_banks=int(rng.choice([1, 2, 4])),
    )


def _random_shape(rng) -> GemmShape:
    return GemmShape(
        m=int(rng.integers(1, 512)),
        n=int(rng.integers(1, 512)),
        k=int(rng.integers(1, 512)),
        reuse_penalty=float(rng.choice([1.0, 0.6])),
    )


def _random_mappings(rng, shape, count):
    """Half space-sampled (divisor-aligned), half arbitrary tiles."""
    space = GemmMappingSpace(shape)
    mappings = [space.sample(rng) for _ in range(count // 2)]
    for _ in range(count - len(mappings)):
        mappings.append(
            GemmMapping(
                tile_m=int(rng.integers(1, 2 * shape.m + 1)),
                tile_n=int(rng.integers(1, 2 * shape.n + 1)),
                tile_k=int(rng.integers(1, 2 * shape.k + 1)),
                loop_order=LOOP_ORDERS[int(rng.integers(0, len(LOOP_ORDERS)))],
                spatial=SPATIAL_CHOICES[int(rng.integers(0, len(SPATIAL_CHOICES)))],
                unroll=int(rng.choice(UNROLL_CHOICES)),
            )
        )
    return mappings


@pytest.mark.parametrize(
    "scalar_fn, batch_fn",
    [
        (analyze_gemm, analyze_gemm_batch),
        (analyze_gemm_loopnest, analyze_gemm_loopnest_batch),
    ],
    ids=["maestro", "timeloop"],
)
def test_batch_matches_scalar_exactly(scalar_fn, batch_fn):
    rng = np.random.default_rng(20260805)
    feasible_seen = infeasible_seen = 0
    for _case in range(40):
        hw = _random_hw(rng)
        shape = _random_shape(rng)
        mappings = _random_mappings(rng, shape, 24)
        batched = batch_fn(hw, mappings, shape)
        assert len(batched) == len(mappings)
        for mapping, got in zip(mappings, batched):
            expected = scalar_fn(hw, mapping, shape)
            # dataclass equality covers every field bit-for-bit, including
            # inf markers and the exact infeasibility reason string
            assert got == expected, (hw, shape, mapping)
            if expected.feasible:
                feasible_seen += 1
            else:
                infeasible_seen += 1
    # the sweep must genuinely exercise both outcomes
    assert feasible_seen > 100
    assert infeasible_seen > 100


def test_batch_reason_strings_cover_both_levels():
    """L1-before-L2 reason precedence matches the scalar early returns."""
    hw = SpatialHWConfig(
        pe_x=16, pe_y=16, l1_bytes=512, l2_kb=32, noc_bw=64, dataflow="ws"
    )
    shape = GemmShape(m=256, n=256, k=256)
    l1_blown = GemmMapping(64, 64, 64)  # per-PE slice alone overflows L1
    l2_blown = GemmMapping(128, 128, 1)  # fits L1 per-PE, overflows L2
    for batch_fn, scalar_fn in (
        (analyze_gemm_batch, analyze_gemm),
        (analyze_gemm_loopnest_batch, analyze_gemm_loopnest),
    ):
        got = batch_fn(hw, [l1_blown, l2_blown], shape)
        assert got[0].infeasible_reason.startswith("L1 overflow")
        assert got[1].infeasible_reason.startswith("L2 overflow")
        for mapping, result in zip([l1_blown, l2_blown], got):
            assert result == scalar_fn(hw, mapping, shape)


def test_empty_batch():
    hw = SpatialHWConfig(
        pe_x=4, pe_y=4, l1_bytes=4096, l2_kb=256, noc_bw=64, dataflow="ws"
    )
    shape = GemmShape(m=8, n=8, k=8)
    assert analyze_gemm_batch(hw, [], shape) == []
    assert analyze_gemm_loopnest_batch(hw, [], shape) == []


# --------------------------------------------------------------------------
# evaluate_candidates: results and accounting vs the sequential path
# --------------------------------------------------------------------------
class TestEvaluateCandidates:
    @pytest.mark.parametrize("engine_cls", [MaestroEngine, TimeloopEngine])
    def test_results_match_sequential(self, engine_cls, tiny_network, sample_hw, rng):
        batch_engine = engine_cls(tiny_network)
        scalar_engine = engine_cls(tiny_network)
        space = GemmMappingSpace(tiny_network.layers[1].to_gemm())
        mappings = [space.sample(rng) for _ in range(12)]
        batched = batch_engine.evaluate_candidates(sample_hw, "gemm", mappings)
        sequential = [
            scalar_engine.evaluate_layer(sample_hw, m, "gemm") for m in mappings
        ]
        assert batched == sequential
        assert batch_engine.num_queries == scalar_engine.num_queries
        assert batch_engine.num_cache_hits == scalar_engine.num_cache_hits
        assert batch_engine.clock.now_s == scalar_engine.clock.now_s

    def test_within_batch_duplicate_counts_as_hit(self, tiny_engine, sample_hw):
        mapping = GemmMapping(4, 8, 4)
        results = tiny_engine.evaluate_candidates(
            sample_hw, "gemm", [mapping, mapping]
        )
        assert results[0] == results[1]
        assert tiny_engine.num_cache_hits == 1
        assert (
            tiny_engine.metrics.counter_value("engine_cache_misses_total") == 1.0
        )

    def test_all_hit_batch_skips_compute(self, tiny_engine, sample_hw, rng):
        space = GemmMappingSpace(tiny_engine.layer_shapes["gemm"][0])
        mappings = [space.sample(rng) for _ in range(6)]
        tiny_engine.evaluate_candidates(sample_hw, "gemm", mappings)
        computes = tiny_engine.metrics.snapshot()["histograms"][
            "engine_compute_seconds"
        ]["count"]
        tiny_engine.evaluate_candidates(sample_hw, "gemm", mappings)
        after = tiny_engine.metrics.snapshot()["histograms"][
            "engine_compute_seconds"
        ]["count"]
        assert after == computes  # all-hit batch observes no compute latency
        assert tiny_engine.num_cache_hits >= len(mappings)

    def test_batch_stats_exposed(self, tiny_engine, sample_hw, rng):
        space = GemmMappingSpace(tiny_engine.layer_shapes["gemm"][0])
        tiny_engine.evaluate_candidates(
            sample_hw, "gemm", [space.sample(rng) for _ in range(8)]
        )
        stats = tiny_engine.stats()
        assert stats["batch_queries"] == 1
        assert stats["batch_items"] == 8
        assert stats["mean_batch_size"] == 8.0
        snapshot = tiny_engine.metrics.snapshot()
        assert snapshot["counters"]["engine_batch_queries_total"] == 1.0
        assert (
            snapshot["histograms"]["engine_batch_compute_seconds_per_item"]["count"]
            == 1
        )

    def test_unknown_layer_rejected(self, tiny_engine, sample_hw):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            tiny_engine.evaluate_candidates(
                sample_hw, "nope", [GemmMapping(2, 2, 2)]
            )

    def test_scalar_fallback_engine(self, tiny_network, sample_hw, rng):
        """Engines without a batch kernel fall back to the scalar loop."""

        class NoBatchEngine(MaestroEngine):
            def _compute_layer_batch(self, hw, mappings, layer_name, shape):
                return None

        engine = NoBatchEngine(tiny_network)
        reference = MaestroEngine(tiny_network)
        space = GemmMappingSpace(engine.layer_shapes["gemm"][0])
        mappings = [space.sample(rng) for _ in range(5)]
        got = engine.evaluate_candidates(sample_hw, "gemm", mappings)
        want = [reference.evaluate_layer(sample_hw, m, "gemm") for m in mappings]
        assert got == want
        assert engine.stats()["batch_queries"] == 1
