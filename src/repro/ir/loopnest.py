"""Loop-nest IR for tensor programs.

Section 2 frames software mapping as scheduling a DSL program: "commonly
used primitives for loop transformation include loop split, reorder, fuse,
and tiling ... the smallest computation unit (e.g. inner-most loop) can be
mapped directly to certain HW resources spatially or temporally".

This module is that representation: a :class:`LoopNest` is an ordered list
of :class:`Loop` axes over a statement's iteration domain, each axis
carrying how it is bound (temporal / spatial / unrolled).  Scheduling
primitives are pure transformations returning new nests, and every nest
can be checked for semantic equivalence with its origin (same iteration
volume per original dimension).

:mod:`repro.ir.schedule` applies primitive sequences, and
:mod:`repro.ir.lowering` lowers a scheduled GEMM nest onto the GEMMCore
intrinsic's :class:`~repro.mapping.gemm_mapping.GemmMapping`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MappingError

#: how a loop axis is executed
BINDINGS = ("temporal", "spatial_x", "spatial_y", "unroll")


@dataclass(frozen=True)
class Loop:
    """One loop axis: a named dimension segment with an extent and binding."""

    dim: str  # the original tensor dimension this axis iterates ("m", ...)
    name: str  # unique axis name, e.g. "m.0", "m.1" after splits
    extent: int
    binding: str = "temporal"

    def __post_init__(self) -> None:
        if self.extent < 1:
            raise MappingError(f"loop {self.name!r} extent must be >= 1")
        if self.binding not in BINDINGS:
            raise MappingError(
                f"loop {self.name!r} binding must be one of {BINDINGS}, "
                f"got {self.binding!r}"
            )


@dataclass(frozen=True)
class LoopNest:
    """An ordered (outermost-first) nest over a statement's domain."""

    loops: Tuple[Loop, ...]
    domain: Tuple[Tuple[str, int], ...]  # original (dim, size) pairs

    def __post_init__(self) -> None:
        names = [loop.name for loop in self.loops]
        if len(set(names)) != len(names):
            raise MappingError(f"duplicate loop names in nest: {names}")

    # ------------------------------------------------------------------ intro
    @classmethod
    def from_domain(cls, domain: Sequence[Tuple[str, int]]) -> "LoopNest":
        """The canonical untiled nest: one temporal loop per dimension."""
        loops = tuple(
            Loop(dim=dim, name=f"{dim}.0", extent=size) for dim, size in domain
        )
        return cls(loops=loops, domain=tuple(domain))

    # ------------------------------------------------------------------ views
    def loop(self, name: str) -> Loop:
        for candidate in self.loops:
            if candidate.name == name:
                return candidate
        raise MappingError(f"no loop named {name!r} in nest")

    def index_of(self, name: str) -> int:
        for position, candidate in enumerate(self.loops):
            if candidate.name == name:
                return position
        raise MappingError(f"no loop named {name!r} in nest")

    def extent_product(self, dim: str) -> int:
        """Total iteration count contributed by ``dim``'s axes."""
        product = 1
        for loop in self.loops:
            if loop.dim == dim:
                product *= loop.extent
        return product

    def volume(self) -> int:
        product = 1
        for loop in self.loops:
            product *= loop.extent
        return product

    def is_equivalent_to_domain(self) -> bool:
        """Semantic check: per-dimension iteration volume is preserved."""
        return all(
            self.extent_product(dim) == size for dim, size in self.domain
        )

    def spatial_loops(self) -> List[Loop]:
        return [l for l in self.loops if l.binding.startswith("spatial")]

    def innermost_temporal(self) -> Optional[Loop]:
        for loop in reversed(self.loops):
            if loop.binding == "temporal":
                return loop
        return None

    # --------------------------------------------------------------- rewrites
    def split(self, name: str, factor: int) -> "LoopNest":
        """split(l, f): l -> (l_outer extent/f, l_inner f); f must divide."""
        position = self.index_of(name)
        target = self.loops[position]
        if factor < 1 or target.extent % factor != 0:
            raise MappingError(
                f"split factor {factor} must divide extent {target.extent} "
                f"of loop {name!r}"
            )
        base = target.name.rsplit(".", 1)[0]
        suffixes = [
            int(l.name.rsplit(".", 1)[1])
            for l in self.loops
            if l.dim == target.dim and l.name.rsplit(".", 1)[0] == base
        ]
        next_suffix = max(suffixes) + 1
        outer = replace(target, extent=target.extent // factor)
        inner = Loop(
            dim=target.dim,
            name=f"{base}.{next_suffix}",
            extent=factor,
            binding=target.binding,
        )
        loops = (
            self.loops[:position] + (outer, inner) + self.loops[position + 1 :]
        )
        return replace(self, loops=loops)

    def reorder(self, order: Sequence[str]) -> "LoopNest":
        """Permute the nest; ``order`` must name every loop exactly once."""
        if sorted(order) != sorted(l.name for l in self.loops):
            raise MappingError(
                f"reorder must be a permutation of {[l.name for l in self.loops]}"
            )
        by_name = {l.name: l for l in self.loops}
        return replace(self, loops=tuple(by_name[name] for name in order))

    def bind(self, name: str, binding: str) -> "LoopNest":
        """Bind an axis to a hardware resource (spatial axis / unroll)."""
        if binding not in BINDINGS:
            raise MappingError(f"unknown binding {binding!r}")
        if binding in ("spatial_x", "spatial_y"):
            for loop in self.loops:
                if loop.binding == binding and loop.name != name:
                    raise MappingError(
                        f"binding {binding!r} already taken by {loop.name!r}"
                    )
        position = self.index_of(name)
        rebound = replace(self.loops[position], binding=binding)
        loops = self.loops[:position] + (rebound,) + self.loops[position + 1 :]
        return replace(self, loops=loops)

    def fuse(self, first: str, second: str) -> "LoopNest":
        """Fuse two *adjacent* same-dimension axes into one."""
        i = self.index_of(first)
        j = self.index_of(second)
        if j != i + 1:
            raise MappingError(
                f"can only fuse adjacent loops, got positions {i} and {j}"
            )
        loop_a, loop_b = self.loops[i], self.loops[j]
        if loop_a.dim != loop_b.dim:
            raise MappingError(
                f"cannot fuse loops over different dims "
                f"{loop_a.dim!r} and {loop_b.dim!r}"
            )
        if loop_a.binding != loop_b.binding:
            raise MappingError("cannot fuse loops with different bindings")
        fused = replace(loop_a, extent=loop_a.extent * loop_b.extent)
        loops = self.loops[:i] + (fused,) + self.loops[j + 1 :]
        return replace(self, loops=loops)

    def pretty(self) -> str:
        """Human-readable nest listing."""
        lines = []
        for depth, loop in enumerate(self.loops):
            marker = {
                "temporal": "for",
                "spatial_x": "par_x",
                "spatial_y": "par_y",
                "unroll": "unroll",
            }[loop.binding]
            lines.append("  " * depth + f"{marker} {loop.name} in 0..{loop.extent}")
        return "\n".join(lines)


def gemm_domain(m: int, n: int, k: int) -> Tuple[Tuple[str, int], ...]:
    """The GEMM iteration domain."""
    return (("m", m), ("n", n), ("k", k))
