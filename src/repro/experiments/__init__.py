"""Experiment harness: one module per table/figure of the paper.

* :mod:`repro.experiments.tables` — Tables 1-2 (edge/cloud PPA + cost),
* :mod:`repro.experiments.fig7` — HV-difference vs wall-clock curves,
* :mod:`repro.experiments.fig8` — R-metric reliability on unseen DNNs,
* :mod:`repro.experiments.fig9` — generalization vs HASCO,
* :mod:`repro.experiments.fig10` — MSH / high-fidelity-update ablation,
* :mod:`repro.experiments.fig11` — Ascend-like industrial deployment.

All take a budget preset (``smoke`` / ``bench`` / ``paper``) and a seed and
return JSON-serializable :class:`~repro.utils.records.RunRecord` trees.
"""

from repro.experiments.fig7 import FIG7_METHODS, run_fig7, run_fig7_network, speedup_to_reach
from repro.experiments.fig8 import run_fig8, select_comparable_pairs
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import FIG10_METHODS, run_fig10, run_fig10_network
from repro.experiments.fig11 import evaluate_default, run_fig11
from repro.experiments.harness import (
    METHODS,
    build_optimizer,
    combined_reference,
    final_hypervolume,
    hv_difference_curve,
    ideal_front,
    make_platform,
    resolve_workload,
    run_method,
    sw_search_on,
    time_grid,
)
from repro.experiments.presets import Preset, get_preset
from repro.experiments.tables import (
    TABLE_METHODS,
    format_table,
    run_table,
    run_table_cell,
)

__all__ = [
    "FIG7_METHODS",
    "run_fig7",
    "run_fig7_network",
    "speedup_to_reach",
    "run_fig8",
    "select_comparable_pairs",
    "run_fig9",
    "FIG10_METHODS",
    "run_fig10",
    "run_fig10_network",
    "evaluate_default",
    "run_fig11",
    "METHODS",
    "combined_reference",
    "final_hypervolume",
    "hv_difference_curve",
    "ideal_front",
    "make_platform",
    "resolve_workload",
    "build_optimizer",
    "run_method",
    "sw_search_on",
    "time_grid",
    "Preset",
    "get_preset",
    "TABLE_METHODS",
    "format_table",
    "run_table",
    "run_table_cell",
]
