"""The PPA estimation engine as a standalone REST service (Section 3.5).

"PPA Estimation Engine: A standalone REST API to call which requires
hardware configuration, SW mapping configuration, and a tensor workload as
inputs to estimate performance, power and area."

* :class:`PPAServiceServer` wraps any :class:`PPAEngine` behind a small
  HTTP/JSON endpoint (stdlib ``http.server``; POST ``/evaluate_layer``,
  POST ``/aggregate``, GET ``/health``).
* :class:`RemotePPAEngine` is a drop-in :class:`PPAEngine` client: search
  tools talk to it exactly as they talk to an in-process engine, so the
  master-slave deployment of Fig. 6(b) only changes the engine wiring.

Payloads carry plain dicts of the hardware/mapping dataclass fields; the
server reconstructs typed objects via the registered codecs.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple
from urllib.request import Request, urlopen

from repro.camodel.mapping import AscendMapping
from repro.costmodel.engine import PPAEngine
from repro.costmodel.results import LayerPPA, NetworkPPA
from repro.errors import EvaluationError
from repro.hw.ascend import AscendHWConfig
from repro.hw.spatial import SpatialHWConfig
from repro.mapping.gemm_mapping import GemmMapping

_HW_TYPES: Dict[str, type] = {
    "SpatialHWConfig": SpatialHWConfig,
    "AscendHWConfig": AscendHWConfig,
}
_MAPPING_TYPES: Dict[str, type] = {
    "GemmMapping": GemmMapping,
    "AscendMapping": AscendMapping,
}


def encode_object(obj) -> Dict:
    """Serialize a hardware config or mapping as {type, fields}."""
    fields = dict(vars(obj))
    if "loop_order" in fields:
        fields["loop_order"] = list(fields["loop_order"])
    return {"type": type(obj).__name__, "fields": fields}


def decode_object(payload: Dict):
    """Inverse of :func:`encode_object`."""
    type_name = payload["type"]
    fields = dict(payload["fields"])
    if type_name in _HW_TYPES:
        cls = _HW_TYPES[type_name]
    elif type_name in _MAPPING_TYPES:
        cls = _MAPPING_TYPES[type_name]
    else:
        raise EvaluationError(f"unknown payload type {type_name!r}")
    if "loop_order" in fields:
        fields["loop_order"] = tuple(fields["loop_order"])
    return cls(**fields)


def _layer_ppa_to_dict(result: LayerPPA) -> Dict:
    return {
        "latency_s": result.latency_s if result.feasible else None,
        "energy_j": result.energy_j if result.feasible else None,
        "feasible": result.feasible,
        "compute_cycles": result.compute_cycles,
        "noc_cycles": result.noc_cycles,
        "dram_cycles": result.dram_cycles,
        "dram_bytes": result.dram_bytes,
        "infeasible_reason": result.infeasible_reason,
    }


def _layer_ppa_from_dict(payload: Dict) -> LayerPPA:
    feasible = payload["feasible"]
    return LayerPPA(
        latency_s=payload["latency_s"] if feasible else float("inf"),
        energy_j=payload["energy_j"] if feasible else float("inf"),
        feasible=feasible,
        compute_cycles=payload.get("compute_cycles", 0.0),
        noc_cycles=payload.get("noc_cycles", 0.0),
        dram_cycles=payload.get("dram_cycles", 0.0),
        dram_bytes=payload.get("dram_bytes", 0.0),
        infeasible_reason=payload.get("infeasible_reason", ""),
    )


class PPAServiceServer:
    """Serve an engine over HTTP on localhost; use as a context manager."""

    def __init__(self, engine: PPAEngine, host: str = "127.0.0.1", port: int = 0):
        self.engine = engine
        handler = self._make_handler()
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def _make_handler(self):
        engine = self.engine

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # silence request logging
                pass

            def _reply(self, status: int, payload: Dict) -> None:
                body = json.dumps(payload).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                if self.path == "/health":
                    self._reply(
                        200,
                        {
                            "status": "ok",
                            "workload": engine.network.name,
                            "queries": engine.num_queries,
                        },
                    )
                else:
                    self._reply(404, {"error": f"unknown path {self.path}"})

            def do_POST(self):
                length = int(self.headers.get("Content-Length", 0))
                try:
                    request = json.loads(self.rfile.read(length))
                except json.JSONDecodeError:
                    self._reply(400, {"error": "invalid JSON"})
                    return
                try:
                    if self.path == "/evaluate_layer":
                        result = engine.evaluate_layer(
                            decode_object(request["hw"]),
                            decode_object(request["mapping"]),
                            request["layer"],
                        )
                        self._reply(200, _layer_ppa_to_dict(result))
                    elif self.path == "/aggregate":
                        hw = decode_object(request["hw"])
                        mappings = {
                            name: decode_object(mapping)
                            for name, mapping in request["mappings"].items()
                        }
                        ppa = engine.aggregate(hw, mappings)
                        self._reply(
                            200,
                            {
                                "latency_s": ppa.latency_s if ppa.feasible else None,
                                "energy_j": ppa.energy_j if ppa.feasible else None,
                                "power_w": ppa.power_w if ppa.feasible else None,
                                "area_mm2": ppa.area_mm2,
                                "feasible": ppa.feasible,
                            },
                        )
                    else:
                        self._reply(404, {"error": f"unknown path {self.path}"})
                except (EvaluationError, KeyError) as exc:
                    self._reply(400, {"error": str(exc)})

        return Handler

    def start(self) -> "PPAServiceServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "PPAServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class RemotePPAEngine(PPAEngine):
    """A :class:`PPAEngine` that forwards queries to a PPA service.

    Keeps the local cache and clock semantics of the base class; only the
    uncached computation goes over the wire.  ``area_mm2`` is computed by a
    locally supplied function (areas depend only on the hardware config).
    """

    def __init__(
        self,
        network,
        base_url: str,
        area_fn: Callable[[object], float],
        timeout_s: float = 10.0,
        **kwargs,
    ):
        super().__init__(network, **kwargs)
        self.base_url = base_url.rstrip("/")
        self.area_fn = area_fn
        self.timeout_s = timeout_s

    def _post(self, path: str, payload: Dict) -> Dict:
        request = Request(
            f"{self.base_url}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urlopen(request, timeout=self.timeout_s) as response:
            return json.loads(response.read())

    def _compute_layer(self, hw, mapping, shape) -> LayerPPA:
        raise NotImplementedError(
            "RemotePPAEngine dispatches by layer name; "
            "_compute_layer_by_name handles all queries"
        )

    def _compute_layer_by_name(self, hw, mapping, layer_name, shape) -> LayerPPA:
        payload = {
            "hw": encode_object(hw),
            "mapping": encode_object(mapping),
            "layer": layer_name,
        }
        return _layer_ppa_from_dict(self._post("/evaluate_layer", payload))

    def area_mm2(self, hw) -> float:
        return self.area_fn(hw)

    def health(self) -> Dict:
        with urlopen(f"{self.base_url}/health", timeout=self.timeout_s) as response:
            return json.loads(response.read())
