"""Micro-benchmark: the vectorized MOBO outer loop vs the pre-rewrite one.

Guards the structure-of-arrays rewrite of the qParEGO batch sampler and
the MSH round bookkeeping:

* ``suggest_batch`` at the paper-scale operating point (pool_size=512,
  batch_size=8, 64 training points) against :class:`LegacyMOBOSampler` —
  the per-slot pools / per-row ParEGO loops / finite-difference GP fit
  implementation this PR replaced, kept verbatim as the baseline;
* the MSH round statistics (terminal values, relative AUC, survivor
  selection) in dict-per-id form vs the SoA helpers ``_run_msh`` now uses.

The gated number is the *combined* outer-loop ratio (one suggest_batch
plus one iteration's worth of MSH bookkeeping), measured paired — each
round times baseline and vectorized back to back so CPU-frequency drift
hits both sides equally — with the median over rounds written to
``BENCH_outer.json``.  The gate fails if the speedup regresses below 3x.

The same run asserts the correctness contracts the speed rests on:
``vectorized=True`` and ``vectorized=False`` return bit-identical batches
under a fixed seed, and the SoA survivor selection matches the dict path.
"""

import json
import time

import numpy as np
import pytest

from repro.hw import edge_design_space
from repro.optim.mobo import MOBOSampler
from repro.optim.mobo_legacy import LegacyMOBOSampler
from repro.optim.sh import (
    relative_auc_score,
    relative_auc_scores,
    select_survivors_detailed,
    select_survivors_soa,
    terminal_value,
    terminal_values,
)

POOL_SIZE = 512
BATCH_SIZE = 8
NUM_TRAIN = 64
NUM_OBJECTIVES = 4
MSH_CANDIDATES = 30
MSH_REPEATS = 50
GATE_SPEEDUP = 3.0


def _training_set(space, seed=0):
    rng = np.random.default_rng(seed)
    configs = [space.sample(rng) for _ in range(NUM_TRAIN)]
    objectives = rng.random((NUM_TRAIN, NUM_OBJECTIVES))
    incumbents = configs[:4]
    return configs, objectives, incumbents


def _msh_curves(seed=0):
    """Synthetic best-so-far curves with infeasible (inf) warmup stretches."""
    rng = np.random.default_rng(seed)
    curves = []
    for _ in range(MSH_CANDIDATES):
        length = int(rng.integers(50, 300))
        curve = np.minimum.accumulate(rng.random(length) + 0.1)
        warmup = int(rng.integers(0, 8))
        curve[:warmup] = np.inf
        curves.append(curve)
    return curves


def _msh_bookkeeping_dict(curves):
    ids = list(range(len(curves)))
    tv = {i: terminal_value(curves[i]) for i in ids}
    auc = {i: relative_auc_score(curves[i]) for i in ids}
    return select_survivors_detailed(ids, tv, auc, 15, 4)


def _msh_bookkeeping_soa(curves):
    ids = list(range(len(curves)))
    return select_survivors_soa(
        ids, terminal_values(curves), relative_auc_scores(curves), 15, 4
    )


@pytest.mark.benchmark(group="outer_loop")
def test_bench_outer_loop(benchmark, results_dir):
    """>= 3x combined suggest_batch + MSH-bookkeeping speedup, and parity."""
    space = edge_design_space()
    configs, objectives, incumbents = _training_set(space)
    curves = _msh_curves()

    def make(sampler_cls, **kwargs):
        return sampler_cls(
            space,
            NUM_OBJECTIVES,
            seed=7,
            pool_size=POOL_SIZE,
            min_observations=8,
            **kwargs,
        )

    # correctness first: the scalar reference path and the vectorized path
    # must agree bit for bit, and the SoA bookkeeping must match the dicts
    batch_vec = make(MOBOSampler, vectorized=True).suggest_batch(
        configs, objectives, BATCH_SIZE, incumbents=incumbents
    )
    batch_ref = make(MOBOSampler, vectorized=False).suggest_batch(
        configs, objectives, BATCH_SIZE, incumbents=incumbents
    )
    assert [space.config_key(c) for c in batch_vec] == [
        space.config_key(c) for c in batch_ref
    ]
    assert len(batch_vec) == BATCH_SIZE
    assert _msh_bookkeeping_soa(curves) == _msh_bookkeeping_dict(curves)

    def outer_loop_vectorized():
        sampler = make(MOBOSampler, vectorized=True)
        batch = sampler.suggest_batch(
            configs, objectives, BATCH_SIZE, incumbents=incumbents
        )
        for _ in range(MSH_REPEATS):
            _msh_bookkeeping_soa(curves)
        return batch

    def outer_loop_legacy():
        sampler = make(LegacyMOBOSampler)
        batch = sampler.suggest_batch(
            configs, objectives, BATCH_SIZE, incumbents=incumbents
        )
        for _ in range(MSH_REPEATS):
            _msh_bookkeeping_dict(curves)
        return batch

    # the benchmark fixture reports the vectorized loop's own timing (and
    # doubles as warmup); the gate uses the paired rounds below
    batch = benchmark.pedantic(
        outer_loop_vectorized, rounds=3, iterations=1, warmup_rounds=1
    )
    assert len(batch) == BATCH_SIZE

    legacy_times, vectorized_times, ratios = [], [], []
    for _ in range(5):
        t0 = time.perf_counter()
        outer_loop_legacy()
        t1 = time.perf_counter()
        outer_loop_vectorized()
        t2 = time.perf_counter()
        legacy_times.append(t1 - t0)
        vectorized_times.append(t2 - t1)
        ratios.append(legacy_times[-1] / vectorized_times[-1])

    speedup = sorted(ratios)[len(ratios) // 2]
    record_path = results_dir / "BENCH_outer.json"
    record = json.loads(record_path.read_text()) if record_path.exists() else {}
    record["outer_loop_speedup"] = {
        "pool_size": POOL_SIZE,
        "batch_size": BATCH_SIZE,
        "num_train": NUM_TRAIN,
        "num_objectives": NUM_OBJECTIVES,
        "msh_candidates": MSH_CANDIDATES,
        "msh_repeats_per_round": MSH_REPEATS,
        "legacy_s": sorted(legacy_times)[len(legacy_times) // 2],
        "vectorized_s": sorted(vectorized_times)[len(vectorized_times) // 2],
        "speedup": speedup,
        "gate": GATE_SPEEDUP,
    }
    record_path.write_text(json.dumps(record, indent=2, sort_keys=True))
    assert speedup >= GATE_SPEEDUP, (
        f"outer loop only {speedup:.1f}x faster than the pre-rewrite "
        f"baseline (legacy {record['outer_loop_speedup']['legacy_s'] * 1e3:.0f} ms "
        f"vs vectorized {record['outer_loop_speedup']['vectorized_s'] * 1e3:.0f} ms)"
    )
