"""Fleet-wide Prometheus aggregation: N replica scrapes → one exposition.

Each PR-7 replica exposes its own ``GET /metrics?format=prom``; watching a
fleet means N browser tabs and mental arithmetic.  The aggregator scrapes
every replica over pooled keep-alive connections, validates each body
with the strict parser in :mod:`repro.obs.prom`, and merges the families
into a single exposition:

* every per-replica series is re-emitted with a ``replica="host:port"``
  label, so one scrape of the hub shows the whole fleet with per-replica
  resolution (histograms stay valid because the strict parser validates
  cumulative-bucket invariants *per non-``le`` label set*);
* every counter family additionally gets a ``fleet:<name>`` rollup
  family whose series sum the replicas per original label set — the
  numbers a dashboard actually plots (total evals/s, total cache hits);
* histogram families get a ``fleet:<name>`` rollup when all replicas
  agree on bucket bounds (they do — bounds are code constants), summing
  buckets elementwise; cumulative sums of cumulative buckets stay
  cumulative, so the rollup passes the same strict validation.

A replica that fails to answer, or answers with something the strict
parser rejects, is reported down and excluded from the merge — a fleet
view must not go dark because one replica is restarting.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.fleet.pool import ConnectionPool
from repro.obs.prom import (
    _escape_label_value,
    _fmt,
    help_for,
    parse_prometheus_text,
)
from repro.utils.metrics import MetricsRegistry

__all__ = ["FleetAggregator", "ReplicaScrape"]

#: headline counters the ``fleet status`` dashboard reads per replica
_STATUS_COUNTERS = (
    ("queries", "engine_queries_total"),
    ("cache_hits", "engine_cache_hits_total"),
    ("cache_evictions", "engine_cache_evictions_total"),
    ("batch_queries", "engine_batch_queries_total"),
    ("requests", "service_requests_total"),
    ("errors", "service_errors_total"),
    ("drain_rejections", "service_drain_rejections_total"),
)


@dataclass
class ReplicaScrape:
    """One replica's scrape outcome: parsed families or an error."""

    name: str
    url: str
    ok: bool = False
    error: Optional[str] = None
    families: Dict[str, Dict] = field(default_factory=dict)
    elapsed_s: float = 0.0


def _sample_line(name: str, labels: Dict[str, str], value: float) -> str:
    if labels:
        body = ",".join(
            f'{key}="{_escape_label_value(val)}"'
            for key, val in sorted(labels.items())
        )
        return f"{name}{{{body}}} {_fmt(value)}"
    return f"{name} {_fmt(value)}"


def _group_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    """A histogram series' identity: its labels minus ``le``."""
    return tuple(sorted(
        (key, val) for key, val in labels.items() if key != "le"
    ))


class FleetAggregator:
    """Scrape and merge the Prometheus expositions of a replica fleet."""

    def __init__(
        self,
        urls: List[str],
        timeout_s: float = 5.0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        seen = set()
        self._replicas: List[Tuple[str, str, ConnectionPool]] = []
        for url in urls:
            base = url.rstrip("/")
            if base in seen:
                continue
            seen.add(base)
            name = urlsplit(base).netloc or base
            self._replicas.append(
                (name, base, ConnectionPool(base, timeout_s=timeout_s))
            )

    @property
    def replica_names(self) -> List[str]:
        return [name for name, _url, _pool in self._replicas]

    def close(self) -> None:
        for _name, _url, pool in self._replicas:
            pool.close()

    # -- scraping ---------------------------------------------------------------
    def _scrape_one(
        self, name: str, url: str, pool: ConnectionPool
    ) -> ReplicaScrape:
        scrape = ReplicaScrape(name=name, url=url)
        start = time.perf_counter()
        try:
            response = pool.request("GET", "/metrics?format=prom")
            if response.status != 200:
                raise ValueError(f"HTTP {response.status}")
            scrape.families = parse_prometheus_text(
                response.body.decode("utf-8")
            )
            scrape.ok = True
        except Exception as error:  # any failure = replica down, not fatal
            scrape.error = f"{type(error).__name__}: {error}"
            self.metrics.counter("hub_fleet_scrape_errors_total").inc()
        scrape.elapsed_s = time.perf_counter() - start
        return scrape

    def scrape(self) -> List[ReplicaScrape]:
        """Scrape every replica concurrently; one sweep, in replica order."""
        self.metrics.counter("hub_fleet_scrapes_total").inc()
        with self.metrics.histogram("hub_fleet_scrape_seconds").time():
            if not self._replicas:
                return []
            with ThreadPoolExecutor(
                max_workers=min(8, len(self._replicas))
            ) as executor:
                return list(
                    executor.map(
                        lambda spec: self._scrape_one(*spec), self._replicas
                    )
                )

    # -- merging ----------------------------------------------------------------
    def merge(self, scrapes: List[ReplicaScrape]) -> str:
        """One exposition: per-replica labeled series + ``fleet:*`` rollups.

        The output passes :func:`~repro.obs.prom.parse_prometheus_text`
        by construction; families appear in sorted-name order so repeated
        merges of idle replicas are byte-identical.
        """
        alive = [scrape for scrape in scrapes if scrape.ok]
        blocks: Dict[str, List[str]] = {}
        family_names = sorted(
            {name for scrape in alive for name in scrape.families}
        )
        for family in family_names:
            contributors = [
                (scrape, scrape.families[family])
                for scrape in alive
                if family in scrape.families
            ]
            types = {data["type"] for _s, data in contributors}
            if len(types) != 1:
                # replicas on skewed code versions disagree on the family
                # type; emitting both would make the exposition invalid
                self.metrics.counter("hub_fleet_merge_conflicts_total").inc()
                continue
            family_type = types.pop()
            lines: List[str] = []
            description = help_for(family) or next(
                (data["help"] for _s, data in contributors if data["help"]),
                None,
            )
            if description:
                lines.append(
                    f"# HELP {family} "
                    + description.replace("\\", "\\\\").replace("\n", "\\n")
                )
            lines.append(f"# TYPE {family} {family_type}")
            for scrape, data in contributors:
                for name, labels, value in data["samples"]:
                    labeled = dict(labels)
                    labeled["replica"] = scrape.name
                    lines.append(_sample_line(name, labeled, value))
            blocks[family] = lines
            rollup = self._rollup(family, family_type, contributors)
            if rollup is not None:
                blocks[f"fleet:{family}"] = rollup
        ordered: List[str] = []
        for family in sorted(blocks):
            ordered.extend(blocks[family])
        return "\n".join(ordered) + ("\n" if ordered else "")

    def _rollup(
        self,
        family: str,
        family_type: str,
        contributors: List[Tuple[ReplicaScrape, Dict]],
    ) -> Optional[List[str]]:
        """``fleet:<family>`` series summing the replicas, or None."""
        rollup_name = f"fleet:{family}"
        description = help_for(family)
        header = [f"# TYPE {rollup_name} {family_type}"]
        if description:
            header.insert(
                0,
                f"# HELP {rollup_name} Fleet-wide sum: "
                + description.replace("\\", "\\\\").replace("\n", "\\n"),
            )
        if family_type == "counter":
            totals: Dict[Tuple[Tuple[str, str], ...], float] = {}
            for _scrape, data in contributors:
                for _name, labels, value in data["samples"]:
                    key = tuple(sorted(labels.items()))
                    totals[key] = totals.get(key, 0.0) + value
            return header + [
                _sample_line(rollup_name, dict(key), totals[key])
                for key in sorted(totals)
            ]
        if family_type == "histogram":
            return self._rollup_histogram(family, rollup_name, header,
                                          contributors)
        return None  # gauges/untyped: a cross-replica sum is not meaningful

    def _rollup_histogram(
        self,
        family: str,
        rollup_name: str,
        header: List[str],
        contributors: List[Tuple[ReplicaScrape, Dict]],
    ) -> Optional[List[str]]:
        # per non-le label set: ordered le list + summed buckets/sum/count
        groups: Dict[Tuple, Dict] = {}
        for _scrape, data in contributors:
            for name, labels, value in data["samples"]:
                key = _group_key(labels)
                group = groups.setdefault(
                    key, {"le_order": [], "buckets": {}, "sum": 0.0,
                          "count": 0.0}
                )
                if name == family + "_bucket":
                    le = labels.get("le")
                    if le not in group["buckets"]:
                        group["le_order"].append(le)
                        group["buckets"][le] = 0.0
                    group["buckets"][le] += value
                elif name == family + "_sum":
                    group["sum"] += value
                elif name == family + "_count":
                    group["count"] += value
        # replicas must agree on bucket bounds for the sum to be a valid
        # cumulative histogram; bounds are code constants, so a mismatch
        # means skewed code versions — skip the rollup rather than lie
        for _scrape, data in contributors:
            per_group_les: Dict[Tuple, List[str]] = {}
            for name, labels, _value in data["samples"]:
                if name == family + "_bucket":
                    per_group_les.setdefault(
                        _group_key(labels), []
                    ).append(labels.get("le"))
            for key, les in per_group_les.items():
                if les != groups[key]["le_order"]:
                    self.metrics.counter(
                        "hub_fleet_merge_conflicts_total"
                    ).inc()
                    return None
        lines = list(header)
        for key in sorted(groups):
            group = groups[key]
            for le in group["le_order"]:
                labels = dict(key)
                labels["le"] = le
                lines.append(
                    _sample_line(
                        rollup_name + "_bucket", labels, group["buckets"][le]
                    )
                )
            lines.append(
                _sample_line(rollup_name + "_sum", dict(key), group["sum"])
            )
            lines.append(
                _sample_line(rollup_name + "_count", dict(key), group["count"])
            )
        return lines

    # -- dashboard --------------------------------------------------------------
    def status(
        self, scrapes: Optional[List[ReplicaScrape]] = None
    ) -> Dict:
        """Structured fleet health for ``repro fleet status --watch``."""
        if scrapes is None:
            scrapes = self.scrape()
        replicas: List[Dict] = []
        fleet: Dict[str, float] = {key: 0.0 for key, _m in _STATUS_COUNTERS}
        for scrape in scrapes:
            row: Dict = {
                "name": scrape.name,
                "url": scrape.url,
                "up": scrape.ok,
                "error": scrape.error,
                "scrape_seconds": scrape.elapsed_s,
            }
            for key, metric in _STATUS_COUNTERS:
                family = scrape.families.get(metric)
                total = (
                    sum(value for _n, _l, value in family["samples"])
                    if family
                    else 0.0
                )
                row[key] = total
                if scrape.ok:
                    fleet[key] += total
            replicas.append(row)
        up = sum(1 for row in replicas if row["up"])
        return {
            "replicas": replicas,
            "fleet": fleet,
            "up": up,
            "total": len(replicas),
        }
