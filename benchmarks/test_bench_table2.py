"""Table 2: cloud-device (power < 20 W) comparison of HASCO / NSGAII / UNICO.

Same protocol as Table 1 on the ~1e9-point cloud design space.  Expected
shape: UNICO's search cost is a fraction of the baselines' and its design
is competitive or better on PPA.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once, save_record
from repro.experiments import format_table, run_table
from repro.workloads import TABLE12_NETWORKS

SEED = 0


@pytest.mark.benchmark(group="table2")
def test_table2_cloud(benchmark, results_dir):
    record = run_once(
        benchmark, run_table, "cloud", list(TABLE12_NETWORKS), "bench", seed=SEED
    )
    save_record(results_dir, "table2_cloud", record)
    print("\n=== Table 2 (cloud, power < 20 W), bench preset ===")
    print(format_table(record))

    unico_costs, baseline_costs = [], []
    unico_wins = 0
    for network in TABLE12_NETWORKS:
        row = record.children[network]
        unico = row.children["unico"].metrics
        hasco = row.children["hasco"].metrics
        nsga = row.children["nsgaii"].metrics
        unico_costs.append(unico["cost_h"])
        baseline_costs.append(min(hasco["cost_h"], nsga["cost_h"]))
        unico_vec = np.array(
            [unico["latency_ms"], unico["power_mw"], unico["area_mm2"]]
        )
        hasco_vec = np.array(
            [hasco["latency_ms"], hasco["power_mw"], hasco["area_mm2"]]
        )
        # never dominated by HASCO's design (may trade one metric for others)
        if np.any(unico_vec < hasco_vec * 1.001):
            unico_wins += 1

    assert np.mean(unico_costs) < np.mean(baseline_costs)
    assert unico_wins >= len(TABLE12_NETWORKS) - 1
