"""Command-line interface: ``python -m repro <command>``.

Commands
--------
* ``networks`` — list the registered workloads with size summaries.
* ``run`` — one co-search cell (method x scenario x workload) and print
  the Pareto front + selected design.
* ``table`` — regenerate Table 1 (edge) or Table 2 (cloud).
* ``fig`` — regenerate one of the paper's figures (7-11) as JSON.
* ``serve`` — expose a PPA estimation engine as the Section 3.5 REST
  service (for master-slave deployments).
* ``fleet`` — run N sharded service replicas under one supervisor
  (``fleet serve``), check the health of running replicas
  (``fleet status``; add ``--watch`` for a live scrape-based dashboard),
  or watch the full telemetry dashboard with sparkline history and SLO
  alerts (``fleet top``, local scrape loop or ``--hub`` mirror).
* ``hub`` — the control-plane service (``hub serve``): run lifecycle
  endpoints, live SSE journal streaming and fleet-wide metrics
  aggregation (add ``--telemetry`` for the scrape loop + alert rules),
  plus thin clients (``hub submit``/``runs``/``cancel``).
* ``obs`` — query (``obs query``) or export (``obs export``) the
  telemetry metrics store, locally or via a running hub.
* ``runs tail`` — a run's last journal events (bounded read), or a live
  typed feed with ``--follow`` (local polling or hub SSE via ``--hub``).
* ``stats`` — query a running PPA service's ``GET /metrics`` endpoint and
  summarize query counts, cache behaviour and request latency.
* ``learned`` — train/evaluate a journal-distilled learned cost model
  (``repro learned train``), then screen a run with it
  (``repro run ... --screen model.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments import (
    METHODS,
    format_table,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_method,
    run_table,
)
from repro.workloads import TABLE12_NETWORKS, available_networks, get_network


def _cmd_networks(_args) -> int:
    print(f"{'name':<20s}{'family':<14s}{'year':<6s}"
          f"{'layers':<8s}{'GMACs':>8s}")
    for name in available_networks():
        network = get_network(name)
        print(
            f"{name:<20s}{network.family:<14s}{network.year:<6d}"
            f"{network.num_layers:<8d}{network.total_macs / 1e9:8.2f}"
        )
    return 0


def _print_result(result, method: str, network: str, scenario: str) -> None:
    print(
        f"{method} on {network} ({scenario}): "
        f"{result.total_hw_evaluated} hardware evaluated, "
        f"{result.total_time_h:.2f} simulated hours"
    )
    if "run_id" in result.extras:
        print(f"tracked as run {result.extras['run_id']}")
    print(f"Pareto front ({len(result.pareto)} designs):")
    for design, point in zip(result.pareto.items, result.pareto.points):
        print(
            f"  L={point[0] * 1e3:10.3f} ms  P={point[1] * 1e3:8.1f} mW  "
            f"A={point[2]:6.2f} mm2   {design.hw}"
        )
    best = result.best_design()
    if best is not None:
        print(f"Selected (min-Euclidean): {best.hw}")


def _cmd_run(args) -> int:
    if args.trace and not args.track:
        print("error: --trace requires --track (spans live in the run "
              "directory)", file=sys.stderr)
        return 2
    if args.record_samples and not args.track:
        print("error: --record-samples requires --track (samples are "
              "journal events)", file=sys.stderr)
        return 2
    result = run_method(
        args.method,
        args.scenario,
        args.network,
        args.preset,
        seed=args.seed,
        run_store=args.runs_dir if args.track else None,
        checkpoint_every=args.checkpoint_every,
        eval_batch_size=args.batch_size,
        trace=args.trace,
        tool=args.tool,
        record_samples=args.record_samples,
        screen=args.screen,
        screen_topk=args.screen_topk,
    )
    _print_result(result, args.method, args.network, args.scenario)
    if "trace_path" in result.extras:
        print(f"trace written to {result.extras['trace_path']} "
              f"(trace id {result.extras['trace_id']})")
    screening = result.extras.get("screening")
    if screening:
        print(
            f"screening: {screening.get('forwarded', 0)} forwarded / "
            f"{screening.get('candidates_seen', 0)} candidates seen "
            f"({screening.get('evals_saved', 0)} analytical evals saved, "
            f"precision {screening.get('precision', 0.0):.1%})"
        )
    return 0


# ------------------------------------------------------------------ learned
def _cmd_learned_train(args) -> int:
    from repro.learned import LearnedCostModel, build_dataset

    dataset = build_dataset(args.runs_dir)
    stats = dataset.stats
    print(
        f"dataset: {len(dataset)} samples from {stats['journals']} journals "
        f"({stats['duplicates']} duplicates, {stats['skipped']} skipped, "
        f"{stats['truncated_journals']} truncated)"
    )
    if not len(dataset):
        print(
            "error: no engine_sample events found — record training data "
            "first with `repro run ... --track --record-samples`",
            file=sys.stderr,
        )
        return 1
    model = LearnedCostModel.fit(
        dataset.x,
        dataset.latency_s,
        dataset.energy_j,
        dataset.feasible,
        seed=args.seed,
        hidden=args.hidden,
        ensemble=args.ensemble,
        epochs=args.epochs,
        meta={"runs_dir": str(args.runs_dir), "dataset": stats},
    )
    model.save(args.out)
    meta = model.meta
    print(
        f"trained on {meta['n_train']} rows ({meta['n_feasible']} feasible), "
        f"val MAE log-latency {meta['val_mae_log_latency']:.4f}, "
        f"log-energy {meta['val_mae_log_energy']:.4f}"
    )
    print(f"wrote {args.out}")
    return 0


def _cmd_learned_eval(args) -> int:
    import numpy as np

    from repro.learned import LearnedCostModel, build_dataset

    model = LearnedCostModel.load(args.model)
    dataset = build_dataset(args.runs_dir)
    if not len(dataset):
        print("error: no engine_sample events to evaluate on", file=sys.stderr)
        return 1
    finite = np.isfinite(dataset.latency_s) & np.isfinite(dataset.energy_j)
    mean, _std = model.predict(dataset.x)
    print(f"model {args.model} on {len(dataset)} samples "
          f"({int(finite.sum())} feasible)")
    if finite.any():
        err_lat = np.abs(mean[finite, 0] - np.log(dataset.latency_s[finite]))
        err_en = np.abs(mean[finite, 1] - np.log(dataset.energy_j[finite]))
        true_rank = np.argsort(np.argsort(dataset.latency_s[finite]))
        pred_rank = np.argsort(np.argsort(mean[finite, 0]))
        if len(true_rank) > 1:
            rho = float(np.corrcoef(true_rank, pred_rank)[0, 1])
        else:
            rho = float("nan")
        print(f"  MAE log-latency   {float(err_lat.mean()):.4f}")
        print(f"  MAE log-energy    {float(err_en.mean()):.4f}")
        print(f"  rank corr (lat)   {rho:.3f}")
    proba = model.feasible_proba(dataset.x)
    accuracy = float(((proba >= 0.5) == dataset.feasible).mean())
    print(f"  feasibility acc   {accuracy:.1%}")
    return 0


# ------------------------------------------------------------------ runs
def _cmd_runs_list(args) -> int:
    from repro.tracking import RunStore

    store = RunStore(args.runs_dir)
    runs = store.list_runs()
    if not runs:
        print(f"no runs under {args.runs_dir}")
        return 0
    print(
        f"{'run id':<42s}{'status':<11s}{'method':<13s}{'scenario':<9s}"
        f"{'preset':<8s}{'ckpts':>6s}"
    )
    for run in runs:
        manifest = run.read_manifest()
        workload = manifest.get("workload", "?")
        if isinstance(workload, list):
            workload = "+".join(workload)
        print(
            f"{run.run_id:<42s}{manifest.get('status', '?'):<11s}"
            f"{manifest.get('method', '?'):<13s}"
            f"{manifest.get('scenario', '?'):<9s}"
            f"{str(manifest.get('preset', '?')):<8s}"
            f"{len(run.checkpoints()):>6d}"
        )
    return 0


def _cmd_runs_show(args) -> int:
    from repro.tracking import RunStore, replay_iteration_records, verify_run

    run = RunStore(args.runs_dir).get(args.run_id)
    manifest = run.read_manifest()
    print(f"run {run.run_id}")
    for key in sorted(manifest):
        print(f"  {key:<22s} {json.dumps(manifest[key], sort_keys=True)}")
    health = verify_run(run)
    print("journal:")
    for key in ("num_events", "journal_iterations", "truncated_tail",
                "num_checkpoints", "latest_checkpoint"):
        print(f"  {key:<22s} {health[key]}")
    records = replay_iteration_records(run.journal_path)
    if records:
        print("iterations (replayed from journal):")
        print(f"  {'iter':>4s}{'time_h':>10s}{'uul':>12s}{'sel':>5s}"
              f"{'feas':>5s}{'pareto':>7s}{'best':>12s}")
        for r in records:
            print(
                f"  {r.iteration:>4d}{r.time_s / 3600.0:>10.3f}"
                f"{r.uul:>12.4g}{r.num_selected:>5d}{r.num_feasible:>5d}"
                f"{r.pareto_size:>7d}{r.best_scalar:>12.4g}"
            )
    _print_batch_throughput(run)
    return 0


def _print_batch_throughput(run) -> None:
    """Effective-throughput summary from evaluation batch stamps and the
    last engine snapshot (only printed when the run used batching)."""
    from repro.tracking import read_events

    scan = read_events(run.journal_path)
    evals = [e for e in scan.events if e.get("type") == "evaluation"]
    batched = [e for e in evals if e.get("batch_id") is not None]
    snapshot = None
    for event in scan.events:
        if event.get("type") == "engine_snapshot" and event.get("engine"):
            snapshot = event["engine"]
    engine_batches = int((snapshot or {}).get("batch_queries", 0) or 0)
    if not batched and not engine_batches:
        return
    print("batching:")
    if batched:
        sizes = [int(e.get("batch_size") or 1) for e in batched]
        num_batches = len({int(e["batch_id"]) for e in batched})
        span_s = max(e.get("time_s", 0.0) for e in batched) - min(
            e.get("time_s", 0.0) for e in batched
        )
        print(f"  {'hw_evals_batched':<22s} {len(batched)}/{len(evals)}")
        print(f"  {'hw_batches':<22s} {num_batches}")
        print(f"  {'mean_hw_batch_size':<22s} {sum(sizes) / len(sizes):.1f}")
        if span_s > 0:
            print(
                f"  {'effective_evals_per_h':<22s} "
                f"{len(batched) / (span_s / 3600.0):.1f}"
            )
    if snapshot is not None and engine_batches:
        print(f"  {'engine_batch_queries':<22s} {engine_batches}")
        print(
            f"  {'engine_mean_batch':<22s} "
            f"{float(snapshot.get('mean_batch_size', 0.0)):.1f}"
        )


def _cmd_runs_profile(args) -> int:
    from repro.obs.profile import (
        build_profile,
        render_profile,
        spans_from_journal,
    )
    from repro.tracking import RunStore

    run = RunStore(args.runs_dir).get(args.run_id)
    spans = spans_from_journal(run.journal_path)
    if not spans:
        print(
            f"run {run.run_id} has no recorded spans — was it run with "
            "--trace?",
            file=sys.stderr,
        )
        return 1
    profile = build_profile(spans, top_n=args.top)
    print(f"run {run.run_id}: {profile.num_spans} spans, "
          f"{profile.total_wall_s:.2f}s wall, "
          f"{profile.total_sim_s / 3600.0:.2f}h simulated")
    if not profile.total_evals:
        print(
            "no engine-eval spans recorded — evals/s not available "
            "(the run traced phases but performed no PPA evaluations)"
        )
    print(render_profile(profile))
    return 0


def _cmd_runs_trace(args) -> int:
    from repro.obs.chrome import write_chrome_trace
    from repro.obs.profile import spans_from_journal
    from repro.tracking import RunStore

    run = RunStore(args.runs_dir).get(args.run_id)
    spans = spans_from_journal(run.journal_path)
    if not spans:
        print(
            f"run {run.run_id} has no recorded spans — was it run with "
            "--trace?",
            file=sys.stderr,
        )
        return 1
    out = args.out if args.out else str(run.dir / "trace.json")
    path = write_chrome_trace(spans, out)
    print(f"wrote {len(spans)} spans to {path} "
          "(load in https://ui.perfetto.dev or chrome://tracing)")
    return 0


def _render_live_event(event: dict) -> str:
    """One human-readable line per journal event (the --follow renderer)."""
    kind = str(event.get("type", "?"))
    seq = event.get("seq", "?")
    prefix = f"[{seq:>5}] {kind:<16s}"
    if kind == "iteration_end":
        r = event.get("record", {})
        return (
            f"{prefix} iter {r.get('iteration', '?'):>3}  "
            f"t={float(r.get('time_s', 0.0)) / 3600.0:7.3f}h  "
            f"uul={r.get('uul', float('nan')):.4g}  "
            f"sel={r.get('num_selected', 0)}  feas={r.get('num_feasible', 0)}  "
            f"pareto={r.get('pareto_size', 0)}  "
            f"best={r.get('best_scalar', float('nan')):.4g}"
        )
    if kind == "msh_round":
        return (
            f"{prefix} iter {event.get('iteration', '?')} "
            f"round {event.get('round_index', '?')}: "
            f"{len(event.get('candidates', []))} candidates → "
            f"{len(event.get('survivors', []))} survivors "
            f"({len(event.get('auc_promoted', []))} AUC-promoted)"
        )
    if kind == "engine_snapshot":
        engine = event.get("engine", {}) or {}
        queries = engine.get("num_queries", 0)
        hits = engine.get("num_cache_hits", 0)
        rate = hits / queries if queries else 0.0
        return (f"{prefix} queries={queries}  cache_hits={hits} "
                f"({rate:.1%})  evictions={engine.get('num_cache_evictions', 0)}")
    if kind == "pareto_update":
        return f"{prefix} pareto grew to {event.get('pareto_size', '?')}"
    if kind == "checkpoint":
        return (f"{prefix} saved {event.get('path', '?')} at iteration "
                f"{event.get('completed_iterations', '?')}")
    if kind == "run_end":
        return (
            f"{prefix} {event.get('completed_iterations', '?')} iterations, "
            f"{event.get('total_hw_evaluated', '?')} hw evaluated, "
            f"pareto={event.get('pareto_size', '?')}, "
            f"t={float(event.get('total_time_s', 0.0)) / 3600.0:.2f}h"
        )
    if kind in ("run_start", "resume"):
        keep = {k: v for k, v in event.items()
                if k in ("method", "run_id", "from_iteration", "seed")}
        return f"{prefix} {json.dumps(keep, sort_keys=True)}"
    compact = json.dumps(
        {k: v for k, v in event.items() if k not in ("seq", "type")},
        sort_keys=True,
    )
    return f"{prefix} {compact[:120]}"


def _runs_tail_follow(args) -> int:
    """Live tail: stream a hub's SSE endpoint, or poll the local journal."""
    import time as _time

    if args.hub:
        from repro.hub import HubClient

        client = HubClient(args.hub)
        try:
            for streamed in client.stream_events(args.run_id):
                event = streamed.event or {}
                if args.type and event.get("type") != args.type:
                    continue
                print(_render_live_event(event), flush=True)
        except KeyboardInterrupt:
            return 0
        finally:
            client.close()
        return 0
    from repro.tracking import RunStore, read_events_from, read_tail_events

    run = RunStore(args.runs_dir).get(args.run_id)
    cursor = 0
    if run.journal_path.exists():
        scan = read_tail_events(run.journal_path, args.lines,
                                event_type=args.type)
        for event in scan.events:
            print(_render_live_event(event), flush=True)
        cursor = scan.valid_bytes
    try:
        while True:
            if run.journal_path.exists():
                scan = read_events_from(run.journal_path, cursor)
                for event in scan.events:
                    if args.type and event.get("type") != args.type:
                        continue
                    print(_render_live_event(event), flush=True)
                progressed = bool(scan.events)
                cursor = scan.valid_bytes
            else:
                progressed = False
            status = run.read_manifest().get("status")
            if status in ("completed", "failed", "cancelled") and not progressed:
                print(f"(run {status})")
                return 0
            _time.sleep(0.2)
    except KeyboardInterrupt:
        return 0


def _cmd_runs_tail(args) -> int:
    if args.follow:
        return _runs_tail_follow(args)
    from repro.tracking import RunStore, read_tail_events

    run = RunStore(args.runs_dir).get(args.run_id)
    # bounded read: only the journal's final chunk is parsed, so tailing
    # a multi-day run costs the same as tailing a smoke run
    scan = read_tail_events(run.journal_path, args.lines, event_type=args.type)
    for event in scan.events:
        print(json.dumps(event, sort_keys=True))
    if scan.truncated_tail:
        print("(journal has a truncated tail — run was interrupted mid-write)",
              file=sys.stderr)
    return 0


def _cmd_runs_compare(args) -> int:
    from repro.tracking import RunStore, replay_iteration_records

    store = RunStore(args.runs_dir)
    runs = [store.get(run_id) for run_id in (args.run_a, args.run_b)]
    records = [replay_iteration_records(run.journal_path) for run in runs]
    manifests = [run.read_manifest() for run in runs]
    print(f"{'':<22s}{runs[0].run_id[:28]:>30s}{runs[1].run_id[:28]:>30s}")
    for key in ("method", "scenario", "workload", "preset", "seed", "status"):
        values = [json.dumps(m.get(key), sort_keys=True) for m in manifests]
        print(f"{key:<22s}{values[0]:>30s}{values[1]:>30s}")
    print(f"{'iterations':<22s}{len(records[0]):>30d}{len(records[1]):>30d}")
    for label, getter in (
        ("final pareto size", lambda rs: rs[-1].pareto_size if rs else 0),
        ("final best scalar", lambda rs: rs[-1].best_scalar if rs else float("inf")),
        ("final uul", lambda rs: rs[-1].uul if rs else float("inf")),
        ("total time h", lambda rs: rs[-1].time_s / 3600.0 if rs else 0.0),
    ):
        values = [getter(rs) for rs in records]
        print(f"{label:<22s}{values[0]:>30.6g}{values[1]:>30.6g}")
    shared = min(len(records[0]), len(records[1]))
    if shared:
        print("pareto size by iteration:")
        print(f"  {'iter':>4s}{'a':>8s}{'b':>8s}")
        for i in range(shared):
            print(
                f"  {i:>4d}{records[0][i].pareto_size:>8d}"
                f"{records[1][i].pareto_size:>8d}"
            )
    return 0


def _cmd_runs_resume(args) -> int:
    from repro.tracking import RunStore, resume_run

    store = RunStore(args.runs_dir)
    run = store.get(args.run_id)
    manifest = run.read_manifest()
    result = resume_run(
        run,
        max_iterations=args.max_iterations,
        checkpoint_every=args.checkpoint_every,
    )
    _print_result(
        result,
        manifest.get("method", "?"),
        str(manifest.get("workload", "?")),
        manifest.get("scenario", "?"),
    )
    print(
        f"resumed from iteration {result.extras['resumed_from_iteration']}, "
        f"now at {result.extras['iterations']}"
    )
    return 0


def _cmd_table(args) -> int:
    record = run_table(args.scenario, list(args.networks), args.preset, seed=args.seed)
    print(format_table(record))
    if args.json:
        _write_json(args.json, record)
    return 0


_FIG_RUNNERS = {
    "7": lambda args: run_fig7(args.scenario, list(args.networks), args.preset, seed=args.seed),
    "8": lambda args: run_fig8(args.preset, seed=args.seed),
    "9": lambda args: run_fig9(args.preset, seed=args.seed),
    "10": lambda args: run_fig10(args.preset, seed=args.seed),
    "11": lambda args: run_fig11(args.preset, seed=args.seed),
}


def _cmd_fig(args) -> int:
    record = _FIG_RUNNERS[args.number](args)
    payload = record.to_json()
    if args.json:
        _write_json(args.json, record)
    else:
        print(payload)
    return 0


def _cmd_serve(args) -> int:
    from repro.camodel import AscendCAEngine
    from repro.costmodel import MaestroEngine
    from repro.costmodel.service import PPAServiceServer

    network = get_network(args.network)
    capacity = args.cache_capacity if args.cache_capacity > 0 else None
    if args.engine == "maestro":
        engine = MaestroEngine(network, cache_capacity=capacity)
    else:
        engine = AscendCAEngine(network, noise_fraction=0.08)
        engine.cache_capacity = capacity
    tracer = None
    if args.trace:
        from repro.obs.trace import Tracer

        tracer = Tracer()
    server = PPAServiceServer(
        engine, host=args.host, port=args.port, tracer=tracer
    )
    server.start()
    print(f"PPA service ({args.engine}, workload {args.network}) at {server.url}")
    if args.trace:
        print(
            "request tracing on: spans return to tracing clients via the "
            "X-Repro-Span header"
        )
    print(f"metrics at {server.url}/metrics  (or: python -m repro stats {server.url})")
    print("Ctrl-C to stop.")
    try:
        import time

        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        server.stop()
    return 0


def _cmd_fleet_serve(args) -> int:
    from repro.fleet.server import FleetSupervisor, ReplicaSpec

    capacity = args.cache_capacity if args.cache_capacity > 0 else None
    spec = ReplicaSpec(
        network=args.network,
        engine=args.engine,
        cache_capacity=capacity,
        host=args.host,
        ports=tuple(args.ports),
    )
    fleet = FleetSupervisor(spec, replicas=args.replicas).start()
    print(
        f"PPA fleet ({args.engine}, workload {args.network}): "
        f"{args.replicas} replicas"
    )
    for index, url in enumerate(fleet.urls):
        print(f"  replica {index}: {url}")
    print(
        "point a sharded client at every URL; "
        "Ctrl-C drains in-flight requests and stops the fleet."
    )
    try:
        import time

        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        fleet.stop()
    return 0


def _render_fleet_dashboard(status: dict, prev: Optional[dict],
                            elapsed_s: float) -> str:
    """Terminal dashboard for one fleet-status snapshot.

    Rates (evals/s) come from counter deltas between this snapshot and
    the previous one, which is why the watch loop threads ``prev``.
    """
    def _rate(now_row: dict, prev_row: Optional[dict]) -> str:
        if prev_row is None or elapsed_s <= 0:
            return "      -"
        delta = now_row.get("queries", 0.0) - prev_row.get("queries", 0.0)
        return f"{max(delta, 0.0) / elapsed_s:7.1f}"

    prev_rows = {
        row["name"]: row for row in (prev or {}).get("replicas", [])
    }
    fleet = status["fleet"]
    queries = fleet.get("queries", 0.0)
    hits = fleet.get("cache_hits", 0.0)
    hit_rate = hits / queries if queries else 0.0
    lines = [
        f"fleet: {status['up']}/{status['total']} replicas up   "
        f"evals/s {_rate(fleet, (prev or {}).get('fleet'))}   "
        f"cache hit rate {hit_rate:6.1%}   "
        f"errors {fleet.get('errors', 0.0):g}",
        "",
        f"{'replica':<22} {'state':<6} {'evals/s':>8} {'queries':>10} "
        f"{'hits':>10} {'evict':>8} {'errors':>7} {'scrape':>8}",
    ]
    for row in status["replicas"]:
        if not row["up"]:
            lines.append(
                f"{row['name']:<22} {'DOWN':<6} "
                f"{(row.get('error') or '')[:60]}"
            )
            continue
        lines.append(
            f"{row['name']:<22} {'up':<6} "
            f"{_rate(row, prev_rows.get(row['name'])):>8} "
            f"{row.get('queries', 0.0):>10g} "
            f"{row.get('cache_hits', 0.0):>10g} "
            f"{row.get('cache_evictions', 0.0):>8g} "
            f"{row.get('errors', 0.0):>7g} "
            f"{row.get('scrape_seconds', 0.0) * 1e3:>6.1f}ms"
        )
    return "\n".join(lines)


def _fleet_status_dashboard(args) -> int:
    """Scrape-based fleet status (one shot or ``--watch`` live loop)."""
    import time as _time

    if args.hub:
        from repro.hub import HubClient

        source = HubClient(args.hub, timeout_s=args.timeout)
        fetch = source.fleet_status
    else:
        if not args.urls:
            print("error: fleet status needs replica URLs or --hub",
                  file=sys.stderr)
            return 2
        from repro.hub import FleetAggregator

        source = FleetAggregator(args.urls, timeout_s=args.timeout)
        fetch = source.status
    prev = None
    prev_t = None
    try:
        while True:
            status = fetch()
            now = _time.monotonic()
            text = _render_fleet_dashboard(
                status, prev, (now - prev_t) if prev_t is not None else 0.0
            )
            if args.watch:
                sys.stdout.write("\x1b[2J\x1b[H")
            print(text, flush=True)
            if not args.watch:
                return 0 if status["up"] == status["total"] else 1
            prev, prev_t = status, now
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        source.close()


def _cmd_fleet_status(args) -> int:
    if args.watch or args.hub:
        return _fleet_status_dashboard(args)
    from urllib.request import urlopen

    failures = 0
    for url in args.urls:
        base = url.rstrip("/")
        try:
            with urlopen(f"{base}/health", timeout=args.timeout) as response:
                health = json.loads(response.read())
        except OSError as error:
            print(f"{base}  DOWN  {type(error).__name__}: {error}")
            failures += 1
            continue
        status = health.get("status", "?")
        if status != "ok":
            failures += 1
        print(
            f"{base}  {status}  workload={health.get('workload', '?')} "
            f"queries={health.get('queries', '?')}"
        )
    return 1 if failures else 0


#: bar glyphs for terminal sparklines, lowest to highest
_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def _sparkline(values: list, width: int = 32) -> str:
    """Render a value history as a unicode sparkline (scaled to its max)."""
    values = list(values)[-width:]
    if not values:
        return ""
    top = max(values)
    if top <= 0.0:
        return _SPARK_GLYPHS[0] * len(values)
    return "".join(
        _SPARK_GLYPHS[
            min(int(v / top * (len(_SPARK_GLYPHS) - 1) + 0.5),
                len(_SPARK_GLYPHS) - 1)
        ]
        for v in values
    )


def _rate_history(points: list, limit: int = 32) -> list:
    """Per-sample counter rates from ``(t, value)`` points (reset-aware)."""
    rates = []
    for (t0, v0), (t1, v1) in zip(points, points[1:]):
        dt = t1 - t0
        if dt <= 0.0:
            continue
        delta = v1 - v0
        # a counter that fell restarted; show its post-reset value as growth
        rates.append((delta if delta >= 0.0 else v1) / dt)
    return rates[-limit:]


def _render_fleet_top(store, active_alerts: list) -> str:
    """One frame of the ``repro fleet top`` dashboard from the store."""
    lines = []
    replicas = [t for t in store.targets() if t.startswith("replica:")]
    fleet_latest = store.latest("fleet")
    if fleet_latest is not None:
        up = fleet_latest[1].get("replicas_up", 0.0)
        total = fleet_latest[1].get("replicas_total", 0.0)
        fleet_rates = _rate_history(
            store.series("fleet", "engine_queries_total")
        )
        lines.append(
            f"fleet: {up:g}/{total:g} replicas up   "
            f"evals/s {fleet_rates[-1] if fleet_rates else 0.0:7.1f}  "
            f"{_sparkline(fleet_rates)}"
        )
        lines.append("")
    lines.append(
        f"{'replica':<24} {'state':<6} {'evals/s':>8}  "
        f"{'history':<32} {'errors':>7}"
    )
    for target in replicas:
        latest = store.latest(target)
        series = latest[1] if latest is not None else {}
        if series.get("up", 0.0) < 1.0:
            lines.append(f"{target:<24} {'DOWN':<6}")
            continue
        rates = _rate_history(
            store.series(target, "engine_queries_total")
        )
        lines.append(
            f"{target:<24} {'up':<6} "
            f"{rates[-1] if rates else 0.0:>8.1f}  "
            f"{_sparkline(rates):<32} "
            f"{series.get('service_errors_total', 0.0):>7g}"
        )
    runs = [t for t in store.targets() if t.startswith("run:")]
    for target in runs:
        latest = store.latest(target)
        series = latest[1] if latest is not None else {}
        hv_points = store.series(target, "search_hypervolume")
        lines.append("")
        lines.append(
            f"{target}: iter {series.get('search_iteration', 0.0):g}  "
            f"pareto {series.get('search_pareto_size', 0.0):g}  "
            f"HV {series.get('search_hypervolume', 0.0):.4g}  "
            f"{_sparkline([v for _t, v in hv_points])}"
        )
    lines.append("")
    if active_alerts:
        lines.append("alerts:")
        for alert in active_alerts:
            value = alert.get("value")
            lines.append(
                f"  {alert.get('state', '?'):<8} "
                f"{alert.get('rule', '?'):<22} {alert.get('target', '?'):<24} "
                f"{value if value is not None else '-'}"
            )
    else:
        lines.append("alerts: none")
    return "\n".join(lines)


def _cmd_fleet_top(args) -> int:
    """Live fleet dashboard: local scrape loop or a hub's telemetry store."""
    import time as _time

    from repro.obs.timeseries import MetricsStore

    client = None
    pipeline = None
    if args.hub:
        from repro.hub import HubClient

        client = HubClient(args.hub, timeout_s=args.timeout)
        # mirror the hub's store incrementally via byte cursors so the
        # sparklines have history without re-downloading every frame
        mirror = MetricsStore()
        cursors: dict = {}

        def _frame() -> str:
            for target in client.obs_targets()["targets"]:
                reply = client.obs_export(
                    target, after=cursors.get(target, 0)
                )
                for sample in reply["samples"]:
                    mirror.append(target, sample["t"], sample["s"])
                cursors[target] = reply["cursor"]
            return _render_fleet_top(mirror, client.alerts()["active"])
    else:
        if not args.urls:
            print("error: fleet top needs replica URLs or --hub",
                  file=sys.stderr)
            return 2
        from repro.hub import TelemetryPipeline

        # in-memory store: the dashboard is ephemeral by design
        pipeline = TelemetryPipeline(
            replica_urls=args.urls,
            store=None,
            interval_s=args.interval,
            scrape_timeout_s=args.timeout,
        )

        def _frame() -> str:
            pipeline.tick()
            return _render_fleet_top(
                pipeline.store, pipeline.alerts.active()
            )

    iterations = 0
    try:
        while True:
            text = _frame()
            if not args.no_clear:
                sys.stdout.write("\x1b[2J\x1b[H")
            print(text, flush=True)
            iterations += 1
            if args.iterations and iterations >= args.iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        if client is not None:
            client.close()
        if pipeline is not None:
            pipeline.stop()


# ---------------------------------------------------------------------- obs
def _obs_store(args):
    from repro.obs.timeseries import MetricsStore

    return MetricsStore(args.obs_dir)


def _cmd_obs_targets(args) -> int:
    if args.hub:
        from repro.hub import HubClient

        with HubClient(args.hub) as client:
            targets = client.obs_targets()["targets"]
    else:
        targets = _obs_store(args).targets()
    for target in targets:
        print(target)
    return 0


def _cmd_obs_query(args) -> int:
    if args.hub:
        from repro.hub import HubClient

        with HubClient(args.hub) as client:
            reply = client.obs_query(
                args.target, args.series, fn=args.query_fn,
                window_s=args.window, q=args.q,
            )
        value = reply.get("value")
    else:
        value = _obs_store(args).query(
            args.target, args.series, fn=args.query_fn,
            window_s=args.window, q=args.q,
        )
    if value is None:
        print(f"(series {args.series!r} never seen on {args.target!r})",
              file=sys.stderr)
        return 1
    print(f"{value:g}")
    return 0


def _cmd_obs_export(args) -> int:
    """Dump a target's raw samples as JSONL (incremental via --after)."""
    if args.hub:
        from repro.hub import HubClient

        with HubClient(args.hub) as client:
            reply = client.obs_export(args.target, after=args.after)
        samples = [(s["t"], s["s"]) for s in reply["samples"]]
        cursor = reply["cursor"]
    else:
        samples, scan = _obs_store(args).read_from(args.target, args.after)
        cursor = scan.valid_bytes
    for t, series in samples:
        print(json.dumps({"t": t, "s": series}, sort_keys=True))
    print(f"cursor: {cursor}", file=sys.stderr)
    return 0


def _cmd_hub_serve(args) -> int:
    import threading
    import time as _time

    from repro.hub import HubServer

    server = HubServer(
        args.runs_dir,
        replica_urls=args.replicas or None,
        host=args.host,
        port=args.port,
        telemetry=args.telemetry,
        scrape_interval_s=args.scrape_interval,
        obs_dir=args.obs_dir,
    )
    server.start()
    stopped = threading.Event()
    server.install_signal_handlers(on_stopped=stopped.set)
    print(f"repro hub on {server.url} (runs dir {args.runs_dir})")
    if args.replicas:
        print(f"aggregating {len(args.replicas)} replicas "
              "at /fleet/metrics and /fleet/status")
    if args.telemetry:
        print(
            f"telemetry: scraping every {args.scrape_interval:g}s into "
            f"{server.telemetry.store.root} (/alerts, /alerts/events, "
            "/obs/query)"
        )
    print("endpoints: /runs /runs/<id>/events (SSE) /metrics /health; "
          "Ctrl-C drains and stops.")
    try:
        while not stopped.is_set():
            _time.sleep(0.5)
    except KeyboardInterrupt:
        server.stop()
    return 0


def _cmd_hub_submit(args) -> int:
    from repro.hub import HubClient

    spec = {
        "method": args.method,
        "scenario": args.scenario,
        "workload": args.network,
        "preset": args.preset,
        "seed": args.seed,
        "checkpoint_every": args.checkpoint_every,
    }
    if args.time_budget is not None:
        spec["time_budget_s"] = args.time_budget * 3600.0
    with HubClient(args.hub) as client:
        run_id = client.submit(spec)
    print(run_id)
    return 0


def _cmd_hub_runs(args) -> int:
    from repro.hub import HubClient

    with HubClient(args.hub) as client:
        reply = client.list_runs()
    runs = reply.get("runs", [])
    if not runs:
        print("(no runs)")
        return 0
    print(f"{'run_id':<44} {'status':<10} {'method':<10} "
          f"{'workload':<18} preset")
    for row in runs:
        print(
            f"{row.get('run_id', '?'):<44} {row.get('status', '?'):<10} "
            f"{row.get('method', '?'):<10} {row.get('workload', '?'):<18} "
            f"{row.get('preset', '?')}"
        )
    state = reply.get("scheduler", {})
    if state:
        print(f"scheduler: running={state.get('running')} "
              f"queued={len(state.get('queued', []))}")
    return 0


def _cmd_hub_cancel(args) -> int:
    from repro.hub import HubClient

    with HubClient(args.hub) as client:
        reply = client.cancel(args.run_id)
    print(f"{args.run_id}: {reply.get('status', '?')}")
    return 0


def _cmd_hub_resume(args) -> int:
    from repro.hub import HubClient

    with HubClient(args.hub) as client:
        run_id = client.resume(args.run_id)
    print(f"{run_id}: queued for resume")
    return 0


def _cmd_stats(args) -> int:
    from urllib.request import urlopen

    url = args.url.rstrip("/")
    if args.prom:
        try:
            with urlopen(
                f"{url}/metrics?format=prom", timeout=args.timeout
            ) as response:
                print(response.read().decode("utf-8"), end="")
        except OSError as error:
            print(f"error: cannot reach PPA service at {url}: {error}",
                  file=sys.stderr)
            return 1
        return 0
    try:
        with urlopen(f"{url}/metrics", timeout=args.timeout) as response:
            payload = json.load(response)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot reach PPA service at {url}: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    engine = payload.get("engine", {})
    print(f"PPA service at {url}")
    print(f"  engine           {engine.get('engine', '?')}")
    print(f"  workload         {engine.get('workload', '?')}")
    print(f"  queries          {engine.get('num_queries', 0)}")
    print(f"  cache hits       {engine.get('num_cache_hits', 0)}")
    print(f"  cache hit rate   {engine.get('cache_hit_rate', 0.0):.1%}")
    print(f"  cache evictions  {engine.get('num_cache_evictions', 0)}")
    capacity = engine.get("cache_capacity")
    print(
        f"  cache size       {engine.get('cache_size', 0)}"
        f" / {capacity if capacity is not None else 'unbounded'}"
    )
    if "num_retries" in engine:
        print(f"  retries          {engine['num_retries']}")
    if engine.get("batch_queries"):
        print(
            f"  batch queries    {engine['batch_queries']}"
            f" (mean batch size {engine.get('mean_batch_size', 0.0):.1f})"
        )
    metrics = payload.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        print("counters:")
        for name, value in counters.items():
            print(f"  {name:<40s} {value:g}")
    histograms = metrics.get("histograms", {})
    if histograms:
        print("histograms:")
        for name, hist in histograms.items():
            if not hist["count"]:
                continue
            if "seconds" in name:
                detail = (
                    f"mean={hist['mean'] * 1e3:.2f} ms  "
                    f"max={hist['max'] * 1e3:.2f} ms"
                )
            else:  # dimensionless (e.g. batch sizes)
                detail = f"mean={hist['mean']:.1f}  max={hist['max']:g}"
            print(f"  {name:<40s} count={hist['count']}  {detail}")
    return 0


def _cmd_reproduce(args) -> int:
    import pathlib

    from repro.experiments.paper_runner import run_everything

    summary = run_everything(
        preset=args.preset,
        seed=args.seed,
        results_dir=pathlib.Path(args.results_dir),
        only=args.only,
        progress=print,
    )
    print(f"done: {len(summary.children)} experiments at preset {args.preset}")
    return 0


def _cmd_report(args) -> int:
    import pathlib

    from repro.experiments.reporting import generate_report

    markdown = generate_report(pathlib.Path(args.results_dir))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(markdown)
        print(f"wrote {args.out}")
    else:
        print(markdown)
    return 0


def _write_json(path: str, record) -> None:
    with open(path, "w") as handle:
        handle.write(record.to_json())
    print(f"wrote {path}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with every sub-command."""
    parser = argparse.ArgumentParser(
        prog="repro", description="UNICO reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("networks", help="list registered workloads").set_defaults(
        fn=_cmd_networks
    )

    run_parser = sub.add_parser("run", help="run one co-search cell")
    run_parser.add_argument("method", choices=METHODS)
    run_parser.add_argument("network")
    run_parser.add_argument("--scenario", default="edge",
                            choices=("edge", "cloud", "ascend"))
    run_parser.add_argument("--preset", default="smoke")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--track", action="store_true",
        help="persist a run directory (manifest + journal + checkpoints)",
    )
    run_parser.add_argument("--runs-dir", default="runs",
                            help="root of tracked run directories")
    run_parser.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="auto-checkpoint period in iterations (0 = journal only)",
    )
    run_parser.add_argument(
        "--batch-size", type=int, default=1,
        help="speculative batch width of the inner mapping search "
             "(candidates per vectorized PPA-engine call; 1 = scalar loop)",
    )
    run_parser.add_argument(
        "--trace", action="store_true",
        help="record hierarchical spans (requires --track); writes "
             "runs/<id>/trace.json and journals span events for "
             "`runs profile`",
    )
    run_parser.add_argument(
        "--tool", default=None,
        help="override the scenario's SW mapping tool (e.g. 'oneloop' for "
             "the learned gradient-descent search)",
    )
    run_parser.add_argument(
        "--record-samples", action="store_true",
        help="journal every computed candidate as an engine_sample event "
             "(requires --track); the corpus for `repro learned train`",
    )
    run_parser.add_argument(
        "--screen", default=None, metavar="MODEL",
        help="screen evaluation batches with this saved learned model "
             "(see `repro learned train`); only predicted-best candidates "
             "reach the analytical engine",
    )
    run_parser.add_argument(
        "--screen-topk", type=int, default=None,
        help="candidates forwarded per screened batch (default: 25%% of "
             "the batch)",
    )
    run_parser.set_defaults(fn=_cmd_run)

    learned_parser = sub.add_parser(
        "learned", help="train / evaluate a journal-distilled cost model"
    )
    learned_sub = learned_parser.add_subparsers(
        dest="learned_command", required=True
    )

    learned_train = learned_sub.add_parser(
        "train", help="distill journalled engine_sample events into a model"
    )
    learned_train.add_argument("--runs-dir", default="runs",
                               help="run store to harvest samples from")
    learned_train.add_argument("--out", default="learned_model.json",
                               help="where to save the trained model")
    learned_train.add_argument("--seed", type=int, default=0)
    learned_train.add_argument("--hidden", type=int, default=32,
                               help="MLP hidden width")
    learned_train.add_argument("--ensemble", type=int, default=4,
                               help="MLP ensemble members (plus one ridge)")
    learned_train.add_argument("--epochs", type=int, default=300)
    learned_train.set_defaults(fn=_cmd_learned_train)

    learned_eval = learned_sub.add_parser(
        "eval", help="score a saved model against journalled samples"
    )
    learned_eval.add_argument("model", help="saved model JSON path")
    learned_eval.add_argument("--runs-dir", default="runs")
    learned_eval.set_defaults(fn=_cmd_learned_eval)

    runs_parser = sub.add_parser(
        "runs", help="inspect / resume tracked runs (see `run --track`)"
    )
    runs_sub = runs_parser.add_subparsers(dest="runs_command", required=True)

    runs_list = runs_sub.add_parser("list", help="list tracked runs")
    runs_list.add_argument("--runs-dir", default="runs")
    runs_list.set_defaults(fn=_cmd_runs_list)

    runs_show = runs_sub.add_parser(
        "show", help="manifest, journal health and iteration table of a run"
    )
    runs_show.add_argument("run_id")
    runs_show.add_argument("--runs-dir", default="runs")
    runs_show.set_defaults(fn=_cmd_runs_show)

    runs_profile = runs_sub.add_parser(
        "profile", help="per-phase wall/sim time breakdown of a traced run"
    )
    runs_profile.add_argument("run_id")
    runs_profile.add_argument("--runs-dir", default="runs")
    runs_profile.add_argument(
        "--top", type=int, default=5, help="slowest individual spans to list"
    )
    runs_profile.set_defaults(fn=_cmd_runs_profile)

    runs_trace = runs_sub.add_parser(
        "trace", help="export a traced run's spans as Chrome trace JSON"
    )
    runs_trace.add_argument("run_id")
    runs_trace.add_argument("--runs-dir", default="runs")
    runs_trace.add_argument(
        "--out", default=None,
        help="output path (default: the run's trace.json)",
    )
    runs_trace.set_defaults(fn=_cmd_runs_trace)

    runs_tail = runs_sub.add_parser("tail", help="print a run's last events")
    runs_tail.add_argument("run_id")
    runs_tail.add_argument("-n", "--lines", type=int, default=10)
    runs_tail.add_argument("--type", default=None,
                           help="only events of this type")
    runs_tail.add_argument("--runs-dir", default="runs")
    runs_tail.add_argument(
        "-f", "--follow", action="store_true",
        help="render events live as the run produces them",
    )
    runs_tail.add_argument(
        "--hub", default=None, metavar="URL",
        help="with --follow: stream over the hub's SSE endpoint "
             "instead of polling the local journal",
    )
    runs_tail.set_defaults(fn=_cmd_runs_tail)

    runs_compare = runs_sub.add_parser(
        "compare", help="side-by-side trajectory comparison of two runs"
    )
    runs_compare.add_argument("run_a")
    runs_compare.add_argument("run_b")
    runs_compare.add_argument("--runs-dir", default="runs")
    runs_compare.set_defaults(fn=_cmd_runs_compare)

    runs_resume = runs_sub.add_parser(
        "resume", help="continue an interrupted run from its checkpoint"
    )
    runs_resume.add_argument("run_id")
    runs_resume.add_argument("--runs-dir", default="runs")
    runs_resume.add_argument(
        "--max-iterations", type=int, default=None,
        help="override the manifest's iteration budget",
    )
    runs_resume.add_argument("--checkpoint-every", type=int, default=1)
    runs_resume.set_defaults(fn=_cmd_runs_resume)

    table_parser = sub.add_parser("table", help="regenerate Table 1/2")
    table_parser.add_argument("scenario", choices=("edge", "cloud"))
    table_parser.add_argument("--networks", nargs="+", default=list(TABLE12_NETWORKS))
    table_parser.add_argument("--preset", default="smoke")
    table_parser.add_argument("--seed", type=int, default=0)
    table_parser.add_argument("--json", default=None, help="write record JSON here")
    table_parser.set_defaults(fn=_cmd_table)

    fig_parser = sub.add_parser("fig", help="regenerate a figure (7-11)")
    fig_parser.add_argument("number", choices=sorted(_FIG_RUNNERS))
    fig_parser.add_argument("--scenario", default="edge", choices=("edge", "cloud"))
    fig_parser.add_argument("--networks", nargs="+", default=list(TABLE12_NETWORKS))
    fig_parser.add_argument("--preset", default="smoke")
    fig_parser.add_argument("--seed", type=int, default=0)
    fig_parser.add_argument("--json", default=None, help="write record JSON here")
    fig_parser.set_defaults(fn=_cmd_fig)

    reproduce_parser = sub.add_parser(
        "reproduce", help="run every table/figure at a preset"
    )
    reproduce_parser.add_argument("--preset", default="smoke")
    reproduce_parser.add_argument("--seed", type=int, default=0)
    reproduce_parser.add_argument(
        "--results-dir", default="benchmarks/results", help="where records go"
    )
    reproduce_parser.add_argument(
        "--only", nargs="+", default=None, help="subset of experiment names"
    )
    reproduce_parser.set_defaults(fn=_cmd_reproduce)

    report_parser = sub.add_parser(
        "report", help="render saved benchmark records as markdown"
    )
    report_parser.add_argument(
        "--results-dir", default="benchmarks/results", help="record directory"
    )
    report_parser.add_argument("--out", default=None, help="write markdown here")
    report_parser.set_defaults(fn=_cmd_report)

    serve_parser = sub.add_parser("serve", help="serve a PPA engine over HTTP")
    serve_parser.add_argument("network")
    serve_parser.add_argument("--engine", default="maestro",
                              choices=("maestro", "ascend"))
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=0)
    serve_parser.add_argument(
        "--cache-capacity", type=int, default=100_000,
        help="LRU bound on the engine result cache (0 = unbounded)",
    )
    serve_parser.add_argument(
        "--trace", action="store_true",
        help="open a span per request and return it to tracing clients",
    )
    serve_parser.set_defaults(fn=_cmd_serve)

    fleet_parser = sub.add_parser(
        "fleet", help="run or inspect a fleet of sharded PPA-service replicas"
    )
    fleet_sub = fleet_parser.add_subparsers(dest="fleet_command", required=True)
    fleet_serve = fleet_sub.add_parser(
        "serve", help="start N replica processes under one supervisor"
    )
    fleet_serve.add_argument("network")
    fleet_serve.add_argument("--replicas", type=int, default=2)
    fleet_serve.add_argument("--engine", default="maestro",
                             choices=("maestro", "ascend"))
    fleet_serve.add_argument("--host", default="127.0.0.1")
    fleet_serve.add_argument(
        "--ports", type=int, nargs="*", default=[],
        help="fixed ports per replica (default: OS-assigned)",
    )
    fleet_serve.add_argument(
        "--cache-capacity", type=int, default=100_000,
        help="per-replica LRU bound on the engine cache (0 = unbounded)",
    )
    fleet_serve.set_defaults(fn=_cmd_fleet_serve)
    fleet_status = fleet_sub.add_parser(
        "status", help="health-check running replica URLs"
    )
    fleet_status.add_argument("urls", nargs="*")
    fleet_status.add_argument("--timeout", type=float, default=5.0)
    fleet_status.add_argument(
        "--watch", action="store_true",
        help="live scrape-based dashboard (evals/s, cache hits, errors)",
    )
    fleet_status.add_argument(
        "--hub", default=None, metavar="URL",
        help="read fleet status from a hub's /fleet/status instead of "
             "scraping replicas directly",
    )
    fleet_status.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period for --watch, in seconds",
    )
    fleet_status.set_defaults(fn=_cmd_fleet_status)
    fleet_top = fleet_sub.add_parser(
        "top",
        help="live telemetry dashboard with sparkline history and alerts",
    )
    fleet_top.add_argument("urls", nargs="*")
    fleet_top.add_argument(
        "--hub", default=None, metavar="URL",
        help="mirror a hub's telemetry store instead of scraping replicas",
    )
    fleet_top.add_argument("--timeout", type=float, default=5.0)
    fleet_top.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period in seconds",
    )
    fleet_top.add_argument(
        "--iterations", type=int, default=0,
        help="render this many frames then exit (0 = until Ctrl-C)",
    )
    fleet_top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen (for logs)",
    )
    fleet_top.set_defaults(fn=_cmd_fleet_top)

    hub_parser = sub.add_parser(
        "hub", help="run or talk to the control-plane hub"
    )
    hub_sub = hub_parser.add_subparsers(dest="hub_command", required=True)
    hub_serve = hub_sub.add_parser(
        "serve",
        help="serve run lifecycle, SSE journal streams and fleet metrics",
    )
    hub_serve.add_argument("--runs-dir", default="runs")
    hub_serve.add_argument("--host", default="127.0.0.1")
    hub_serve.add_argument("--port", type=int, default=0)
    hub_serve.add_argument(
        "--replicas", nargs="*", default=[], metavar="URL",
        help="PPA-service replica URLs to aggregate at /fleet/*",
    )
    hub_serve.add_argument(
        "--telemetry", action="store_true",
        help="run the scrape loop + SLO alerting (/alerts, /obs/*)",
    )
    hub_serve.add_argument(
        "--scrape-interval", type=float, default=2.0,
        help="telemetry scrape period in seconds",
    )
    hub_serve.add_argument(
        "--obs-dir", default=None,
        help="metrics-store directory (default: <runs-dir>/obs)",
    )
    hub_serve.set_defaults(fn=_cmd_hub_serve)
    hub_submit = hub_sub.add_parser(
        "submit", help="submit a run spec to a hub's scheduler"
    )
    hub_submit.add_argument("hub", help="hub base URL, e.g. http://host:port")
    hub_submit.add_argument("method", choices=METHODS)
    hub_submit.add_argument("network")
    hub_submit.add_argument("--scenario", default="edge",
                            choices=("edge", "cloud", "ascend"))
    hub_submit.add_argument("--preset", default="smoke")
    hub_submit.add_argument("--seed", type=int, default=0)
    hub_submit.add_argument(
        "--time-budget", type=float, default=None,
        help="wall-clock budget in hours",
    )
    hub_submit.add_argument("--checkpoint-every", type=int, default=1)
    hub_submit.set_defaults(fn=_cmd_hub_submit)
    hub_runs = hub_sub.add_parser("runs", help="list a hub's tracked runs")
    hub_runs.add_argument("hub")
    hub_runs.set_defaults(fn=_cmd_hub_runs)
    hub_cancel = hub_sub.add_parser(
        "cancel", help="cancel a queued or running hub run"
    )
    hub_cancel.add_argument("hub")
    hub_cancel.add_argument("run_id")
    hub_cancel.set_defaults(fn=_cmd_hub_cancel)
    hub_resume = hub_sub.add_parser(
        "resume", help="queue an interrupted run for continuation"
    )
    hub_resume.add_argument("hub")
    hub_resume.add_argument("run_id")
    hub_resume.set_defaults(fn=_cmd_hub_resume)

    obs_parser = sub.add_parser(
        "obs", help="query or export the telemetry metrics store"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_targets = obs_sub.add_parser(
        "targets", help="list targets with recorded samples"
    )
    obs_query = obs_sub.add_parser(
        "query", help="evaluate one windowed query over a series"
    )
    obs_query.add_argument("target", help="e.g. replica:127.0.0.1:9001, fleet")
    obs_query.add_argument("series", help="e.g. engine_queries_total")
    obs_query.add_argument(
        # dest must not be "fn": that slot holds the subcommand handler
        "--fn", dest="query_fn", default="last",
        choices=("last", "avg", "max", "min", "rate", "increase", "quantile"),
    )
    obs_query.add_argument("--window", type=float, default=60.0,
                           help="trailing window in seconds")
    obs_query.add_argument("--q", type=float, default=None,
                           help="quantile in [0,1] (fn=quantile)")
    obs_export = obs_sub.add_parser(
        "export", help="dump a target's raw samples as JSONL"
    )
    obs_export.add_argument("target")
    obs_export.add_argument(
        "--after", type=int, default=0,
        help="byte cursor from a previous export (incremental)",
    )
    for obs_cmd in (obs_targets, obs_query, obs_export):
        obs_cmd.add_argument(
            "--obs-dir", default="runs/obs",
            help="local metrics-store directory",
        )
        obs_cmd.add_argument(
            "--hub", default=None, metavar="URL",
            help="ask a running hub instead of reading a local store",
        )
    obs_targets.set_defaults(fn=_cmd_obs_targets)
    obs_query.set_defaults(fn=_cmd_obs_query)
    obs_export.set_defaults(fn=_cmd_obs_export)

    stats_parser = sub.add_parser(
        "stats", help="summarize a running PPA service's /metrics"
    )
    stats_parser.add_argument("url", help="service base URL, e.g. http://host:port")
    stats_parser.add_argument("--timeout", type=float, default=5.0)
    stats_parser.add_argument(
        "--json", action="store_true", help="print the raw /metrics JSON"
    )
    stats_parser.add_argument(
        "--prom", action="store_true",
        help="print the Prometheus text exposition (/metrics?format=prom)",
    )
    stats_parser.set_defaults(fn=_cmd_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away (e.g. piped to head); suppress the shutdown flush
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
