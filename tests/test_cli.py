"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_networks_command(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        assert "resnet" in out
        assert "GMACs" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "cmaes", "bert"])


class TestRunCommand:
    def test_run_random_smoke(self, capsys):
        code = main(
            ["run", "random", "fsrcnn_120x320", "--preset", "smoke", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out
        assert "simulated hours" in out


class TestTableCommand:
    def test_table_with_json_output(self, tmp_path, capsys):
        out_path = tmp_path / "table.json"
        code = main(
            [
                "table",
                "edge",
                "--networks",
                "fsrcnn_120x320",
                "--preset",
                "smoke",
                "--json",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert "fsrcnn_120x320" in payload["children"]


class TestStatsCommand:
    @pytest.fixture()
    def live_service(self, tiny_network):
        from repro.costmodel import MaestroEngine
        from repro.costmodel.service import PPAServiceServer
        from repro.mapping import GemmMapping
        from repro.hw import edge_design_space

        engine = MaestroEngine(tiny_network, cache_capacity=64)
        hw = edge_design_space().sample(0)
        mapping = GemmMapping(4, 8, 4)
        engine.evaluate_layer(hw, mapping, "gemm")
        engine.evaluate_layer(hw, mapping, "gemm")  # one cache hit
        with PPAServiceServer(engine) as server:
            yield server

    def test_stats_formatted(self, live_service, capsys):
        assert main(["stats", live_service.url]) == 0
        out = capsys.readouterr().out
        assert "MaestroEngine" in out
        assert "queries          2" in out
        assert "cache hit rate   50.0%" in out
        assert "/ 64" in out

    def test_stats_json(self, live_service, capsys):
        assert main(["stats", live_service.url, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"]["num_queries"] == 2
        assert payload["engine"]["cache_capacity"] == 64
        assert "counters" in payload["metrics"]
        assert payload["schema_version"] == 1

    def test_stats_prom(self, live_service, capsys):
        from repro.obs.prom import parse_prometheus_text

        # prime the per-path request counters with one ordinary scrape
        assert main(["stats", live_service.url]) == 0
        capsys.readouterr()
        assert main(["stats", live_service.url, "--prom"]) == 0
        out = capsys.readouterr().out
        families = parse_prometheus_text(out)  # must be scrapeable text
        assert any(f.startswith("service_requests") for f in families)

    def test_serve_parser_accepts_cache_capacity(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "resnet50", "--cache-capacity", "0"]
        )
        assert args.cache_capacity == 0
        assert args.trace is False

    def test_serve_parser_accepts_trace(self):
        args = build_parser().parse_args(["serve", "resnet50", "--trace"])
        assert args.trace is True


class TestFigCommand:
    def test_fig10_json(self, tmp_path):
        out_path = tmp_path / "fig10.json"
        code = main(
            ["fig", "10", "--preset", "smoke", "--seed", "2", "--json", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["name"] == "fig10"
