"""Tracing-overhead gate: repro.obs must stay out of the search's way.

Two acceptance bars on a fixed small co-search:

* **disabled** (the default ``NULL_TRACER``): the instrumentation's cost
  is a handful of ``tracer.enabled`` attribute checks per engine query —
  measured against a twin engine whose ``evaluate_layer`` carries the
  identical body minus those checks, the overhead must stay <= 2%;
* **enabled** (a real :class:`Tracer` with an in-memory sink): a fully
  traced co-search must stay within 10% of the untraced wall time.

Both comparisons interleave the two variants and gate on the **ratio of
per-arm minimum times**: timing noise (GC, scheduler pauses, frequency
drift) only ever inflates a measurement, so the minimum over repetitions
is the cleanest estimate of each arm's true cost and the ratio of
minimums is robust on shared/noisy runners where a single pairing is
not.  GC is paused around the timed regions for the same reason.

Because the noise model is one-sided, every interleaved estimate is an
*upper bound* on the true overhead — so both gates take the minimum over
independent estimates and pass if any of them clears the budget, which
keeps a sustained interference burst from failing the gate while a real
regression (which inflates every estimate) still trips it:

* the disabled effect is sub-1%, which is *below* the bias code-layout
  luck (heap placement of the two code objects, ASLR) induces within a
  single interpreter — the same comparison can read anywhere in roughly
  ±2% for a whole process lifetime.  Its measurement therefore runs in
  three fresh interpreters (re-rolling the layout each time); within
  each, arms alternate at per-sweep granularity (~1 ms) so both minima
  come from the same machine regime.
* the enabled gate interleaves whole co-searches and re-measures up to
  three times, stopping early once an estimate is comfortably in budget.

Results land in ``BENCH_obs.json``.
"""

import gc
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import Unico, UnicoConfig
from repro.costmodel import MaestroEngine
from repro.hw import SpatialHWConfig, edge_design_space, power_cap_for
from repro.mapping import GemmMapping
from repro.obs.trace import InMemorySink, Tracer
from repro.workloads import get_network

NETWORK = "mobilenet"
HW = SpatialHWConfig(
    pe_x=12, pe_y=12, l1_bytes=6144, l2_kb=512, noc_bw=128, dataflow="ws"
)


class _UninstrumentedEngine(MaestroEngine):
    """``MaestroEngine`` with ``evaluate_layer`` exactly as it was before
    tracing existed — the disabled gate's baseline arm."""

    def evaluate_layer(self, hw, mapping, layer_name):
        """Pre-instrumentation body: charge, cache, compute."""
        shape = self._charge_query(layer_name)
        key = (self.hw_key(hw), layer_name, mapping.key())
        cached = self._cache_lookup(key)
        if cached is not None:
            return cached
        result = self._timed_compute(hw, mapping, layer_name, shape)
        self._cache_store(key, result)
        return result


def measure_disabled_overhead(reps: int = 1000) -> float:
    """One interpreter's estimate of the disabled-tracing overhead.

    Distinct mappings under a capacity-1 cache keep every call a miss,
    so both arms do the full analytical-model work per query; arm order
    flips each rep so both minima see the same machine regime.
    """
    network = get_network(NETWORK)
    instrumented = MaestroEngine(network, cache_capacity=1)
    baseline = _UninstrumentedEngine(network, cache_capacity=1)
    layer = instrumented.network.layers[0].name
    mappings = [GemmMapping(4 * i, 8, 8) for i in range(1, 9)]
    for engine in (instrumented, baseline):  # warmup
        for mapping in mappings:
            engine.evaluate_layer(HW, mapping, layer)

    def _sweep(fn):
        t0 = time.perf_counter()
        for mapping in mappings:
            fn(HW, mapping, layer)
        return time.perf_counter() - t0

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        instrumented_min = baseline_min = float("inf")
        gc.collect()
        for rep in range(reps):
            arms = [
                (instrumented.evaluate_layer, True),
                (baseline.evaluate_layer, False),
            ]
            if rep % 2:
                arms.reverse()
            for fn, is_instrumented in arms:
                elapsed = _sweep(fn)
                if is_instrumented:
                    instrumented_min = min(instrumented_min, elapsed)
                else:
                    baseline_min = min(baseline_min, elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    return instrumented_min / baseline_min - 1.0


def _disabled_overhead_best_of_processes(count: int = 3) -> float:
    """Minimum disabled-overhead estimate over ``count`` fresh interpreters.

    Each interpreter re-rolls code-layout luck; noise and layout bias can
    only inflate an interleaved estimate, so the minimum is the tightest
    upper bound on the true cost.
    """
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(repo_root / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    estimates = []
    for _ in range(count):
        proc = subprocess.run(
            [sys.executable, __file__, "--disabled-gate"],
            capture_output=True,
            text=True,
            check=True,
            cwd=str(repo_root),
            env=env,
        )
        estimates.append(float(proc.stdout.strip().splitlines()[-1]))
    return min(estimates)


def _fresh_unico(network, traced: bool):
    """The fixed small co-search cell, optionally traced."""
    engine = MaestroEngine(network)
    unico = Unico(
        edge_design_space(),
        network,
        engine,
        UnicoConfig(batch_size=4, max_iterations=3, max_budget=48),
        power_cap_w=power_cap_for("edge"),
        seed=0,
    )
    if traced:
        unico.set_tracer(Tracer(clock=unico.clock, sinks=[InMemorySink()]))
    return unico


def _measure_enabled_phase(network, rounds: int = 9):
    """One interleaved phase of traced-vs-untraced co-searches.

    Returns ``(overhead, untraced_min_s, traced_min_s)``; arm order flips
    each round so a drifting machine regime hits both arms alike.
    """
    untraced_times, traced_times = [], []
    for round_index in range(rounds):
        arms = [(untraced_times, False), (traced_times, True)]
        if round_index % 2:
            arms.reverse()
        for bucket, traced in arms:
            unico = _fresh_unico(network, traced=traced)
            gc.collect()
            t0 = time.perf_counter()
            unico.optimize()
            bucket.append(time.perf_counter() - t0)
    untraced_min, traced_min = min(untraced_times), min(traced_times)
    return traced_min / untraced_min - 1.0, untraced_min, traced_min


@pytest.mark.benchmark(group="obs")
def test_bench_obs_overhead(benchmark, results_dir):
    network = get_network(NETWORK)

    # -------- disabled gate (best of 3 fresh interpreters)
    disabled_overhead = _disabled_overhead_best_of_processes()

    # -------- enabled gate: fully traced co-search vs untraced; up to 3
    # phases, keeping the best (each estimate upper-bounds the true cost)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        _fresh_unico(network, traced=False).optimize()  # warmup
        phases = []
        for _ in range(3):
            phases.append(_measure_enabled_phase(network))
            if phases[-1][0] <= 0.08:
                break
        enabled_overhead, untraced_min, traced_min = min(phases)
    finally:
        if gc_was_enabled:
            gc.enable()

    # the benchmark fixture reports one traced co-search for the suite table
    benchmark.pedantic(
        lambda: _fresh_unico(network, traced=True).optimize(),
        rounds=1, iterations=1,
    )

    record_path = results_dir / "BENCH_obs.json"
    record = (
        json.loads(record_path.read_text()) if record_path.exists() else {}
    )
    record["tracing_overhead"] = {
        "network": NETWORK,
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_overhead,
        "untraced_cosearch_s": untraced_min,
        "traced_cosearch_s": traced_min,
    }
    record_path.write_text(json.dumps(record, indent=2, sort_keys=True))

    assert disabled_overhead <= 0.02, (
        f"disabled tracing costs {disabled_overhead:.1%} on the engine "
        "hot path (budget: 2%)"
    )
    assert enabled_overhead <= 0.10, (
        f"enabled tracing costs {enabled_overhead:.1%} on a traced "
        "co-search (budget: 10%)"
    )


if __name__ == "__main__":
    if "--disabled-gate" in sys.argv:
        print(measure_disabled_overhead())
