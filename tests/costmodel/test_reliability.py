"""Failure-injection tests: flaky engines and the retry wrapper."""

import numpy as np
import pytest

from repro.costmodel import MaestroEngine
from repro.costmodel.reliability import FlakyEngine, RetryingEngine
from repro.errors import EvaluationError
from repro.mapping import FlexTensorSearch, GemmMapping

MAPPING = GemmMapping(4, 8, 4)


@pytest.fixture()
def flaky(tiny_network):
    inner = MaestroEngine(tiny_network)
    return FlakyEngine(inner, failure_rate=0.4, seed=0)


class TestFlakyEngine:
    def test_injects_failures(self, flaky, sample_hw, tiny_network):
        failures = 0
        space_samples = 0
        from repro.mapping import GemmMappingSpace

        space = GemmMappingSpace(tiny_network.layers[0].to_gemm())
        rng = np.random.default_rng(0)
        for _ in range(40):
            try:
                flaky.evaluate_layer(
                    sample_hw, space.sample(rng), tiny_network.layers[0].name
                )
            except EvaluationError:
                failures += 1
            space_samples += 1
        assert failures > 0
        assert flaky.num_injected_failures == failures

    def test_invalid_rate(self, tiny_network):
        with pytest.raises(EvaluationError):
            FlakyEngine(MaestroEngine(tiny_network), failure_rate=1.0)


class TestRetryingEngine:
    def test_recovers_from_transient_failures(self, tiny_network, sample_hw):
        inner = MaestroEngine(tiny_network)
        flaky = FlakyEngine(inner, failure_rate=0.4, seed=1)
        robust = RetryingEngine(flaky, max_attempts=6)
        result = robust.evaluate_layer(sample_hw, MAPPING, "gemm")
        assert result.feasible

    def test_counts_retries(self, tiny_network, sample_hw):
        inner = MaestroEngine(tiny_network)
        flaky = FlakyEngine(inner, failure_rate=0.5, seed=2)
        robust = RetryingEngine(flaky, max_attempts=8)
        from repro.mapping import GemmMappingSpace

        space = GemmMappingSpace(tiny_network.layers[0].to_gemm())
        rng = np.random.default_rng(0)
        for _ in range(30):
            robust.evaluate_layer(
                sample_hw, space.sample(rng), tiny_network.layers[0].name
            )
        assert robust.num_retries > 0

    def test_gives_up_eventually(self, tiny_network, sample_hw):
        class AlwaysDown(MaestroEngine):
            def _compute_layer_by_name(self, hw, mapping, layer_name, shape):
                raise EvaluationError("service unreachable")

        down = AlwaysDown(tiny_network)
        robust = RetryingEngine(down, max_attempts=3)
        with pytest.raises(EvaluationError, match="after 3 attempts"):
            robust.evaluate_layer(sample_hw, MAPPING, "gemm")

    def test_retries_charge_the_clock(self, tiny_network, sample_hw):
        inner = MaestroEngine(tiny_network)
        flaky = FlakyEngine(inner, failure_rate=0.5, seed=3)
        robust = RetryingEngine(flaky, max_attempts=8)
        from repro.mapping import GemmMappingSpace

        space = GemmMappingSpace(tiny_network.layers[0].to_gemm())
        rng = np.random.default_rng(1)
        for _ in range(20):
            robust.evaluate_layer(
                sample_hw, space.sample(rng), tiny_network.layers[0].name
            )
        # clock charged for fresh queries AND failed attempts
        expected_min = 20 * robust.eval_cost_s
        assert robust.clock.now_s > expected_min

    def test_results_match_clean_engine(self, tiny_network, sample_hw):
        clean = MaestroEngine(tiny_network)
        flaky = FlakyEngine(MaestroEngine(tiny_network), failure_rate=0.4, seed=4)
        robust = RetryingEngine(flaky, max_attempts=10)
        a = clean.evaluate_layer(sample_hw, MAPPING, "gemm")
        b = robust.evaluate_layer(sample_hw, MAPPING, "gemm")
        assert a.latency_s == b.latency_s

    def test_full_search_survives_flakiness(self, tiny_network, sample_hw):
        """An entire mapping search completes over a 30%-flaky service."""
        flaky = FlakyEngine(MaestroEngine(tiny_network), failure_rate=0.3, seed=5)
        robust = RetryingEngine(flaky, max_attempts=10)
        search = FlexTensorSearch(tiny_network, sample_hw, robust, seed=0)
        search.run(60)
        assert np.isfinite(search.best_objective)

    def test_invalid_attempts(self, tiny_network):
        with pytest.raises(EvaluationError):
            RetryingEngine(MaestroEngine(tiny_network), max_attempts=0)


class TestRetryingOverRemote:
    """RetryingEngine composed over RemotePPAEngine over a flaky service.

    The full Fig. 6(b) failure path: the server-side engine injects
    transient failures, the service surfaces them as HTTP 400s, the remote
    client maps those to EvaluationError, and the retry wrapper recovers.
    """

    @pytest.fixture()
    def stack(self, tiny_network):
        from repro.costmodel.maestro import spatial_area_mm2
        from repro.costmodel.service import PPAServiceServer, RemotePPAEngine

        backend = FlakyEngine(
            MaestroEngine(tiny_network), failure_rate=0.3, seed=7
        )
        with PPAServiceServer(backend) as server:
            remote = RemotePPAEngine(
                tiny_network, server.url, area_fn=spatial_area_mm2
            )
            robust = RetryingEngine(remote, max_attempts=10)
            yield backend, remote, robust

    def test_recovers_and_matches_clean_engine(self, stack, tiny_network, sample_hw):
        _backend, _remote, robust = stack
        clean = MaestroEngine(tiny_network)
        result = robust.evaluate_layer(sample_hw, MAPPING, "gemm")
        expected = clean.evaluate_layer(sample_hw, MAPPING, "gemm")
        assert result.feasible
        assert result.latency_s == expected.latency_s
        assert result.energy_j == expected.energy_j

    def test_clock_charged_once_per_query_plus_failed_attempts(
        self, stack, sample_hw, tiny_network
    ):
        _backend, _remote, robust = stack
        from repro.mapping import GemmMappingSpace

        space = GemmMappingSpace(tiny_network.layers[1].to_gemm())
        rng = np.random.default_rng(3)
        queries = 25
        for _ in range(queries):
            robust.evaluate_layer(sample_hw, space.sample(rng), "gemm")
        assert robust.num_retries > 0  # flakiness actually exercised
        expected = (queries + robust.num_retries) * robust.eval_cost_s
        assert robust.clock.now_s == pytest.approx(expected)

    def test_cached_repeat_needs_no_retry_or_request(self, stack, sample_hw):
        backend, remote, robust = stack
        robust.evaluate_layer(sample_hw, MAPPING, "gemm")
        retries_before = robust.num_retries
        backend_queries = backend.num_queries
        robust.evaluate_layer(sample_hw, MAPPING, "gemm")
        assert robust.num_cache_hits == 1
        assert robust.num_retries == retries_before
        assert backend.num_queries == backend_queries  # never left the process

    def test_stats_compose_across_the_stack(self, stack, sample_hw):
        _backend, remote, robust = stack
        robust.evaluate_layer(sample_hw, MAPPING, "gemm")
        stats = robust.stats()
        assert stats["engine"] == "RetryingEngine"
        assert stats["num_queries"] == 1
        assert "num_retries" in stats
        assert stats["inner"]["engine"] == "RemotePPAEngine"
        assert stats["inner"]["base_url"] == remote.base_url
