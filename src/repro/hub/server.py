"""The hub's HTTP control plane: run lifecycle, live SSE, fleet metrics.

One :class:`HubServer` fronts a :class:`~repro.tracking.RunStore` (via a
:class:`~repro.hub.scheduler.RunScheduler`) and, optionally, a replica
fleet (via a :class:`~repro.hub.aggregate.FleetAggregator`):

========================  ====================================================
``GET  /health``          liveness + run/queue counts
``GET  /runs``            run list (condensed manifests) + scheduler state
``POST /runs``            submit a run spec (or ``{"resume": "<run-id>"}``)
``GET  /runs/<id>``       full manifest
``POST /runs/<id>/cancel``cancel queued/running run
``GET  /runs/<id>/events``live journal stream (Server-Sent Events)
``GET  /metrics``         the hub's own registry (``?format=prom`` for text)
``GET  /fleet/metrics``   aggregated fleet exposition (Prometheus text)
``GET  /fleet/status``    structured fleet health (JSON, for ``--watch``)
``GET  /alerts``          active/ historical SLO alerts + rules (telemetry)
``GET  /alerts/events``   live alert-transition stream (Server-Sent Events)
``GET  /obs/targets``     telemetry store targets
``GET  /obs/query``       windowed query over one series (rate/quantile/...)
``GET  /obs/export``      raw samples of one target past a byte cursor
========================  ====================================================

The ``/alerts*`` and ``/obs/*`` rows exist only when the hub was started
with ``telemetry=True`` — a :class:`~repro.hub.telemetry.TelemetryPipeline`
scraping the fleet on an interval into a
:class:`~repro.obs.timeseries.MetricsStore` under the run store
(``<runs>/obs/`` by default) and evaluating SLO rules each tick.

The SSE endpoint implements exact-resume: every event's ``id:`` is the
byte offset just past its journal line, a reconnecting client sends
``Last-Event-ID: <offset>`` (or ``?after=<offset>``), and the server
seeks straight to that cursor — the stream across any number of
disconnects is byte-identical to a single post-hoc
:func:`~repro.tracking.journal.read_events` scan.  Streams end with an
``event: end_of_stream`` frame once the run's manifest reaches a
terminal status and the journal is fully drained (or when the server
itself starts draining), so clients can tell completion from a dropped
connection.

Graceful shutdown mirrors :class:`~repro.costmodel.service.PPAServiceServer`:
draining answers new requests with a fast 503 while in-flight ones
finish; open SSE streams notice the drain flag at their next poll and
close themselves so ``stop()`` never deadlocks on a live stream.
"""

from __future__ import annotations

import json
import pathlib
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigurationError, TrackingError
from repro.hub.aggregate import FleetAggregator
from repro.hub.scheduler import TERMINAL_STATUSES, RunScheduler
from repro.hub.sse import (
    format_sse_comment,
    format_sse_event,
    journal_events_since,
)
from repro.hub.telemetry import TelemetryPipeline
from repro.obs.alerts import Rule
from repro.obs.prom import render_prometheus
from repro.tracking.store import RunStore
from repro.utils.metrics import MetricsRegistry

__all__ = ["HubServer"]

#: Version of the hub's JSON responses; bumped on shape changes.
HUB_SCHEMA_VERSION = 1

#: manifest keys surfaced by ``GET /runs`` (the condensed listing)
_LIST_KEYS = (
    "status", "method", "scenario", "workload", "preset", "seed",
    "created_at", "submitted_via", "resumable", "interrupted",
)


class HubServer:
    """Serve the control plane on localhost; use as a context manager."""

    def __init__(
        self,
        store: Union[RunStore, str, pathlib.Path],
        replica_urls: Optional[List[str]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        sse_poll_interval_s: float = 0.05,
        sse_keepalive_s: float = 15.0,
        reconcile_on_start: bool = True,
        telemetry: bool = False,
        scrape_interval_s: float = 2.0,
        obs_dir: Optional[Union[str, pathlib.Path]] = None,
        alert_rules: Optional[List[Rule]] = None,
    ):
        self.store = store if isinstance(store, RunStore) else RunStore(store)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.scheduler = RunScheduler(self.store, metrics=self.metrics)
        self.aggregator = (
            FleetAggregator(replica_urls, metrics=self.metrics)
            if replica_urls
            else None
        )
        self.telemetry: Optional[TelemetryPipeline] = None
        if telemetry:
            self.telemetry = TelemetryPipeline(
                replica_urls=replica_urls,
                store=(
                    pathlib.Path(obs_dir)
                    if obs_dir is not None
                    else self.store.root / "obs"
                ),
                rules=alert_rules,
                interval_s=scrape_interval_s,
                metrics=self.metrics,
                hub_sampler=self._sample_scheduler,
                run_source=self._running_run_journals,
            )
        self.sse_poll_interval_s = sse_poll_interval_s
        self.sse_keepalive_s = sse_keepalive_s
        self.reconcile_on_start = reconcile_on_start
        self._draining = False
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        self._httpd = ThreadingHTTPServer((host, port), self._make_handler())
        self._thread: Optional[threading.Thread] = None

    # -- telemetry taps ----------------------------------------------------------
    def _sample_scheduler(self) -> Dict[str, float]:
        """The hub's own per-tick gauges for the telemetry ``hub`` target."""
        state = self.scheduler.state()
        return {
            "hub_queue_depth": float(len(state["queued"])),
            "hub_running": 1.0 if state["running"] else 0.0,
        }

    def _running_run_journals(self):
        """``(run_id, journal_path)`` of the currently running run, if any."""
        run_id = self.scheduler.state()["running"]
        if not run_id:
            return []
        try:
            return [(run_id, self.store.get(run_id).journal_path)]
        except TrackingError:
            return []

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> "HubServer":
        if self.reconcile_on_start:
            self.scheduler.reconcile()
        self.scheduler.start()
        if self.telemetry is not None:
            self.telemetry.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        with self._inflight_cv:
            self._draining = True

    def drain(self, timeout_s: float = 5.0) -> bool:
        with self._inflight_cv:
            return self._inflight_cv.wait_for(
                lambda: self._inflight == 0, timeout=timeout_s
            )

    def stop(self, drain_timeout_s: float = 5.0) -> None:
        """Drain requests (SSE streams self-close), stop scheduler + listener."""
        self.begin_drain()
        self.drain(timeout_s=drain_timeout_s)
        self.scheduler.stop()
        if self.telemetry is not None:
            self.telemetry.stop()
        if self.aggregator is not None:
            self.aggregator.close()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def install_signal_handlers(
        self,
        drain_timeout_s: float = 5.0,
        on_stopped: Optional[Callable[[], None]] = None,
    ) -> None:
        """SIGTERM/SIGINT → graceful drain + shutdown (must run on main thread)."""

        def _handle(signum, frame):  # noqa: ARG001 - signal handler signature
            self.begin_drain()

            def _shutdown() -> None:
                self.stop(drain_timeout_s=drain_timeout_s)
                if on_stopped is not None:
                    on_stopped()

            threading.Thread(target=_shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    def __enter__(self) -> "HubServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- handler ----------------------------------------------------------------
    def _make_handler(self):
        server = self
        metrics = self.metrics

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            # headers and body flush as separate small writes; with Nagle
            # on, the second write waits ~40ms for the client's delayed
            # ACK of the first on every keep-alive exchange
            disable_nagle_algorithm = True

            def log_message(self, fmt, *args):  # silence request logging
                pass

            def _begin_request(self) -> bool:
                with server._inflight_cv:
                    if server._draining:
                        return False
                    server._inflight += 1
                    return True

            def _end_request(self) -> None:
                with server._inflight_cv:
                    server._inflight -= 1
                    server._inflight_cv.notify_all()

            def _reject_draining(self) -> None:
                length = int(self.headers.get("Content-Length", 0))
                if length:
                    self.rfile.read(length)
                self._reply(503, {"error": "hub draining"})

            def _count(self, path: str, status: int) -> None:
                metrics.counter(f"hub_requests_total[{path}]").inc()
                if status >= 400:
                    metrics.counter("hub_errors_total").inc()

            def _reply(self, status: int, payload: Dict) -> None:
                body = json.dumps(payload, sort_keys=True).encode("utf-8")
                # count before the body leaves the socket: once the client
                # has the reply it may immediately scrape /metrics, and the
                # request that produced the reply must already be there
                self._count(urlsplit(self.path).path, status)
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _reply_text(self, status: int, text: str) -> None:
                body = text.encode("utf-8")
                self._count(urlsplit(self.path).path, status)
                self.send_response(status)
                self.send_header("Content-Type", "text/plain; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            # ---------------------------------------------------------- routing
            def do_GET(self):
                if not self._begin_request():
                    self._reject_draining()
                    return
                try:
                    self._route_get()
                finally:
                    self._end_request()

            def do_POST(self):
                if not self._begin_request():
                    self._reject_draining()
                    return
                try:
                    self._route_post()
                finally:
                    self._end_request()

            def _route_get(self):
                parsed = urlsplit(self.path)
                query = parse_qs(parsed.query)
                parts = [p for p in parsed.path.split("/") if p]
                start = time.perf_counter()
                try:
                    if parsed.path == "/health":
                        self._get_health()
                    elif parsed.path == "/metrics":
                        self._get_metrics(query)
                    elif parsed.path == "/runs":
                        self._get_runs()
                    elif parsed.path == "/fleet/metrics":
                        self._get_fleet_metrics()
                    elif parsed.path == "/fleet/status":
                        self._get_fleet_status()
                    elif parsed.path == "/alerts":
                        self._get_alerts()
                    elif parsed.path == "/alerts/events":
                        self._stream_alerts(query)
                        return  # SSE does its own accounting/timing
                    elif parsed.path == "/obs/targets":
                        self._get_obs_targets()
                    elif parsed.path == "/obs/query":
                        self._get_obs_query(query)
                    elif parsed.path == "/obs/export":
                        self._get_obs_export(query)
                    elif len(parts) == 2 and parts[0] == "runs":
                        self._get_run(parts[1])
                    elif (
                        len(parts) == 3
                        and parts[0] == "runs"
                        and parts[2] == "events"
                    ):
                        self._stream_events(parts[1], query)
                        return  # SSE does its own accounting/timing
                    else:
                        self._reply(404, {"error": f"unknown path {self.path}"})
                except TrackingError as error:
                    self._reply(404, {"error": str(error)})
                except Exception as error:  # always answer with JSON
                    self._reply(
                        500,
                        {"error": f"internal error: "
                                  f"{type(error).__name__}: {error}"},
                    )
                finally:
                    metrics.histogram("hub_request_seconds").observe(
                        time.perf_counter() - start
                    )

            def _route_post(self):
                parsed = urlsplit(self.path)
                parts = [p for p in parsed.path.split("/") if p]
                length = int(self.headers.get("Content-Length", 0))
                try:
                    request = (
                        json.loads(self.rfile.read(length)) if length else {}
                    )
                except json.JSONDecodeError:
                    self._reply(400, {"error": "invalid JSON"})
                    return
                try:
                    if parsed.path == "/runs":
                        self._post_run(request)
                    elif (
                        len(parts) == 3
                        and parts[0] == "runs"
                        and parts[2] == "cancel"
                    ):
                        self._post_cancel(parts[1])
                    else:
                        self._reply(404, {"error": f"unknown path {self.path}"})
                except ConfigurationError as error:
                    self._reply(400, {"error": str(error)})
                except TrackingError as error:
                    self._reply(409, {"error": str(error)})
                except Exception as error:
                    self._reply(
                        500,
                        {"error": f"internal error: "
                                  f"{type(error).__name__}: {error}"},
                    )

            # -------------------------------------------------------- endpoints
            def _get_health(self):
                state = server.scheduler.state()
                self._reply(
                    200,
                    {
                        "status": "ok",
                        "schema_version": HUB_SCHEMA_VERSION,
                        "runs": len(server.store.list_runs()),
                        "queued": len(state["queued"]),
                        "running": state["running"],
                        "fleet_replicas": (
                            len(server.aggregator.replica_names)
                            if server.aggregator is not None
                            else 0
                        ),
                    },
                )

            def _get_metrics(self, query):
                wants = query.get("format", ["json"])
                if wants and wants[-1] == "prom":
                    self._reply_text(
                        200, render_prometheus(metrics.snapshot())
                    )
                    return
                self._reply(
                    200,
                    {
                        "schema_version": HUB_SCHEMA_VERSION,
                        "metrics": metrics.snapshot(),
                    },
                )

            def _get_runs(self):
                rows = []
                for run in sorted(
                    server.store.list_runs(), key=lambda r: r.run_id
                ):
                    try:
                        manifest = run.read_manifest()
                    except TrackingError:
                        manifest = {"status": "corrupt-manifest"}
                    row = {"run_id": run.run_id}
                    for key in _LIST_KEYS:
                        if key in manifest:
                            row[key] = manifest[key]
                    rows.append(row)
                self._reply(
                    200,
                    {"runs": rows, "scheduler": server.scheduler.state()},
                )

            def _get_run(self, run_id: str):
                run = server.store.get(run_id)
                self._reply(200, run.read_manifest())

            def _post_run(self, request: Dict):
                if "resume" in request:
                    run_id = server.scheduler.submit_resume(
                        str(request["resume"])
                    )
                else:
                    run_id = server.scheduler.submit(request)
                self._reply(200, {"run_id": run_id, "status": "queued"})

            def _post_cancel(self, run_id: str):
                status = server.scheduler.cancel(run_id)
                self._reply(200, {"run_id": run_id, "status": status})

            def _get_fleet_metrics(self):
                if server.aggregator is None:
                    self._reply(404, {"error": "hub has no fleet configured"})
                    return
                scrapes = server.aggregator.scrape()
                self._reply_text(200, server.aggregator.merge(scrapes))

            def _get_fleet_status(self):
                if server.aggregator is None:
                    self._reply(404, {"error": "hub has no fleet configured"})
                    return
                status = server.aggregator.status()
                status["schema_version"] = HUB_SCHEMA_VERSION
                self._reply(200, status)

            # -------------------------------------------------------- telemetry
            def _telemetry_or_404(self):
                if server.telemetry is None:
                    self._reply(
                        404,
                        {"error": "hub has no telemetry pipeline "
                                  "(start with telemetry enabled)"},
                    )
                    return None
                return server.telemetry

            def _get_alerts(self):
                pipeline = self._telemetry_or_404()
                if pipeline is None:
                    return
                payload = pipeline.status()
                payload["schema_version"] = HUB_SCHEMA_VERSION
                self._reply(200, payload)

            def _get_obs_targets(self):
                pipeline = self._telemetry_or_404()
                if pipeline is None:
                    return
                self._reply(
                    200,
                    {
                        "schema_version": HUB_SCHEMA_VERSION,
                        "targets": pipeline.store.targets(),
                    },
                )

            def _get_obs_query(self, query: Dict):
                pipeline = self._telemetry_or_404()
                if pipeline is None:
                    return
                target = query.get("target", [None])[-1]
                series = query.get("series", [None])[-1]
                if not target or not series:
                    self._reply(
                        400, {"error": "query needs target= and series="}
                    )
                    return
                fn = query.get("fn", ["last"])[-1]
                try:
                    window_s = float(query.get("window_s", ["60"])[-1])
                    q_raw = query.get("q", [None])[-1]
                    q = float(q_raw) if q_raw is not None else None
                except ValueError:
                    self._reply(400, {"error": "bad window_s= or q="})
                    return
                try:
                    value = pipeline.store.query(
                        target, series, fn=fn, window_s=window_s, q=q
                    )
                except TrackingError as error:
                    # a bad fn / window is the caller's mistake, not a
                    # missing resource — don't let the outer 404 eat it
                    self._reply(400, {"error": str(error)})
                    return
                self._reply(
                    200,
                    {
                        "schema_version": HUB_SCHEMA_VERSION,
                        "target": target,
                        "series": series,
                        "fn": fn,
                        "window_s": window_s,
                        "value": value,
                    },
                )

            def _get_obs_export(self, query: Dict):
                pipeline = self._telemetry_or_404()
                if pipeline is None:
                    return
                target = query.get("target", [None])[-1]
                if not target:
                    self._reply(400, {"error": "export needs target="})
                    return
                try:
                    after = int(query.get("after", ["0"])[-1])
                except ValueError:
                    self._reply(400, {"error": "bad after= cursor"})
                    return
                samples, scan = pipeline.store.read_from(target, after)
                self._reply(
                    200,
                    {
                        "schema_version": HUB_SCHEMA_VERSION,
                        "target": target,
                        "samples": [
                            {"t": t, "s": series} for t, series in samples
                        ],
                        "cursor": scan.valid_bytes,
                        "truncated_tail": scan.truncated_tail,
                    },
                )

            def _stream_alerts(self, query: Dict):
                pipeline = self._telemetry_or_404()
                if pipeline is None:
                    return
                journal = pipeline.alerts_journal_path
                if journal is None:
                    self._reply(
                        404,
                        {"error": "telemetry store is memory-only; "
                                  "no alert journal to stream"},
                    )
                    return
                cursor = 0
                last_id = self.headers.get("Last-Event-ID")
                after = query.get("after", [None])[-1]
                for raw in (last_id, after):
                    if raw is not None:
                        try:
                            cursor = max(cursor, int(raw))
                        except ValueError:
                            self._reply(
                                400, {"error": f"bad cursor {raw!r}"}
                            )
                            return
                metrics.counter("hub_sse_streams_total").inc()
                self.send_response(200)
                self.send_header("Content-Type", "text/event-stream")
                self.send_header("Cache-Control", "no-cache")
                self.send_header("Connection", "close")
                self.end_headers()
                self.close_connection = True
                self._count("/alerts/events", 200)
                try:
                    self._pump_alerts(journal, cursor)
                except (BrokenPipeError, ConnectionResetError, OSError):
                    pass  # client went away; the cursor makes resume exact

            def _pump_alerts(
                self, journal: pathlib.Path, cursor: int
            ) -> None:
                """Stream alert transitions until the hub drains.

                Unlike a run stream there is no terminal status — the
                alert journal outlives every run — so only the drain
                flag ends the stream (with a comment frame, so clients
                can tell shutdown from a dropped connection).
                """
                last_activity = time.monotonic()
                while True:
                    progressed = False
                    if journal.exists():
                        frames, scan = journal_events_since(journal, cursor)
                        for line, end, event in frames:
                            self.wfile.write(
                                format_sse_event(
                                    line.decode("utf-8"),
                                    event_id=end,
                                    event=str(event.get("type", "alert")),
                                )
                            )
                            metrics.counter("hub_sse_events_total").inc()
                        if frames:
                            self.wfile.flush()
                            progressed = True
                            last_activity = time.monotonic()
                        cursor = scan.valid_bytes
                    if server._draining:
                        self.wfile.write(format_sse_comment("hub draining"))
                        self.wfile.flush()
                        return
                    if not progressed:
                        if (
                            time.monotonic() - last_activity
                            >= server.sse_keepalive_s
                        ):
                            self.wfile.write(format_sse_comment())
                            self.wfile.flush()
                            last_activity = time.monotonic()
                        time.sleep(server.sse_poll_interval_s)

            # -------------------------------------------------------------- SSE
            def _stream_events(self, run_id: str, query: Dict):
                run = server.store.get(run_id)  # TrackingError → 404 above
                cursor = 0
                resumed = False
                last_id = self.headers.get("Last-Event-ID")
                after = query.get("after", [None])[-1]
                for raw in (last_id, after):
                    if raw is not None:
                        try:
                            cursor = max(cursor, int(raw))
                            resumed = True
                        except ValueError:
                            self._reply(
                                400, {"error": f"bad cursor {raw!r}"}
                            )
                            return
                metrics.counter("hub_sse_streams_total").inc()
                if resumed:
                    metrics.counter("hub_sse_resumes_total").inc()
                self.send_response(200)
                self.send_header("Content-Type", "text/event-stream")
                self.send_header("Cache-Control", "no-cache")
                # the stream's length is unknowable: end-of-body is
                # connection close, so keep-alive must be off
                self.send_header("Connection", "close")
                self.end_headers()
                self.close_connection = True
                self._count(f"/runs/{run_id}/events", 200)
                try:
                    self._pump_events(run, cursor)
                except (BrokenPipeError, ConnectionResetError, OSError):
                    pass  # client went away; the cursor makes resume exact

            def _pump_events(self, run, cursor: int) -> None:
                journal = run.journal_path
                last_activity = time.monotonic()
                terminal_seen = False
                while True:
                    progressed = False
                    if journal.exists():
                        frames, scan = journal_events_since(journal, cursor)
                        for line, end, event in frames:
                            self.wfile.write(
                                format_sse_event(
                                    line.decode("utf-8"),
                                    event_id=end,
                                    event=str(event.get("type", "event")),
                                )
                            )
                            metrics.counter("hub_sse_events_total").inc()
                        if frames:
                            self.wfile.flush()
                            progressed = True
                            last_activity = time.monotonic()
                        cursor = scan.valid_bytes
                    if terminal_seen and not progressed:
                        # terminal status was observed on a *previous*
                        # poll, and this poll drained nothing new — every
                        # event written before the status flip is out
                        self.wfile.write(
                            format_sse_event(
                                json.dumps(
                                    {"status": self._run_status(run)},
                                    sort_keys=True,
                                ),
                                event="end_of_stream",
                            )
                        )
                        self.wfile.flush()
                        return
                    if server._draining:
                        self.wfile.write(format_sse_comment("hub draining"))
                        self.wfile.flush()
                        return
                    terminal_seen = self._run_status(run) in TERMINAL_STATUSES
                    if not progressed:
                        if (
                            time.monotonic() - last_activity
                            >= server.sse_keepalive_s
                        ):
                            self.wfile.write(format_sse_comment())
                            self.wfile.flush()
                            last_activity = time.monotonic()
                        time.sleep(server.sse_poll_interval_s)

            @staticmethod
            def _run_status(run) -> Optional[str]:
                try:
                    return run.read_manifest().get("status")
                except TrackingError:
                    return None

        return Handler
