"""Fixed-width featurization of (hardware, mapping, layer shape) triples.

Every feature lives in log2 space (sizes, tiles, buffer fills) or is a
0/1 categorical indicator, so one standardization pass puts all of them
on comparable scales.  The layout is frozen behind
:data:`FEATURE_VERSION`: a trained model records the version it was fit
against and refuses to score features from a different layout.

Two views of the same vector are provided:

* :func:`featurize` / :func:`featurize_batch` — exact features of a
  discrete :class:`~repro.mapping.gemm_mapping.GemmMapping` (batch path
  vectorized over the precomputed ``GemmMapping._row`` SoA tuples, the
  same encoder the batch cost-model kernels consume).
* :func:`relaxed_features` — the differentiable relaxation used by the
  one-loop search: tile sizes become continuous ``(lm, ln, lk)`` log2
  coordinates and the function returns the Jacobian of the feature
  vector with respect to them, so a model gradient in feature space
  chains back to a gradient over tile sizes.

Buffer-fill features use the same double-buffered footprint expressions
as :meth:`GemmMappingSpace.seeded_mapping_for` and the MAESTRO kernels,
minus the integer ceils (which do not differentiate); they are features,
not feasibility checks, so the smooth approximation is fine.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

#: Bump whenever the feature layout below changes; models refuse to
#: score vectors from a different version.
FEATURE_VERSION = 1

#: bytes per fp16 operand / fp32 accumulator, matching the cost model
_OPERAND_BYTES = 2.0
_ACC_BYTES = 4.0

_HW_NAMES = (
    "log2_pe_x",
    "log2_pe_y",
    "log2_l1_bytes",
    "log2_l2_bytes",
    "log2_noc_bw",
    "dataflow_ws",
    "log2_l1_banks",
    "log2_l2_banks",
)
_SHAPE_NAMES = ("log2_m", "log2_n", "log2_k", "reuse_penalty")
_CAT_NAMES = ("spatial_mn", "log2_unroll", "inner_m", "inner_n", "inner_k")
_TILE_NAMES = (
    "log2_tile_m",
    "log2_tile_n",
    "log2_tile_k",
    "tile_m_frac",
    "tile_n_frac",
    "tile_k_frac",
    "tile_m_per_pe_x",
    "tile_n_per_pe_y",
    "l1_fill_log2",
    "l2_fill_log2",
    "log2_num_tiles",
    "log2_macs_per_tile",
)

_NAMES: Tuple[str, ...] = _HW_NAMES + _SHAPE_NAMES + _CAT_NAMES + _TILE_NAMES
_TILE_OFFSET = len(_HW_NAMES) + len(_SHAPE_NAMES) + len(_CAT_NAMES)


def feature_names() -> Tuple[str, ...]:
    """Ordered names of the feature columns (length :func:`feature_dim`)."""
    return _NAMES


def feature_dim() -> int:
    """Width of every feature vector under :data:`FEATURE_VERSION`."""
    return len(_NAMES)


def _hw_fields(hw) -> Tuple[float, ...]:
    """Hardware half of the prefix; raises AttributeError for foreign hw."""
    l2_bytes = float(hw.l2_kb) * 1024.0
    return (
        math.log2(float(hw.pe_x)),
        math.log2(float(hw.pe_y)),
        math.log2(float(hw.l1_bytes)),
        math.log2(l2_bytes),
        math.log2(float(hw.noc_bw)),
        1.0 if getattr(hw, "dataflow", "ws") == "ws" else 0.0,
        math.log2(float(getattr(hw, "l1_banks", 1))),
        math.log2(float(getattr(hw, "l2_banks", 1))),
    )


def _shape_fields(shape) -> Tuple[float, ...]:
    return (
        math.log2(float(shape.m)),
        math.log2(float(shape.n)),
        math.log2(float(shape.k)),
        float(shape.reuse_penalty),
    )


def hw_shape_prefix(hw, shape) -> np.ndarray:
    """The mapping-independent feature prefix, shared across a batch."""
    return np.asarray(_hw_fields(hw) + _shape_fields(shape), dtype=np.float64)


def _tile_block(
    log_tiles: np.ndarray,
    hw,
    shape,
) -> Tuple[np.ndarray, np.ndarray]:
    """Tile-dependent feature block plus its Jacobian w.r.t. ``log_tiles``.

    ``log_tiles`` is shape (B, 3) of log2 tile sizes; returns
    ``(block (B, 12), jac (B, 12, 3))``.  All expressions are smooth in
    the log coordinates, which is what makes the one-loop relaxation
    differentiable.
    """
    log_tiles = np.asarray(log_tiles, dtype=np.float64)
    batch = log_tiles.shape[0]
    lm, ln, lk = log_tiles[:, 0], log_tiles[:, 1], log_tiles[:, 2]
    log2_m, log2_n, log2_k = (
        math.log2(float(shape.m)),
        math.log2(float(shape.n)),
        math.log2(float(shape.k)),
    )
    log2_px, log2_py = math.log2(float(hw.pe_x)), math.log2(float(hw.pe_y))
    tm, tn, tk = 2.0 ** lm, 2.0 ** ln, 2.0 ** lk
    sub_m, sub_n = tm / float(hw.pe_x), tn / float(hw.pe_y)
    # double-buffered footprints (smooth: no per-PE ceil)
    l1_fp = (
        _OPERAND_BYTES * (sub_m * tk + tk * sub_n) * 2.0
        + _ACC_BYTES * sub_m * sub_n
    )
    l2_fp = _OPERAND_BYTES * (tm + tn) * tk * 2.0 + _ACC_BYTES * tm * tn
    l2_bytes = float(hw.l2_kb) * 1024.0

    block = np.empty((batch, len(_TILE_NAMES)), dtype=np.float64)
    block[:, 0] = lm
    block[:, 1] = ln
    block[:, 2] = lk
    block[:, 3] = lm - log2_m
    block[:, 4] = ln - log2_n
    block[:, 5] = lk - log2_k
    block[:, 6] = lm - log2_px
    block[:, 7] = ln - log2_py
    block[:, 8] = np.log2(l1_fp) - math.log2(float(hw.l1_bytes))
    block[:, 9] = np.log2(l2_fp) - math.log2(l2_bytes)
    block[:, 10] = (log2_m - lm) + (log2_n - ln) + (log2_k - lk)
    block[:, 11] = lm + ln + lk

    jac = np.zeros((batch, len(_TILE_NAMES), 3), dtype=np.float64)
    for row, col in ((0, 0), (1, 1), (2, 2), (3, 0), (4, 1), (5, 2), (6, 0), (7, 1)):
        jac[:, row, col] = 1.0
    two, four = 2.0 * _OPERAND_BYTES, _ACC_BYTES
    jac[:, 8, 0] = sub_m * (two * tk + four * sub_n) / l1_fp
    jac[:, 8, 1] = sub_n * (two * tk + four * sub_m) / l1_fp
    jac[:, 8, 2] = two * tk * (sub_m + sub_n) / l1_fp
    jac[:, 9, 0] = tm * (two * tk + four * tn) / l2_fp
    jac[:, 9, 1] = tn * (two * tk + four * tm) / l2_fp
    jac[:, 9, 2] = two * tk * (tm + tn) / l2_fp
    jac[:, 10, :] = -1.0
    jac[:, 11, :] = 1.0
    return block, jac


def _cat_block(
    spatial_mn: np.ndarray, unroll: np.ndarray, inner_index: np.ndarray
) -> np.ndarray:
    batch = spatial_mn.shape[0]
    block = np.zeros((batch, len(_CAT_NAMES)), dtype=np.float64)
    block[:, 0] = spatial_mn
    block[:, 1] = np.log2(unroll.astype(np.float64))
    block[np.arange(batch), 2 + inner_index.astype(np.intp)] = 1.0
    return block


def featurize_batch(hw, mappings: Sequence, shape) -> np.ndarray:
    """Feature matrix (B, D) for a batch of mappings of one layer."""
    if not mappings:
        return np.empty((0, feature_dim()), dtype=np.float64)
    rows = np.asarray([m._row for m in mappings], dtype=np.float64)
    prefix = hw_shape_prefix(hw, shape)
    cat = _cat_block(rows[:, 4], rows[:, 3], rows[:, 5])
    tiles, _ = _tile_block(np.log2(rows[:, 0:3]), hw, shape)
    out = np.empty((len(mappings), feature_dim()), dtype=np.float64)
    out[:, : prefix.size] = prefix
    out[:, prefix.size : _TILE_OFFSET] = cat
    out[:, _TILE_OFFSET :] = tiles
    return out


def featurize(hw, mapping, shape) -> np.ndarray:
    """Feature vector (D,) for one mapping; matches the batch path exactly."""
    return featurize_batch(hw, [mapping], shape)[0]


def relaxed_features(
    hw,
    shape,
    log_tiles: Sequence[float],
    spatial_mn: int,
    unroll: int,
    inner_index: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Features of a relaxed (continuous-tile) mapping, with the Jacobian.

    Returns ``(x, jac)`` where ``x`` has shape (D,) and ``jac`` has shape
    (D, 3): ``jac[i, j] = d x[i] / d log_tiles[j]``.  At integer log2
    tile sizes ``x`` equals :func:`featurize` of the corresponding
    discrete mapping bit for bit.
    """
    prefix = hw_shape_prefix(hw, shape)
    cat = _cat_block(
        np.asarray([float(spatial_mn)]),
        np.asarray([float(unroll)]),
        np.asarray([inner_index]),
    )
    tiles, tile_jac = _tile_block(
        np.asarray(log_tiles, dtype=np.float64).reshape(1, 3), hw, shape
    )
    x = np.concatenate([prefix, cat[0], tiles[0]])
    jac = np.zeros((feature_dim(), 3), dtype=np.float64)
    jac[_TILE_OFFSET :, :] = tile_jac[0]
    return x, jac


__all__ = [
    "FEATURE_VERSION",
    "feature_dim",
    "feature_names",
    "featurize",
    "featurize_batch",
    "hw_shape_prefix",
    "relaxed_features",
]
