"""Command-line interface: ``python -m repro <command>``.

Commands
--------
* ``networks`` — list the registered workloads with size summaries.
* ``run`` — one co-search cell (method x scenario x workload) and print
  the Pareto front + selected design.
* ``table`` — regenerate Table 1 (edge) or Table 2 (cloud).
* ``fig`` — regenerate one of the paper's figures (7-11) as JSON.
* ``serve`` — expose a PPA estimation engine as the Section 3.5 REST
  service (for master-slave deployments).
* ``stats`` — query a running PPA service's ``GET /metrics`` endpoint and
  summarize query counts, cache behaviour and request latency.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments import (
    METHODS,
    format_table,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_method,
    run_table,
)
from repro.workloads import TABLE12_NETWORKS, available_networks, get_network


def _cmd_networks(_args) -> int:
    print(f"{'name':<20s}{'family':<14s}{'year':<6s}"
          f"{'layers':<8s}{'GMACs':>8s}")
    for name in available_networks():
        network = get_network(name)
        print(
            f"{name:<20s}{network.family:<14s}{network.year:<6d}"
            f"{network.num_layers:<8d}{network.total_macs / 1e9:8.2f}"
        )
    return 0


def _cmd_run(args) -> int:
    result = run_method(
        args.method, args.scenario, args.network, args.preset, seed=args.seed
    )
    print(
        f"{args.method} on {args.network} ({args.scenario}): "
        f"{result.total_hw_evaluated} hardware evaluated, "
        f"{result.total_time_h:.2f} simulated hours"
    )
    print(f"Pareto front ({len(result.pareto)} designs):")
    for design, point in zip(result.pareto.items, result.pareto.points):
        print(
            f"  L={point[0] * 1e3:10.3f} ms  P={point[1] * 1e3:8.1f} mW  "
            f"A={point[2]:6.2f} mm2   {design.hw}"
        )
    best = result.best_design()
    if best is not None:
        print(f"Selected (min-Euclidean): {best.hw}")
    return 0


def _cmd_table(args) -> int:
    record = run_table(args.scenario, list(args.networks), args.preset, seed=args.seed)
    print(format_table(record))
    if args.json:
        _write_json(args.json, record)
    return 0


_FIG_RUNNERS = {
    "7": lambda args: run_fig7(args.scenario, list(args.networks), args.preset, seed=args.seed),
    "8": lambda args: run_fig8(args.preset, seed=args.seed),
    "9": lambda args: run_fig9(args.preset, seed=args.seed),
    "10": lambda args: run_fig10(args.preset, seed=args.seed),
    "11": lambda args: run_fig11(args.preset, seed=args.seed),
}


def _cmd_fig(args) -> int:
    record = _FIG_RUNNERS[args.number](args)
    payload = record.to_json()
    if args.json:
        _write_json(args.json, record)
    else:
        print(payload)
    return 0


def _cmd_serve(args) -> int:
    from repro.camodel import AscendCAEngine
    from repro.costmodel import MaestroEngine
    from repro.costmodel.service import PPAServiceServer

    network = get_network(args.network)
    capacity = args.cache_capacity if args.cache_capacity > 0 else None
    if args.engine == "maestro":
        engine = MaestroEngine(network, cache_capacity=capacity)
    else:
        engine = AscendCAEngine(network, noise_fraction=0.08)
        engine.cache_capacity = capacity
    server = PPAServiceServer(engine, host=args.host, port=args.port)
    server.start()
    print(f"PPA service ({args.engine}, workload {args.network}) at {server.url}")
    print(f"metrics at {server.url}/metrics  (or: python -m repro stats {server.url})")
    print("Ctrl-C to stop.")
    try:
        import time

        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        server.stop()
    return 0


def _cmd_stats(args) -> int:
    from urllib.request import urlopen

    url = args.url.rstrip("/")
    try:
        with urlopen(f"{url}/metrics", timeout=args.timeout) as response:
            payload = json.load(response)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot reach PPA service at {url}: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    engine = payload.get("engine", {})
    print(f"PPA service at {url}")
    print(f"  engine           {engine.get('engine', '?')}")
    print(f"  workload         {engine.get('workload', '?')}")
    print(f"  queries          {engine.get('num_queries', 0)}")
    print(f"  cache hits       {engine.get('num_cache_hits', 0)}")
    print(f"  cache hit rate   {engine.get('cache_hit_rate', 0.0):.1%}")
    print(f"  cache evictions  {engine.get('num_cache_evictions', 0)}")
    capacity = engine.get("cache_capacity")
    print(
        f"  cache size       {engine.get('cache_size', 0)}"
        f" / {capacity if capacity is not None else 'unbounded'}"
    )
    if "num_retries" in engine:
        print(f"  retries          {engine['num_retries']}")
    metrics = payload.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        print("counters:")
        for name, value in counters.items():
            print(f"  {name:<40s} {value:g}")
    histograms = metrics.get("histograms", {})
    if histograms:
        print("latency histograms:")
        for name, hist in histograms.items():
            if not hist["count"]:
                continue
            print(
                f"  {name:<40s} count={hist['count']}  "
                f"mean={hist['mean'] * 1e3:.2f} ms  "
                f"max={hist['max'] * 1e3:.2f} ms"
            )
    return 0


def _cmd_reproduce(args) -> int:
    import pathlib

    from repro.experiments.paper_runner import run_everything

    summary = run_everything(
        preset=args.preset,
        seed=args.seed,
        results_dir=pathlib.Path(args.results_dir),
        only=args.only,
        progress=print,
    )
    print(f"done: {len(summary.children)} experiments at preset {args.preset}")
    return 0


def _cmd_report(args) -> int:
    import pathlib

    from repro.experiments.reporting import generate_report

    markdown = generate_report(pathlib.Path(args.results_dir))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(markdown)
        print(f"wrote {args.out}")
    else:
        print(markdown)
    return 0


def _write_json(path: str, record) -> None:
    with open(path, "w") as handle:
        handle.write(record.to_json())
    print(f"wrote {path}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with every sub-command."""
    parser = argparse.ArgumentParser(
        prog="repro", description="UNICO reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("networks", help="list registered workloads").set_defaults(
        fn=_cmd_networks
    )

    run_parser = sub.add_parser("run", help="run one co-search cell")
    run_parser.add_argument("method", choices=METHODS)
    run_parser.add_argument("network")
    run_parser.add_argument("--scenario", default="edge",
                            choices=("edge", "cloud", "ascend"))
    run_parser.add_argument("--preset", default="smoke")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.set_defaults(fn=_cmd_run)

    table_parser = sub.add_parser("table", help="regenerate Table 1/2")
    table_parser.add_argument("scenario", choices=("edge", "cloud"))
    table_parser.add_argument("--networks", nargs="+", default=list(TABLE12_NETWORKS))
    table_parser.add_argument("--preset", default="smoke")
    table_parser.add_argument("--seed", type=int, default=0)
    table_parser.add_argument("--json", default=None, help="write record JSON here")
    table_parser.set_defaults(fn=_cmd_table)

    fig_parser = sub.add_parser("fig", help="regenerate a figure (7-11)")
    fig_parser.add_argument("number", choices=sorted(_FIG_RUNNERS))
    fig_parser.add_argument("--scenario", default="edge", choices=("edge", "cloud"))
    fig_parser.add_argument("--networks", nargs="+", default=list(TABLE12_NETWORKS))
    fig_parser.add_argument("--preset", default="smoke")
    fig_parser.add_argument("--seed", type=int, default=0)
    fig_parser.add_argument("--json", default=None, help="write record JSON here")
    fig_parser.set_defaults(fn=_cmd_fig)

    reproduce_parser = sub.add_parser(
        "reproduce", help="run every table/figure at a preset"
    )
    reproduce_parser.add_argument("--preset", default="smoke")
    reproduce_parser.add_argument("--seed", type=int, default=0)
    reproduce_parser.add_argument(
        "--results-dir", default="benchmarks/results", help="where records go"
    )
    reproduce_parser.add_argument(
        "--only", nargs="+", default=None, help="subset of experiment names"
    )
    reproduce_parser.set_defaults(fn=_cmd_reproduce)

    report_parser = sub.add_parser(
        "report", help="render saved benchmark records as markdown"
    )
    report_parser.add_argument(
        "--results-dir", default="benchmarks/results", help="record directory"
    )
    report_parser.add_argument("--out", default=None, help="write markdown here")
    report_parser.set_defaults(fn=_cmd_report)

    serve_parser = sub.add_parser("serve", help="serve a PPA engine over HTTP")
    serve_parser.add_argument("network")
    serve_parser.add_argument("--engine", default="maestro",
                              choices=("maestro", "ascend"))
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=0)
    serve_parser.add_argument(
        "--cache-capacity", type=int, default=100_000,
        help="LRU bound on the engine result cache (0 = unbounded)",
    )
    serve_parser.set_defaults(fn=_cmd_serve)

    stats_parser = sub.add_parser(
        "stats", help="summarize a running PPA service's /metrics"
    )
    stats_parser.add_argument("url", help="service base URL, e.g. http://host:port")
    stats_parser.add_argument("--timeout", type=float, default=5.0)
    stats_parser.add_argument(
        "--json", action="store_true", help="print the raw /metrics JSON"
    )
    stats_parser.set_defaults(fn=_cmd_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away (e.g. piped to head); suppress the shutdown flush
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
