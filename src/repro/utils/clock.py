"""Simulated wall clock for search-cost accounting.

The paper reports search cost in wall-clock hours on a fixed server, where
the dominant cost is PPA evaluation: an analytical model call costs a fraction
of a second, a cycle-accurate model call costs 2-10 minutes.  Re-burning those
hours is neither feasible nor necessary for reproducing the *comparison*:
every method's cost curve is a function of how many and which evaluations it
spends.  ``SimulatedClock`` charges a modeled duration per event and exposes
the accumulated virtual time; experiment harnesses read it instead of
``time.time()``.

Parallelism is modeled with :meth:`advance_parallel`: a batch of jobs run on
``workers`` machines advances the clock by the makespan of a longest-
processing-time-first schedule, mirroring the paper's master-slave execution.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class ClockEvent:
    """One charged event: a label, a duration and the resulting clock time."""

    label: str
    duration_s: float
    at_s: float


@dataclass
class SimulatedClock:
    """Accumulates simulated seconds and an event log.

    Parameters
    ----------
    workers:
        Number of parallel evaluation workers available to
        :meth:`advance_parallel`.  Serial methods simply call
        :meth:`advance`.
    """

    workers: int = 1
    _now_s: float = 0.0
    _events: List[ClockEvent] = field(default_factory=list)
    _totals: Dict[str, float] = field(default_factory=dict)
    # charged from service-handler threads and thread-backend jobs
    _lock: threading.RLock = field(
        init=False, repr=False, compare=False, default_factory=threading.RLock
    )

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    # clocks ride along with engines pickled to process-backend workers;
    # the lock is process-local state and is recreated on unpickle
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_s

    @property
    def now_h(self) -> float:
        """Current simulated time in hours."""
        return self._now_s / 3600.0

    @property
    def events(self) -> Sequence[ClockEvent]:
        return tuple(self._events)

    def advance(self, duration_s: float, label: str = "event") -> float:
        """Charge one serial event and return the new time."""
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        with self._lock:
            self._now_s += duration_s
            self._events.append(ClockEvent(label, duration_s, self._now_s))
            self._totals[label] = self._totals.get(label, 0.0) + duration_s
            return self._now_s

    def advance_parallel(
        self, durations_s: Sequence[float], label: str = "batch"
    ) -> float:
        """Charge a batch of jobs scheduled on ``self.workers`` machines.

        The clock advances by the makespan of a longest-processing-time-first
        (LPT) schedule, which is how a work-stealing pool behaves in practice.
        Returns the new time.
        """
        durations = [float(d) for d in durations_s]
        if any(d < 0 for d in durations):
            raise ValueError("durations must be non-negative")
        if not durations:
            return self._now_s
        if self.workers == 1:
            return self.advance(sum(durations), label)
        loads = [0.0] * self.workers
        heapq.heapify(loads)
        for duration in sorted(durations, reverse=True):
            least = heapq.heappop(loads)
            heapq.heappush(loads, least + duration)
        return self.advance(max(loads), label)

    def total(self, label: str) -> float:
        """Total seconds charged under ``label``."""
        return self._totals.get(label, 0.0)

    def reset(self) -> None:
        """Zero the clock and clear the event log."""
        with self._lock:
            self._now_s = 0.0
            self._events.clear()
            self._totals.clear()
