"""Hardware configuration types and design spaces.

Two platforms are modeled, matching the paper's evaluation:

* the open-source 2D **spatial accelerator** template of Fig. 1
  (:mod:`repro.hw.spatial`) with *edge* and *cloud* scenarios, and
* the commercial **Ascend-like** core (:mod:`repro.hw.ascend`).

Both are instances of the generic :class:`DiscreteDesignSpace`, which gives
search algorithms uniform sampling, mutation/crossover, and ordinal
encode/decode into ``[0, 1]^d`` for the GP surrogate.
"""

from repro.hw.ascend import (
    ASCEND_AREA_CAP_MM2,
    AscendDesignSpace,
    AscendHWConfig,
    ascend_design_space,
    default_ascend_config,
)
from repro.hw.constraints import (
    AreaCap,
    Constraint,
    ConstraintSet,
    LatencyCap,
    MinBufferBytes,
    PowerCap,
)
from repro.hw.space import Dimension, DiscreteDesignSpace
from repro.hw.spatial import (
    CLOUD_POWER_CAP_W,
    DATAFLOWS,
    EDGE_POWER_CAP_W,
    SpatialDesignSpace,
    SpatialHWConfig,
    cloud_design_space,
    design_space_for,
    edge_design_space,
    power_cap_for,
)

__all__ = [
    "AreaCap",
    "Constraint",
    "ConstraintSet",
    "LatencyCap",
    "MinBufferBytes",
    "PowerCap",
    "Dimension",
    "DiscreteDesignSpace",
    "SpatialHWConfig",
    "SpatialDesignSpace",
    "edge_design_space",
    "cloud_design_space",
    "design_space_for",
    "power_cap_for",
    "DATAFLOWS",
    "EDGE_POWER_CAP_W",
    "CLOUD_POWER_CAP_W",
    "AscendHWConfig",
    "AscendDesignSpace",
    "ascend_design_space",
    "default_ascend_config",
    "ASCEND_AREA_CAP_MM2",
]
