"""Pareto-dominance utilities (minimization convention throughout).

Everything the multi-objective layers need: dominance tests, front
extraction, incremental :class:`ParetoFront` maintenance, min-Euclidean-
distance representative selection (the paper's Table 1/2 reporting rule),
and running objective normalization for scalarizers and surrogates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generic, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

ItemT = TypeVar("ItemT")


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff ``a`` Pareto-dominates ``b`` (<= everywhere, < somewhere)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a <= b) and np.any(a < b))


def non_dominated_mask(points: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of ``points`` (n x d)."""
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"expected 2D array, got shape {points.shape}")
    n = points.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        for j in range(n):
            if i == j or not mask[j]:
                continue
            if dominates(points[j], points[i]):
                mask[i] = False
                break
    return mask


def pareto_front(points: np.ndarray) -> np.ndarray:
    """The non-dominated subset of ``points``."""
    points = np.asarray(points, dtype=float)
    if points.size == 0:
        return points.reshape(0, points.shape[-1] if points.ndim == 2 else 0)
    return points[non_dominated_mask(points)]


def non_dominated_sort(points: np.ndarray) -> List[np.ndarray]:
    """NSGA-II fast non-dominated sort; returns index arrays per front."""
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    domination_count = np.zeros(n, dtype=int)
    dominated_sets: List[List[int]] = [[] for _ in range(n)]
    fronts: List[List[int]] = [[]]
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if dominates(points[i], points[j]):
                dominated_sets[i].append(j)
            elif dominates(points[j], points[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_sets[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    return [np.array(front, dtype=int) for front in fronts[:-1]]


def crowding_distance(points: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance for one front (n x d)."""
    points = np.asarray(points, dtype=float)
    n, d = points.shape
    if n <= 2:
        return np.full(n, np.inf)
    distance = np.zeros(n)
    for dim in range(d):
        order = np.argsort(points[:, dim])
        span = points[order[-1], dim] - points[order[0], dim]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span <= 0:
            continue
        for rank in range(1, n - 1):
            gap = points[order[rank + 1], dim] - points[order[rank - 1], dim]
            distance[order[rank]] += gap / span
    return distance


@dataclass
class ParetoFront(Generic[ItemT]):
    """Incrementally maintained Pareto archive of (item, objectives).

    Only finite objective vectors are admitted; dominated entries are
    evicted on insertion.
    """

    num_objectives: int
    _items: List[ItemT] = field(default_factory=list)
    _points: List[np.ndarray] = field(default_factory=list)

    def add(self, item: ItemT, objectives: Sequence[float]) -> bool:
        """Insert; returns True iff the point joined the front."""
        point = np.asarray(objectives, dtype=float)
        if point.shape != (self.num_objectives,):
            raise ValueError(
                f"expected {self.num_objectives} objectives, got shape {point.shape}"
            )
        if not np.all(np.isfinite(point)):
            return False
        for existing in self._points:
            if dominates(existing, point) or np.array_equal(existing, point):
                return False
        keep_items: List[ItemT] = []
        keep_points: List[np.ndarray] = []
        for existing_item, existing in zip(self._items, self._points):
            if not dominates(point, existing):
                keep_items.append(existing_item)
                keep_points.append(existing)
        keep_items.append(item)
        keep_points.append(point)
        self._items = keep_items
        self._points = keep_points
        return True

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Tuple[ItemT, ...]:
        return tuple(self._items)

    @property
    def points(self) -> np.ndarray:
        if not self._points:
            return np.zeros((0, self.num_objectives))
        return np.vstack(self._points)

    def min_euclidean(
        self, normalize: bool = True
    ) -> Optional[Tuple[ItemT, np.ndarray]]:
        """The front member closest to the origin (Table 1/2 selection rule).

        With ``normalize`` (default), objectives are min-max scaled over the
        front first so no single unit dominates the distance.
        """
        if not self._points:
            return None
        points = self.points
        scaled = points
        if normalize and len(self._points) > 1:
            low = points.min(axis=0)
            high = points.max(axis=0)
            span = np.where(high > low, high - low, 1.0)
            scaled = (points - low) / span
        index = int(np.argmin(np.linalg.norm(scaled, axis=1)))
        return self._items[index], points[index]


class ObjectiveNormalizer:
    """Running min-max normalizer over observed objective vectors.

    ParEGO scalarization and GP fitting both want objectives on a shared
    [0, 1] scale; the normalizer tracks the observed range so far (ignoring
    non-finite entries) and maps new vectors into it.
    """

    def __init__(self, num_objectives: int):
        self.num_objectives = num_objectives
        self._low = np.full(num_objectives, np.inf)
        self._high = np.full(num_objectives, -np.inf)

    @property
    def ready(self) -> bool:
        return bool(np.all(np.isfinite(self._low)) and np.all(self._high > -np.inf))

    def observe(self, objectives: Sequence[float]) -> None:
        point = np.asarray(objectives, dtype=float)
        finite = np.isfinite(point)
        self._low[finite] = np.minimum(self._low[finite], point[finite])
        self._high[finite] = np.maximum(self._high[finite], point[finite])

    def observe_many(self, points: np.ndarray) -> None:
        for point in np.asarray(points, dtype=float):
            self.observe(point)

    def transform(self, objectives: Sequence[float]) -> np.ndarray:
        """Map into [0, 1] per the observed range; infinities clamp to 2.0."""
        point = np.asarray(objectives, dtype=float)
        span = np.where(self._high > self._low, self._high - self._low, 1.0)
        low = np.where(np.isfinite(self._low), self._low, 0.0)
        scaled = (point - low) / span
        scaled = np.where(np.isfinite(point), scaled, 2.0)
        return np.clip(scaled, 0.0, 2.0)
