"""ScreeningPPAEngine: parity when off, honesty and accounting when on."""

import numpy as np
import pytest

from repro.costmodel import MaestroEngine
from repro.core.evaluation import _QueryCountingEngine
from repro.learned import LearnedCostModel, ScreeningPPAEngine
from repro.learned.screen import SCREENED_REASON


@pytest.fixture()
def model(labelled_batch):
    x, latency, energy, feasible = labelled_batch
    if feasible.sum() < 8:
        pytest.skip("sampled batch too infeasible for this hw")
    return LearnedCostModel.fit(
        x, latency, energy, feasible, seed=0, hidden=16, ensemble=2, epochs=80
    )


class TestPassThrough:
    def test_disabled_wrapper_is_bit_identical(
        self, tiny_network, sample_hw, layer_and_shape, mapping_batch
    ):
        layer_name, _shape = layer_and_shape
        plain = MaestroEngine(tiny_network).evaluate_candidates(
            sample_hw, layer_name, mapping_batch
        )
        wrapped_engine = ScreeningPPAEngine(MaestroEngine(tiny_network), model=None)
        wrapped = wrapped_engine.evaluate_candidates(
            sample_hw, layer_name, mapping_batch
        )
        assert wrapped == plain
        assert not wrapped_engine.screening_active
        assert wrapped_engine.screen_stats()["batches_screened"] == 0

    def test_small_batches_pass_through(
        self, tiny_network, sample_hw, layer_and_shape, mapping_batch, model
    ):
        layer_name, _shape = layer_and_shape
        engine = ScreeningPPAEngine(
            MaestroEngine(tiny_network), model=model, min_batch=8
        )
        results = engine.evaluate_candidates(
            sample_hw, layer_name, mapping_batch[:4]
        )
        assert all(r.infeasible_reason != SCREENED_REASON for r in results)
        assert engine.screen_stats()["batches_screened"] == 0

    def test_scalar_path_never_screened(
        self, tiny_network, sample_hw, layer_and_shape, mapping_batch, model
    ):
        layer_name, _shape = layer_and_shape
        engine = ScreeningPPAEngine(MaestroEngine(tiny_network), model=model)
        result = engine.evaluate_layer(sample_hw, mapping_batch[0], layer_name)
        assert result.infeasible_reason != SCREENED_REASON

    def test_attribute_delegation_and_forwarded_setters(
        self, tiny_network, model
    ):
        inner = MaestroEngine(tiny_network)
        engine = ScreeningPPAEngine(inner, model=model)
        assert engine.network is inner.network
        assert engine.clock is inner.clock
        engine.charge_clock = False
        assert inner.charge_clock is False
        sink = object()
        engine.sample_sink = sink
        assert inner.sample_sink is sink


class TestScreening:
    def test_forwarded_results_are_exact_analytical(
        self, tiny_network, sample_hw, layer_and_shape, mapping_batch, model
    ):
        layer_name, _shape = layer_and_shape
        reference = MaestroEngine(tiny_network).evaluate_candidates(
            sample_hw, layer_name, mapping_batch
        )
        engine = ScreeningPPAEngine(
            MaestroEngine(tiny_network), model=model, topk=6
        )
        results = engine.evaluate_candidates(sample_hw, layer_name, mapping_batch)
        screened = [
            i for i, r in enumerate(results)
            if r.infeasible_reason == SCREENED_REASON
        ]
        forwarded = [i for i in range(len(results)) if i not in screened]
        assert screened and forwarded
        for index in forwarded:
            assert results[index] == reference[index]
        for index in screened:
            assert not results[index].feasible
            assert results[index].latency_s == float("inf")

    def test_counters_and_stats(
        self, tiny_network, sample_hw, layer_and_shape, mapping_batch, model
    ):
        layer_name, _shape = layer_and_shape
        inner = MaestroEngine(tiny_network)
        engine = ScreeningPPAEngine(inner, model=model, topk=6)
        engine.evaluate_candidates(sample_hw, layer_name, mapping_batch)
        stats = engine.screen_stats()
        assert stats["batches_screened"] == 1
        assert stats["candidates_seen"] == len(mapping_batch)
        assert stats["forwarded"] + stats["skipped"] == len(mapping_batch)
        assert stats["evals_saved"] == stats["skipped"] > 0
        assert 0.0 <= stats["precision"] <= 1.0
        # counters also land on the inner engine's metrics registry
        assert inner.metrics.counter_value("screen_batches_screened_total") == 1
        # only forwarded candidates hit the analytical engine
        assert inner.num_queries == stats["forwarded"]
        # engine stats surface the screening block
        assert engine.stats()["screening"]["forwarded"] == stats["forwarded"]

    def test_uncertainty_escalation_forwards_extra(
        self, tiny_network, sample_hw, layer_and_shape, mapping_batch, model
    ):
        layer_name, _shape = layer_and_shape
        engine = ScreeningPPAEngine(
            MaestroEngine(tiny_network),
            model=model,
            topk=4,
            escalate_fraction=0.25,
        )
        engine.evaluate_candidates(sample_hw, layer_name, mapping_batch)
        stats = engine.screen_stats()
        assert stats["escalated"] > 0
        assert stats["forwarded"] > 4

    def test_foreign_hw_falls_back_to_full_forward(
        self, tiny_network, layer_and_shape, mapping_batch, model
    ):
        class ForeignHW:
            def __repr__(self):
                return "foreign"

        layer_name, _shape = layer_and_shape
        engine = ScreeningPPAEngine(MaestroEngine(tiny_network), model=model)
        with pytest.raises(Exception):
            # the inner engine itself cannot evaluate foreign hw either;
            # the point is the screen does not swallow the batch silently
            engine.evaluate_candidates(ForeignHW(), layer_name, mapping_batch)
        assert engine.screen_stats()["fallback_batches"] == 1

    def test_audit_batches_measure_recall(
        self, tiny_network, sample_hw, layer_and_shape, mapping_batch, model
    ):
        layer_name, _shape = layer_and_shape
        engine = ScreeningPPAEngine(
            MaestroEngine(tiny_network), model=model, topk=6, audit_every=2
        )
        engine.evaluate_candidates(sample_hw, layer_name, mapping_batch[:20])
        engine.evaluate_candidates(sample_hw, layer_name, mapping_batch[20:])
        stats = engine.screen_stats()
        assert stats["audit_batches"] == 1
        assert stats["audit_recall"] in (0.0, 1.0)

    def test_screen_cost_charged_to_clock(
        self, tiny_network, sample_hw, layer_and_shape, mapping_batch, model
    ):
        layer_name, _shape = layer_and_shape
        inner = MaestroEngine(tiny_network)
        engine = ScreeningPPAEngine(
            inner, model=model, topk=4, screen_cost_s=0.5
        )
        before = inner.clock.now_s
        engine.evaluate_candidates(sample_hw, layer_name, mapping_batch)
        skipped = engine.screen_stats()["skipped"]
        charged = inner.clock.now_s - before
        # forwarded evals charge eval_cost_s each; screened ones 0.5s each
        assert charged == pytest.approx(
            engine.screen_stats()["forwarded"] * inner.eval_cost_s
            + 0.5 * skipped
        )


class TestQueryAccounting:
    def test_counting_proxy_ignores_screened_results(
        self, tiny_network, sample_hw, layer_and_shape, mapping_batch, model
    ):
        layer_name, _shape = layer_and_shape
        engine = ScreeningPPAEngine(
            MaestroEngine(tiny_network), model=model, topk=6
        )
        view = _QueryCountingEngine(engine)
        results = view.evaluate_candidates(sample_hw, layer_name, mapping_batch)
        analytical = sum(
            1 for r in results if r.infeasible_reason != SCREENED_REASON
        )
        assert view.local_queries == analytical < len(mapping_batch)

    def test_counting_proxy_unchanged_without_wrapper(
        self, tiny_network, sample_hw, layer_and_shape, mapping_batch
    ):
        layer_name, _shape = layer_and_shape
        view = _QueryCountingEngine(MaestroEngine(tiny_network))
        view.evaluate_candidates(sample_hw, layer_name, mapping_batch)
        assert view.local_queries == len(mapping_batch)
