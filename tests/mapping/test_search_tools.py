"""Tests for the anytime mapping-search contract and the concrete tools.

The properties UNICO depends on (Section 2.1): searches are resumable, the
best-so-far curve is monotone non-increasing, one budget unit = one engine
query, and guided tools beat random under equal budget.
"""

import numpy as np
import pytest

from repro.costmodel import MaestroEngine
from repro.errors import SearchBudgetError
from repro.mapping import (
    FlexTensorSearch,
    GammaSearch,
    RandomMappingSearch,
)

TOOLS = [FlexTensorSearch, GammaSearch, RandomMappingSearch]


@pytest.fixture(params=TOOLS, ids=[t.__name__ for t in TOOLS])
def search(request, tiny_network, sample_hw):
    engine = MaestroEngine(tiny_network)
    return request.param(tiny_network, sample_hw, engine, seed=17)


class TestAnytimeContract:
    def test_initial_incumbents_feasible(self, search):
        for result in search.best_layer_result.values():
            assert result.feasible

    def test_history_length_equals_budget(self, search):
        search.run(25)
        assert len(search.history) == 25
        assert search.spent_budget == 25

    def test_best_curve_monotone(self, search):
        search.run(60)
        curve = search.best_curve()
        assert np.all(np.diff(curve) <= 1e-18)

    def test_resume_extends_history(self, search):
        search.run(10)
        best_after_10 = search.best_objective
        search.run(10)
        assert len(search.history) == 20
        assert search.best_objective <= best_after_10

    def test_zero_budget_noop(self, search):
        search.run(0)
        assert search.spent_budget == 0

    def test_negative_budget_rejected(self, search):
        with pytest.raises(SearchBudgetError):
            search.run(-1)

    def test_one_query_per_budget_unit(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network)
        search = RandomMappingSearch(tiny_network, sample_hw, engine, seed=0)
        init_queries = engine.num_queries
        search.run(15)
        assert engine.num_queries == init_queries + 15

    def test_best_ppa_matches_objective(self, search):
        search.run(30)
        assert search.best_ppa.latency_s == pytest.approx(search.best_objective)

    def test_best_mapping_covers_layers(self, search):
        search.run(5)
        assert set(search.best_mapping) == set(search.layer_names)

    def test_deterministic_given_seed(self, tiny_network, sample_hw):
        def run_once():
            engine = MaestroEngine(tiny_network)
            s = FlexTensorSearch(tiny_network, sample_hw, engine, seed=3)
            s.run(40)
            return s.best_objective

        assert run_once() == run_once()

    def test_trial_points_recorded(self, search):
        search.run(20)
        trials = search.trial_curve()
        assert trials.shape == (20,)
        # trial objectives are never better than the concurrent best
        bests = search.best_curve()
        finite = np.isfinite(trials)
        assert np.all(trials[finite] >= bests[finite] - 1e-15)


class TestSearchQuality:
    def test_guided_tools_beat_random(self, tiny_network, sample_hw):
        """Under the same budget, FlexTensor/GAMMA should not lose to random
        by more than noise (averaged over seeds)."""
        budget = 120

        def best_of(tool_cls, seed):
            engine = MaestroEngine(tiny_network)
            search = tool_cls(tiny_network, sample_hw, engine, seed=seed)
            search.run(budget)
            return search.best_objective

        seeds = [0, 1, 2]
        random_mean = np.mean([best_of(RandomMappingSearch, s) for s in seeds])
        flex_mean = np.mean([best_of(FlexTensorSearch, s) for s in seeds])
        gamma_mean = np.mean([best_of(GammaSearch, s) for s in seeds])
        assert flex_mean <= random_mean * 1.05
        assert gamma_mean <= random_mean * 1.05

    def test_more_budget_not_worse(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network)
        search = FlexTensorSearch(tiny_network, sample_hw, engine, seed=5)
        search.run(20)
        early = search.best_objective
        search.run(100)
        assert search.best_objective <= early

    def test_edp_objective_supported(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network)
        search = FlexTensorSearch(
            tiny_network, sample_hw, engine, objective="edp", seed=0
        )
        search.run(20)
        ppa = search.best_ppa
        assert search.best_objective == pytest.approx(ppa.latency_s * ppa.energy_j)

    def test_invalid_objective_rejected(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network)
        with pytest.raises(SearchBudgetError):
            FlexTensorSearch(tiny_network, sample_hw, engine, objective="tops")


class TestTinyHardware:
    def test_search_survives_tiny_l1(self, tiny_network, edge_space):
        """Hardware with minimal L1 forces the (1,1,1) fallback seed."""
        hw = edge_space.to_config(
            {
                "pe_x": 2,
                "pe_y": 2,
                "l1_bytes": 64,
                "l2_kb": 8,
                "noc_bw": 64,
                "dataflow": "os",
            }
        )
        engine = MaestroEngine(tiny_network)
        search = FlexTensorSearch(tiny_network, hw, engine, seed=0)
        search.run(10)
        assert np.isfinite(search.best_objective)
