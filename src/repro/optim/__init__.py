"""Optimization substrate: GP surrogates, MOBO, SH/MSH, NSGA-II, hypervolume.

Everything here is problem-agnostic (operates on design-space configs and
objective vectors); the UNICO-specific logic (robustness metric, high-
fidelity update, Algorithm 1) composes these pieces in :mod:`repro.core`.
"""

from repro.optim.acquisition import expected_improvement, upper_confidence_bound
from repro.optim.gp import (
    CholeskyFactor,
    GaussianProcess,
    GPHyperparameters,
    factorize,
)
from repro.optim.hyperband import Bracket, hyperband_brackets
from repro.optim.hypervolume import (
    hypervolume,
    hypervolume_difference,
    hypervolume_monte_carlo,
    reference_point_from,
)
from repro.optim.mobo import MOBOSampler
from repro.optim.nsga2 import NSGA2, Individual
from repro.optim.pareto import (
    ObjectiveNormalizer,
    ParetoFront,
    crowding_distance,
    dominates,
    non_dominated_mask,
    non_dominated_sort,
    pareto_front,
)
from repro.optim.scalarize import (
    DEFAULT_RHO,
    parego_scalar,
    parego_scalars,
    sample_weight_vector,
    uniform_weights,
)
from repro.optim.indicators import (
    coverage,
    epsilon_indicator,
    generational_distance,
    inverted_generational_distance,
    spacing,
)
from repro.optim.tpe import ParzenEstimator, TPESampler
from repro.optim.sh import (
    DEFAULT_AUC_FRACTION,
    DEFAULT_ETA,
    DEFAULT_KEEP_FRACTION,
    RoundPlan,
    auc_score,
    plan_rounds,
    relative_auc_score,
    relative_auc_scores,
    run_successive_halving,
    select_survivors,
    select_survivors_detailed,
    select_survivors_soa,
    terminal_value,
    terminal_values,
)

__all__ = [
    "coverage",
    "epsilon_indicator",
    "generational_distance",
    "inverted_generational_distance",
    "spacing",
    "ParzenEstimator",
    "TPESampler",
    "expected_improvement",
    "upper_confidence_bound",
    "CholeskyFactor",
    "GaussianProcess",
    "GPHyperparameters",
    "factorize",
    "Bracket",
    "hyperband_brackets",
    "hypervolume",
    "hypervolume_difference",
    "hypervolume_monte_carlo",
    "reference_point_from",
    "MOBOSampler",
    "NSGA2",
    "Individual",
    "ObjectiveNormalizer",
    "ParetoFront",
    "crowding_distance",
    "dominates",
    "non_dominated_mask",
    "non_dominated_sort",
    "pareto_front",
    "DEFAULT_RHO",
    "parego_scalar",
    "parego_scalars",
    "sample_weight_vector",
    "uniform_weights",
    "DEFAULT_AUC_FRACTION",
    "DEFAULT_ETA",
    "DEFAULT_KEEP_FRACTION",
    "RoundPlan",
    "auc_score",
    "relative_auc_score",
    "relative_auc_scores",
    "plan_rounds",
    "run_successive_halving",
    "select_survivors",
    "select_survivors_detailed",
    "select_survivors_soa",
    "terminal_value",
    "terminal_values",
]
