"""Run profiling: per-phase time attribution from recorded spans.

``repro runs profile <run-id>`` lands here.  Given a run's recorded
spans (the ``span`` events of its journal), this module answers the
questions flat counters cannot:

* **Per-phase breakdown** — wall and simulated time per span name, with
  both *inclusive* totals and *self* time (inclusive minus direct
  children), so the table's self-time column sums exactly to the root
  span's duration and nothing is double-counted.
* **Evaluation throughput** — engine-eval spans beneath each phase and
  the implied evaluations per wall-second, the number search-heavy
  co-design frameworks report their speed claims with.
* **Top-N slowest spans** — the individual intervals worth staring at.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

#: Span names counted as PPA-engine evaluations for throughput reporting.
ENGINE_SPAN_NAMES = ("engine_eval", "engine_eval_batch")


def spans_from_journal(path: Union[str, pathlib.Path]) -> List[Dict]:
    """Load the finished-span dicts recorded in a run's journal."""
    from repro.tracking.journal import read_events

    return [
        event
        for event in read_events(path).events
        if event.get("type") == "span"
    ]


def _span_evals(span: Dict) -> int:
    """Engine evaluations one engine span represents (batch spans: B)."""
    if span.get("name") not in ENGINE_SPAN_NAMES:
        return 0
    attrs = span.get("attrs") or {}
    return int(attrs.get("batch", 1) or 1)


@dataclass
class PhaseStats:
    """Aggregate timing of every span sharing one name."""

    name: str
    count: int = 0
    wall_total_s: float = 0.0
    wall_self_s: float = 0.0
    sim_total_s: float = 0.0
    wall_max_s: float = 0.0
    evals: int = 0

    @property
    def evals_per_s(self) -> float:
        """Engine evaluations beneath this phase per inclusive wall-second."""
        if self.wall_total_s <= 0.0 or not self.evals:
            return 0.0
        return self.evals / self.wall_total_s


@dataclass
class RunProfile:
    """The full profile of one traced run."""

    phases: List[PhaseStats] = field(default_factory=list)
    total_wall_s: float = 0.0
    total_sim_s: float = 0.0
    num_spans: int = 0
    slowest: List[Dict] = field(default_factory=list)

    @property
    def accounted_wall_s(self) -> float:
        """Sum of per-phase self time (equals the root spans' wall time)."""
        return sum(p.wall_self_s for p in self.phases)

    @property
    def total_evals(self) -> int:
        """Engine evaluations recorded anywhere in the span tree."""
        return sum(p.evals for p in self.phases if p.name in ENGINE_SPAN_NAMES)


def build_profile(spans: Sequence[Dict], top_n: int = 5) -> RunProfile:
    """Aggregate finished-span dicts into a :class:`RunProfile`.

    Self time is inclusive duration minus the sum of *direct* children's
    durations (clamped at zero against clock jitter); evaluation counts
    propagate from engine spans to every ancestor, so each phase row
    reports the evals that happened anywhere beneath it.
    """
    spans = list(spans)
    by_id: Dict[str, Dict] = {
        s["span_id"]: s for s in spans if s.get("span_id")
    }
    children_wall: Dict[str, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent:
            children_wall[parent] = children_wall.get(parent, 0.0) + float(
                span.get("wall_dur_s", 0.0)
            )

    phases: Dict[str, PhaseStats] = {}
    roots_wall = 0.0
    roots_sim = 0.0
    for span in spans:
        name = str(span.get("name", "span"))
        stats = phases.get(name)
        if stats is None:
            stats = phases[name] = PhaseStats(name=name)
        wall = float(span.get("wall_dur_s", 0.0))
        stats.count += 1
        stats.wall_total_s += wall
        stats.sim_total_s += float(span.get("sim_dur_s", 0.0))
        stats.wall_max_s = max(stats.wall_max_s, wall)
        stats.wall_self_s += max(
            0.0, wall - children_wall.get(span.get("span_id"), 0.0)
        )
        if span.get("parent_id") not in by_id:
            roots_wall += wall
            roots_sim += float(span.get("sim_dur_s", 0.0))

    # evaluation counts bubble up the ancestor chain
    for span in spans:
        evals = _span_evals(span)
        if not evals:
            continue
        cursor: Optional[Dict] = span
        hops = 0
        while cursor is not None and hops < 64:  # cycle guard
            phases[str(cursor.get("name", "span"))].evals += evals
            cursor = by_id.get(cursor.get("parent_id") or "")
            hops += 1

    ordered = sorted(phases.values(), key=lambda p: -p.wall_self_s)
    slowest = sorted(
        spans, key=lambda s: -float(s.get("wall_dur_s", 0.0))
    )[: max(0, top_n)]
    return RunProfile(
        phases=ordered,
        total_wall_s=roots_wall,
        total_sim_s=roots_sim,
        num_spans=len(spans),
        slowest=slowest,
    )


def _fmt_seconds(seconds: float) -> str:
    """Human-scale seconds: ms below 1 s, h above an hour."""
    if seconds >= 3600.0:
        return f"{seconds / 3600.0:.2f}h"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def render_profile(profile: RunProfile) -> str:
    """Render the profile as the ``repro runs profile`` text report."""
    lines: List[str] = []
    lines.append(
        f"{'phase':<22s}{'count':>7s}{'wall':>10s}{'self':>10s}"
        f"{'wall%':>7s}{'sim':>12s}{'evals':>8s}{'evals/s':>9s}"
    )
    # guard the percentage denominator: spans recorded with zero wall
    # duration (mocked clocks, sub-resolution runs) must not divide by 0
    total = profile.total_wall_s if profile.total_wall_s > 0.0 else 1.0
    for phase in profile.phases:
        # a phase with no engine evals beneath it has no throughput to
        # report — print "-" rather than a meaningless 0.0 (or NaN from
        # a 0/0 if both evals and wall time are absent)
        rate = f"{phase.evals_per_s:>9.1f}" if phase.evals else f"{'-':>9s}"
        lines.append(
            f"{phase.name:<22s}{phase.count:>7d}"
            f"{_fmt_seconds(phase.wall_total_s):>10s}"
            f"{_fmt_seconds(phase.wall_self_s):>10s}"
            f"{100.0 * phase.wall_self_s / total:>6.1f}%"
            f"{_fmt_seconds(phase.sim_total_s):>12s}"
            f"{phase.evals:>8d}"
            f"{rate}"
        )
    lines.append(
        f"{'total':<22s}{profile.num_spans:>7d}"
        f"{_fmt_seconds(profile.total_wall_s):>10s}"
        f"{_fmt_seconds(profile.accounted_wall_s):>10s}"
        f"{100.0 * profile.accounted_wall_s / total:>6.1f}%"
        f"{_fmt_seconds(profile.total_sim_s):>12s}"
    )
    if profile.slowest:
        lines.append("slowest spans:")
        for span in profile.slowest:
            attrs = span.get("attrs") or {}
            detail = " ".join(
                f"{k}={attrs[k]}" for k in sorted(attrs) if k != "configs"
            )
            lines.append(
                f"  {_fmt_seconds(float(span.get('wall_dur_s', 0.0))):>9s}"
                f"  {span.get('name', 'span'):<20s}{detail}"
            )
    return "\n".join(lines)


__all__ = [
    "ENGINE_SPAN_NAMES",
    "PhaseStats",
    "RunProfile",
    "build_profile",
    "render_profile",
    "spans_from_journal",
]
