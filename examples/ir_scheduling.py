#!/usr/bin/env python
"""Scheduling a tensor program by hand with the loop-nest IR.

Walks the Section 2 story explicitly: start from a GEMM's canonical loop
nest, apply split/reorder/bind primitives like an auto-scheduler would,
lower the result onto the GEMMCore intrinsic's mapping, and evaluate it on
the analytical model — then compare against the capacity-aware seed and a
short FlexTensor-like search.

Run:  python examples/ir_scheduling.py
"""

from repro.costmodel import MaestroEngine
from repro.hw import edge_design_space
from repro.ir import LoopNest, Schedule, gemm_domain, lower_to_mapping
from repro.mapping import FlexTensorSearch, GemmMappingSpace
from repro.workloads import Gemm, Network


def main() -> None:
    layer = Gemm(name="proj", m=768, n=128, k=768)
    network = Network(name="onelayer", layers=(layer,), family="demo")
    shape = layer.to_gemm()
    hw = edge_design_space().to_config(
        {
            "pe_x": 12,
            "pe_y": 8,
            "l1_bytes": 6144,
            "l2_kb": 384,
            "noc_bw": 128,
            "dataflow": "ws",
        }
    )
    engine = MaestroEngine(network)
    engine.charge_clock = False

    print(f"GEMM {shape.m} x {shape.n} x {shape.k} on {hw.short_name()}\n")

    # --- hand schedule via IR primitives -----------------------------------
    schedule = Schedule(LoopNest.from_domain(gemm_domain(shape.m, shape.n, shape.k)))
    schedule.split("m.0", 48)          # m -> 16 tiles x 48
    schedule.split("n.0", 32)          # n -> 4 tiles x 32
    schedule.split("k.0", 96)          # k -> 8 tiles x 96
    schedule.reorder(["n.0", "m.0", "k.0", "m.1", "n.1", "k.1"])
    schedule.bind("m.1", "spatial_x")  # 48 rows across 12 PEs
    schedule.bind("n.1", "spatial_y")  # 32 cols across 8 PEs
    schedule.split("k.1", 4)
    schedule.bind("k.2", "unroll")
    print("hand-written schedule:")
    print("  " + schedule.nest.pretty().replace("\n", "\n  "))
    mapping = lower_to_mapping(schedule.nest)
    print(f"\nlowered mapping: tiles {mapping.tiles()}, "
          f"order {mapping.loop_order}, unroll {mapping.unroll}")
    result = engine.evaluate_layer(hw, mapping, "proj")
    print(f"analytical latency: {result.latency_s * 1e6:.1f} us\n")

    # --- compare against the library's starting points ---------------------
    space = GemmMappingSpace(shape)
    seed = space.seeded_mapping_for(hw)
    seed_result = engine.evaluate_layer(hw, seed, "proj")
    print(f"capacity-aware seed: tiles {seed.tiles()} -> "
          f"{seed_result.latency_s * 1e6:.1f} us")

    search = FlexTensorSearch(network, hw, engine, seed=0)
    search.run(150)
    print(f"FlexTensor-like search (150 evals): "
          f"{search.best_objective * 1e6:.1f} us")
    print("\n(The IR and the mapping space are two views of the same "
          "object: lower_to_mapping/raise_from_mapping round-trip.)")


if __name__ == "__main__":
    main()
