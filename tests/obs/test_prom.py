"""Tests for Prometheus text exposition rendering and its strict parser."""

import pytest

from repro.obs.prom import (
    help_for,
    parse_prometheus_text,
    render_prometheus,
    sanitize_metric_name,
)
from repro.utils.metrics import MetricsRegistry


def make_registry():
    """A registry shaped like the estimation service's."""
    registry = MetricsRegistry()
    registry.counter("service_queries").inc(5)
    registry.counter("service_requests_total[/evaluate_layer]").inc(3)
    registry.counter("service_requests_total[/health]").inc(1)
    hist = registry.histogram("service_latency_s", bounds=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    return registry


class TestSanitize:
    def test_legal_name_unchanged(self):
        assert sanitize_metric_name("service_queries") == "service_queries"

    def test_illegal_chars_replaced(self):
        assert sanitize_metric_name("lat-ms.p99") == "lat_ms_p99"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("9lives").startswith("_")


class TestRender:
    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""

    def test_output_parses_with_strict_parser(self):
        text = render_prometheus(make_registry().snapshot())
        families = parse_prometheus_text(text)
        assert families["service_queries"]["type"] == "counter"
        assert families["service_requests_total"]["type"] == "counter"
        assert families["service_latency_s"]["type"] == "histogram"

    def test_labeled_counter_convention(self):
        text = render_prometheus(make_registry().snapshot())
        assert 'service_requests_total{path="/evaluate_layer"} 3' in text
        assert 'service_requests_total{path="/health"} 1' in text
        # one TYPE header for the whole family
        assert text.count("# TYPE service_requests_total counter") == 1

    def test_histogram_conventions(self):
        text = render_prometheus(make_registry().snapshot())
        assert 'service_latency_s_bucket{le="0.1"} 1' in text
        assert 'service_latency_s_bucket{le="1"} 2' in text
        assert 'service_latency_s_bucket{le="+Inf"} 3' in text
        assert "service_latency_s_count 3" in text
        families = parse_prometheus_text(text)
        samples = families["service_latency_s"]["samples"]
        sums = [v for (n, _, v) in samples if n == "service_latency_s_sum"]
        assert sums == [pytest.approx(5.55)]

    def test_deterministic_output(self):
        registry = make_registry()
        assert render_prometheus(registry.snapshot()) == render_prometheus(
            registry.snapshot()
        )

    def test_label_value_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.counter('weird[/path"with\\quotes]').inc()
        text = render_prometheus(registry.snapshot())
        families = parse_prometheus_text(text)
        ((_, labels, value),) = families["weird"]["samples"]
        assert labels["path"] == '/path"with\\quotes'
        assert value == 1


class TestHelpLines:
    def test_known_families_get_help(self):
        text = render_prometheus(make_registry().snapshot())
        assert "# HELP engine_queries_total" not in text  # not in registry
        # families with registry entries get their HELP line
        assert help_for("engine_queries_total")
        registry = MetricsRegistry()
        registry.counter("engine_queries_total").inc()
        text = render_prometheus(registry.snapshot())
        assert text.startswith("# HELP engine_queries_total ")
        assert "# TYPE engine_queries_total counter" in text

    def test_unknown_family_renders_without_help(self):
        registry = MetricsRegistry()
        registry.counter("bespoke_metric_total").inc()
        text = render_prometheus(registry.snapshot())
        assert "# HELP" not in text
        assert "# TYPE bespoke_metric_total counter" in text

    def test_parser_captures_help_text(self):
        registry = MetricsRegistry()
        registry.counter("engine_queries_total").inc(2)
        families = parse_prometheus_text(
            render_prometheus(registry.snapshot())
        )
        assert families["engine_queries_total"]["help"] == help_for(
            "engine_queries_total"
        )

    def test_custom_help_escapes_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("odd_total").inc()
        text = render_prometheus(
            registry.snapshot(),
            help_text={"odd_total": "line one\nline two \\ backslash"},
        )
        assert "\n# TYPE" in text  # HELP stays one physical line
        families = parse_prometheus_text(text)
        assert families["odd_total"]["help"] == (
            "line one\nline two \\ backslash"
        )


class TestLabelEscapingRoundTrips:
    """Satellite acceptance: quotes, backslashes and newlines in label
    values must survive exposition → strict parse → re-exposition."""

    HOSTILE_VALUES = (
        'quote " inside',
        "back\\slash",
        "new\nline",
        'all \\ of " them\ntogether',
        "\\n literal-backslash-n",
        'trailing backslash \\',
    )

    @pytest.mark.parametrize("value", HOSTILE_VALUES)
    def test_value_survives_parse(self, value):
        registry = MetricsRegistry()
        registry.counter(f"weird[{value}]").inc(2)
        text = render_prometheus(registry.snapshot())
        families = parse_prometheus_text(text)
        ((_, labels, count),) = families["weird"]["samples"]
        assert labels["path"] == value
        assert count == 2

    def test_exposition_fixpoint(self):
        """Render → parse → render again is byte-identical (escaping is
        its own inverse, not merely lossless)."""
        registry = MetricsRegistry()
        for value in self.HOSTILE_VALUES:
            registry.counter(f"weird[{value}]").inc()
        first = render_prometheus(registry.snapshot())
        families = parse_prometheus_text(first)
        rebuilt = MetricsRegistry()
        for _name, labels, value in families["weird"]["samples"]:
            rebuilt.counter(f"weird[{labels['path']}]").inc(int(value))
        assert render_prometheus(rebuilt.snapshot()) == first

    def test_each_sample_is_one_physical_line(self):
        registry = MetricsRegistry()
        registry.counter("weird[new\nline]").inc()
        text = render_prometheus(registry.snapshot())
        lines = [l for l in text.splitlines() if l and not l.startswith("#")]
        assert len(lines) == 1
        assert '\\n' in lines[0]


class TestParser:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError, match="outside its TYPE"):
            parse_prometheus_text("queries 5\n")

    def test_malformed_type_rejected(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus_text("# TYPE queries\nqueries 5\n")

    def test_unknown_metric_kind_rejected(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus_text("# TYPE queries widget\nqueries 5\n")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_prometheus_text("# TYPE q counter\nq banana\n")

    def test_duplicate_type_rejected(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_prometheus_text(
                "# TYPE q counter\nq 1\n# TYPE q counter\nq 2\n"
            )

    def test_sample_from_other_family_rejected(self):
        with pytest.raises(ValueError, match="outside its TYPE"):
            parse_prometheus_text("# TYPE q counter\nother 1\n")

    def test_non_cumulative_histogram_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 3\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            parse_prometheus_text(text)

    def test_histogram_missing_inf_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\n'
            "h_sum 1\n"
            "h_count 1\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_prometheus_text(text)

    def test_inf_bucket_count_mismatch_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 1\n"
            "h_count 3\n"
        )
        with pytest.raises(ValueError, match="_count"):
            parse_prometheus_text(text)

    def test_comments_and_blank_lines_ignored(self):
        text = "# HELP q something\n\n# TYPE q counter\nq 1\n"
        families = parse_prometheus_text(text)
        assert families["q"]["samples"] == [("q", {}, 1.0)]


class TestTypeValidation:
    """A ``# TYPE`` declaration constrains which sample names may follow:
    exposition drift (``TYPE x counter`` then ``x_bytes 5``) is the kind
    of thing a lenient scraper mis-ingests silently."""

    def test_counter_rejects_suffixed_sample(self):
        with pytest.raises(ValueError, match="not a legal series"):
            parse_prometheus_text("# TYPE q counter\nq_bytes 5\n")

    def test_gauge_rejects_suffixed_sample(self):
        with pytest.raises(ValueError, match="not a legal series"):
            parse_prometheus_text("# TYPE g gauge\ng_total 5\n")

    def test_gauge_accepts_exact_name(self):
        families = parse_prometheus_text("# TYPE g gauge\ng 5\n")
        assert families["g"]["type"] == "gauge"

    def test_histogram_accepts_only_components(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 1\n'
            "h_sum 0.5\n"
            "h_count 1\n"
        )
        families = parse_prometheus_text(text)
        assert {n for n, _l, _v in families["h"]["samples"]} == {
            "h_bucket", "h_sum", "h_count"
        }

    def test_histogram_rejects_bare_family_sample(self):
        text = (
            "# TYPE h histogram\n"
            "h 1\n"
            'h_bucket{le="+Inf"} 1\n'
            "h_sum 0.5\nh_count 1\n"
        )
        with pytest.raises(ValueError, match="not a legal series"):
            parse_prometheus_text(text)

    def test_summary_accepts_quantile_and_components(self):
        text = (
            "# TYPE s summary\n"
            's{quantile="0.5"} 0.1\n'
            "s_sum 0.2\n"
            "s_count 2\n"
        )
        families = parse_prometheus_text(text)
        assert families["s"]["type"] == "summary"

    def test_rendered_exposition_type_lines_round_trip(self):
        """Every family the renderer emits carries an honest TYPE line:
        the strict parser re-ingests the whole exposition and agrees on
        the kind of every family."""
        text = render_prometheus(make_registry().snapshot())
        for line in text.splitlines():
            if line and not line.startswith("#"):
                name = line.split("{")[0].split(" ")[0]
                base = name
                for suffix in ("_bucket", "_sum", "_count"):
                    if name.endswith(suffix):
                        base = name[: -len(suffix)]
                assert f"# TYPE {base} " in text, name
        families = parse_prometheus_text(text)
        assert all(f["type"] in ("counter", "histogram")
                   for f in families.values())
