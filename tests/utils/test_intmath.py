"""Tests (incl. property-based) for integer math helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.intmath import (
    clamp,
    divisors,
    factorize_near,
    nearest_divisor,
    power_two_three_grid,
    round_up_div,
    snap_to_grid,
)


class TestRoundUpDiv:
    @pytest.mark.parametrize(
        "n,d,expected", [(0, 1, 0), (1, 1, 1), (7, 2, 4), (8, 2, 4), (9, 2, 5)]
    )
    def test_values(self, n, d, expected):
        assert round_up_div(n, d) == expected

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValueError):
            round_up_div(1, 0)

    def test_negative_numerator_rejected(self):
        with pytest.raises(ValueError):
            round_up_div(-1, 2)

    @given(st.integers(0, 10**6), st.integers(1, 10**4))
    def test_matches_ceil(self, n, d):
        assert round_up_div(n, d) == -(-n // d)


class TestDivisors:
    def test_one(self):
        assert divisors(1) == (1,)

    def test_prime(self):
        assert divisors(13) == (1, 13)

    def test_composite(self):
        assert divisors(12) == (1, 2, 3, 4, 6, 12)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            divisors(0)

    @given(st.integers(1, 5000))
    @settings(max_examples=60)
    def test_all_divide_and_sorted(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert list(ds) == sorted(ds)
        assert ds[0] == 1 and ds[-1] == n


class TestNearestDivisor:
    def test_exact(self):
        assert nearest_divisor(12, 4) == 4

    def test_between(self):
        assert nearest_divisor(12, 5) in (4, 6)

    @given(st.integers(1, 2000), st.integers(1, 3000))
    @settings(max_examples=60)
    def test_result_divides(self, n, target):
        d = nearest_divisor(n, target)
        assert n % d == 0
        # no divisor is strictly closer
        assert all(abs(d - target) <= abs(other - target) for other in divisors(n))


class TestPowerTwoThreeGrid:
    def test_small(self):
        assert power_two_three_grid(1, 1) == (1, 2, 3, 6)

    def test_scale(self):
        assert power_two_three_grid(1, 0, scale=10) == (10, 20)

    def test_sorted_unique(self):
        grid = power_two_three_grid(5, 5)
        assert list(grid) == sorted(set(grid))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            power_two_three_grid(-1, 0)


class TestSnapToGrid:
    def test_snaps_to_closest(self):
        assert snap_to_grid(5, [1, 4, 8]) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            snap_to_grid(5, [])


class TestFactorizeNear:
    @given(st.integers(1, 4000), st.integers(1, 4))
    @settings(max_examples=60)
    def test_product_invariant(self, n, parts):
        factors = factorize_near(n, parts)
        assert len(factors) == parts
        assert int(np.prod(factors)) == n

    def test_random_variant_preserves_product(self):
        rng = np.random.default_rng(0)
        factors = factorize_near(360, 3, rng)
        assert int(np.prod(factors)) == 360

    def test_zero_parts_rejected(self):
        with pytest.raises(ValueError):
            factorize_near(10, 0)


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0, 1) == 0.5

    def test_low(self):
        assert clamp(-1, 0, 1) == 0

    def test_high(self):
        assert clamp(2, 0, 1) == 1

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            clamp(0, 1, 0)
