"""Regret tests: heuristic tools vs the exhaustive optimum, and the
CoSA-like constructed mapping's quality."""

import numpy as np
import pytest

from repro.costmodel import MaestroEngine
from repro.errors import MappingError
from repro.mapping import FlexTensorSearch, GammaSearch
from repro.mapping.cosa import CosaMapper, construct_mapping
from repro.mapping.exhaustive import enumerate_layer, optimal_network_mapping
from repro.workloads import Gemm, Network


@pytest.fixture(scope="module")
def micro_network():
    """A single small GEMM whose mapping space is fully enumerable."""
    return Network(
        name="micronet",
        layers=(Gemm(name="g", m=16, n=24, k=12),),
        family="test",
    )


@pytest.fixture(scope="module")
def micro_optimum(micro_network):
    from repro.hw import edge_design_space

    hw = edge_design_space().to_config(
        {
            "pe_x": 4,
            "pe_y": 4,
            "l1_bytes": 1024,
            "l2_kb": 64,
            "noc_bw": 64,
            "dataflow": "ws",
        }
    )
    engine = MaestroEngine(micro_network)
    engine.charge_clock = False
    outcome = enumerate_layer(engine, hw, "g")
    return hw, outcome


class TestExhaustive:
    def test_optimum_is_feasible(self, micro_optimum):
        _hw, outcome = micro_optimum
        assert outcome.result.feasible
        assert outcome.feasible_count > 0
        assert outcome.evaluated >= outcome.feasible_count

    def test_nothing_beats_the_optimum(self, micro_network, micro_optimum):
        hw, outcome = micro_optimum
        engine = MaestroEngine(micro_network)
        engine.charge_clock = False
        rng = np.random.default_rng(0)
        from repro.mapping import GemmMappingSpace

        space = GemmMappingSpace(micro_network.layers[0].to_gemm())
        for _ in range(200):
            result = engine.evaluate_layer(hw, space.sample(rng), "g")
            if result.feasible:
                assert result.latency_s >= outcome.result.latency_s - 1e-15

    def test_oversized_space_refused(self):
        big = Network(
            name="bignet", layers=(Gemm(name="g", m=720, n=720, k=720),)
        )
        engine = MaestroEngine(big)
        from repro.hw import edge_design_space

        hw = edge_design_space().sample(seed=0)
        with pytest.raises(MappingError):
            enumerate_layer(engine, hw, "g", max_points=1000)

    def test_network_level_optimum(self, micro_network, micro_optimum):
        hw, outcome = micro_optimum
        engine = MaestroEngine(micro_network)
        engine.charge_clock = False
        mappings, details = optimal_network_mapping(engine, hw)
        assert mappings["g"] == outcome.mapping
        assert details["g"].result.latency_s == outcome.result.latency_s


class TestHeuristicRegret:
    @pytest.mark.parametrize("tool_cls", [FlexTensorSearch, GammaSearch])
    def test_regret_bounded(self, tool_cls, micro_network, micro_optimum):
        """With a moderate budget the tools land within 1.5x of optimal
        (averaged over seeds)."""
        hw, outcome = micro_optimum
        ratios = []
        for seed in (0, 1, 2):
            engine = MaestroEngine(micro_network)
            engine.charge_clock = False
            search = tool_cls(micro_network, hw, engine, seed=seed)
            search.run(200)
            ratios.append(search.best_objective / outcome.result.latency_s)
        assert np.mean(ratios) < 1.5

    def test_more_budget_shrinks_regret(self, micro_network, micro_optimum):
        hw, outcome = micro_optimum

        def regret(budget, seed=4):
            engine = MaestroEngine(micro_network)
            engine.charge_clock = False
            search = FlexTensorSearch(micro_network, hw, engine, seed=seed)
            search.run(budget)
            return search.best_objective / outcome.result.latency_s

        assert regret(300) <= regret(20) + 1e-12


class TestCosaMapper:
    def test_constructed_mapping_feasible(self, micro_network, micro_optimum):
        hw, _outcome = micro_optimum
        engine = MaestroEngine(micro_network)
        engine.charge_clock = False
        mapper = CosaMapper(micro_network, hw, engine, seed=0)
        mapper.run(len(micro_network.layers))
        assert np.isfinite(mapper.best_objective)

    def test_construction_quality(self, micro_network, micro_optimum):
        """The one-shot construction lands within 3x of the true optimum."""
        hw, outcome = micro_optimum
        engine = MaestroEngine(micro_network)
        engine.charge_clock = False
        mapper = CosaMapper(micro_network, hw, engine, seed=0)
        mapper.run(1)
        assert mapper.best_objective <= 3.0 * outcome.result.latency_s

    def test_beats_single_random_sample_on_average(self, tiny_network, sample_hw):
        from repro.mapping import RandomMappingSearch

        engine_a = MaestroEngine(tiny_network)
        cosa = CosaMapper(tiny_network, sample_hw, engine_a, seed=0)
        cosa.run(len(tiny_network.layers))
        objectives = []
        for seed in range(5):
            engine_b = MaestroEngine(tiny_network)
            rand = RandomMappingSearch(tiny_network, sample_hw, engine_b, seed=seed)
            rand.run(len(tiny_network.layers))
            objectives.append(rand.best_objective)
        assert cosa.best_objective <= np.mean(objectives)

    def test_idle_after_construction(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network)
        mapper = CosaMapper(tiny_network, sample_hw, engine, seed=0)
        mapper.run(len(tiny_network.layers))
        converged = mapper.best_objective
        mapper.run(20)
        assert mapper.best_objective == converged

    def test_construct_mapping_respects_l1(self, sample_hw):
        from repro.costmodel.maestro import analyze_gemm
        from repro.workloads.layers import GemmShape

        for dims in ((64, 4096, 512), (8, 8, 8), (256, 49, 1152)):
            shape = GemmShape(*dims)
            mapping = construct_mapping(shape, sample_hw)
            result = analyze_gemm(sample_hw, mapping, shape)
            assert result.feasible, (dims, mapping)
