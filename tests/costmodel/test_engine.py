"""Tests for the PPA estimation-service layer (caching, clock, aggregation)."""

import numpy as np
import pytest

from repro.costmodel import DEFAULT_CACHE_CAPACITY, MaestroEngine
from repro.errors import ConfigurationError, EvaluationError
from repro.mapping import GemmMapping


@pytest.fixture()
def engine(tiny_network):
    return MaestroEngine(tiny_network)


MAPPING = GemmMapping(8, 16, 8)


class TestEvaluateLayer:
    def test_basic_result(self, engine, sample_hw):
        result = engine.evaluate_layer(sample_hw, MAPPING, "gemm")
        assert result.feasible
        assert result.latency_s > 0

    def test_unknown_layer_raises(self, engine, sample_hw):
        with pytest.raises(EvaluationError):
            engine.evaluate_layer(sample_hw, MAPPING, "nope")

    def test_cache_hit_on_repeat(self, engine, sample_hw):
        engine.evaluate_layer(sample_hw, MAPPING, "gemm")
        engine.evaluate_layer(sample_hw, MAPPING, "gemm")
        assert engine.num_queries == 2
        assert engine.num_cache_hits == 1
        assert engine.cache_hit_rate == 0.5

    def test_clock_charged_per_call_even_cached(self, engine, sample_hw):
        engine.evaluate_layer(sample_hw, MAPPING, "gemm")
        engine.evaluate_layer(sample_hw, MAPPING, "gemm")
        assert engine.clock.now_s == pytest.approx(2 * engine.eval_cost_s)

    def test_charge_clock_flag(self, engine, sample_hw):
        engine.charge_clock = False
        engine.evaluate_layer(sample_hw, MAPPING, "gemm")
        assert engine.clock.now_s == 0.0
        assert engine.num_queries == 1

    def test_different_hw_not_cached_together(self, engine, sample_hw, edge_space):
        other = edge_space.mutate(sample_hw, seed=0)
        engine.evaluate_layer(sample_hw, MAPPING, "gemm")
        engine.evaluate_layer(other, MAPPING, "gemm")
        assert engine.num_cache_hits == 0


class TestAggregate:
    def _full_mapping(self, engine):
        return {name: GemmMapping(4, 8, 4) for name in engine.layer_shapes}

    def test_network_evaluation(self, engine, sample_hw):
        mappings = self._full_mapping(engine)
        ppa = engine.evaluate_network(sample_hw, mappings)
        assert ppa.feasible
        assert ppa.latency_s > 0
        assert ppa.area_mm2 > 0

    def test_counts_weight_latency(self, engine, sample_hw):
        mappings = self._full_mapping(engine)
        ppa = engine.evaluate_network(sample_hw, mappings)
        gemm_result = ppa.layer_results["gemm"]
        # gemm has count=2 so contributes twice
        manual = sum(
            count * ppa.layer_results[name].latency_s
            for name, (_shape, count) in engine.layer_shapes.items()
        )
        assert ppa.latency_s == pytest.approx(manual)
        assert gemm_result.feasible

    def test_aggregate_does_not_charge_clock(self, engine, sample_hw):
        mappings = self._full_mapping(engine)
        engine.evaluate_network(sample_hw, mappings)
        before = engine.clock.now_s
        engine.aggregate(sample_hw, mappings)
        assert engine.clock.now_s == before

    def test_partial_mapping_infeasible(self, engine, sample_hw):
        ppa = engine.aggregate(sample_hw, {"gemm": MAPPING})
        assert not ppa.feasible
        assert np.isinf(ppa.latency_s)


MAPPINGS = [GemmMapping(4, 8, 4, unroll=u) for u in (1, 2, 4, 8)]


class TestCacheBounds:
    def test_default_capacity(self, tiny_network):
        engine = MaestroEngine(tiny_network)
        assert engine.cache_capacity == DEFAULT_CACHE_CAPACITY

    def test_eviction_when_full(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network, cache_capacity=2)
        for mapping in MAPPINGS[:3]:
            engine.evaluate_layer(sample_hw, mapping, "gemm")
        assert len(engine._cache) == 2
        assert engine.num_cache_evictions == 1
        # the oldest entry (MAPPINGS[0]) was evicted: re-query misses
        engine.evaluate_layer(sample_hw, MAPPINGS[0], "gemm")
        assert engine.num_cache_hits == 0
        assert engine.num_cache_evictions == 2

    def test_lru_order_respects_recent_use(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network, cache_capacity=2)
        engine.evaluate_layer(sample_hw, MAPPINGS[0], "gemm")
        engine.evaluate_layer(sample_hw, MAPPINGS[1], "gemm")
        engine.evaluate_layer(sample_hw, MAPPINGS[0], "gemm")  # refresh [0]
        engine.evaluate_layer(sample_hw, MAPPINGS[2], "gemm")  # evicts [1]
        engine.evaluate_layer(sample_hw, MAPPINGS[0], "gemm")
        assert engine.num_cache_hits == 2  # the refresh and the last call

    def test_unbounded_cache(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network, cache_capacity=None)
        for mapping in MAPPINGS:
            engine.evaluate_layer(sample_hw, mapping, "gemm")
        assert engine.num_cache_evictions == 0
        assert len(engine._cache) == len(MAPPINGS)

    def test_invalid_capacity(self, tiny_network):
        with pytest.raises(ConfigurationError):
            MaestroEngine(tiny_network, cache_capacity=0)

    def test_stats_surface(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network, cache_capacity=8)
        engine.evaluate_layer(sample_hw, MAPPINGS[0], "gemm")
        engine.evaluate_layer(sample_hw, MAPPINGS[0], "gemm")
        stats = engine.stats()
        assert stats["engine"] == "MaestroEngine"
        assert stats["workload"] == tiny_network.name
        assert stats["num_queries"] == 2
        assert stats["num_cache_hits"] == 1
        assert stats["cache_hit_rate"] == 0.5
        assert stats["num_cache_evictions"] == 0
        assert stats["cache_size"] == 1
        assert stats["cache_capacity"] == 8

    def test_metrics_counters_track_queries(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network)
        engine.evaluate_layer(sample_hw, MAPPINGS[0], "gemm")
        engine.evaluate_layer(sample_hw, MAPPINGS[0], "gemm")
        assert engine.metrics.counter_value("engine_queries_total") == 2
        assert engine.metrics.counter_value("engine_cache_hits_total") == 1
        assert engine.metrics.counter_value("engine_cache_misses_total") == 1

    def test_batched_evaluate_layers_matches_singles(self, tiny_network, sample_hw):
        single = MaestroEngine(tiny_network)
        batched = MaestroEngine(tiny_network)
        requests = [(mapping, "gemm") for mapping in MAPPINGS]
        singles = [single.evaluate_layer(sample_hw, m, name) for m, name in requests]
        batch = batched.evaluate_layers(sample_hw, requests)
        assert [r.latency_s for r in batch] == [r.latency_s for r in singles]
        assert batched.num_queries == single.num_queries
