"""Experiment harness: method registry, runners and HV-curve utilities.

One entry point, :func:`run_method`, builds the engine + co-optimizer for a
(method, scenario, workload, preset) cell and returns the uniform
:class:`~repro.core.base.CoSearchResult`.  Methods:

=====================  =====================================================
``unico``              full UNICO (MSH + HighFidelityUpdate + robustness R)
``unico_no_r``         UNICO without the sensitivity objective (Fig. 8 step 1)
``msh_champion``       MSH + ChampionUpdate ablation (Fig. 10)
``sh_champion``        SH + ChampionUpdate ablation (Fig. 10)
``hasco``              HASCO-like single-point BO baseline
``nsgaii``             NSGA-II co-design baseline
``mobohb``             multi-objective BOHB baseline
``random``             uniform-random floor
=====================  =====================================================

Scenarios: ``edge`` / ``cloud`` (open-source spatial platform, analytical
engine, power caps 2 W / 20 W) and ``ascend`` (cycle-accurate engine,
area cap 200 mm^2, depth-first fusion mapping tool, 4 slave workers).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.camodel import AscendCAEngine
from repro.core import (
    CoSearchResult,
    HascoBaseline,
    HascoConfig,
    MobohbBaseline,
    MobohbConfig,
    NSGA2Codesign,
    NSGA2CodesignConfig,
    RandomCodesign,
    RandomCodesignConfig,
    Unico,
    UnicoConfig,
)
from repro.costmodel import MaestroEngine
from repro.errors import ConfigurationError
from repro.experiments.presets import Preset, get_preset
from repro.hw import (
    ASCEND_AREA_CAP_MM2,
    ascend_design_space,
    design_space_for,
    power_cap_for,
)
from repro.optim.hypervolume import hypervolume
from repro.optim.pareto import pareto_front
from repro.workloads import Network, get_network, merge_networks

METHODS: Tuple[str, ...] = (
    "unico",
    "unico_no_r",
    "msh_champion",
    "sh_champion",
    "hasco",
    "nsgaii",
    "mobohb",
    "random",
)

_UNICO_VARIANTS: Dict[str, Dict[str, object]] = {
    "unico": {
        "use_msh": True,
        "surrogate_update": "high_fidelity",
        "include_robustness": True,
    },
    "unico_no_r": {
        "use_msh": True,
        "surrogate_update": "high_fidelity",
        "include_robustness": False,
    },
    "msh_champion": {
        "use_msh": True,
        "surrogate_update": "champion",
        "include_robustness": False,
    },
    "sh_champion": {
        "use_msh": False,
        "surrogate_update": "champion",
        "include_robustness": False,
    },
}


def resolve_workload(workload: Union[str, Network, Sequence[str]]) -> Network:
    """Accept a network name, a Network, or a list of names (merged)."""
    if isinstance(workload, Network):
        return workload
    if isinstance(workload, str):
        return get_network(workload)
    names = list(workload)
    if len(names) == 1:
        return get_network(names[0])
    return merge_networks("+".join(names), [get_network(n) for n in names])


def make_platform(scenario: str, network: Network):
    """Return (design space, engine, caps dict, tool, workers) for a scenario."""
    if scenario in ("edge", "cloud"):
        space = design_space_for(scenario)
        engine = MaestroEngine(network)
        caps = {"power_cap_w": power_cap_for(scenario), "area_cap_mm2": None}
        # UNICO runs its successive-halving jobs via multiprocessing on the
        # server's cores (Section 3.5); the sequential-BO baselines cannot.
        return space, engine, caps, "flextensor", 8
    if scenario == "ascend":
        space = ascend_design_space()
        engine = AscendCAEngine(network, noise_fraction=0.08)
        caps = {"power_cap_w": None, "area_cap_mm2": ASCEND_AREA_CAP_MM2}
        return space, engine, caps, "fusion", 4
    raise ConfigurationError(
        f"unknown scenario {scenario!r}; use 'edge', 'cloud' or 'ascend'"
    )


def build_optimizer(
    method: str,
    scenario: str,
    workload: Union[str, Network, Sequence[str]],
    preset: Union[str, Preset] = "smoke",
    seed: int = 0,
    time_budget_s: Optional[float] = None,
    eval_batch_size: int = 1,
    tool: Optional[str] = None,
):
    """Construct (without running) the co-optimizer for one cell.

    This is the factory :func:`run_method` drives and the piece
    ``repro runs resume`` uses to rebuild an optimizer from a tracked
    run's manifest before restoring its checkpoint.

    ``eval_batch_size`` is the speculative-batch width of the inner
    mapping search (one PPA-engine batch call per that many candidates);
    1 keeps the classic scalar loop and reproduces its trajectories
    exactly.

    ``tool`` overrides the scenario's default SW mapping tool (e.g.
    ``"oneloop"`` for the learned gradient-descent search); ``None``
    keeps the platform default.
    """
    if method not in METHODS:
        raise ConfigurationError(f"unknown method {method!r}; use one of {METHODS}")
    preset = get_preset(preset) if isinstance(preset, str) else preset
    network = resolve_workload(workload)
    space, engine, caps, default_tool, workers = make_platform(scenario, network)
    tool = default_tool if tool is None else tool

    if method in _UNICO_VARIANTS:
        variant = _UNICO_VARIANTS[method]
        if scenario == "ascend":
            batch, iters, budget = (
                preset.ascend_batch,
                preset.ascend_iterations,
                preset.ascend_budget,
            )
        else:
            batch, iters, budget = (
                preset.unico_batch,
                preset.unico_iterations,
                preset.unico_budget,
            )
        initial_configs = ()
        if scenario == "ascend":
            # industrial tuning warm-starts from the expert default (§4.6)
            from repro.hw import default_ascend_config

            initial_configs = (default_ascend_config(),)
        config = UnicoConfig(
            batch_size=batch,
            max_iterations=iters,
            max_budget=budget,
            workers=workers,
            time_budget_s=time_budget_s,
            initial_configs=initial_configs,
            eval_batch_size=eval_batch_size,
            **variant,
        )
        optimizer = Unico(
            space, network, engine, config, tool=tool, seed=seed, **caps
        )
    elif method == "hasco":
        config = HascoConfig(
            max_candidates=preset.hasco_candidates,
            full_budget=preset.hasco_budget,
            time_budget_s=time_budget_s,
        )
        optimizer = HascoBaseline(
            space, network, engine, config, tool=tool, seed=seed,
            eval_batch_size=eval_batch_size, **caps
        )
    elif method == "nsgaii":
        config = NSGA2CodesignConfig(
            population_size=preset.nsga_population,
            max_generations=preset.nsga_generations,
            eval_budget=preset.nsga_budget,
            time_budget_s=time_budget_s,
        )
        optimizer = NSGA2Codesign(
            space, network, engine, config, tool=tool, seed=seed,
            eval_batch_size=eval_batch_size, **caps
        )
    elif method == "mobohb":
        config = MobohbConfig(
            max_budget=preset.mobohb_budget,
            max_hyperband_loops=preset.mobohb_loops,
            time_budget_s=time_budget_s,
        )
        optimizer = MobohbBaseline(
            space, network, engine, config, tool=tool, seed=seed,
            eval_batch_size=eval_batch_size, **caps
        )
    else:  # random
        config = RandomCodesignConfig(
            max_candidates=preset.hasco_candidates,
            full_budget=preset.hasco_budget,
            time_budget_s=time_budget_s,
        )
        optimizer = RandomCodesign(
            space, network, engine, config, tool=tool, seed=seed,
            eval_batch_size=eval_batch_size, **caps
        )
    return optimizer


def _resolve_screen(screen, screen_topk: Optional[int]):
    """Normalize the ``screen`` argument to (model, provenance dict).

    ``screen`` may be ``None`` (no screening), a path to a saved
    :class:`~repro.learned.LearnedCostModel`, or an already-loaded model.
    The provenance dict is what lands in the run manifest and the
    ``learned_model`` journal event: enough to re-load the model on
    resume and to audit which model screened a run.
    """
    if screen is None:
        return None, None
    from repro.learned import FEATURE_VERSION, LearnedCostModel

    if isinstance(screen, LearnedCostModel):
        model, path = screen, None
    else:
        model, path = LearnedCostModel.load(screen), str(screen)
    info = {
        "model_path": path,
        "model_sha256": _file_sha256(path) if path else None,
        "feature_version": FEATURE_VERSION,
        "topk": screen_topk,
        "meta": dict(model.meta),
    }
    return model, info


def _file_sha256(path) -> str:
    import hashlib

    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _workload_name(workload: Union[str, Network, Sequence[str]]):
    """Manifest-friendly workload identity (name or list of names)."""
    if isinstance(workload, Network):
        return workload.name
    if isinstance(workload, str):
        return workload
    return [str(name) for name in workload]


def run_method(
    method: str,
    scenario: str,
    workload: Union[str, Network, Sequence[str]],
    preset: Union[str, Preset] = "smoke",
    seed: int = 0,
    time_budget_s: Optional[float] = None,
    tracker=None,
    run_store=None,
    checkpoint_every: int = 1,
    eval_batch_size: int = 1,
    trace: bool = False,
    tool: Optional[str] = None,
    record_samples: bool = False,
    screen=None,
    screen_topk: Optional[int] = None,
) -> CoSearchResult:
    """Run one (method, scenario, workload) cell and return its result.

    Tracking: pass an explicit :class:`~repro.tracking.Tracker`, or a
    ``run_store`` (a :class:`~repro.tracking.RunStore` or a directory
    path) to allocate a ``runs/<run-id>/`` directory with a manifest,
    journal and periodic checkpoints; the run id lands in
    ``result.extras["run_id"]``.  Passing both is ambiguous and rejected.
    Methods whose ``optimize()`` does not drive the tracker lifecycle
    itself (the non-UNICO baselines) get ``run_start`` / ``run_end``
    emitted by the harness, so their manifests still reach a terminal
    status.

    Tracing: ``trace=True`` (requires ``run_store``) installs a
    :class:`~repro.obs.trace.Tracer` whose spans land both in the run's
    journal (``span`` events) and in ``runs/<run-id>/trace.json``
    (Chrome trace format); the trace id lands in
    ``result.extras["trace_id"]``.  Tracing is observational — results
    are bit-identical to an untraced run with the same seeds.

    Learned subsystem (:mod:`repro.learned`):

    * ``record_samples=True`` (requires ``run_store``) installs a
      :class:`~repro.tracking.JournalSampleSink` on the engine so every
      computed candidate lands in the journal as an ``engine_sample``
      event — the training corpus for ``repro learned train``.
    * ``screen`` (a model path or a loaded
      :class:`~repro.learned.LearnedCostModel`) wraps the engine in a
      :class:`~repro.learned.ScreeningPPAEngine` that forwards only the
      model's predicted-best ``screen_topk`` candidates per batch to the
      analytical engine.  Every surfaced number stays exact analytical
      PPA; with ``screen=None`` the run is bit-identical to today.
    * ``tool`` overrides the scenario's mapping tool (e.g. ``oneloop``).
    """
    if tracker is not None and run_store is not None:
        raise ConfigurationError(
            "pass either tracker= or run_store=, not both; run_store builds "
            "its own JournalTracker and would silently ignore the tracker"
        )
    if trace and run_store is None:
        raise ConfigurationError(
            "trace=True requires run_store=: spans are journaled and the "
            "Chrome trace is written into the run directory"
        )
    optimizer = build_optimizer(
        method,
        scenario,
        workload,
        preset,
        seed=seed,
        time_budget_s=time_budget_s,
        eval_batch_size=eval_batch_size,
        tool=tool,
    )
    screen_model, screen_info = _resolve_screen(screen, screen_topk)
    run = None
    if tracker is None and run_store is not None:
        import dataclasses

        from repro.tracking import JournalTracker, RunStore
        from repro.utils.records import to_jsonable

        store = run_store if isinstance(run_store, RunStore) else RunStore(run_store)
        preset_obj = get_preset(preset) if isinstance(preset, str) else preset
        run = store.create_run(
            {
                "method": method,
                "scenario": scenario,
                "workload": _workload_name(workload),
                "preset": preset_obj.name,
                # full parameters so resume never depends on the name being
                # registered (custom Preset objects are legal inputs)
                "preset_params": to_jsonable(dataclasses.asdict(preset_obj)),
                "seed": seed,
                "time_budget_s": time_budget_s,
                "eval_batch_size": eval_batch_size,
                "tool": tool,
                "record_samples": bool(record_samples),
                "screen": screen_info,
                "space": optimizer.space.name,
                "engine": type(optimizer.engine).__name__,
                "config": to_jsonable(dataclasses.asdict(optimizer.config)),
            }
        )
        tracker = JournalTracker(run, checkpoint_every=checkpoint_every)
    if screen_model is not None:
        from repro.learned import ScreeningPPAEngine

        optimizer.engine = ScreeningPPAEngine(
            optimizer.engine,
            model=screen_model,
            topk=screen_topk,
        )
    if tracker is not None:
        optimizer.tracker = tracker
    journal = getattr(tracker, "journal", None) if tracker is not None else None
    if record_samples:
        if journal is None:
            raise ConfigurationError(
                "record_samples=True needs a journal: pass run_store= (or a "
                "JournalTracker) so engine_sample events have somewhere to go"
            )
        from repro.tracking import JournalSampleSink

        optimizer.engine.sample_sink = JournalSampleSink(journal)
    if screen_info is not None and journal is not None:
        # model provenance in the journal: resume and post-hoc analysis can
        # see exactly which model screened this run
        journal.append("learned_model", screen_info)
    tracer = None
    if trace and run is not None:
        from repro.obs.chrome import ChromeTraceSink
        from repro.obs.trace import JournalSpanSink, Tracer

        tracer = Tracer(
            clock=optimizer.clock,
            sinks=[
                JournalSpanSink(tracker.journal),
                ChromeTraceSink(run.dir / "trace.json"),
            ],
        )
        optimizer.set_tracer(tracer)
    harness_lifecycle = (
        tracker is not None and not optimizer.emits_lifecycle_events
    )
    try:
        if harness_lifecycle:
            tracker.on_run_start(optimizer)
        result = optimizer.optimize()
    except BaseException as error:
        if tracker is not None:
            tracker.on_run_failed(optimizer, error)
        raise
    finally:
        if tracer is not None:
            # journal spans were appended live; this writes trace.json
            tracer.flush()
    if harness_lifecycle:
        tracker.on_run_end(optimizer, result)
    result.extras["method_requested"] = method
    result.extras["scenario"] = scenario
    if screen_info is not None:
        result.extras["screen_model"] = screen_info
        # the baselines don't thread engine extras through optimize();
        # surface the wrapper's counters for every method here
        if "screening" not in result.extras:
            result.extras["screening"] = optimizer.engine.screen_stats()
    if run is not None:
        result.extras["run_id"] = run.run_id
    if tracer is not None:
        result.extras["trace_id"] = tracer.trace_id
        result.extras["trace_path"] = str(run.dir / "trace.json")
    result.method = method
    return result


# -------------------------------------------------------------- HW transfer
def sw_search_on(
    hw,
    workload: Union[str, Network, Sequence[str]],
    scenario: str,
    budget: int,
    seed: int = 0,
):
    """Run a fresh SW mapping search for a *fixed* hardware on a workload.

    This is the validation step of Sections 4.3-4.4: a hardware found by
    co-optimization is applied to an unseen network with an individual
    mapping search.  Returns the finished
    :class:`~repro.core.evaluation.SWSearchTrial`.
    """
    from repro.core.evaluation import SWSearchTrial

    network = resolve_workload(workload)
    _space, engine, _caps, tool, _workers = make_platform(scenario, network)
    trial = SWSearchTrial(hw, network, engine, tool=tool, seed=seed)
    trial.run(budget)
    return trial


# ------------------------------------------------------------------ HV curves
def combined_reference(
    results: Sequence[CoSearchResult], margin: float = 1.1
) -> np.ndarray:
    """A shared HV reference point beyond every method's observations."""
    all_points = [r.feasible_timeline_points() for r in results]
    stacked = np.vstack([p for p in all_points if p.size]) if any(
        p.size for p in all_points
    ) else np.zeros((0, 3))
    if stacked.size == 0:
        raise ConfigurationError("no feasible points across results")
    return stacked.max(axis=0) * margin + 1e-12


def ideal_front(results: Sequence[CoSearchResult]) -> np.ndarray:
    """The reference Pareto front: non-dominated union of all methods."""
    points = [r.feasible_timeline_points() for r in results]
    stacked = np.vstack([p for p in points if p.size])
    return pareto_front(stacked)


def hv_difference_curve(
    result: CoSearchResult,
    reference: np.ndarray,
    ideal_hv: float,
    time_grid_s: Sequence[float],
) -> List[Tuple[float, float]]:
    """HV difference vs simulated time, sampled on ``time_grid_s``.

    At each grid time, the achieved front is the non-dominated set of all
    feasible evaluations completed by then.
    """
    entries = sorted(result.timeline, key=lambda e: e.time_s)
    curve: List[Tuple[float, float]] = []
    accumulated: List[np.ndarray] = []
    cursor = 0
    for t in time_grid_s:
        while cursor < len(entries) and entries[cursor].time_s <= t:
            if entries[cursor].feasible:
                accumulated.append(entries[cursor].ppa_vector)
            cursor += 1
        if accumulated:
            achieved = hypervolume(np.vstack(accumulated), reference)
        else:
            achieved = 0.0
        curve.append((float(t), max(0.0, ideal_hv - achieved)))
    return curve


def final_hypervolume(result: CoSearchResult, reference: np.ndarray) -> float:
    """Hypervolume of all feasible evaluations w.r.t. ``reference``."""
    points = result.feasible_timeline_points()
    if points.size == 0:
        return 0.0
    return hypervolume(points, reference)


def time_grid(
    results: Sequence[CoSearchResult], num_points: int = 20
) -> np.ndarray:
    """A common simulated-time grid spanning every method's run."""
    horizon = max(r.total_time_s for r in results)
    return np.linspace(horizon / num_points, horizon, num_points)
