"""Smoke-execute the fastest example scripts.

Guards the public-API surface the examples exercise; the slower examples
(full co-search demos) are covered indirectly by the experiment tests.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "ir_scheduling.py",
    "rest_service.py",
    "bottleneck_analysis.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_all_examples_have_docstrings_and_main():
    for script in EXAMPLES_DIR.glob("*.py"):
        source = script.read_text()
        assert source.startswith("#!/usr/bin/env python"), script.name
        assert '"""' in source.split("\n", 2)[1] + source, script.name
        assert 'if __name__ == "__main__":' in source, script.name
