"""Tests for the spatial-accelerator config and edge/cloud spaces."""

import pytest

from repro.errors import ConfigurationError, DesignSpaceError
from repro.hw import (
    CLOUD_POWER_CAP_W,
    EDGE_POWER_CAP_W,
    SpatialHWConfig,
    cloud_design_space,
    design_space_for,
    edge_design_space,
    power_cap_for,
)


class TestSpatialHWConfig:
    def test_derived_properties(self):
        hw = SpatialHWConfig(4, 8, 1024, 64, 64, "ws")
        assert hw.num_pes == 32
        assert hw.l1_total_bytes == 32 * 1024
        assert hw.l2_bytes == 64 * 1024

    def test_invalid_dataflow(self):
        with pytest.raises(ConfigurationError):
            SpatialHWConfig(1, 1, 64, 8, 64, "rowstationary")

    def test_invalid_pe(self):
        with pytest.raises(ConfigurationError):
            SpatialHWConfig(0, 1, 64, 8, 64, "ws")

    def test_invalid_buffer(self):
        with pytest.raises(ConfigurationError):
            SpatialHWConfig(1, 1, 0, 8, 64, "ws")

    def test_short_name_mentions_shape(self):
        hw = SpatialHWConfig(4, 8, 1024, 64, 64, "os")
        assert "pe4x8" in hw.short_name()
        assert "os" in hw.short_name()


class TestSpaces:
    def test_edge_size_order_of_magnitude(self):
        # Section 4.1: edge HW space ~1e5
        size = edge_design_space().size
        assert 1e4 <= size <= 1e7

    def test_cloud_much_larger_than_edge(self):
        assert cloud_design_space().size > 100 * edge_design_space().size

    def test_cloud_size_order_of_magnitude(self):
        # Section 4.1: cloud HW space ~1e9
        size = cloud_design_space().size
        assert 1e7 <= size <= 1e10

    def test_edge_buffers_are_two_three_smooth(self):
        space = edge_design_space()
        for value in space.dimension("l1_bytes").choices:
            reduced = value
            for p in (2, 3):
                while reduced % p == 0:
                    reduced //= p
            assert reduced == 1

    def test_roundtrip_encoding(self):
        space = cloud_design_space()
        for seed in range(20):
            hw = space.sample(seed=seed)
            assert space.decode(space.encode(hw)) == hw

    def test_design_space_for(self):
        assert design_space_for("edge").name == "spatial-edge"
        assert design_space_for("cloud").name == "spatial-cloud"
        with pytest.raises(ConfigurationError):
            design_space_for("mars")

    def test_power_caps(self):
        assert power_cap_for("edge") == EDGE_POWER_CAP_W == 2.0
        assert power_cap_for("cloud") == CLOUD_POWER_CAP_W == 20.0
        with pytest.raises(ConfigurationError):
            power_cap_for("tpu")

    def test_edge_config_defaults_banks(self):
        space = edge_design_space()
        hw = space.sample(seed=0)
        assert hw.l1_banks == 2  # edge space does not search banking

    def test_cloud_config_searches_banks(self):
        space = cloud_design_space()
        banks = {space.sample(seed=s).l1_banks for s in range(60)}
        assert len(banks) > 1
