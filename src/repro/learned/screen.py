"""Learned pre-screening in front of any PPA engine.

:class:`ScreeningPPAEngine` wraps an analytical engine and intercepts
its batch entry point: each ``evaluate_candidates`` batch is ranked by
the learned model and only the predicted-best ``top-k`` candidates —
plus the most uncertain of the rest (uncertainty escalation) — are
forwarded to the wrapped engine.  Candidates the screen drops come back
as infeasible results tagged ``infeasible_reason="screened"``, which the
anytime search folds as non-improving, so:

* **Every number that can reach an incumbent, a trial objective, or a
  Pareto front is exact analytical PPA.**  The model only ever decides
  *which* candidates get the analytical treatment, never what their
  PPA is.
* **Screening off is bit-identical to no wrapper at all**: with no model
  (or ``enabled=False``) every call forwards verbatim to the inner
  engine, whose caches, counters and RNG-visible behavior are untouched.

Scalar paths (``evaluate_layer``, incumbent initialization via
``evaluate_layers``, aggregation) always pass through — they carry
incumbent state the search must know exactly.

The wrapper is duck-typed rather than a ``PPAEngine`` subclass: it holds
no network/cache state of its own and forwards every unknown attribute
to the inner engine.  The attributes co-optimizers *assign* after
construction (``charge_clock``, ``tracer``, ``sample_sink``) are
explicit properties that forward the assignment inward, so e.g.
``Unico`` disabling engine clock charging keeps working through the
wrapper.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.costmodel.results import LayerPPA
from repro.errors import EvaluationError, ReproError
from repro.learned.features import featurize_batch
from repro.learned.model import LearnedCostModel

#: infeasible_reason tag on screened-out results; the query-accounting
#: layer and tests key on the prefix.
SCREENED_REASON = "screened"

#: A screened-out candidate's placeholder result: infinite PPA, so it can
#: never displace an analytically-evaluated incumbent or reach a front.
_SCREENED_RESULT = LayerPPA(
    latency_s=float("inf"),
    energy_j=float("inf"),
    feasible=False,
    infeasible_reason=SCREENED_REASON,
)


class ScreeningPPAEngine:
    """Rank batches with a learned model; evaluate only the promising tail.

    Parameters
    ----------
    inner:
        The analytical engine to wrap (any ``PPAEngine``-shaped object).
    model:
        A trained :class:`~repro.learned.model.LearnedCostModel`;
        ``None`` disables screening (pure pass-through).
    objective:
        Ranking objective: ``latency``, ``energy`` or ``edp``.
    topk / topk_fraction:
        Absolute or fractional count of predicted-best candidates to
        forward per batch (absolute wins when both are set).
    escalate_fraction:
        Extra fraction of the batch forwarded from the *non*-selected
        remainder, picked by highest predictive uncertainty.
    min_batch:
        Batches smaller than this are forwarded whole — ranking overhead
        is not worth it and tiny batches carry incumbent-critical state.
    infeasible_penalty:
        Log-space score penalty scaled by the predicted infeasibility
        probability, pushing likely-infeasible candidates to the back.
    audit_every:
        Every Nth screened batch is fully evaluated instead (an audit):
        the screen's choice is scored against analytical ground truth to
        measure recall, at the price of that batch's savings.  0 = off.
    screen_cost_s:
        Simulated seconds charged per screened-out candidate (model
        inference is orders of magnitude cheaper than an analytical
        query, but not free); only charged while the inner engine owns
        clock accounting.
    """

    #: marker for the query-accounting layer (core.evaluation)
    is_screening = True

    def __init__(
        self,
        inner,
        model: Optional[LearnedCostModel] = None,
        objective: str = "latency",
        topk: Optional[int] = None,
        topk_fraction: float = 0.25,
        escalate_fraction: float = 0.125,
        min_batch: int = 4,
        infeasible_penalty: float = 20.0,
        audit_every: int = 0,
        screen_cost_s: float = 0.0,
        enabled: bool = True,
    ):
        if topk is not None and topk < 1:
            raise EvaluationError(f"topk must be >= 1, got {topk}")
        if not 0.0 < topk_fraction <= 1.0:
            raise EvaluationError(
                f"topk_fraction must be in (0, 1], got {topk_fraction}"
            )
        self.inner = inner
        self.learned_model = model
        self.objective = objective
        self.topk = topk
        self.topk_fraction = topk_fraction
        self.escalate_fraction = escalate_fraction
        self.min_batch = min_batch
        self.infeasible_penalty = infeasible_penalty
        self.audit_every = audit_every
        self.screen_cost_s = screen_cost_s
        self.enabled = enabled
        self._counter_lock = threading.Lock()
        self._counts: Dict[str, int] = {
            "batches_screened": 0,
            "candidates_seen": 0,
            "forwarded": 0,
            "forwarded_feasible": 0,
            "escalated": 0,
            "skipped": 0,
            "fallback_batches": 0,
            "audit_batches": 0,
            "audit_recall_hits": 0,
        }

    # ------------------------------------------------------------- delegation
    def __getattr__(self, name):
        # only reached for names not defined on the wrapper: everything
        # else (network, clock, caches, scalar evaluation, aggregation,
        # area, num_queries, metrics, ...) is the inner engine's.
        return getattr(self.inner, name)

    @property
    def clock(self):
        return self.inner.clock

    @clock.setter
    def clock(self, value) -> None:
        # multi-workload wiring assigns engine.clock = shared_clock; the
        # assignment must land on the inner engine, not shadow it here
        self.inner.clock = value

    @property
    def charge_clock(self) -> bool:
        return self.inner.charge_clock

    @charge_clock.setter
    def charge_clock(self, value: bool) -> None:
        self.inner.charge_clock = value

    @property
    def tracer(self):
        return self.inner.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.inner.tracer = value

    @property
    def sample_sink(self):
        return self.inner.sample_sink

    @sample_sink.setter
    def sample_sink(self, value) -> None:
        self.inner.sample_sink = value

    # ------------------------------------------------------------- accounting
    def _count(self, **increments: int) -> None:
        metrics = getattr(self.inner, "metrics", None)
        with self._counter_lock:
            for name, value in increments.items():
                self._counts[name] += value
        if metrics is not None:
            for name, value in increments.items():
                metrics.counter(f"screen_{name}_total").inc(value)

    def screen_stats(self) -> Dict:
        """Screening counters plus derived precision/recall/savings."""
        with self._counter_lock:
            stats = dict(self._counts)
        stats["enabled"] = bool(self.screening_active)
        stats["precision"] = (
            stats["forwarded_feasible"] / stats["forwarded"]
            if stats["forwarded"]
            else 0.0
        )
        stats["audit_recall"] = (
            stats["audit_recall_hits"] / stats["audit_batches"]
            if stats["audit_batches"]
            else None
        )
        stats["evals_saved"] = stats["skipped"]
        return stats

    def stats(self) -> Dict:
        stats = self.inner.stats()
        stats["screening"] = self.screen_stats()
        return stats

    @property
    def screening_active(self) -> bool:
        return self.enabled and self.learned_model is not None

    # ------------------------------------------------------------- evaluation
    def evaluate_candidates(
        self, hw, layer_name: str, mappings: Sequence
    ) -> List[LayerPPA]:
        mappings = list(mappings)
        batch = len(mappings)
        if not self.screening_active or batch < max(self.min_batch, 2):
            return self.inner.evaluate_candidates(hw, layer_name, mappings)
        keep = self._plan(hw, layer_name, mappings)
        if keep is None:
            self._count(fallback_batches=1)
            return self.inner.evaluate_candidates(hw, layer_name, mappings)
        selected, escalated = keep
        forwarded = sorted(set(selected) | set(escalated))
        audit = False
        if self.audit_every > 0:
            with self._counter_lock:
                audit = (
                    self._counts["batches_screened"] % self.audit_every
                    == self.audit_every - 1
                )
        if len(forwarded) >= batch:
            # the screen kept everything; identical to a plain forward
            self._count(
                batches_screened=1,
                candidates_seen=batch,
                forwarded=batch,
                escalated=len(escalated),
            )
            results = self.inner.evaluate_candidates(hw, layer_name, mappings)
            self._count(
                forwarded_feasible=sum(1 for r in results if r.feasible)
            )
            return results
        tracer = self.inner.tracer
        if tracer.enabled:
            with tracer.span(
                "screen",
                layer=layer_name,
                batch=batch,
                forwarded=len(forwarded),
                audit=audit,
            ):
                return self._apply(hw, layer_name, mappings, forwarded,
                                   escalated, audit)
        return self._apply(hw, layer_name, mappings, forwarded, escalated, audit)

    def _plan(self, hw, layer_name: str, mappings: List):
        """Rank a batch; returns (selected, escalated) index lists or None."""
        model = self.learned_model
        try:
            shape, _count = self.inner.layer_shapes[layer_name]
            features = featurize_batch(hw, mappings, shape)
            score, std = model.predict_objective(features, self.objective)
            if self.infeasible_penalty:
                proba = model.feasible_proba(features)
                score = score + self.infeasible_penalty * (1.0 - proba)
        except (AttributeError, TypeError, ValueError, KeyError, ReproError):
            # foreign hardware/mapping types (or a stale model) cannot be
            # featurized; fall back to honest full evaluation
            return None
        batch = len(mappings)
        k = self.topk if self.topk is not None else int(
            math.ceil(self.topk_fraction * batch)
        )
        k = max(1, min(k, batch))
        order = np.argsort(score, kind="stable")
        selected = [int(i) for i in order[:k]]
        remainder = order[k:]
        n_escalate = int(math.ceil(self.escalate_fraction * batch))
        if n_escalate and remainder.size:
            by_uncertainty = remainder[
                np.argsort(-std[remainder], kind="stable")[:n_escalate]
            ]
            escalated = [int(i) for i in by_uncertainty]
        else:
            escalated = []
        return selected, escalated

    def _apply(
        self,
        hw,
        layer_name: str,
        mappings: List,
        forwarded: List[int],
        escalated: List[int],
        audit: bool,
    ) -> List[LayerPPA]:
        batch = len(mappings)
        if audit:
            # ground-truth pass: evaluate everything, score the screen's
            # choice (would the analytical best have been forwarded?)
            results = self.inner.evaluate_candidates(hw, layer_name, mappings)
            best, best_value = None, float("inf")
            for index, result in enumerate(results):
                if result.feasible and result.latency_s < best_value:
                    best, best_value = index, result.latency_s
            hit = best is None or best in forwarded
            self._count(
                batches_screened=1,
                candidates_seen=batch,
                forwarded=batch,
                escalated=len(escalated),
                audit_batches=1,
                audit_recall_hits=1 if hit else 0,
                forwarded_feasible=sum(1 for r in results if r.feasible),
            )
            return results
        kept = self.inner.evaluate_candidates(
            hw, layer_name, [mappings[i] for i in forwarded]
        )
        skipped = batch - len(forwarded)
        if self.screen_cost_s and self.inner.charge_clock and skipped:
            self.inner.clock.advance(
                self.screen_cost_s * skipped, label="screen"
            )
        self._count(
            batches_screened=1,
            candidates_seen=batch,
            forwarded=len(forwarded),
            escalated=len(escalated),
            skipped=skipped,
            forwarded_feasible=sum(1 for r in kept if r.feasible),
        )
        results: List[LayerPPA] = [_SCREENED_RESULT] * batch
        for index, result in zip(forwarded, kept):
            results[index] = result
        return results


__all__ = ["SCREENED_REASON", "ScreeningPPAEngine"]
