"""PPA estimation engines.

Section 3.5 describes the PPA estimation engine as a standalone service that
takes (hardware configuration, SW mapping, tensor workload) and returns
power/performance/area.  This module provides that interface:

* :class:`PPAEngine` — the abstract service contract, bound to one workload.
* :class:`MaestroEngine` — the analytical engine (prototyping stage); each
  layer query charges ~5 s of modeled wall-clock (see ANALYTICAL_EVAL_COST_S).
* Caching is built in: identical (hw, layer, mapping) queries are computed
  once, while the simulated clock is still charged per call — mirroring a
  real deployment where the estimator service is invoked each time.

The cycle-accurate engine for the Ascend-like platform lives in
:mod:`repro.camodel.engine` and implements the same contract.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.mapping.gemm_mapping import GemmMapping, NetworkMapping

from repro.costmodel.maestro import (
    LayerPPA,
    NetworkPPA,
    analyze_gemm,
    evaluate_network,
    spatial_area_mm2,
)
from repro.costmodel.technology import DEFAULT_TECHNOLOGY, Technology
from repro.errors import EvaluationError
from repro.hw.spatial import SpatialHWConfig
from repro.utils.clock import SimulatedClock
from repro.workloads.layers import GemmShape
from repro.workloads.network import Network

#: Modeled evaluation wall-clock (seconds) per analytical layer query.
#: The MAESTRO call itself is milliseconds, but one mapping-candidate
#: evaluation in the HASCO/FlexTensor pipeline also pays schedule
#: concretization and tool overhead; 5 s/query puts the end-to-end search
#: costs of every method in the range Tables 1-2 report (tens of hours).
ANALYTICAL_EVAL_COST_S = 5.0


class PPAEngine(ABC):
    """Estimation service bound to a single workload.

    Subclasses must implement :meth:`evaluate_layer`; network-level
    aggregation, caching and clock charging are shared.
    """

    def __init__(
        self,
        network: Network,
        clock: Optional[SimulatedClock] = None,
        eval_cost_s: float = ANALYTICAL_EVAL_COST_S,
        tech: Technology = DEFAULT_TECHNOLOGY,
    ):
        self.network = network
        self.clock = clock if clock is not None else SimulatedClock()
        self.eval_cost_s = eval_cost_s
        self.tech = tech
        self.layer_shapes: Dict[str, Tuple[GemmShape, int]] = {
            layer.name: (layer.to_gemm(), layer.count) for layer in network.layers
        }
        self._cache: Dict[Tuple, LayerPPA] = {}
        self.num_queries = 0
        self.num_cache_hits = 0
        #: when False, a co-optimizer owns wall-clock accounting (e.g. to
        #: model parallel workers) and the engine only counts queries.
        self.charge_clock = True

    # -- subclass contract ----------------------------------------------------
    @abstractmethod
    def _compute_layer(
        self, hw, mapping: "GemmMapping", shape: GemmShape
    ) -> LayerPPA:
        """Uncached single-layer analysis."""

    @abstractmethod
    def area_mm2(self, hw) -> float:
        """Silicon area of a hardware configuration."""

    def _compute_layer_by_name(
        self, hw, mapping: "GemmMapping", layer_name: str, shape: GemmShape
    ) -> LayerPPA:
        """Name-aware computation hook (remote engines dispatch by name)."""
        return self._compute_layer(hw, mapping, shape)

    def hw_key(self, hw) -> Tuple:
        """Hashable identity of a hardware config (for the cache)."""
        return tuple(sorted(vars(hw).items()))

    # -- service API ------------------------------------------------------------
    def evaluate_layer(self, hw, mapping: "GemmMapping", layer_name: str) -> LayerPPA:
        """Evaluate one layer; charges the clock, caches the computation."""
        if layer_name not in self.layer_shapes:
            raise EvaluationError(
                f"layer {layer_name!r} not in workload {self.network.name!r}"
            )
        shape, _count = self.layer_shapes[layer_name]
        key = (self.hw_key(hw), layer_name, mapping.key())
        self.num_queries += 1
        if self.charge_clock:
            self.clock.advance(self.eval_cost_s, label="ppa-eval")
        if key in self._cache:
            self.num_cache_hits += 1
            return self._cache[key]
        result = self._compute_layer_by_name(hw, mapping, layer_name, shape)
        self._cache[key] = result
        return result

    def evaluate_network(self, hw, mappings: "NetworkMapping") -> NetworkPPA:
        """Evaluate a complete per-layer mapping (charges one eval per layer)."""
        for layer_name in self.layer_shapes:
            if layer_name in mappings:
                self.evaluate_layer(hw, mappings[layer_name], layer_name)
        return self.aggregate(hw, mappings)

    def aggregate(self, hw, mappings: "NetworkMapping") -> NetworkPPA:
        """Combine cached layer results without charging the clock."""
        area = self.area_mm2(hw)
        total_latency = 0.0
        total_energy = 0.0
        feasible = True
        layer_results: Dict[str, LayerPPA] = {}
        for name, (shape, count) in self.layer_shapes.items():
            mapping = mappings.get(name)
            if mapping is None:
                feasible = False
                continue
            result = self._cache.get((self.hw_key(hw), name, mapping.key()))
            if result is None:
                result = self._compute_layer_by_name(hw, mapping, name, shape)
                self._cache[(self.hw_key(hw), name, mapping.key())] = result
            layer_results[name] = result
            if not result.feasible:
                feasible = False
                continue
            total_latency += count * result.latency_s
            total_energy += count * result.energy_j
        if not feasible or total_latency <= 0.0:
            return NetworkPPA(
                latency_s=float("inf"),
                energy_j=float("inf"),
                power_w=float("inf"),
                area_mm2=area,
                feasible=False,
                layer_results=layer_results,
            )
        power = total_energy / total_latency + self.tech.leakage_w_per_mm2 * area
        return NetworkPPA(
            latency_s=total_latency,
            energy_j=total_energy,
            power_w=power,
            area_mm2=area,
            feasible=True,
            layer_results=layer_results,
        )

    @property
    def cache_hit_rate(self) -> float:
        if self.num_queries == 0:
            return 0.0
        return self.num_cache_hits / self.num_queries


class MaestroEngine(PPAEngine):
    """Analytical engine for the open-source spatial accelerator."""

    def _compute_layer(
        self, hw: SpatialHWConfig, mapping: "GemmMapping", shape: GemmShape
    ) -> LayerPPA:
        return analyze_gemm(hw, mapping, shape, self.tech)

    def area_mm2(self, hw: SpatialHWConfig) -> float:
        return spatial_area_mm2(hw, self.tech)


__all__ = [
    "ANALYTICAL_EVAL_COST_S",
    "PPAEngine",
    "MaestroEngine",
    "LayerPPA",
    "NetworkPPA",
    "evaluate_network",
]
