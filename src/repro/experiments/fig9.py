"""Figure 9: UNICO vs HASCO generalization to unseen DNNs.

Protocol of Section 4.4: co-optimize on {MobileNetV2, ResNet, SRGAN, VGG},
take each method's min-Euclidean-distance design, and run an individual SW
mapping search per unseen validation network.  The reported number per
validation network is the *gain ratio* — HASCO's normalized PPA distance to
the origin divided by UNICO's (> 1 means UNICO's hardware generalizes
better).  The paper reports a 44% average improvement.
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

import numpy as np

from repro.experiments.harness import run_method, sw_search_on
from repro.experiments.presets import Preset, get_preset
from repro.utils.records import RunRecord
from repro.workloads import FIG9_TRAIN, FIG9_VALIDATION


def ppa_distance(ppa_a: np.ndarray, ppa_b: np.ndarray) -> Dict[str, float]:
    """Distances-to-origin of two PPA vectors on a shared scale.

    Each component is normalized by the mean of the two observations, so
    the ratio of the two distances is bounded and symmetric (a min-max
    scaling over just two points would be degenerate whenever the vectors
    nearly coincide in one component).
    """
    stacked = np.vstack([ppa_a, ppa_b])
    scale = np.maximum(stacked.mean(axis=0), 1e-30)
    scaled = stacked / scale
    return {
        "a": float(np.linalg.norm(scaled[0])),
        "b": float(np.linalg.norm(scaled[1])),
    }


def shared_scale_best(result_a, result_b):
    """Each method's min-Euclidean design under a *shared* normalization.

    Selecting each design on its own front's min-max scale makes the picks
    incomparable when one method's front is much wider; normalizing over
    the union of both fronts removes that asymmetry.
    """
    points_a = result_a.pareto.points
    points_b = result_b.pareto.points
    if points_a.size == 0 or points_b.size == 0:
        return result_a.best_design(), result_b.best_design()
    union = np.vstack([points_a, points_b])
    low = union.min(axis=0)
    high = union.max(axis=0)
    span = np.where(high > low, high - low, 1.0)

    def pick(result, points):
        scaled = (points - low) / span
        index = int(np.argmin(np.linalg.norm(scaled, axis=1)))
        return result.pareto.items[index]

    return pick(result_a, points_a), pick(result_b, points_b)


def run_fig9(
    preset: Union[str, Preset] = "smoke",
    seed: int = 0,
    train_networks: Sequence[str] = FIG9_TRAIN,
    validation_networks: Sequence[str] = FIG9_VALIDATION,
    scenario: str = "edge",
) -> RunRecord:
    """Run the generalization comparison end to end."""
    preset = get_preset(preset) if isinstance(preset, str) else preset
    record = RunRecord("fig9")
    record.put("train_networks", list(train_networks))
    record.put("validation_networks", list(validation_networks))

    unico_result = run_method("unico", scenario, list(train_networks), preset, seed=seed)
    hasco_result = run_method("hasco", scenario, list(train_networks), preset, seed=seed)
    unico_best, hasco_best = shared_scale_best(unico_result, hasco_result)
    if unico_best is None or hasco_best is None:
        record.put("error", "a method produced no feasible design")
        return record
    record.put("unico_hw", str(unico_best.hw))
    record.put("hasco_hw", str(hasco_best.hw))
    record.put("unico_train_cost_h", unico_result.total_time_h)
    record.put("hasco_train_cost_h", hasco_result.total_time_h)

    gains = []
    for v_index, validation in enumerate(validation_networks):
        unico_trial = sw_search_on(
            unico_best.hw,
            validation,
            scenario,
            budget=preset.validation_budget,
            seed=seed * 100 + v_index,
        )
        hasco_trial = sw_search_on(
            hasco_best.hw,
            validation,
            scenario,
            budget=preset.validation_budget,
            seed=seed * 100 + v_index,
        )
        unico_ppa = unico_trial.best_ppa
        hasco_ppa = hasco_trial.best_ppa
        child = record.child(validation)
        child.put("unico_latency_ms", unico_ppa.latency_s * 1e3)
        child.put("hasco_latency_ms", hasco_ppa.latency_s * 1e3)
        child.put("unico_power_mw", unico_ppa.power_w * 1e3)
        child.put("hasco_power_mw", hasco_ppa.power_w * 1e3)
        if not (unico_ppa.feasible and hasco_ppa.feasible):
            gain = float("inf") if unico_ppa.feasible else 0.0
            child.put("gain_ratio", gain)
            continue
        unico_vec = np.array(
            [unico_ppa.latency_s, unico_ppa.power_w, unico_ppa.area_mm2]
        )
        hasco_vec = np.array(
            [hasco_ppa.latency_s, hasco_ppa.power_w, hasco_ppa.area_mm2]
        )
        distances = ppa_distance(unico_vec, hasco_vec)
        gain = distances["b"] / max(distances["a"], 1e-12)
        child.put("gain_ratio", gain)
        gains.append(gain)
    finite_gains = [g for g in gains if np.isfinite(g)]
    if finite_gains:
        record.put("mean_gain_ratio", float(np.mean(finite_gains)))
        record.put(
            "mean_improvement_pct",
            100.0 * (float(np.mean(finite_gains)) - 1.0),
        )
        record.put(
            "fraction_unico_wins",
            float(np.mean([g >= 1.0 for g in finite_gains])),
        )
    return record
