"""Edge cases of the anytime-search base machinery."""

import numpy as np
import pytest

from repro.costmodel import MaestroEngine
from repro.mapping import FlexTensorSearch, RandomMappingSearch
from repro.workloads import Gemm, Network


@pytest.fixture()
def single_layer_network():
    return Network(
        name="single",
        layers=(Gemm(name="only", m=16, n=24, k=12),),
        family="test",
    )


class TestSingleLayer:
    def test_search_on_single_layer(self, single_layer_network, sample_hw):
        engine = MaestroEngine(single_layer_network)
        search = FlexTensorSearch(single_layer_network, sample_hw, engine, seed=0)
        search.run(30)
        assert np.isfinite(search.best_objective)
        assert set(search.best_mapping) == {"only"}


class TestTrialTotalsConsistency:
    def test_network_objective_matches_layer_sum(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network)
        search = RandomMappingSearch(tiny_network, sample_hw, engine, seed=0)
        search.run(40)
        manual = sum(
            search.layer_counts[name] * search.best_layer_result[name].latency_s
            for name in search.layer_names
        )
        assert search.best_objective == pytest.approx(manual)

    def test_power_includes_leakage(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network)
        search = RandomMappingSearch(tiny_network, sample_hw, engine, seed=0)
        search.run(20)
        point = search.history[-1]
        leakage = engine.tech.leakage_w_per_mm2 * engine.area_mm2(sample_hw)
        assert point.best_power_w > leakage

    def test_history_power_matches_aggregate(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network)
        search = RandomMappingSearch(tiny_network, sample_hw, engine, seed=1)
        search.run(30)
        point = search.history[-1]
        ppa = search.best_ppa
        assert point.best_power_w == pytest.approx(ppa.power_w)
        assert point.best_latency_s == pytest.approx(ppa.latency_s)


class TestInfeasibleIncumbentRecovery:
    def test_network_objective_becomes_finite_once_all_layers_feasible(
        self, tiny_network, edge_space
    ):
        """On hardware where the seed must shrink to (1,1,1), the first
        history entries are already finite (init guarantees feasibility)."""
        hw = edge_space.to_config(
            {
                "pe_x": 1,
                "pe_y": 1,
                "l1_bytes": 64,
                "l2_kb": 8,
                "noc_bw": 64,
                "dataflow": "os",
            }
        )
        engine = MaestroEngine(tiny_network)
        search = RandomMappingSearch(tiny_network, hw, engine, seed=2)
        search.run(5)
        assert np.isfinite(search.history[0].best_objective)


class TestLayerWeighting:
    def test_flextensor_prefers_dominant_layer(self, sample_hw):
        """The layer holding most of the latency receives most proposals."""
        lopsided = Network(
            name="lopsided",
            layers=(
                Gemm(name="huge", m=256, n=512, k=256),
                Gemm(name="tiny", m=4, n=4, k=4),
            ),
            family="test",
        )
        engine = MaestroEngine(lopsided)
        search = FlexTensorSearch(lopsided, sample_hw, engine, seed=0, epsilon=0.0)
        counts = {"huge": 0, "tiny": 0}
        for _ in range(60):
            layer_name, candidate = search._propose()
            counts[layer_name] += 1
            result = engine.evaluate_layer(sample_hw, candidate, layer_name)
            search._on_result(layer_name, candidate, result, False)
        assert counts["huge"] > counts["tiny"]
