"""Lightweight, JSON-serializable run records.

Experiment harnesses emit :class:`RunRecord` trees; :func:`to_jsonable`
normalizes NumPy scalars/arrays and dataclasses so records round-trip through
``json.dumps`` without custom encoders.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into plain JSON-compatible types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(dataclasses.asdict(value))
    if hasattr(value, "to_dict"):
        return to_jsonable(value.to_dict())
    return str(value)


@dataclass
class RunRecord:
    """A named bag of metrics plus nested child records.

    Examples
    --------
    >>> record = RunRecord("table1")
    >>> record.put("network", "resnet")
    >>> record.child("unico").put("latency_ms", 8.1)
    >>> payload = record.to_dict()
    >>> payload["children"]["unico"]["metrics"]["latency_ms"]
    8.1
    """

    name: str
    metrics: Dict[str, Any] = field(default_factory=dict)
    children: Dict[str, "RunRecord"] = field(default_factory=dict)

    def put(self, key: str, value: Any) -> "RunRecord":
        """Store a metric; returns self for chaining."""
        self.metrics[key] = value
        return self

    def update(self, values: Dict[str, Any]) -> "RunRecord":
        """Store several metrics at once; returns self."""
        self.metrics.update(values)
        return self

    def get(self, key: str, default: Any = None) -> Any:
        return self.metrics.get(key, default)

    def child(self, name: str) -> "RunRecord":
        """Return (creating if absent) the child record ``name``."""
        if name not in self.children:
            self.children[name] = RunRecord(name)
        return self.children[name]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "metrics": to_jsonable(self.metrics),
            "children": {k: v.to_dict() for k, v in self.children.items()},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunRecord":
        record = cls(payload["name"], dict(payload.get("metrics", {})))
        for key, child in payload.get("children", {}).items():
            record.children[key] = cls.from_dict(child)
        return record

    def rows(self, prefix: str = "") -> List[Dict[str, Any]]:
        """Flatten the record tree into rows tagged with a path column."""
        path = f"{prefix}/{self.name}" if prefix else self.name
        rows = [{"path": path, **to_jsonable(self.metrics)}] if self.metrics else []
        for child in self.children.values():
            rows.extend(child.rows(path))
        return rows
