"""Timeloop-like loop-centric analytical PPA model.

The paper treats MAESTRO and Timeloop as interchangeable analytical PPA
engines ("This component can be an analytical model such as MAESTRO or
TimeLoop").  Where the MAESTRO-like model in :mod:`repro.costmodel.maestro`
reasons *data-centrically* (reuse rules per operand), this engine reasons
*loop-centrically*, the way Timeloop does:

1. materialize the full tiled loop nest — DRAM-level tile loops in the
   mapping's order, the L2-level tile, the spatial (PE array) unroll and
   the per-PE temporal loops;
2. for every operand and every memory level, count **fills** as the number
   of distinct iterations of the loops *above* that level that change the
   operand's tile (a loop changes an operand's tile iff it iterates one of
   the operand's dimensions), with the innermost-run of unchanged tiles
   coalesced;
3. derive per-level traffic = fills x tile footprint, turn traffic into
   cycles per level bandwidth and energy per level access cost, and take
   the roofline maximum as latency.

Because the two engines share only the Technology constants and the
capacity-feasibility rules, agreement between them is a meaningful
cross-validation of both (see ``tests/costmodel/test_timeloop.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.costmodel.engine import PPAEngine
from repro.costmodel.maestro import spatial_area_mm2
from repro.costmodel.results import LayerPPA
from repro.costmodel.technology import DEFAULT_TECHNOLOGY, Technology
from repro.hw.spatial import SpatialHWConfig
from repro.utils.intmath import round_up_div
from repro.workloads.layers import GemmShape

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapping.gemm_mapping import GemmMapping

_STARTUP_CYCLES = 1000.0

#: operand -> the GEMM dimensions that index it
_OPERAND_DIMS: Dict[str, Tuple[str, ...]] = {
    "A": ("m", "k"),
    "B": ("k", "n"),
    "C": ("m", "n"),
}


@dataclass(frozen=True)
class _Loop:
    """One loop of the nest: a dimension and its trip count."""

    dim: str
    trips: int


def _tile_fills(loops_above: List[_Loop], operand_dims: Tuple[str, ...]) -> int:
    """Number of times the operand's tile is (re)filled under ``loops_above``.

    Walking from the innermost loop outward, consecutive iterations of
    loops that do NOT index the operand keep its tile resident — until the
    first *outer* loop that does index it forces a refill on its next
    iteration.  The closed form: the product of trips of all loops that
    index the operand, times the product of trips of non-indexing loops
    that sit *outside* the outermost indexing loop's inner run — which for
    a perfectly nested tiling reduces to: product of trips of indexing
    loops x product of trips of non-indexing loops that are OUTSIDE at
    least one indexing loop.
    """
    fills = 1
    seen_indexing_below = False
    for loop in reversed(loops_above):  # innermost -> outermost
        if loop.dim in operand_dims:
            fills *= loop.trips
            seen_indexing_below = True
        elif seen_indexing_below:
            fills *= loop.trips
    return fills


def analyze_gemm_loopnest(
    hw: SpatialHWConfig,
    mapping: "GemmMapping",
    shape: GemmShape,
    tech: Technology = DEFAULT_TECHNOLOGY,
) -> LayerPPA:
    """Loop-centric analysis of one GEMM pass (see module docstring)."""
    tm = min(mapping.tile_m, shape.m)
    tn = min(mapping.tile_n, shape.n)
    tk = min(mapping.tile_k, shape.k)
    op_b = tech.operand_bytes
    acc_b = tech.accum_bytes

    if mapping.spatial == "mn":
        pe_m, pe_n = hw.pe_x, hw.pe_y
    else:
        pe_m, pe_n = hw.pe_y, hw.pe_x
    sub_m = round_up_div(tm, pe_m)
    sub_n = round_up_div(tn, pe_n)

    # capacity feasibility (identical rules to the data-centric model: the
    # buffers are the same silicon either way)
    l1_need = 2 * (sub_m * tk + tk * sub_n) * op_b + sub_m * sub_n * acc_b
    if l1_need > hw.l1_bytes:
        return LayerPPA(
            latency_s=float("inf"),
            energy_j=float("inf"),
            feasible=False,
            infeasible_reason=(
                f"L1 overflow: need {l1_need} B per PE, have {hw.l1_bytes} B"
            ),
        )
    l2_need = 2 * (tm * tk + tk * tn) * op_b + tm * tn * acc_b
    if l2_need > hw.l2_bytes:
        return LayerPPA(
            latency_s=float("inf"),
            energy_j=float("inf"),
            feasible=False,
            infeasible_reason=f"L2 overflow: need {l2_need} B, have {hw.l2_bytes} B",
        )

    # ---- the loop nest -------------------------------------------------------
    # DRAM-level tile loops, outer -> inner, in the mapping's order:
    trips = {
        "m": round_up_div(shape.m, tm),
        "n": round_up_div(shape.n, tn),
        "k": round_up_div(shape.k, tk),
    }
    dram_loops = [_Loop(dim, trips[dim]) for dim in mapping.loop_order]
    n_tiles = trips["m"] * trips["n"] * trips["k"]

    # L2 tile footprints (what one fill moves):
    footprint_l2 = {
        "A": tm * tk * op_b,
        "B": tk * tn * op_b,
        "C": tm * tn * acc_b,
    }
    # per-PE (L1) temporal loops inside a tile — k innermost:
    l1_loops = dram_loops + [
        _Loop("m", sub_m),
        _Loop("n", sub_n),
    ]
    footprint_l1 = {
        "A": tk * op_b,  # one row of the A slice per (m) step
        "B": tk * op_b,  # one column of the B slice per (n) step
        "C": acc_b,  # one accumulator per (m, n) step
    }

    # ---- traffic counting ------------------------------------------------------
    reuse = shape.reuse_penalty
    dram_bytes = 0.0
    for operand, dims in _OPERAND_DIMS.items():
        fills = _tile_fills(dram_loops, dims)
        penalty = 1.0 if operand == "C" else 1.0 / reuse
        volume = fills * footprint_l2[operand] * penalty
        if operand == "C":
            # partial sums cross DRAM only when refetched; the final result
            # is written once in operand precision
            extra_fills = max(0, fills - trips["m"] * trips["n"])
            volume = (
                shape.m * shape.n * op_b + 2.0 * extra_fills * footprint_l2["C"]
            )
        dram_bytes += volume

    noc_bytes = 0.0
    for operand, dims in _OPERAND_DIMS.items():
        if operand == "B" and hw.dataflow == "ws":
            # weight-stationary: the B tile's L1 residency follows the DRAM
            # fill pattern (held across passes that do not change it)
            fills = _tile_fills(dram_loops, dims)
        elif operand == "C" and hw.dataflow == "os":
            fills = trips["m"] * trips["n"]
            if mapping.loop_order[2] != "k":
                fills = _tile_fills(dram_loops, dims)
        else:
            fills = n_tiles
        penalty = 1.0 if operand == "C" else 1.0 / reuse
        noc_bytes += fills * footprint_l2[operand] * penalty

    l1_access_bytes = 0.0
    for operand, dims in _OPERAND_DIMS.items():
        fills = _tile_fills(l1_loops, dims)
        l1_access_bytes += fills * footprint_l1[operand] * tk if operand == "C" else (
            fills * footprint_l1[operand]
        )

    # ---- latency ---------------------------------------------------------------
    fill_cycles = pe_m + pe_n
    issue_overhead = 0.25 / mapping.unroll
    compute_cycles = n_tiles * (
        sub_m * sub_n * tk * (1.0 + issue_overhead) + fill_cycles
    )
    bank_boost = min(hw.l1_banks, 2) / 2.0 + 0.5
    noc_cycles = noc_bytes / (hw.noc_bw * bank_boost)
    dram_cycles = dram_bytes / tech.dram_bw_bytes_per_cycle
    latency_cycles = max(compute_cycles, noc_cycles, dram_cycles) + _STARTUP_CYCLES
    latency_s = latency_cycles / tech.frequency_hz

    # ---- energy ----------------------------------------------------------------
    macs = shape.macs
    reg_bytes = 2.0 * macs * op_b
    energy_j = (
        macs * tech.mac_energy_j
        + reg_bytes * tech.reg_energy_per_byte_j
        + (l1_access_bytes + noc_bytes) * tech.l1_energy_per_byte(hw.l1_bytes)
        + (noc_bytes + dram_bytes) * tech.l2_energy_per_byte(hw.l2_bytes)
        + dram_bytes * tech.dram_energy_per_byte_j
    )
    return LayerPPA(
        latency_s=latency_s,
        energy_j=energy_j,
        feasible=True,
        compute_cycles=compute_cycles,
        noc_cycles=noc_cycles,
        dram_cycles=dram_cycles,
        dram_bytes=dram_bytes,
    )


class TimeloopEngine(PPAEngine):
    """Loop-centric analytical engine (drop-in alternative to Maestro)."""

    def _compute_layer(
        self, hw: SpatialHWConfig, mapping: "GemmMapping", shape: GemmShape
    ) -> LayerPPA:
        return analyze_gemm_loopnest(hw, mapping, shape, self.tech)

    def _compute_layer_batch(
        self, hw: SpatialHWConfig, mappings, layer_name: str, shape: GemmShape
    ) -> List[LayerPPA]:
        from repro.costmodel.timeloop_batch import analyze_gemm_loopnest_batch

        return analyze_gemm_loopnest_batch(hw, mappings, shape, self.tech)

    def area_mm2(self, hw: SpatialHWConfig) -> float:
        return spatial_area_mm2(hw, self.tech)
