"""Tracker integration + crash/resume equivalence (the acceptance bar).

The key property: a tracked run killed mid-search and resumed via
``resume_run`` reproduces the same Pareto front, timeline and
iteration-record sequence as the same-seed uninterrupted run, and its
journal replays into the identical record sequence.
"""

import numpy as np
import pytest

from repro.core import Unico, UnicoConfig
from repro.costmodel import MaestroEngine
from repro.errors import TrackingError
from repro.experiments.harness import run_method
from repro.tracking import (
    JournalTracker,
    NullTracker,
    RunStore,
    read_events,
    replay_iteration_records,
    resume_run,
    verify_run,
)

WORKLOAD = "mobilenet"
MANIFEST = {
    "method": "unico",
    "scenario": "edge",
    "workload": WORKLOAD,
    "preset": "smoke",
    "seed": 11,
}


def _fresh_unico(tiny_network, edge_space, tracker=None, max_iterations=2):
    engine = MaestroEngine(tiny_network)
    return Unico(
        edge_space,
        tiny_network,
        engine,
        UnicoConfig(batch_size=4, max_iterations=max_iterations, max_budget=16),
        power_cap_w=100.0,
        seed=5,
        tracker=tracker,
    )


class _KillAfter(JournalTracker):
    """Simulates a crash: journals normally, then dies mid-search."""

    def __init__(self, run, iterations, **kwargs):
        super().__init__(run, **kwargs)
        self._die_at = iterations

    def on_iteration_end(self, optimizer, record):
        super().on_iteration_end(optimizer, record)
        if optimizer.completed_iterations >= self._die_at:
            raise KeyboardInterrupt("simulated kill")


def _timelines_equal(a, b):
    if len(a) != len(b):
        return False
    return all(
        x.time_s == pytest.approx(y.time_s)
        and x.feasible == y.feasible
        and np.allclose(x.ppa_vector, y.ppa_vector)
        for x, y in zip(a, b)
    )


class TestJournalTracker:
    def test_tracked_run_leaves_full_artifacts(
        self, tiny_network, edge_space, tmp_path
    ):
        store = RunStore(tmp_path / "runs")
        run = store.create_run(dict(MANIFEST))
        unico = _fresh_unico(
            tiny_network, edge_space, tracker=JournalTracker(run)
        )
        result = unico.optimize()
        assert run.status == "completed"
        assert len(run.checkpoints()) == 2
        scan = read_events(run.journal_path)
        types = {e["type"] for e in scan.events}
        assert {
            "run_start",
            "iteration_start",
            "hw_sampled",
            "msh_round",
            "evaluation",
            "surrogate_update",
            "checkpoint",
            "iteration_end",
            "engine_snapshot",
            "run_end",
        } <= types
        # every sampled batch is journaled with decodable configs
        sampled = [e for e in scan.events if e["type"] == "hw_sampled"]
        assert sum(e["num_configs"] for e in sampled) == result.total_hw_evaluated
        for event in sampled:
            for payload in event["configs"]:
                edge_space.to_config(dict(payload))  # must not raise
        # replayed records match the in-memory ones exactly
        assert (
            replay_iteration_records(run.journal_path)
            == result.extras["iteration_records"]
        )

    def test_search_health_beacon_per_iteration(
        self, tiny_network, edge_space, tmp_path
    ):
        """A tracked run emits one ``search_health`` event per iteration
        with a monotone hypervolume series — the signal the hub's
        telemetry pipeline tails into ``run:<id>`` metrics and the
        ``hv_stall`` alert rule watches."""
        store = RunStore(tmp_path / "runs")
        run = store.create_run(dict(MANIFEST))
        unico = _fresh_unico(
            tiny_network, edge_space, tracker=JournalTracker(run),
            max_iterations=3,
        )
        unico.optimize()
        scan = read_events(run.journal_path)
        health = [e for e in scan.events if e["type"] == "search_health"]
        assert [e["iteration"] for e in health] == [0, 1, 2]
        hv = [e["hypervolume"] for e in health]
        assert all(b >= a for a, b in zip(hv, hv[1:]))  # frozen reference
        for event in health:
            assert event["pareto_size"] >= 1
            assert event["engine_queries"] > 0
            assert event["evaluations"] > 0
            assert event["time_s"] >= 0.0

    def test_untracked_run_emits_no_search_health(
        self, tiny_network, edge_space
    ):
        unico = _fresh_unico(tiny_network, edge_space, tracker=NullTracker())
        unico.optimize()  # must not raise, and pays no beacon cost
        assert not hasattr(unico, "_hv_reference")

    def test_evaluation_events_record_batch_membership(
        self, tiny_network, edge_space, tmp_path
    ):
        """UNICO stamps each evaluation with its HW batch; scalar callers
        (finish_candidate without batch args) keep the historical shape."""
        run = RunStore(tmp_path / "runs").create_run(dict(MANIFEST))
        _fresh_unico(
            tiny_network, edge_space, tracker=JournalTracker(run)
        ).optimize()
        evals = [
            e for e in read_events(run.journal_path).events
            if e["type"] == "evaluation"
        ]
        assert evals
        for event in evals:
            assert event["batch_id"] >= 0
            assert event["batch_size"] >= 1
        # batch ids partition the evaluations into the two iterations
        assert {e["batch_id"] for e in evals} == {0, 1}

    def test_tracking_does_not_perturb_search(
        self, tiny_network, edge_space, tmp_path
    ):
        untracked = _fresh_unico(tiny_network, edge_space, tracker=NullTracker())
        plain = untracked.optimize()
        run = RunStore(tmp_path / "runs").create_run(dict(MANIFEST))
        tracked = _fresh_unico(
            tiny_network, edge_space, tracker=JournalTracker(run)
        ).optimize()
        assert sorted(map(tuple, plain.pareto.points.tolist())) == sorted(
            map(tuple, tracked.pareto.points.tolist())
        )
        assert plain.total_time_s == pytest.approx(tracked.total_time_s)

    def test_checkpoint_every_zero_journals_only(
        self, tiny_network, edge_space, tmp_path
    ):
        run = RunStore(tmp_path / "runs").create_run(dict(MANIFEST))
        tracker = JournalTracker(run, checkpoint_every=0)
        _fresh_unico(tiny_network, edge_space, tracker=tracker).optimize()
        assert run.checkpoints() == []
        assert len(read_events(run.journal_path).events) > 0

    def test_keep_last_checkpoints_prunes(
        self, tiny_network, edge_space, tmp_path
    ):
        run = RunStore(tmp_path / "runs").create_run(dict(MANIFEST))
        tracker = JournalTracker(run, keep_last_checkpoints=1)
        _fresh_unico(
            tiny_network, edge_space, tracker=tracker, max_iterations=3
        ).optimize()
        assert [p.name for p in run.checkpoints()] == ["ckpt-000003.json"]


class TestHarnessLifecycle:
    def test_tracked_baseline_reaches_terminal_status(self, tmp_path):
        """Baselines don't drive the tracker themselves; run_method must
        emit run_start/run_end so the manifest leaves 'created'."""
        store = RunStore(tmp_path / "runs")
        result = run_method(
            "random", "edge", WORKLOAD, "smoke", seed=3, run_store=store
        )
        run = store.get(result.extras["run_id"])
        assert run.status == "completed"
        types = [e["type"] for e in read_events(run.journal_path).events]
        assert types[0] == "run_start"
        assert types[-1] == "run_end"
        assert "evaluation" in types

    def test_tracker_and_run_store_together_rejected(self, tmp_path):
        from repro.errors import ConfigurationError

        run = RunStore(tmp_path / "runs").create_run(dict(MANIFEST))
        with pytest.raises(ConfigurationError, match="not both"):
            run_method(
                "unico", "edge", WORKLOAD, "smoke", seed=11,
                tracker=JournalTracker(run),
                run_store=tmp_path / "runs",
            )

    def test_custom_preset_object_is_resumable(self, tmp_path):
        """A run tracked with an unregistered Preset object must resume
        from the manifest's persisted parameters, not a name lookup."""
        import dataclasses

        from repro.experiments.presets import get_preset

        custom = dataclasses.replace(get_preset("smoke"), name="custom-tiny")
        store = RunStore(tmp_path / "runs")
        result = run_method(
            "unico", "edge", WORKLOAD, custom, seed=11, run_store=store
        )
        run = store.get(result.extras["run_id"])
        manifest = run.read_manifest()
        assert manifest["preset"] == "custom-tiny"
        assert (
            manifest["preset_params"]["unico_iterations"]
            == custom.unico_iterations
        )
        # get_preset("custom-tiny") would raise; resume must not need it
        resumed = resume_run(run)
        assert resumed.extras["resumed_from_iteration"] == custom.unico_iterations
        assert sorted(map(tuple, resumed.pareto.points.tolist())) == sorted(
            map(tuple, result.pareto.points.tolist())
        )


class TestKillResumeEquivalence:
    def test_resume_matches_uninterrupted(self, tmp_path):
        straight = run_method("unico", "edge", WORKLOAD, "smoke", seed=11)

        store = RunStore(tmp_path / "runs")
        run = store.create_run(dict(MANIFEST))
        with pytest.raises(KeyboardInterrupt):
            run_method(
                "unico", "edge", WORKLOAD, "smoke", seed=11,
                tracker=_KillAfter(run, iterations=1),
            )
        assert run.status == "failed"
        health = verify_run(run)
        assert health["journal_iterations"] == 1
        assert health["latest_checkpoint"] == "ckpt-000001.json"

        resumed = resume_run(run)
        assert run.status == "completed"
        assert resumed.extras["resumed_from_iteration"] == 1
        assert resumed.total_hw_evaluated == straight.total_hw_evaluated
        assert sorted(map(tuple, resumed.pareto.points.tolist())) == sorted(
            map(tuple, straight.pareto.points.tolist())
        )
        assert _timelines_equal(resumed.timeline, straight.timeline)
        assert resumed.total_time_s == pytest.approx(straight.total_time_s)
        # journal replay = the uninterrupted iteration-record sequence
        assert (
            replay_iteration_records(run.journal_path)
            == straight.extras["iteration_records"]
        )

    def test_resume_reexecutes_iteration_when_checkpoint_lags(self, tmp_path):
        """A kill between iteration_end and its checkpoint leaves the
        journal one iteration ahead; replay keeps the latest record."""
        straight = run_method("unico", "edge", WORKLOAD, "smoke", seed=11)

        run = RunStore(tmp_path / "runs").create_run(dict(MANIFEST))
        run_method(
            "unico", "edge", WORKLOAD, "smoke", seed=11,
            tracker=JournalTracker(run),
        )
        checkpoints = run.checkpoints()
        assert len(checkpoints) == 2
        checkpoints[-1].unlink()  # now the journal is ahead of the checkpoint

        resumed = resume_run(run)
        assert resumed.extras["resumed_from_iteration"] == 1
        assert sorted(map(tuple, resumed.pareto.points.tolist())) == sorted(
            map(tuple, straight.pareto.points.tolist())
        )
        replayed = replay_iteration_records(run.journal_path)
        assert replayed == straight.extras["iteration_records"]


class TestResumeRefusals:
    def test_resume_requires_checkpoint(self, tmp_path):
        run = RunStore(tmp_path / "runs").create_run(dict(MANIFEST))
        run_method(
            "unico", "edge", WORKLOAD, "smoke", seed=11,
            tracker=JournalTracker(run, checkpoint_every=0),
        )
        with pytest.raises(TrackingError, match="no checkpoint"):
            resume_run(run)

    def test_resume_requires_manifest_keys(self, tmp_path):
        run = RunStore(tmp_path / "runs").create_run({"method": "unico"})
        run.journal_path.write_text("")
        with pytest.raises(TrackingError, match="manifest lacks"):
            resume_run(run)

    def test_resume_rejects_tampered_journal(self, tmp_path):
        import json

        run = RunStore(tmp_path / "runs").create_run(dict(MANIFEST))
        run_method(
            "unico", "edge", WORKLOAD, "smoke", seed=11,
            tracker=JournalTracker(run),
        )
        # rewrite an iteration_end record so it disagrees with checkpoints
        lines = run.journal_path.read_text().splitlines()
        edited = []
        for line in lines:
            event = json.loads(line)
            if event["type"] == "iteration_end" and event["iteration"] == 0:
                event["record"]["pareto_size"] += 7
            edited.append(json.dumps(event))
        run.journal_path.write_text("\n".join(edited) + "\n")
        with pytest.raises(TrackingError, match="replay disagrees"):
            resume_run(run)

    def test_verify_run_reports_truncation(self, tmp_path):
        run = RunStore(tmp_path / "runs").create_run(dict(MANIFEST))
        run_method(
            "unico", "edge", WORKLOAD, "smoke", seed=11,
            tracker=JournalTracker(run),
        )
        with open(run.journal_path, "ab") as handle:
            handle.write(b'{"seq": 999, "type": "part')
        assert verify_run(run)["truncated_tail"] is True
