"""Tests for the UNICO co-optimizer (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import Unico, UnicoConfig
from repro.costmodel import MaestroEngine
from repro.errors import ConfigurationError


def _make_unico(network, space, **config_overrides):
    defaults = dict(batch_size=5, max_iterations=2, max_budget=24)
    defaults.update(config_overrides)
    engine = MaestroEngine(network)
    return Unico(
        space, network, engine, UnicoConfig(**defaults), power_cap_w=100.0, seed=11
    )


class TestConfigValidation:
    def test_defaults_follow_paper(self):
        config = UnicoConfig()
        assert config.batch_size == 30
        assert config.max_budget == 300
        assert config.keep_fraction == 0.5
        assert config.auc_fraction == 0.15
        assert config.rho == 0.2
        assert config.uul_percentile == 95.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 1},
            {"max_iterations": 0},
            {"max_budget": 0},
            {"surrogate_update": "weighted"},
            {"workers": 0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            UnicoConfig(**kwargs)


class TestOptimize:
    def test_end_to_end(self, tiny_network, edge_space):
        unico = _make_unico(tiny_network, edge_space)
        result = unico.optimize()
        assert result.method == "unico"
        assert result.total_hw_evaluated == 10  # 2 iterations x batch 5
        assert len(result.pareto) >= 1
        assert result.best_design() is not None
        assert result.total_time_s > 0

    def test_objectives_have_four_dims_with_robustness(self, tiny_network, edge_space):
        unico = _make_unico(tiny_network, edge_space, include_robustness=True)
        unico.optimize()
        assert unico.num_objectives == 4
        for evaluation in unico.evaluations:
            assert evaluation.objectives.shape == (4,)

    def test_no_robustness_three_dims(self, tiny_network, edge_space):
        unico = _make_unico(tiny_network, edge_space, include_robustness=False)
        unico.optimize()
        assert unico.num_objectives == 3

    def test_high_fidelity_training_set_subset(self, tiny_network, edge_space):
        unico = _make_unico(tiny_network, edge_space)
        result = unico.optimize()
        assert 1 <= len(unico.train_configs) <= result.total_hw_evaluated
        assert result.extras["train_set_size"] == len(unico.train_configs)

    def test_champion_update_admits_one_per_iteration(self, tiny_network, edge_space):
        unico = _make_unico(
            tiny_network, edge_space, surrogate_update="champion"
        )
        unico.optimize()
        assert len(unico.train_configs) <= 2  # one champion per iteration

    def test_iteration_records(self, tiny_network, edge_space):
        unico = _make_unico(tiny_network, edge_space)
        result = unico.optimize()
        records = result.extras["iteration_records"]
        assert len(records) == 2
        assert records[0].num_feasible >= 0
        assert records[1].time_s > records[0].time_s

    def test_time_budget_stops_early(self, tiny_network, edge_space):
        unico = _make_unico(
            tiny_network, edge_space, max_iterations=50, time_budget_s=1.0
        )
        result = unico.optimize()
        assert result.extras["iterations"] <= 2

    def test_deterministic(self, tiny_network, edge_space):
        def run_once():
            result = _make_unico(tiny_network, edge_space).optimize()
            return result.best_design().ppa.latency_s

        assert run_once() == run_once()

    def test_workers_reduce_simulated_time(self, tiny_network, edge_space):
        serial = _make_unico(tiny_network, edge_space, workers=1).optimize()
        parallel = _make_unico(tiny_network, edge_space, workers=8).optimize()
        assert parallel.total_time_s < serial.total_time_s
        # but the same evaluations happened
        assert parallel.total_hw_evaluated == serial.total_hw_evaluated

    def test_pareto_points_are_ppa_3d(self, tiny_network, edge_space):
        unico = _make_unico(tiny_network, edge_space)
        result = unico.optimize()
        assert result.pareto.points.shape[1] == 3

    def test_timeline_timestamps_monotone(self, tiny_network, edge_space):
        result = _make_unico(tiny_network, edge_space).optimize()
        times = [entry.time_s for entry in result.timeline]
        assert times == sorted(times)

    def test_msh_vs_sh_both_run(self, tiny_network, edge_space):
        for use_msh in (True, False):
            unico = _make_unico(tiny_network, edge_space, use_msh=use_msh)
            result = unico.optimize()
            assert result.total_hw_evaluated == 10

    def test_survivors_get_more_budget(self, tiny_network, edge_space):
        unico = _make_unico(tiny_network, edge_space, max_iterations=1)
        unico.optimize()
        budgets = [e.budget_spent for e in unico.evaluations]
        assert max(budgets) == 24  # b_max
        assert min(budgets) < max(budgets)  # losers stopped early

    def test_thread_backend_matches_serial(self, tiny_network, edge_space):
        """Round dispatch through threads must not change any result."""
        serial = _make_unico(tiny_network, edge_space).optimize()
        threaded = _make_unico(
            tiny_network, edge_space, runner_backend="thread", workers=4
        ).optimize()
        assert threaded.total_hw_evaluated == serial.total_hw_evaluated
        assert (
            threaded.best_design().ppa.latency_s
            == serial.best_design().ppa.latency_s
        )
        assert np.array_equal(
            np.sort(threaded.pareto.points, axis=0),
            np.sort(serial.pareto.points, axis=0),
        )

    def test_process_backend_matches_serial(self, tiny_network, edge_space):
        """Round-tripped trials must reproduce serial fronts and clock."""
        serial = _make_unico(tiny_network, edge_space, workers=2).optimize()
        processed = _make_unico(
            tiny_network, edge_space, runner_backend="process", workers=2
        ).optimize()
        assert processed.total_hw_evaluated == serial.total_hw_evaluated
        assert processed.total_time_s == serial.total_time_s
        assert (
            processed.best_design().ppa.latency_s
            == serial.best_design().ppa.latency_s
        )
        assert np.array_equal(
            np.sort(processed.pareto.points, axis=0),
            np.sort(serial.pareto.points, axis=0),
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="runner_backend"):
            UnicoConfig(runner_backend="mpi")

    def test_infeasible_hardware_handled(self, tiny_network, edge_space):
        """A power cap nothing satisfies must not crash the loop."""
        engine = MaestroEngine(tiny_network)
        unico = Unico(
            edge_space,
            tiny_network,
            engine,
            UnicoConfig(batch_size=4, max_iterations=2, max_budget=12),
            power_cap_w=1e-12,
            seed=0,
        )
        result = unico.optimize()
        assert len(result.pareto) == 0
        assert result.best_design() is None
