"""Tests for the run store (run directories + manifests + checkpoints)."""

import json

import pytest

from repro.errors import TrackingError
from repro.tracking.store import RunHandle, RunStore


class TestCreateRun:
    def test_default_id_and_manifest(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        run = store.create_run(
            {"method": "unico", "workload": "resnet", "seed": 3}
        )
        assert "unico" in run.run_id and "resnet" in run.run_id
        assert run.run_id.endswith("-s3")
        manifest = run.read_manifest()
        assert manifest["status"] == "created"
        assert manifest["run_id"] == run.run_id
        assert manifest["code_version"]
        assert manifest["created_at"]
        assert run.checkpoint_dir.is_dir()

    def test_explicit_id_collision_gets_suffix(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        first = store.create_run({}, run_id="myrun")
        second = store.create_run({}, run_id="myrun")
        assert first.run_id == "myrun"
        assert second.run_id == "myrun-1"

    def test_id_sanitized(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        run = store.create_run({}, run_id="a b/c:d")
        assert run.run_id == "a-b-c-d"

    def test_workload_list_joined(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        run = store.create_run({"method": "unico", "workload": ["a", "b"]})
        assert "a+b" in run.run_id


class TestLookup:
    def test_get_unknown_raises(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        with pytest.raises(TrackingError):
            store.get("ghost")

    def test_list_runs_ordered_by_creation(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        a = store.create_run({}, run_id="aaa")
        b = store.create_run({}, run_id="bbb")
        # force distinct created_at ordering regardless of clock resolution
        a.update_manifest(created_at="2026-01-01T00:00:00Z")
        b.update_manifest(created_at="2026-01-02T00:00:00Z")
        assert [r.run_id for r in store.list_runs()] == ["aaa", "bbb"]

    def test_list_runs_empty_root(self, tmp_path):
        assert RunStore(tmp_path / "missing").list_runs() == []

    def test_handle_requires_directory(self, tmp_path):
        with pytest.raises(TrackingError):
            RunHandle(tmp_path / "missing")


class TestManifestLifecycle:
    def test_status_transitions(self, tmp_path):
        run = RunStore(tmp_path / "runs").create_run({})
        run.set_status("running")
        assert run.status == "running"
        run.set_status("completed", total_time_s=12.0)
        manifest = run.read_manifest()
        assert manifest["status"] == "completed"
        assert manifest["total_time_s"] == 12.0

    def test_bad_status_rejected(self, tmp_path):
        run = RunStore(tmp_path / "runs").create_run({})
        with pytest.raises(TrackingError):
            run.set_status("exploded")

    def test_manifest_write_is_atomic(self, tmp_path):
        run = RunStore(tmp_path / "runs").create_run({})
        run.update_manifest(extra="value")
        # no temp file left behind and the JSON is complete
        assert not list(run.dir.glob("*.tmp"))
        assert json.loads(run.manifest_path.read_text())["extra"] == "value"

    def test_corrupt_manifest_raises(self, tmp_path):
        run = RunStore(tmp_path / "runs").create_run({})
        run.manifest_path.write_text("{broken")
        with pytest.raises(TrackingError):
            run.read_manifest()


class TestCheckpoints:
    def test_ordering_latest_and_prune(self, tmp_path):
        run = RunStore(tmp_path / "runs").create_run({})
        for completed in (4, 1, 10, 2):
            run.checkpoint_path(completed).write_text("{}")
        names = [p.name for p in run.checkpoints()]
        assert names == [
            "ckpt-000001.json",
            "ckpt-000002.json",
            "ckpt-000004.json",
            "ckpt-000010.json",
        ]
        assert run.latest_checkpoint().name == "ckpt-000010.json"
        removed = run.prune_checkpoints(keep_last=2)
        assert removed == 2
        assert [p.name for p in run.checkpoints()] == [
            "ckpt-000004.json",
            "ckpt-000010.json",
        ]

    def test_no_checkpoints(self, tmp_path):
        run = RunStore(tmp_path / "runs").create_run({})
        assert run.checkpoints() == []
        assert run.latest_checkpoint() is None

    def test_prune_requires_positive_keep(self, tmp_path):
        run = RunStore(tmp_path / "runs").create_run({})
        with pytest.raises(TrackingError):
            run.prune_checkpoints(0)
