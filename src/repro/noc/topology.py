"""On-chip network topologies for the spatial accelerator.

Fig. 1's template moves operands between the global buffer (L2) and the PE
array over a network-on-chip; the baseline cost model abstracts it as a
bandwidth number.  This module provides the concrete 2D-mesh structure the
refined model (:mod:`repro.noc.model`) uses:

* X-Y dimension-ordered routing distances,
* multicast trees (a row-then-column spanning tree from the injection
  port), whose *link count* determines multicast energy and whose depth
  adds serialization latency,
* bisection bandwidth, the mesh's aggregate-throughput ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

from repro.errors import ConfigurationError

Coordinate = Tuple[int, int]


@dataclass(frozen=True)
class MeshTopology:
    """A ``width x height`` mesh with the L2 injection port at (0, 0)."""

    width: int
    height: int
    link_bw_bytes_per_cycle: float = 32.0

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ConfigurationError(
                f"mesh must be at least 1x1, got {self.width}x{self.height}"
            )
        if self.link_bw_bytes_per_cycle <= 0:
            raise ConfigurationError("link bandwidth must be positive")

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    @property
    def num_links(self) -> int:
        """Directed link count of the mesh fabric."""
        horizontal = 2 * (self.width - 1) * self.height
        vertical = 2 * self.width * (self.height - 1)
        return horizontal + vertical

    def contains(self, node: Coordinate) -> bool:
        x, y = node
        return 0 <= x < self.width and 0 <= y < self.height

    def hop_distance(self, src: Coordinate, dst: Coordinate) -> int:
        """X-Y routed Manhattan distance."""
        if not (self.contains(src) and self.contains(dst)):
            raise ConfigurationError(f"node outside mesh: {src} -> {dst}")
        return abs(src[0] - dst[0]) + abs(src[1] - dst[1])

    def route(self, src: Coordinate, dst: Coordinate) -> List[Coordinate]:
        """The X-then-Y path, inclusive of both endpoints."""
        if not (self.contains(src) and self.contains(dst)):
            raise ConfigurationError(f"node outside mesh: {src} -> {dst}")
        path = [src]
        x, y = src
        step_x = 1 if dst[0] > x else -1
        while x != dst[0]:
            x += step_x
            path.append((x, y))
        step_y = 1 if dst[1] > y else -1
        while y != dst[1]:
            y += step_y
            path.append((x, y))
        return path

    def multicast_links(
        self, src: Coordinate, destinations: Iterable[Coordinate]
    ) -> int:
        """Links touched by the X-Y multicast tree from ``src``.

        Shared prefixes are counted once — the whole point of multicast
        over repeated unicast.
        """
        links: Set[Tuple[Coordinate, Coordinate]] = set()
        for dst in destinations:
            path = self.route(src, dst)
            for a, b in zip(path, path[1:]):
                links.add((a, b))
        return len(links)

    def multicast_depth(self, src: Coordinate, destinations: Iterable[Coordinate]) -> int:
        """Longest hop distance in the tree (pipeline fill depth)."""
        depths = [self.hop_distance(src, dst) for dst in destinations]
        return max(depths) if depths else 0

    def broadcast_links(self) -> int:
        """Links of a full-array broadcast from the injection port."""
        return self.multicast_links(
            (0, 0),
            [(x, y) for x in range(self.width) for y in range(self.height)],
        )

    def row_nodes(self, row: int) -> List[Coordinate]:
        return [(x, row) for x in range(self.width)]

    def column_nodes(self, column: int) -> List[Coordinate]:
        return [(column, y) for y in range(self.height)]

    @property
    def bisection_bandwidth(self) -> float:
        """Bytes/cycle across the narrower bisection cut."""
        cut_links = min(self.width, self.height)
        return 2 * cut_links * self.link_bw_bytes_per_cycle
