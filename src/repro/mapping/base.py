"""Anytime software-mapping search framework.

UNICO treats the SW mapping tool as an *iterative, resumable* optimizer
(Section 2.1): given extra budget it keeps improving, and its best-so-far
objective is monotonically non-increasing.  :class:`AnytimeMappingSearch`
encodes that contract so successive halving can run a tool in rounds:

    search = FlexTensorSearch(network, hw, engine, seed=...)
    search.run(additional_budget=30)   # round 1
    search.run(additional_budget=60)   # promoted: round 2 continues in place

Bookkeeping exposed to UNICO:

* ``history`` — one :class:`MappingSearchPoint` per consumed budget unit,
  carrying the *trial* network objective (what the objective would be if the
  just-proposed candidate were adopted) and the *best* objective so far,
  plus latency/power of the best network mapping.  The trial series is what
  the robustness metric's 95%-right-tail rule operates on; the best series
  is what MSH's AUC uses.
* ``best_mapping`` / ``best_ppa`` — incumbent full-network mapping.

One budget unit = one candidate-mapping evaluation on the PPA engine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from typing import TYPE_CHECKING

from repro.costmodel.results import LayerPPA, NetworkPPA
from repro.errors import SearchBudgetError
from repro.obs.trace import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.costmodel.engine import PPAEngine
from repro.mapping.gemm_mapping import (
    GemmMapping,
    GemmMappingSpace,
    NetworkMapping,
)
from repro.utils.rng import SeedLike, as_generator
from repro.workloads.network import Network

_INFEASIBLE_OBJECTIVE = float("inf")


@dataclass(frozen=True)
class MappingSearchPoint:
    """One step of the search trace.

    ``trial_*`` describe the network state *if the just-proposed candidate
    were adopted* (the raw loss history the robustness metric samples);
    ``best_*`` describe the incumbent after the step (the monotone curve
    MSH's AUC integrates).
    """

    step: int
    trial_objective: float
    trial_latency_s: float
    trial_power_w: float
    best_objective: float
    best_latency_s: float
    best_power_w: float


class AnytimeMappingSearch(ABC):
    """Base class: per-layer incumbent tracking + network-level accounting.

    Subclasses implement :meth:`_propose`, returning the next
    ``(layer_name, candidate_mapping)`` to evaluate, and may override
    :meth:`_on_result` to update internal strategy state.
    """

    #: human-readable tool name (reported in experiment records)
    name = "anytime"

    #: whether :meth:`_propose` is *speculation-safe*: drafting several
    #: proposals in a row without folding results in between must consume
    #: only RNG state and leave every piece of strategy state that
    #: :meth:`_propose` reads untouched.  Tools whose proposals pop queues
    #: or advance cursors (CoSA, the fusion search) must leave this False;
    #: they silently fall back to scalar stepping under ``batch_size > 1``.
    supports_speculation = False

    def __init__(
        self,
        network: Network,
        hw,
        engine: "PPAEngine",
        objective: str = "latency",
        seed: SeedLike = None,
        batch_size: int = 1,
    ):
        if objective not in ("latency", "edp"):
            raise SearchBudgetError(f"unknown objective {objective!r}")
        if batch_size < 1:
            raise SearchBudgetError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self.network = network
        self.hw = hw
        self.engine = engine
        self.objective = objective
        self.batch_size = int(batch_size)
        #: candidates evaluated through speculative batches / of those, the
        #: replayed proposals the speculation failed to predict
        self.num_speculative_evals = 0
        self.num_speculation_misses = 0
        self.rng = as_generator(seed)
        self.spaces: Dict[str, GemmMappingSpace] = {
            layer.name: self._make_space(layer) for layer in network.layers
        }
        self.layer_counts: Dict[str, int] = {
            layer.name: layer.count for layer in network.layers
        }
        self.layer_names: List[str] = [layer.name for layer in network.layers]
        self.best_layer_mapping: Dict[str, GemmMapping] = {}
        self.best_layer_result: Dict[str, LayerPPA] = {}
        self.history: List[MappingSearchPoint] = []
        self.spent_budget = 0
        self._initialize_incumbents()

    # ------------------------------------------------------------------ setup
    def _make_space(self, layer):
        """Mapping-space factory; platforms with different mapping types
        (e.g. the Ascend-like fusion space) override this."""
        return GemmMappingSpace(layer.to_gemm())

    def _seed_mapping(self, space) -> GemmMapping:
        """Heuristic starting point for one layer on ``self.hw``."""
        return space.seeded_mapping_for(self.hw)

    def _minimal_mapping(self, space) -> GemmMapping:
        """Smallest-footprint mapping, used as the last-resort seed."""
        return GemmMapping(1, 1, 1)

    def _feasible_seed(self, layer_name: str) -> Tuple[GemmMapping, LayerPPA]:
        """Find a feasible starting mapping, shrinking tiles as needed."""
        candidate = self._seed_mapping(self.spaces[layer_name])
        result = self.engine.evaluate_layer(self.hw, candidate, layer_name)
        return self._shrink_to_feasible(layer_name, candidate, result)

    def _shrink_to_feasible(
        self, layer_name: str, candidate: GemmMapping, result: LayerPPA
    ) -> Tuple[GemmMapping, LayerPPA]:
        """Halve tiles until ``candidate`` fits; last resort is minimal."""
        space = self.spaces[layer_name]
        shrink_round = 0
        while not result.feasible and shrink_round < 24:
            tm, tn, tk = candidate.tiles()
            if tk > 1:
                tk = max(1, tk // 2)
            elif tn > 1:
                tn = max(1, tn // 2)
            else:
                tm = max(1, tm // 2)
            from repro.utils.intmath import nearest_divisor

            candidate = candidate.with_tiles(
                nearest_divisor(space.shape.m, tm),
                nearest_divisor(space.shape.n, tn),
                nearest_divisor(space.shape.k, tk),
            )
            result = self.engine.evaluate_layer(self.hw, candidate, layer_name)
            shrink_round += 1
        if not result.feasible:
            candidate = self._minimal_mapping(space)
            result = self.engine.evaluate_layer(self.hw, candidate, layer_name)
        return candidate, result

    def _initialize_incumbents(self) -> None:
        """Seed every layer's incumbent with one batched engine pass.

        All layers' heuristic seed mappings travel in a single
        ``evaluate_layers`` call (item-for-item query accounting, so
        totals match the per-layer loop it replaces); only layers whose
        seed came back infeasible pay the scalar shrink fallback.
        Duck-typed engines without the batch API keep the scalar path.
        """
        seeds = [
            self._seed_mapping(self.spaces[layer_name])
            for layer_name in self.layer_names
        ]
        evaluate = getattr(self.engine, "evaluate_layers", None)
        if evaluate is None:
            results = [
                self.engine.evaluate_layer(self.hw, seed, layer_name)
                for seed, layer_name in zip(seeds, self.layer_names)
            ]
        else:
            results = evaluate(self.hw, list(zip(seeds, self.layer_names)))
        for layer_name, seed, result in zip(self.layer_names, seeds, results):
            mapping, result = self._shrink_to_feasible(layer_name, seed, result)
            self.best_layer_mapping[layer_name] = mapping
            self.best_layer_result[layer_name] = result

    # --------------------------------------------------------------- strategy
    @abstractmethod
    def _propose(self) -> Tuple[str, GemmMapping]:
        """Return the next (layer, candidate mapping) to evaluate."""

    def _propose_batch(self, n: int) -> Optional[List[Tuple[str, GemmMapping]]]:
        """Draft up to ``n`` proposals against the current incumbent state.

        The default drafts by calling :meth:`_propose` repeatedly, which is
        only sound for speculation-safe tools (``supports_speculation``);
        for everything else it returns ``None`` — without consuming RNG —
        and :meth:`run` falls back to scalar stepping.
        """
        if not self.supports_speculation:
            return None
        return [self._propose() for _ in range(n)]

    def _on_result(
        self, layer_name: str, mapping: GemmMapping, result: LayerPPA, improved: bool
    ) -> None:
        """Hook for strategy state updates (acceptance, populations, ...)."""

    # -------------------------------------------------------------- accounting
    def _network_totals(self) -> Tuple[float, float]:
        """(total latency s, total energy J) of the incumbent mapping."""
        latency = 0.0
        energy = 0.0
        for layer_name in self.layer_names:
            result = self.best_layer_result[layer_name]
            if not result.feasible:
                return (_INFEASIBLE_OBJECTIVE, _INFEASIBLE_OBJECTIVE)
            count = self.layer_counts[layer_name]
            latency += count * result.latency_s
            energy += count * result.energy_j
        return latency, energy

    def _network_objective(self, latency: float, energy: float) -> float:
        if not np.isfinite(latency):
            return _INFEASIBLE_OBJECTIVE
        if self.objective == "latency":
            return latency
        return latency * energy  # EDP

    def _network_power(self, latency: float, energy: float) -> float:
        if not np.isfinite(latency) or latency <= 0:
            return _INFEASIBLE_OBJECTIVE
        leakage = self.engine.tech.leakage_w_per_mm2 * self.engine.area_mm2(self.hw)
        return energy / latency + leakage

    def _trial_totals(
        self, layer_name: str, result: LayerPPA
    ) -> Tuple[float, float]:
        """Network totals if ``layer_name`` adopted ``result``."""
        base_latency, base_energy = self._network_totals()
        if not np.isfinite(base_latency):
            if not result.feasible:
                return (_INFEASIBLE_OBJECTIVE, _INFEASIBLE_OBJECTIVE)
            return (_INFEASIBLE_OBJECTIVE, _INFEASIBLE_OBJECTIVE)
        if not result.feasible:
            return (_INFEASIBLE_OBJECTIVE, _INFEASIBLE_OBJECTIVE)
        count = self.layer_counts[layer_name]
        incumbent = self.best_layer_result[layer_name]
        latency = base_latency + count * (result.latency_s - incumbent.latency_s)
        energy = base_energy + count * (result.energy_j - incumbent.energy_j)
        return latency, energy

    # ------------------------------------------------------------------- run
    def run(self, additional_budget: int) -> "AnytimeMappingSearch":
        """Consume ``additional_budget`` evaluations, extending the history."""
        if additional_budget < 0:
            raise SearchBudgetError(
                f"additional_budget must be >= 0, got {additional_budget}"
            )
        # duck-typed engines (tests) may lack ``tracer``; default to the null one
        tracer = getattr(self.engine, "tracer", NULL_TRACER)
        if tracer.enabled:
            with tracer.span(
                "mapping_search", tool=self.name, budget=additional_budget
            ) as span:
                self._run_impl(additional_budget)
                span.set_attribute("spent_budget", self.spent_budget)
                span.set_attribute(
                    "speculative_evals", self.num_speculative_evals
                )
            return self
        return self._run_impl(additional_budget)

    def _run_impl(self, additional_budget: int) -> "AnytimeMappingSearch":
        """Untraced budget-consumption loop behind :meth:`run`."""
        remaining = additional_budget
        while remaining > 0:
            if self.batch_size > 1 and remaining > 1:
                remaining -= self._run_speculative(min(self.batch_size, remaining))
            else:
                self._step_scalar()
                remaining -= 1
        return self

    def _step_scalar(self) -> None:
        """One propose -> evaluate -> fold step (the classic inner loop)."""
        layer_name, candidate = self._propose()
        result = self.engine.evaluate_layer(self.hw, candidate, layer_name)
        self._fold_result(layer_name, candidate, result)

    def _run_speculative(self, n: int) -> int:
        """Draft ``n`` proposals, batch-evaluate them, then replay the fold.

        The drafting pass consumes only RNG state (the speculation-safety
        contract), so after restoring the RNG snapshot the replay's
        :meth:`_propose` calls — made under the *true* post-fold state —
        regenerate the same proposals whenever folding earlier results did
        not steer the strategy elsewhere.  Replayed proposals found in the
        batch pool reuse the batched evaluation; mispredictions fall back
        to a scalar engine call.  Either way the history, incumbents and
        final RNG state are byte-identical to ``batch_size=1``.
        """
        rng_state = self.rng.bit_generator.state
        drafts = self._propose_batch(n)
        if not drafts:
            self._step_scalar()
            return 1
        self.rng.bit_generator.state = rng_state

        evaluate = getattr(self.engine, "evaluate_candidates", None)
        if evaluate is None:
            for _ in range(len(drafts)):
                self._step_scalar()
            return len(drafts)

        by_layer: Dict[str, List[GemmMapping]] = {}
        for layer_name, candidate in drafts:
            by_layer.setdefault(layer_name, []).append(candidate)
        pool: Dict[Tuple[str, tuple], LayerPPA] = {}
        # NullTracer.span is a shared no-op, so the untraced cost here is
        # one call per speculative batch — off the per-candidate hot path.
        tracer = getattr(self.engine, "tracer", NULL_TRACER)
        with tracer.span("speculative_batch", drafts=len(drafts)):
            for layer_name, candidates in by_layer.items():
                results = evaluate(self.hw, layer_name, candidates)
                for candidate, result in zip(candidates, results):
                    pool[(layer_name, candidate.key())] = result
        self.num_speculative_evals += len(drafts)

        for _ in range(len(drafts)):
            layer_name, candidate = self._propose()
            result = pool.get((layer_name, candidate.key()))
            if result is None:
                self.num_speculation_misses += 1
                result = self.engine.evaluate_layer(self.hw, candidate, layer_name)
            self._fold_result(layer_name, candidate, result)
        return len(drafts)

    def _fold_result(
        self, layer_name: str, candidate: GemmMapping, result: LayerPPA
    ) -> None:
        """Fold one evaluated candidate into incumbents + history."""
        trial_latency, trial_energy = self._trial_totals(layer_name, result)
        trial_objective = self._network_objective(trial_latency, trial_energy)

        improved = False
        incumbent = self.best_layer_result[layer_name]
        if result.feasible:
            better_layer = (
                not incumbent.feasible
                or self._layer_score(result) < self._layer_score(incumbent)
            )
            if better_layer:
                self.best_layer_mapping[layer_name] = candidate
                self.best_layer_result[layer_name] = result
                improved = True
        self._on_result(layer_name, candidate, result, improved)

        best_latency, best_energy = self._network_totals()
        self.spent_budget += 1
        self.history.append(
            MappingSearchPoint(
                step=self.spent_budget,
                trial_objective=trial_objective,
                trial_latency_s=trial_latency,
                trial_power_w=self._network_power(trial_latency, trial_energy),
                best_objective=self._network_objective(best_latency, best_energy),
                best_latency_s=best_latency,
                best_power_w=self._network_power(best_latency, best_energy),
            )
        )

    def _layer_score(self, result: LayerPPA) -> float:
        if self.objective == "latency":
            return result.latency_s
        return result.latency_s * result.energy_j

    # ------------------------------------------------------------------ views
    @property
    def best_mapping(self) -> NetworkMapping:
        return dict(self.best_layer_mapping)

    @property
    def best_objective(self) -> float:
        if self.history:
            return self.history[-1].best_objective
        latency, energy = self._network_totals()
        return self._network_objective(latency, energy)

    @property
    def best_ppa(self) -> NetworkPPA:
        return self.engine.aggregate(self.hw, self.best_mapping)

    def best_curve(self) -> np.ndarray:
        """Monotone best-so-far objective values, one per step."""
        return np.array([point.best_objective for point in self.history])

    def trial_curve(self) -> np.ndarray:
        """Per-step trial objectives (the raw loss history)."""
        return np.array([point.trial_objective for point in self.history])
