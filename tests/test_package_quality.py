"""Release-quality checks over the whole package.

* every module and public callable carries a docstring,
* every package ``__all__`` names real attributes,
* no module leaks the global NumPy random state (determinism guard).
"""

import importlib
import inspect
import pathlib
import pkgutil

import numpy as np
import pytest

import repro

SRC_ROOT = pathlib.Path(repro.__file__).parent


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages([str(SRC_ROOT)], prefix="repro."):
        names.append(module_info.name)
    return sorted(names)


MODULES = _all_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize(
    "module_name", [m for m in MODULES if m.count(".") == 1]
)
def test_package_all_exports_exist(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


def test_public_classes_and_functions_documented():
    undocumented = []
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        if not module.__name__.startswith("repro"):
            continue
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if getattr(obj, "__module__", "") != module_name:
                    continue  # re-exports documented at their origin
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{module_name}.{name}")
    assert not undocumented, f"missing docstrings: {undocumented[:20]}"


def test_importing_everything_does_not_touch_global_rng():
    state_before = np.random.get_state()[1].copy()
    for module_name in MODULES:
        importlib.import_module(module_name)
    state_after = np.random.get_state()[1]
    assert np.array_equal(state_before, state_after)
