"""Tensor-program IR: loop nests, scheduling primitives and lowering.

The DSL-and-scheduling view of Section 2: a statement's canonical loop
nest is transformed by split/reorder/bind/fuse primitives and lowered onto
the GEMMCore intrinsic's mapping representation (and raised back), giving
the mapping layer a verifiable semantics.
"""

from repro.ir.loopnest import BINDINGS, Loop, LoopNest, gemm_domain
from repro.ir.lowering import lower_to_mapping, raise_from_mapping
from repro.ir.schedule import Primitive, Schedule

__all__ = [
    "BINDINGS",
    "Loop",
    "LoopNest",
    "gemm_domain",
    "lower_to_mapping",
    "raise_from_mapping",
    "Primitive",
    "Schedule",
]
