#!/usr/bin/env python
"""Master-slave deployment: the PPA engine as a REST service (Fig. 6b).

Section 3.5 describes the PPA estimation engine as "a standalone REST API
to call".  This example spins one up in-process, points a remote-engine
client at it, and runs a software-mapping search entirely over HTTP —
exactly how slave workstations would talk to a shared estimation service.

Run:  python examples/rest_service.py
"""

from repro.costmodel import MaestroEngine
from repro.costmodel.maestro import spatial_area_mm2
from repro.costmodel.service import PPAServiceServer, RemotePPAEngine
from repro.hw import edge_design_space
from repro.mapping import FlexTensorSearch
from repro.workloads import get_network


def main() -> None:
    network = get_network("mobilenet")
    hw = edge_design_space().to_config(
        {
            "pe_x": 8,
            "pe_y": 8,
            "l1_bytes": 4096,
            "l2_kb": 256,
            "noc_bw": 128,
            "dataflow": "ws",
        }
    )

    backend = MaestroEngine(network)
    with PPAServiceServer(backend) as server:
        print(f"PPA service for {network.name!r} listening at {server.url}")
        client = RemotePPAEngine(network, server.url, area_fn=spatial_area_mm2)
        print(f"health check: {client.health()}")

        print("\nRunning a FlexTensor-like mapping search through the service...")
        search = FlexTensorSearch(network, hw, client, seed=0)
        search.run(120)
        ppa = search.best_ppa
        print(
            f"best mapping after 120 evaluations: "
            f"{ppa.latency_s * 1e3:.2f} ms, {ppa.power_w * 1e3:.0f} mW"
        )
        print(
            f"client issued {client.num_queries} queries "
            f"({client.num_cache_hits} served from the local cache); "
            f"the service computed {backend.num_queries - backend.num_cache_hits} "
            f"fresh analyses"
        )
    print("service stopped.")


if __name__ == "__main__":
    main()
