"""Transformer workloads: BERT-base and ViT-B/16.

Transformers lower naturally onto the GEMMCore intrinsic: each encoder layer
is a fixed set of GEMMs (QKV projections, attention score/context matmuls,
output projection, two FFN matmuls).  Shapes use batch 1.
"""

from __future__ import annotations

from typing import List

from repro.workloads.layers import Conv2D, Gemm, LayerSpec
from repro.workloads.network import Network


def _encoder_gemms(
    prefix: str,
    seq: int,
    hidden: int,
    heads: int,
    ffn: int,
    blocks: int,
) -> List[LayerSpec]:
    """The GEMM set of ``blocks`` identical transformer encoder layers."""
    head_dim = hidden // heads
    return [
        # fused QKV projection: (3*hidden x hidden) @ (hidden x seq)
        Gemm(name=f"{prefix}_qkv", m=3 * hidden, n=seq, k=hidden, count=blocks),
        # attention scores: per head (seq x head_dim) @ (head_dim x seq)
        Gemm(
            name=f"{prefix}_scores",
            m=seq,
            n=seq,
            k=head_dim,
            count=blocks * heads,
        ),
        # attention context: per head (seq x seq) @ (seq x head_dim)
        Gemm(
            name=f"{prefix}_context",
            m=seq,
            n=head_dim,
            k=seq,
            count=blocks * heads,
        ),
        Gemm(name=f"{prefix}_out_proj", m=hidden, n=seq, k=hidden, count=blocks),
        Gemm(name=f"{prefix}_ffn_up", m=ffn, n=seq, k=hidden, count=blocks),
        Gemm(name=f"{prefix}_ffn_down", m=hidden, n=seq, k=ffn, count=blocks),
    ]


def bert(seq_len: int = 128) -> Network:
    """BERT-base (Devlin et al., 2019): 12 layers, hidden 768, 12 heads."""
    layers = tuple(
        _encoder_gemms("enc", seq=seq_len, hidden=768, heads=12, ffn=3072, blocks=12)
    )
    return Network(
        name="bert",
        layers=layers,
        family="transformer",
        year=2019,
        description=f"BERT-base, seq_len={seq_len}",
    )


def vit(image: int = 224, patch: int = 16) -> Network:
    """ViT-B/16 (Dosovitskiy et al., 2021): patch embed + 12 encoder layers."""
    tokens = (image // patch) ** 2 + 1  # +1 class token
    patch_embed = Conv2D(
        name="patch_embed",
        in_channels=3,
        out_channels=768,
        in_h=image,
        in_w=image,
        kernel=patch,
        stride=patch,
        padding="valid",
    )
    encoder = _encoder_gemms(
        "enc", seq=tokens, hidden=768, heads=12, ffn=3072, blocks=12
    )
    head = Gemm(name="cls_head", m=1000, n=1, k=768)
    return Network(
        name="vit",
        layers=tuple([patch_embed] + encoder + [head]),
        family="transformer",
        year=2021,
        description=f"ViT-B/{patch} @ {image}x{image}",
    )
