"""Acquisition functions for Bayesian optimization."""

from __future__ import annotations

import numpy as np
from scipy import stats


def expected_improvement(
    mean: np.ndarray,
    std: np.ndarray,
    best: "float | np.ndarray",
    xi: float = 0.01,
) -> np.ndarray:
    """EI for minimization: E[max(best - f - xi, 0)] under N(mean, std^2).

    Balances exploitation (low predicted mean) against exploration (high
    predictive uncertainty) — the balance Section 3.2 asks of the batch
    sampler's acquisition.  ``best`` may be a scalar or an array that
    broadcasts against ``mean`` (one incumbent per row of a pool matrix).
    """
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    improvement = best - mean - xi
    z = improvement / std
    return improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)


def upper_confidence_bound(
    mean: np.ndarray, std: np.ndarray, beta: float = 2.0
) -> np.ndarray:
    """Lower-confidence bound for minimization (named UCB by convention)."""
    return -(np.asarray(mean, dtype=float) - beta * np.asarray(std, dtype=float))
