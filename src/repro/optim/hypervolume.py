"""Hypervolume computation (minimization convention).

The paper reports *hypervolume difference* curves (Figs. 7, 10): the gap
between a reference front's hypervolume and the hypervolume achieved so far.
We provide:

* exact hypervolume for 1D/2D via sweep, and for any dimension via the
  WFG-style inclusion-exclusion recursion (fine for the front sizes here),
* :func:`hypervolume_difference`,
* a deterministic Monte-Carlo estimator for cross-checks in tests.

Points dominating the reference point contribute; anything outside it is
clipped away.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.optim.pareto import pareto_front


def _clip_to_reference(points: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Drop points not strictly better than the reference in every axis."""
    mask = np.all(points < reference, axis=1)
    return points[mask]


def _hv_2d(points: np.ndarray, reference: np.ndarray) -> float:
    """Exact 2D hypervolume by sweeping the staircase."""
    order = np.argsort(points[:, 0])
    sorted_points = points[order]
    total = 0.0
    prev_y = reference[1]
    for x, y in sorted_points:
        if y < prev_y:
            total += (reference[0] - x) * (prev_y - y)
            prev_y = y
    return float(total)


def _hv_recursive(points: np.ndarray, reference: np.ndarray) -> float:
    """WFG-style exclusive-volume recursion (exact, any dimension)."""
    points = pareto_front(points)
    if points.shape[0] == 0:
        return 0.0
    if points.shape[1] == 1:
        return float(reference[0] - points[:, 0].min())
    if points.shape[1] == 2:
        return _hv_2d(points, reference)
    # sort by last objective, peel one point at a time
    order = np.argsort(points[:, -1])[::-1]
    points = points[order]
    total = 0.0
    for i in range(points.shape[0]):
        point = points[i]
        # exclusive contribution of `point` against the better-in-last-axis rest
        inclusive = float(np.prod(reference - point))
        rest = points[i + 1 :]
        if rest.shape[0]:
            limited = np.maximum(rest, point)
            total += inclusive - _hv_recursive(limited, reference)
        else:
            total += inclusive
    return total


def hypervolume(points: np.ndarray, reference: Sequence[float]) -> float:
    """Exact hypervolume of ``points`` w.r.t. ``reference`` (minimization)."""
    points = np.asarray(points, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if points.size == 0:
        return 0.0
    if points.ndim != 2 or points.shape[1] != reference.shape[0]:
        raise ValueError(
            f"points {points.shape} incompatible with reference {reference.shape}"
        )
    finite = np.all(np.isfinite(points), axis=1)
    points = _clip_to_reference(points[finite], reference)
    if points.shape[0] == 0:
        return 0.0
    return _hv_recursive(points, reference)


def hypervolume_difference(
    points: np.ndarray,
    reference: Sequence[float],
    ideal_front: Optional[np.ndarray] = None,
    ideal_hv: Optional[float] = None,
) -> float:
    """HV(ideal front) - HV(points); lower is better, 0 means converged."""
    if ideal_hv is None:
        if ideal_front is None:
            raise ValueError("provide ideal_front or ideal_hv")
        ideal_hv = hypervolume(ideal_front, reference)
    return max(0.0, float(ideal_hv) - hypervolume(points, reference))


def hypervolume_monte_carlo(
    points: np.ndarray,
    reference: Sequence[float],
    num_samples: int = 200_000,
    seed: int = 0,
) -> float:
    """Monte-Carlo hypervolume estimate (used to cross-check the exact code).

    Samples uniformly in the box ``[min(points), reference]`` and counts the
    dominated fraction.
    """
    points = np.asarray(points, dtype=float)
    reference = np.asarray(reference, dtype=float)
    finite = np.all(np.isfinite(points), axis=1)
    points = _clip_to_reference(points[finite], reference)
    if points.shape[0] == 0:
        return 0.0
    low = points.min(axis=0)
    box_volume = float(np.prod(reference - low))
    if box_volume <= 0:
        return 0.0
    rng = np.random.default_rng(seed)
    samples = rng.uniform(low, reference, size=(num_samples, reference.shape[0]))
    dominated = np.zeros(num_samples, dtype=bool)
    for point in points:
        dominated |= np.all(samples >= point, axis=1)
    return box_volume * float(dominated.mean())


def reference_point_from(points: np.ndarray, margin: float = 1.1) -> np.ndarray:
    """A reference point slightly beyond the worst finite observation.

    The pad is *additive* on the magnitude of the worst value,
    ``worst + (margin - 1) * max(|worst|, 1)``, so the reference always
    moves outward (strictly worse, under minimization) regardless of
    sign.  A multiplicative ``worst * margin`` would move *inward* on
    axes whose worst observation is negative, silently discarding those
    points from every hypervolume computed against the reference.
    """
    points = np.asarray(points, dtype=float)
    finite = np.all(np.isfinite(points), axis=1)
    if not finite.any():
        raise ValueError("no finite points to derive a reference from")
    if margin <= 1.0:
        raise ValueError(f"margin must exceed 1, got {margin}")
    worst = points[finite].max(axis=0)
    pad = (margin - 1.0) * np.maximum(np.abs(worst), 1.0)
    return worst + pad + 1e-9
