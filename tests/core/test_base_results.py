"""Tests for the shared co-search result types."""

import numpy as np
import pytest

from repro.core.base import CoSearchResult, HWDesign, TimelineEntry
from repro.core.robustness import RobustnessResult
from repro.costmodel.results import NetworkPPA
from repro.optim.pareto import ParetoFront


def _design(latency=1e-3, power=0.5, area=2.0, r=0.1) -> HWDesign:
    ppa = NetworkPPA(
        latency_s=latency,
        energy_j=latency * power,
        power_w=power,
        area_mm2=area,
        feasible=True,
    )
    robustness = RobustnessResult(
        r_value=r, delta=r, theta=np.pi / 2,
        optimal_latency_s=latency, optimal_power_w=power,
        suboptimal_latency_s=latency, suboptimal_power_w=power,
    )
    return HWDesign(hw="hw", mapping={}, ppa=ppa, robustness=robustness)


class TestHWDesign:
    def test_ppa_vector(self):
        design = _design(latency=2e-3, power=0.25, area=3.0)
        assert design.ppa_vector.tolist() == [2e-3, 0.25, 3.0]


class TestCoSearchResult:
    def _result(self, entries=(), designs=()):
        front = ParetoFront(num_objectives=3)
        for design in designs:
            front.add(design, design.ppa_vector)
        return CoSearchResult(
            method="m",
            network="n",
            pareto=front,
            timeline=list(entries),
            total_time_s=7200.0,
        )

    def test_total_time_h(self):
        assert self._result().total_time_h == pytest.approx(2.0)

    def test_best_design_none_when_empty(self):
        assert self._result().best_design() is None

    def test_best_design_min_euclid(self):
        balanced = _design(latency=1e-3, power=0.5, area=2.0)
        extreme = _design(latency=1e-6, power=50.0, area=20.0)
        result = self._result(designs=[balanced, extreme])
        assert result.best_design() is balanced

    def test_feasible_timeline_points_filters(self):
        entries = [
            TimelineEntry(1.0, np.array([1.0, 1.0, 1.0]), True),
            TimelineEntry(2.0, np.array([np.inf, np.inf, np.inf]), False),
            TimelineEntry(3.0, np.array([2.0, 2.0, 2.0]), True),
        ]
        points = self._result(entries=entries).feasible_timeline_points()
        assert points.shape == (2, 3)

    def test_empty_timeline_points_shape(self):
        points = self._result().feasible_timeline_points()
        assert points.shape == (0, 3)
