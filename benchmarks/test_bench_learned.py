"""Learned-screening gate: fewer analytical evals, same Pareto quality.

The screened evaluation path only pays off if the distilled model skips
a large share of analytical PPA evaluations without degrading the front.
This bench records one run with per-candidate sample journaling, trains
the journal-distilled model on it, then replays a *held-out* seed with
and without screening and gates on: ≥2x fewer analytical engine queries
at ≤1% hypervolume regression (shared reference point across both runs).

Screening intercepts *batched* evaluation only (the scalar path is never
screened — honesty contract), so the gate runs a batch-heavy inner
search: the ``random`` tool is speculation-exact (its replay never
misses, so nearly every query flows through ``evaluate_candidates``) on
a shallow network whose per-layer speculative batches stay wide.
"""

import dataclasses

import pytest

from benchmarks.conftest import run_once, save_record
from repro.experiments import combined_reference, final_hypervolume
from repro.experiments.harness import build_optimizer, run_method
from repro.experiments.presets import get_preset
from repro.learned import LearnedCostModel, ScreeningPPAEngine, build_dataset
from repro.utils.records import RunRecord

NETWORK = "fsrcnn_120x320"  # 5 layers -> wide per-layer speculative batches
TOOL = "random"
TRAIN_SEED = 11
EVAL_SEED = 12
EVAL_BATCH = 64
TOPK_FRACTION = 0.2
ESCALATE_FRACTION = 0.05

MIN_EVAL_REDUCTION = 2.0
MAX_HV_REGRESSION = 0.01

# bench budgets, but a deeper inner search: the per-trial incumbent
# initialization is a fixed scalar cost, so a larger mapping budget is
# what gives screening a realistic batch share (~90% of all queries)
PRESET = dataclasses.replace(
    get_preset("bench"), name="bench-learned", unico_budget=300
)


def _eval_run(model=None):
    """One fixed-seed co-search, optionally behind the screening wrapper."""
    optimizer = build_optimizer(
        "unico", "edge", NETWORK, PRESET, seed=EVAL_SEED,
        eval_batch_size=EVAL_BATCH, tool=TOOL,
    )
    if model is not None:
        optimizer.engine = ScreeningPPAEngine(
            optimizer.engine, model=model,
            topk_fraction=TOPK_FRACTION, escalate_fraction=ESCALATE_FRACTION,
        )
    result = optimizer.optimize()
    stats = optimizer.engine.screen_stats() if model is not None else None
    return result, stats


def _run_gate(runs_dir) -> RunRecord:
    # 1. record training data: a tracked run journaling every engine sample
    run_method(
        "unico", "edge", NETWORK, PRESET, seed=TRAIN_SEED,
        run_store=runs_dir, record_samples=True,
        eval_batch_size=EVAL_BATCH, tool=TOOL,
    )
    dataset = build_dataset(runs_dir)
    model = LearnedCostModel.fit(
        dataset.x, dataset.latency_s, dataset.energy_j, dataset.feasible,
        seed=0, hidden=32, ensemble=4, epochs=200,
    )

    # 2. evaluate on a held-out seed, with and without screening
    plain, _ = _eval_run()
    screened, stats = _eval_run(model)

    reference = combined_reference([plain, screened])
    hv_plain = final_hypervolume(plain, reference)
    hv_screened = final_hypervolume(screened, reference)

    record = RunRecord("learned-screening")
    record.put("network", NETWORK)
    record.put("tool", TOOL)
    record.put("train_samples", len(dataset))
    record.put("queries_plain", plain.total_engine_queries)
    record.put("queries_screened", screened.total_engine_queries)
    record.put(
        "eval_reduction",
        plain.total_engine_queries / max(1, screened.total_engine_queries),
    )
    record.put("hv_plain", hv_plain)
    record.put("hv_screened", hv_screened)
    record.put("hv_ratio", hv_screened / hv_plain if hv_plain else 1.0)
    record.child("screening").update(
        {k: v for k, v in stats.items() if not isinstance(v, dict)}
    )
    return record


@pytest.mark.benchmark(group="learned")
def test_learned_screening_gate(benchmark, results_dir, tmp_path):
    record = run_once(benchmark, _run_gate, tmp_path / "runs")
    save_record(results_dir, "BENCH_learned", record)
    print(f"\n=== Learned screening on {NETWORK} ({TOOL} tool, train seed "
          f"{TRAIN_SEED}, eval seed {EVAL_SEED}) ===")
    print(
        f"analytical queries {record.get('queries_plain')} -> "
        f"{record.get('queries_screened')} "
        f"({record.get('eval_reduction'):.2f}x reduction)"
    )
    print(
        f"hypervolume {record.get('hv_plain'):.4f} -> "
        f"{record.get('hv_screened'):.4f} "
        f"(ratio {record.get('hv_ratio'):.4f})"
    )
    assert record.get("eval_reduction") >= MIN_EVAL_REDUCTION
    assert record.get("hv_ratio") >= 1.0 - MAX_HV_REGRESSION
