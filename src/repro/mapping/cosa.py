"""CoSA-like one-shot constrained mapper.

CoSA (Huang et al., ISCA'21 — cited as [28]) shows that a good mapping can
be *constructed* from the problem and hardware constraints instead of
searched for.  This module implements that spirit analytically:

1. spread m over pe_x and n over pe_y with a per-PE sub-tile chosen so
   utilization is high,
2. grow the reduction tile k to the largest divisor the double-buffered L1
   budget allows (maximizing operand reuse per fill),
3. shrink m/n tiles if the L2 working set overflows,
4. put the reduction loop innermost (accumulators complete in place) and
   order the remaining inter-tile loops largest-trip-outermost (best
   residency for the stationary operand).

As an :class:`AnytimeMappingSearch` it constructs its mapping for every
layer in its first |layers| steps and is idle afterwards — giving
successive halving a meaningful "converges instantly, cannot improve"
member, and the tests a strong non-iterative baseline.
"""

from __future__ import annotations

from typing import Tuple

from repro.costmodel.results import LayerPPA
from repro.mapping.base import AnytimeMappingSearch
from repro.mapping.gemm_mapping import GemmMapping
from repro.utils.intmath import nearest_divisor, round_up_div


def construct_mapping(shape, hw, acc_bytes: int = 4) -> GemmMapping:
    """Build the constrained-optimization mapping for one GEMM on ``hw``."""
    m, n, k = shape.m, shape.n, shape.k
    best = GemmMapping(1, 1, 1)
    best_utilization = -1.0
    for sub in (8, 4, 2, 1):
        tile_m = nearest_divisor(m, min(m, sub * hw.pe_x))
        tile_n = nearest_divisor(n, min(n, sub * hw.pe_y))
        sub_m = round_up_div(tile_m, hw.pe_x)
        sub_n = round_up_div(tile_n, hw.pe_y)
        tk_budget = (hw.l1_bytes - sub_m * sub_n * acc_bytes) // (
            2 * (sub_m + sub_n)
        )
        if tk_budget < 1:
            continue
        tile_k = nearest_divisor(k, min(k, int(tk_budget)))
        while (
            2 * (sub_m * tile_k + tile_k * sub_n) + sub_m * sub_n * acc_bytes
            > hw.l1_bytes
            and tile_k > 1
        ):
            tile_k = nearest_divisor(k, max(1, tile_k // 2))
        # L2 working set: shrink the larger of m/n until it fits
        while (
            2 * (tile_m + tile_n) * tile_k + tile_m * tile_n * acc_bytes
            > hw.l2_bytes
            and max(tile_m, tile_n) > 1
        ):
            if tile_m >= tile_n:
                tile_m = nearest_divisor(m, max(1, tile_m // 2))
            else:
                tile_n = nearest_divisor(n, max(1, tile_n // 2))
        l1_fits = (
            2 * (sub_m * tile_k + tile_k * sub_n) + sub_m * sub_n * acc_bytes
            <= hw.l1_bytes
        )
        l2_fits = (
            2 * (tile_m + tile_n) * tile_k + tile_m * tile_n * acc_bytes
            <= hw.l2_bytes
        )
        if not (l1_fits and l2_fits):
            continue
        utilization = (min(tile_m, hw.pe_x) * min(tile_n, hw.pe_y)) / (
            hw.pe_x * hw.pe_y
        )
        # prefer higher utilization; break ties toward deeper reduction
        score = utilization + 1e-6 * tile_k
        if score > best_utilization:
            best_utilization = score
            trips = {
                "m": round_up_div(m, tile_m),
                "n": round_up_div(n, tile_n),
                "k": round_up_div(k, tile_k),
            }
            outer_two = sorted(("m", "n"), key=lambda d: -trips[d])
            best = GemmMapping(
                tile_m=tile_m,
                tile_n=tile_n,
                tile_k=tile_k,
                loop_order=(outer_two[0], outer_two[1], "k"),
                spatial="mn",
                unroll=4 if tile_k % 4 == 0 else 1,
            )
    return best


class CosaMapper(AnytimeMappingSearch):
    """One-shot constructed mapping per layer (no iterative improvement)."""

    name = "cosa"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._pending = list(self.layer_names)

    def _propose(self) -> Tuple[str, GemmMapping]:
        if self._pending:
            layer_name = self._pending.pop(0)
        else:
            # constructed already; re-propose the incumbent (idle steps)
            layer_name = self.layer_names[
                self.spent_budget % len(self.layer_names)
            ]
            return layer_name, self.best_layer_mapping[layer_name]
        shape = self.spaces[layer_name].shape
        return layer_name, construct_mapping(shape, self.hw)

    def _on_result(
        self, layer_name: str, mapping: GemmMapping, result: LayerPPA, improved: bool
    ) -> None:
        """No strategy state: construction is deterministic and one-shot."""
