"""Central registry of workloads and the paper's experiment suites.

Every network used anywhere in the evaluation is registered here under its
canonical name.  The suite constants mirror Section 4:

* :data:`TABLE12_NETWORKS` — the 7 networks of Tables 1-2 and Fig. 7.
* :data:`FIG8_TRAIN` / :data:`FIG8_VALIDATION` — Section 4.3.
* :data:`FIG9_TRAIN` / :data:`FIG9_VALIDATION` — Section 4.4.
* :data:`FIG10_NETWORKS` — the ablation workloads.
* :data:`FIG11_NETWORKS` — the industrial Ascend-like study.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.network import Network
from repro.workloads.networks.conv_nets import resnet50, vgg16, xception
from repro.workloads.networks.dense_prediction import (
    dleu,
    fsrcnn,
    resunet,
    srgan,
    unet,
)
from repro.workloads.networks.extra_nets import (
    densenet121,
    efficientnet_b0,
    gpt2_decode,
)
from repro.workloads.networks.mobile_nets import (
    convnext,
    efficientnet_v2,
    mobilenet_v1,
    mobilenet_v2,
    mobilenet_v3_large,
    mobilenet_v3_small,
    nasnet_mobile,
)
from repro.workloads.networks.transformers import bert, vit

_BUILDERS: Dict[str, Callable[[], Network]] = {
    "bert": bert,
    "mobilenet": mobilenet_v1,
    "mobilenetv2": mobilenet_v2,
    "mobilenetv3_large": mobilenet_v3_large,
    "mobilenetv3_small": mobilenet_v3_small,
    "nasnetmobile": nasnet_mobile,
    "efficientnetv2": efficientnet_v2,
    "convnext": convnext,
    "resnet": resnet50,
    "resunet": resunet,
    "srgan": srgan,
    "unet": unet,
    "vit": vit,
    "vgg": vgg16,
    "xception": xception,
    "gpt2_decode": gpt2_decode,
    "efficientnet_b0": efficientnet_b0,
    "densenet121": densenet121,
    "fsrcnn_120x320": lambda: fsrcnn(120, 320),
    "fsrcnn_240x640": lambda: fsrcnn(240, 640),
    "fsrcnn_480x1280": lambda: fsrcnn(480, 1280),
    "dleu": dleu,
}

_CACHE: Dict[str, Network] = {}


def available_networks() -> Tuple[str, ...]:
    """All registered workload names, sorted."""
    return tuple(sorted(_BUILDERS))


def get_network(name: str) -> Network:
    """Look up a registered network by canonical name (cached)."""
    key = name.lower()
    if key not in _BUILDERS:
        raise WorkloadError(
            f"unknown network {name!r}; available: {', '.join(available_networks())}"
        )
    if key not in _CACHE:
        network = _BUILDERS[key]()
        if network.name != key:
            raise WorkloadError(
                f"registry key {key!r} does not match network name {network.name!r}"
            )
        _CACHE[key] = network
    return _CACHE[key]


def get_networks(names: List[str]) -> List[Network]:
    """Look up several networks at once."""
    return [get_network(name) for name in names]


# Section 4.2 (Tables 1-2, Fig. 7): the 7 individually co-optimized networks.
TABLE12_NETWORKS: Tuple[str, ...] = (
    "bert",
    "mobilenet",
    "resnet",
    "srgan",
    "unet",
    "vit",
    "xception",
)

# Section 4.3 (Fig. 8): R-metric reliability study.
FIG8_TRAIN: Tuple[str, ...] = ("unet", "srgan", "bert")
FIG8_VALIDATION: Tuple[str, ...] = ("resnet", "resunet", "vit", "mobilenet")

# Section 4.4 (Fig. 9): generalization comparison with HASCO.
FIG9_TRAIN: Tuple[str, ...] = ("mobilenetv2", "resnet", "srgan", "vgg")
FIG9_VALIDATION: Tuple[str, ...] = (
    "unet",
    "vit",
    "xception",
    "mobilenetv3_large",
    "mobilenetv3_small",
    "nasnetmobile",
    "efficientnetv2",
    "convnext",
)

# Section 4.5 (Fig. 10): ablation workloads.
FIG10_NETWORKS: Tuple[str, ...] = ("unet", "srgan", "bert", "vit")

# Section 4.6 (Fig. 11): industrial Ascend-like deployment.
FIG11_NETWORKS: Tuple[str, ...] = (
    "unet",
    "fsrcnn_120x320",
    "fsrcnn_240x640",
    "fsrcnn_480x1280",
    "dleu",
)
