"""Analytical PPA estimation (the MAESTRO-like prototyping-stage engine).

Public surface:

* :class:`Technology` / :data:`DEFAULT_TECHNOLOGY` — process constants,
* :func:`analyze_gemm` / :func:`evaluate_network` — raw analytical model,
* :class:`PPAEngine` / :class:`MaestroEngine` — the estimation-service
  interface with caching and simulated-wall-clock charging used by every
  search algorithm in the library.
"""

from repro.costmodel.engine import (
    ANALYTICAL_EVAL_COST_S,
    DEFAULT_CACHE_CAPACITY,
    MaestroEngine,
    PPAEngine,
)
from repro.costmodel.maestro import (
    LayerPPA,
    NetworkPPA,
    analyze_gemm,
    evaluate_network,
    spatial_area_mm2,
)
from repro.costmodel.maestro_batch import analyze_gemm_batch
from repro.costmodel.technology import DEFAULT_TECHNOLOGY, Technology
from repro.costmodel.reliability import FlakyEngine, RetryingEngine
from repro.costmodel.timeloop import TimeloopEngine, analyze_gemm_loopnest
from repro.costmodel.timeloop_batch import analyze_gemm_loopnest_batch

__all__ = [
    "FlakyEngine",
    "RetryingEngine",
    "TimeloopEngine",
    "analyze_gemm_loopnest",
    "analyze_gemm_loopnest_batch",
    "analyze_gemm_batch",
    "ANALYTICAL_EVAL_COST_S",
    "DEFAULT_CACHE_CAPACITY",
    "MaestroEngine",
    "PPAEngine",
    "LayerPPA",
    "NetworkPPA",
    "analyze_gemm",
    "evaluate_network",
    "spatial_area_mm2",
    "DEFAULT_TECHNOLOGY",
    "Technology",
]
