"""Shard router: stable placement, failover, health checks, down TTLs."""

import socket

import pytest

from repro.costmodel import MaestroEngine
from repro.costmodel.service import PPAServiceServer
from repro.errors import EvaluationError
from repro.fleet.router import ShardRouter

KEYS = [f"key-{i}" for i in range(300)]


def _free_url() -> str:
    """A URL nothing listens on (bound once, then released)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"http://127.0.0.1:{port}"


@pytest.fixture()
def router():
    instance = ShardRouter(
        [_free_url() for _ in range(3)], breaker_threshold=2,
        breaker_cooldown_s=30.0,
    )
    yield instance
    instance.close()


class TestPlacement:
    def test_no_urls_rejected(self):
        with pytest.raises(EvaluationError):
            ShardRouter([])

    def test_duplicate_urls_deduped(self):
        url = _free_url()
        router = ShardRouter([url, url + "/", url])
        assert len(router) == 1
        router.close()

    def test_route_deterministic(self, router):
        first = {key: router.route(key).name for key in KEYS}
        second = {key: router.route(key).name for key in KEYS}
        assert first == second

    def test_every_shard_owns_keys(self, router):
        owners = {router.route(key).name for key in KEYS}
        assert owners == {"shard-0", "shard-1", "shard-2"}

    def test_ranking_covers_all_shards(self, router):
        ranked = router.ranking("some-key")
        assert sorted(shard.name for shard in ranked) == [
            "shard-0", "shard-1", "shard-2",
        ]


class TestFailover:
    def test_down_shard_keys_remap_stably(self, router):
        owners_before = {key: router.route(key).name for key in KEYS}
        down = router.shards[1]
        down.mark_down("test", ttl_s=60.0)
        for key in KEYS:
            now = router.route(key)
            if owners_before[key] == down.name:
                # orphaned keys fall to their rank-2 shard, exactly
                assert now.name == router.ranking(key)[1].name
            else:
                assert now.name == owners_before[key]  # everyone else stays
        assert router.num_failovers > 0

    def test_keys_snap_back_on_recovery(self, router):
        owners_before = {key: router.route(key).name for key in KEYS}
        router.shards[1].mark_down("test", ttl_s=60.0)
        router.route(KEYS[0])
        router.shards[1].mark_up()
        assert {key: router.route(key).name for key in KEYS} == owners_before

    def test_down_ttl_expires(self, router):
        shard = router.shards[0]
        shard.mark_down("blip", ttl_s=0.0)
        assert shard.available()

    def test_open_breaker_excludes_shard(self, router):
        shard = router.shards[2]
        shard.breaker.record(False)
        shard.breaker.record(False)  # threshold=2 -> open
        assert not shard.available()
        for key in KEYS:
            assert router.route(key).name != shard.name

    def test_all_down_returns_owner(self, router):
        for shard in router.shards:
            shard.mark_down("outage", ttl_s=60.0)
        key = KEYS[0]
        assert router.route(key).name == router.ranking(key)[0].name


class TestHealthCheck:
    def test_live_and_dead_shards_flagged(self, tiny_network):
        with PPAServiceServer(MaestroEngine(tiny_network)) as live:
            router = ShardRouter([live.url, _free_url()])
            report = router.health_check()
            assert report["shard-0"]["status"] == "ok"
            assert report["shard-1"] is None
            assert router.shards[0].available()
            assert not router.shards[1].available()
            assert (
                router.metrics.counter_value(
                    "fleet_shard_down_total[shard=shard-1]"
                ) == 1
            )
            router.close()

    def test_health_check_recovers_breaker(self, tiny_network):
        with PPAServiceServer(MaestroEngine(tiny_network)) as live:
            router = ShardRouter([live.url], breaker_threshold=1)
            router.shards[0].breaker.record(False)
            assert not router.shards[0].available()
            router.health_check()
            assert router.shards[0].available()
            router.close()
