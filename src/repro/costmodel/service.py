"""The PPA estimation engine as a standalone REST service (Section 3.5).

"PPA Estimation Engine: A standalone REST API to call which requires
hardware configuration, SW mapping configuration, and a tensor workload as
inputs to estimate performance, power and area."

* :class:`PPAServiceServer` wraps any :class:`PPAEngine` behind a small
  HTTP/JSON endpoint (stdlib ``http.server``; POST ``/evaluate_layer``,
  POST ``/evaluate_layers`` (batched), POST ``/evaluate_candidates``
  (batched candidates of one layer, vectorized server-side),
  POST ``/aggregate``, GET ``/health``, GET ``/metrics``).
* :class:`RemotePPAEngine` is a drop-in :class:`PPAEngine` client: search
  tools talk to it exactly as they talk to an in-process engine, so the
  master-slave deployment of Fig. 6(b) only changes the engine wiring.

Fault tolerance: every network-level failure (connection refused, socket
timeout, truncated/malformed responses, 5xx replies) surfaces as
:class:`~repro.errors.TransportError` (an :class:`~repro.errors.EvaluationError`),
so the client composes with
:class:`~repro.costmodel.reliability.RetryingEngine`.  The client
additionally retries transient transport failures itself with exponential
backoff + jitter, and a small circuit breaker fails fast (for
``breaker_cooldown_s`` of real time) once the service looks down, instead
of burning a timeout per query.

Transport: requests travel over a keep-alive
:class:`~repro.fleet.pool.ConnectionPool` (the base URL is parsed once, at
construction), so chunked batch evaluations reuse warm sockets instead of
opening a TCP connection per request.  The server supports graceful
shutdown: :meth:`PPAServiceServer.begin_drain` (or the SIGTERM handler
installed by :meth:`PPAServiceServer.install_signal_handlers`) finishes
in-flight requests and answers new ones with a fast 503 instead of a hung
socket, so replica restarts don't read as breaker-tripping outages.

Payloads carry plain dicts of the hardware/mapping dataclass fields; the
server reconstructs typed objects via the registered codecs.  Tuple-typed
dataclass fields (e.g. ``GemmMapping.loop_order``) are restored from JSON
lists by inspecting the dataclass annotations, so new config types
round-trip without codec edits.
"""

from __future__ import annotations

import json
import random
import signal
import socket
import threading
import time
import typing
from http.client import HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple
from urllib.error import URLError
from urllib.parse import parse_qs, urlsplit

from repro.camodel.mapping import AscendMapping
from repro.costmodel.engine import PPAEngine
from repro.costmodel.results import LayerPPA, NetworkPPA
from repro.errors import EvaluationError, TransportError
from repro.fleet.breaker import BreakerOpenError, CircuitBreaker
from repro.fleet.pool import ConnectionPool
from repro.hw.ascend import AscendHWConfig
from repro.hw.spatial import SpatialHWConfig
from repro.mapping.gemm_mapping import GemmMapping
from repro.obs.prom import render_prometheus
from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    format_trace_context,
    parse_trace_context,
)
from repro.utils.metrics import MetricsRegistry

#: Version of the ``GET /metrics`` JSON document (engine stats + registry
#: snapshot); bumped when the response shape changes so scrapers can detect
#: drift instead of diffing noisy dicts.
METRICS_SCHEMA_VERSION = 1

_HW_TYPES: Dict[str, type] = {
    "SpatialHWConfig": SpatialHWConfig,
    "AscendHWConfig": AscendHWConfig,
}
_MAPPING_TYPES: Dict[str, type] = {
    "GemmMapping": GemmMapping,
    "AscendMapping": AscendMapping,
}

_TUPLE_FIELDS_CACHE: Dict[type, FrozenSet[str]] = {}


def _tuple_fields(cls: type) -> FrozenSet[str]:
    """Names of ``cls`` fields annotated as tuples (JSON turns them into lists)."""
    cached = _TUPLE_FIELDS_CACHE.get(cls)
    if cached is None:
        hints = typing.get_type_hints(cls)
        cached = frozenset(
            name
            for name, hint in hints.items()
            if hint is tuple or typing.get_origin(hint) is tuple
        )
        _TUPLE_FIELDS_CACHE[cls] = cached
    return cached


def encode_object(obj) -> Dict:
    """Serialize a hardware config or mapping as {type, fields}.

    Underscore-prefixed attributes (precomputed caches such as
    ``GemmMapping._row``) are not constructor arguments and stay off the
    wire.
    """
    fields = {k: v for k, v in vars(obj).items() if not k.startswith("_")}
    for name in _tuple_fields(type(obj)):
        if name in fields:
            fields[name] = list(fields[name])
    return {"type": type(obj).__name__, "fields": fields}


def decode_object(payload: Dict):
    """Inverse of :func:`encode_object`."""
    type_name = payload["type"]
    fields = dict(payload["fields"])
    if type_name in _HW_TYPES:
        cls = _HW_TYPES[type_name]
    elif type_name in _MAPPING_TYPES:
        cls = _MAPPING_TYPES[type_name]
    else:
        raise EvaluationError(f"unknown payload type {type_name!r}")
    for name in _tuple_fields(cls):
        if name in fields and isinstance(fields[name], list):
            fields[name] = tuple(fields[name])
    return cls(**fields)


def _layer_ppa_to_dict(result: LayerPPA) -> Dict:
    return {
        "latency_s": result.latency_s if result.feasible else None,
        "energy_j": result.energy_j if result.feasible else None,
        "feasible": result.feasible,
        "compute_cycles": result.compute_cycles,
        "noc_cycles": result.noc_cycles,
        "dram_cycles": result.dram_cycles,
        "dram_bytes": result.dram_bytes,
        "infeasible_reason": result.infeasible_reason,
    }


def _layer_ppa_from_dict(payload: Dict) -> LayerPPA:
    try:
        feasible = payload["feasible"]
        return LayerPPA(
            latency_s=payload["latency_s"] if feasible else float("inf"),
            energy_j=payload["energy_j"] if feasible else float("inf"),
            feasible=feasible,
            compute_cycles=payload.get("compute_cycles", 0.0),
            noc_cycles=payload.get("noc_cycles", 0.0),
            dram_cycles=payload.get("dram_cycles", 0.0),
            dram_bytes=payload.get("dram_bytes", 0.0),
            infeasible_reason=payload.get("infeasible_reason", ""),
        )
    except (KeyError, TypeError) as error:
        raise EvaluationError(f"malformed layer-PPA payload: {error}") from error


class PPAServiceServer:
    """Serve an engine over HTTP on localhost; use as a context manager.

    Shares the engine's metrics registry by default, so ``GET /metrics``
    exposes engine counters (queries, cache hits/evictions, compute
    latency) alongside the per-endpoint request/error counters recorded
    here.
    """

    def __init__(
        self,
        engine: PPAEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.engine = engine
        self.metrics = metrics if metrics is not None else engine.metrics
        #: server-side span tracer.  With a real tracer, every POST opens a
        #: ``service<path>`` span whose finished form travels back in the
        #: ``X-Repro-Span`` response header, letting tracing clients stitch
        #: it into their own trace.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: graceful-shutdown state: once draining, new requests get a fast
        #: 503 while in-flight ones run to completion (see :meth:`stop`)
        self._draining = False
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        handler = self._make_handler()
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def _make_handler(self):
        engine = self.engine
        metrics = self.metrics
        tracer = self.tracer
        server = self

        class Handler(BaseHTTPRequestHandler):
            # HTTP/1.1 keeps connections alive between exchanges, so the
            # pooled client actually reuses sockets; every reply carries
            # an explicit Content-Length, which 1.1 keep-alive requires.
            protocol_version = "HTTP/1.1"
            # headers and body flush as separate small writes; with Nagle
            # on, the second write waits ~40ms for the client's delayed
            # ACK of the first on every keep-alive exchange
            disable_nagle_algorithm = True

            def log_message(self, fmt, *args):  # silence request logging
                pass

            def _begin_request(self) -> bool:
                """Admit the request, or False once the server is draining."""
                with server._inflight_cv:
                    if server._draining:
                        return False
                    server._inflight += 1
                    return True

            def _end_request(self) -> None:
                with server._inflight_cv:
                    server._inflight -= 1
                    server._inflight_cv.notify_all()

            def _reject_draining(self) -> None:
                # drain the request body first so the keep-alive socket
                # stays parseable for the client's next exchange
                length = int(self.headers.get("Content-Length", 0))
                if length:
                    self.rfile.read(length)
                self._span = None
                metrics.counter("service_drain_rejections_total").inc()
                self._reply(503, {"error": "service draining"})

            def _finish_span(self, status: int) -> Optional[str]:
                """Close the request span, returning its wire JSON."""
                span = getattr(self, "_span", None)
                self._span = None
                if span is None:
                    return None
                span.set_attribute("status", status)
                return json.dumps(tracer.finish_span(span))

            def _reply(self, status: int, payload: Dict) -> None:
                span_json = self._finish_span(status)
                body = json.dumps(payload, sort_keys=True).encode("utf-8")
                # count before the body leaves the socket: once the client
                # has the reply it may immediately scrape /metrics, and the
                # request that produced the reply must already be there
                metrics.counter(f"service_requests_total[{self.path}]").inc()
                if status >= 400:
                    metrics.counter("service_errors_total").inc()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                if span_json is not None:
                    self.send_header("X-Repro-Span", span_json)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _reply_text(self, status: int, text: str) -> None:
                """Plain-text reply (the Prometheus exposition path)."""
                body = text.encode("utf-8")
                metrics.counter(f"service_requests_total[{self.path}]").inc()
                self.send_response(status)
                self.send_header(
                    "Content-Type", "text/plain; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                if not self._begin_request():
                    self._reject_draining()
                    return
                try:
                    self._do_get()
                finally:
                    self._end_request()

            def _do_get(self):
                parsed = urlsplit(self.path)
                if parsed.path == "/health":
                    self._reply(
                        200,
                        {
                            "status": "ok",
                            "workload": engine.network.name,
                            "queries": engine.num_queries,
                        },
                    )
                elif parsed.path == "/metrics":
                    wants = parse_qs(parsed.query).get("format", ["json"])
                    if wants and wants[-1] == "prom":
                        self._reply_text(
                            200, render_prometheus(metrics.snapshot())
                        )
                        return
                    self._reply(
                        200,
                        {
                            "schema_version": METRICS_SCHEMA_VERSION,
                            "engine": engine.stats(),
                            "metrics": metrics.snapshot(),
                        },
                    )
                else:
                    self._reply(404, {"error": f"unknown path {self.path}"})

            def _evaluate_layers(self, request: Dict) -> None:
                hw = decode_object(request["hw"])
                items = request["items"]
                if not isinstance(items, list):
                    raise EvaluationError("'items' must be a list")
                results: List[Dict] = []
                for item in items:
                    # one bad item must not poison the rest of the batch
                    try:
                        result = engine.evaluate_layer(
                            hw, decode_object(item["mapping"]), item["layer"]
                        )
                        results.append(
                            {"ok": True, "result": _layer_ppa_to_dict(result)}
                        )
                    except (EvaluationError, KeyError, TypeError) as exc:
                        results.append({"ok": False, "error": str(exc)})
                self._reply(200, {"results": results})

            def _evaluate_candidates(self, request: Dict) -> None:
                hw = decode_object(request["hw"])
                layer_name = request["layer"]
                items = request["mappings"]
                if not isinstance(items, list):
                    raise EvaluationError("'mappings' must be a list")
                entries: List[Optional[Dict]] = [None] * len(items)
                decoded: List[Tuple[int, object]] = []
                for index, item in enumerate(items):
                    # one undecodable mapping must not poison the batch
                    try:
                        decoded.append((index, decode_object(item)))
                    except (EvaluationError, KeyError, TypeError) as exc:
                        entries[index] = {"ok": False, "error": str(exc)}
                if decoded:
                    batch_results = engine.evaluate_candidates(
                        hw, layer_name, [mapping for _i, mapping in decoded]
                    )
                    for (index, _mapping), result in zip(decoded, batch_results):
                        entries[index] = {
                            "ok": True,
                            "result": _layer_ppa_to_dict(result),
                        }
                self._reply(200, {"results": entries})

            def do_POST(self):
                if not self._begin_request():
                    self._reject_draining()
                    return
                try:
                    self._do_post()
                finally:
                    self._end_request()

            def _do_post(self):
                start = time.perf_counter()
                self._span = None
                if tracer.enabled:
                    context = parse_trace_context(
                        self.headers.get("X-Repro-Trace")
                    )
                    span = tracer.start_span(
                        f"service{self.path}",
                        parent_id=context[1] if context else None,
                    )
                    if context:
                        # adopt the caller's trace identity so server-side
                        # sinks record the request under the client's trace
                        span.trace_id = context[0]
                    self._span = span
                length = int(self.headers.get("Content-Length", 0))
                try:
                    request = json.loads(self.rfile.read(length))
                except json.JSONDecodeError:
                    self._reply(400, {"error": "invalid JSON"})
                    return
                try:
                    if self.path == "/evaluate_layer":
                        result = engine.evaluate_layer(
                            decode_object(request["hw"]),
                            decode_object(request["mapping"]),
                            request["layer"],
                        )
                        self._reply(200, _layer_ppa_to_dict(result))
                    elif self.path == "/evaluate_layers":
                        self._evaluate_layers(request)
                    elif self.path == "/evaluate_candidates":
                        self._evaluate_candidates(request)
                    elif self.path == "/aggregate":
                        hw = decode_object(request["hw"])
                        mappings = {
                            name: decode_object(mapping)
                            for name, mapping in request["mappings"].items()
                        }
                        ppa = engine.aggregate(hw, mappings)
                        self._reply(
                            200,
                            {
                                "latency_s": ppa.latency_s if ppa.feasible else None,
                                "energy_j": ppa.energy_j if ppa.feasible else None,
                                "power_w": ppa.power_w if ppa.feasible else None,
                                "area_mm2": ppa.area_mm2,
                                "feasible": ppa.feasible,
                            },
                        )
                    else:
                        self._reply(404, {"error": f"unknown path {self.path}"})
                except (EvaluationError, KeyError) as exc:
                    self._reply(400, {"error": str(exc)})
                except Exception as exc:  # malformed payloads must still get JSON
                    self._reply(
                        500, {"error": f"internal error: {type(exc).__name__}: {exc}"}
                    )
                finally:
                    metrics.histogram("service_request_seconds").observe(
                        time.perf_counter() - start
                    )

        return Handler

    def start(self) -> "PPAServiceServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    # -- graceful shutdown ------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight_requests(self) -> int:
        with self._inflight_cv:
            return self._inflight

    def begin_drain(self) -> None:
        """Stop admitting requests; in-flight ones run to completion.

        New requests get an immediate ``503 {"error": "service draining"}``
        — a fast, explicit signal clients route around (the sharded client
        re-routes without charging its breaker), instead of the hung
        socket a plain ``shutdown()`` would leave them holding.
        """
        with self._inflight_cv:
            self._draining = True

    def drain(self, timeout_s: float = 5.0) -> bool:
        """Wait for in-flight requests to finish; True when fully drained."""
        with self._inflight_cv:
            return self._inflight_cv.wait_for(
                lambda: self._inflight == 0, timeout=timeout_s
            )

    def stop(self, drain_timeout_s: float = 5.0) -> None:
        """Drain in-flight requests (bounded), then shut the listener down."""
        self.begin_drain()
        self.drain(timeout_s=drain_timeout_s)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def install_signal_handlers(
        self,
        drain_timeout_s: float = 5.0,
        on_stopped: Optional[Callable[[], None]] = None,
    ) -> None:
        """SIGTERM/SIGINT → graceful drain + shutdown (replica processes).

        Must run on the main thread (a CPython ``signal`` requirement).
        The handler only flips the drain flag and hands the blocking stop
        to a helper thread, as signal handlers must not block.
        """

        def _handle(signum, frame):  # noqa: ARG001 - signal handler signature
            self.begin_drain()

            def _shutdown() -> None:
                self.stop(drain_timeout_s=drain_timeout_s)
                if on_stopped is not None:
                    on_stopped()

            threading.Thread(target=_shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    def __enter__(self) -> "PPAServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


#: transport-level exceptions that indicate "try again", not "bad query"
_TRANSIENT_ERRORS = (URLError, HTTPException, socket.timeout, OSError,
                     json.JSONDecodeError)


class RemotePPAEngine(PPAEngine):
    """A :class:`PPAEngine` that forwards queries to a PPA service.

    Keeps the local cache and clock semantics of the base class; only the
    uncached computation goes over the wire.  ``area_mm2`` is computed by a
    locally supplied function (areas depend only on the hardware config).

    Transport hardening (all real-time, invisible to the simulated clock):

    * every network-level failure raises :class:`EvaluationError`, so
      :class:`~repro.costmodel.reliability.RetryingEngine` wrappers see it;
    * transient transport failures are retried up to
      ``max_network_retries`` times with exponential backoff
      (``backoff_base_s * 2**attempt``, capped at ``backoff_max_s``) plus
      seeded jitter;
    * after ``breaker_threshold`` consecutive request failures the circuit
      opens: queries fail fast for ``breaker_cooldown_s`` seconds, then a
      single probe is allowed through (half-open).

    4xx replies are semantic rejections (bad layer, malformed mapping):
    they raise immediately without transport retries and do not trip the
    breaker — the service is alive and answering.

    Batching: :meth:`evaluate_layers` groups cache misses into
    ``POST /evaluate_layers`` chunks of ``batch_size`` to amortize HTTP
    round trips; per-query accounting (clock, counters, cache) is
    identical to the one-by-one path.  The candidate-batch path
    (:meth:`evaluate_candidates`) likewise ships its cache misses as
    chunked ``POST /evaluate_candidates`` requests — one request per
    batch instead of one per candidate — and the server evaluates each
    request through its engine's vectorized kernel.
    """

    def __init__(
        self,
        network,
        base_url: str,
        area_fn: Callable[[object], float],
        timeout_s: float = 10.0,
        max_network_retries: int = 3,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        jitter_fraction: float = 0.25,
        jitter_seed: int = 0,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 30.0,
        batch_size: int = 16,
        pool_max_idle: int = 8,
        **kwargs,
    ):
        super().__init__(network, **kwargs)
        if max_network_retries < 0:
            raise EvaluationError(
                f"max_network_retries must be >= 0, got {max_network_retries}"
            )
        if breaker_threshold < 1:
            raise EvaluationError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        if batch_size < 1:
            raise EvaluationError(f"batch_size must be >= 1, got {batch_size}")
        self.base_url = base_url.rstrip("/")
        self.area_fn = area_fn
        self.timeout_s = timeout_s
        self.max_network_retries = max_network_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.jitter_fraction = jitter_fraction
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.batch_size = batch_size
        self._jitter_rng = random.Random(jitter_seed)
        self.num_network_retries = 0
        self.num_circuit_rejections = 0
        #: the URL is parsed exactly once, inside the pool; requests join
        #: paths onto the parsed origin instead of re-parsing per call
        self._pool = ConnectionPool(
            self.base_url, timeout_s=timeout_s, max_idle=pool_max_idle
        )
        self._breaker = CircuitBreaker(
            self.base_url, breaker_threshold, breaker_cooldown_s
        )
        #: transport-only lock (jitter RNG).  Backoff and breaker state
        #: deliberately stay off the engine cache lock ``self._lock``: one
        #: chunk backing off must not serialize unrelated concurrent
        #: requests or cache lookups.
        self._transport_lock = threading.Lock()

    # -- transport --------------------------------------------------------------
    def _backoff_delay(self, attempt: int) -> float:
        base = min(self.backoff_base_s * (2 ** (attempt - 1)), self.backoff_max_s)
        with self._transport_lock:
            jitter = self._jitter_rng.random()
        return base * (1.0 + self.jitter_fraction * jitter)

    def _breaker_check(self) -> None:
        self._breaker_gate(self._breaker)

    def _breaker_record(self, success: bool) -> None:
        self._breaker_report(self._breaker, success)

    def _breaker_gate(self, breaker: CircuitBreaker) -> None:
        """Fail fast while ``breaker`` is open, with client-side counting."""
        try:
            breaker.check()
        except BreakerOpenError:
            self.num_circuit_rejections += 1
            self.metrics.counter("remote_circuit_rejections_total").inc()
            raise

    def _breaker_report(self, breaker: CircuitBreaker, success: bool) -> None:
        if breaker.record(success):
            self.metrics.counter("remote_circuit_opened_total").inc()

    def _error_detail(self, body: bytes, fallback: str) -> str:
        try:
            payload = json.loads(body)
            return str(payload.get("error", payload))
        except Exception as parse_error:
            # a non-JSON error body (proxy page, truncated response) is
            # routine, but the drop is counted per exception type so a
            # systematically malformed server shows up on /metrics
            self.metrics.counter("remote_error_body_unparsed_total").inc()
            self.metrics.counter(
                f"remote_error_body_{type(parse_error).__name__}_total"
            ).inc()
            return fallback

    def _request_json(self, path: str, payload: Optional[Dict] = None) -> Dict:
        """One logical request: breaker gate, transport retries, JSON reply.

        Under a tracing client the request gets a ``remote<path>`` span,
        the trace context travels out in ``X-Repro-Trace``, and a
        server-side span returned in ``X-Repro-Span`` is adopted into the
        client trace (see :meth:`Tracer.record_remote`).
        """
        if self.tracer.enabled:
            with self.tracer.span("remote" + path) as span:
                return self._request_json_impl(path, payload, span)
        return self._request_json_impl(path, payload, None)

    def _request_json_impl(
        self, path: str, payload: Optional[Dict], span
    ) -> Dict:
        """Untraced transport loop behind :meth:`_request_json`."""
        return self._transport_request(
            self._pool, self._breaker, path, payload, span
        )

    def _transport_request(
        self,
        pool: ConnectionPool,
        breaker: CircuitBreaker,
        path: str,
        payload: Optional[Dict],
        span,
        shard: Optional[str] = None,
    ) -> Dict:
        """Breaker gate → pooled keep-alive exchange → retry policy → JSON.

        Shared by the single-URL path and the sharded client (which passes
        each shard's own pool/breaker plus its name for metric labels).
        """
        self._breaker_gate(breaker)
        data = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        method = "POST" if data is not None else "GET"
        self.metrics.counter("remote_requests_total").inc()
        if shard is not None:
            self.metrics.counter(f"fleet_requests_total[shard={shard}]").inc()
        headers = {"Content-Type": "application/json"}
        if span is not None:
            headers["X-Repro-Trace"] = format_trace_context(self.tracer, span)
        last_error: Optional[TransportError] = None
        for attempt in range(self.max_network_retries + 1):
            if attempt:
                self.num_network_retries += 1
                self.metrics.counter("remote_network_retries_total").inc()
                # no lock is held across this sleep: one chunk backing off
                # must not stall concurrent requests on other threads
                time.sleep(self._backoff_delay(attempt))
            try:
                start = time.perf_counter()
                response = pool.request(method, path, body=data, headers=headers)
                elapsed = time.perf_counter() - start
                self.metrics.histogram("remote_request_seconds").observe(
                    elapsed
                )
                if response.status >= 500:
                    detail = self._error_detail(
                        response.body, f"HTTP {response.status}"
                    )
                    last_error = TransportError(
                        f"service error {response.status} on {path}: {detail}"
                    )
                    continue
                if response.status >= 400:
                    # semantic rejection: the service is up and answered
                    self._breaker_report(breaker, success=True)
                    detail = self._error_detail(
                        response.body, f"HTTP {response.status}"
                    )
                    raise EvaluationError(
                        f"service rejected {path} ({response.status}): {detail}"
                    )
                reply = json.loads(response.body)
            except _TRANSIENT_ERRORS as error:
                last_error = TransportError(
                    f"network failure on {path}: {type(error).__name__}: {error}"
                )
                continue
            self._breaker_report(breaker, success=True)
            if span is not None:
                server_span = response.header("X-Repro-Span")
                if server_span:
                    try:
                        self.tracer.record_remote(
                            json.loads(server_span), span, elapsed
                        )
                    except (json.JSONDecodeError, TypeError, ValueError):
                        pass  # a garbled span header must not fail the query
            return reply
        self._breaker_report(breaker, success=False)
        assert last_error is not None
        raise last_error

    # -- engine contract --------------------------------------------------------
    def _compute_layer(self, hw, mapping, shape) -> LayerPPA:
        raise NotImplementedError(
            "RemotePPAEngine dispatches by layer name; "
            "_compute_layer_by_name handles all queries"
        )

    def _compute_layer_by_name(self, hw, mapping, layer_name, shape) -> LayerPPA:
        payload = {
            "hw": encode_object(hw),
            "mapping": encode_object(mapping),
            "layer": layer_name,
        }
        return _layer_ppa_from_dict(self._request_json("/evaluate_layer", payload))

    def evaluate_layers(
        self, hw, requests: Sequence[Tuple["GemmMapping", str]]
    ) -> List[LayerPPA]:
        """Batched evaluation: cache misses travel in chunked POSTs."""
        results: List[Optional[LayerPPA]] = [None] * len(requests)
        misses: List[Tuple[int, Tuple, "GemmMapping", str]] = []
        hw_id = self.hw_key(hw)
        for index, (mapping, layer_name) in enumerate(requests):
            self._charge_query(layer_name)
            key = (hw_id, layer_name, mapping.key())
            cached = self._cache_lookup(key)
            if cached is not None:
                results[index] = cached
            else:
                misses.append((index, key, mapping, layer_name))
        for chunk_start in range(0, len(misses), self.batch_size):
            chunk = misses[chunk_start : chunk_start + self.batch_size]
            payload = {
                "hw": encode_object(hw),
                "items": [
                    {"mapping": encode_object(mapping), "layer": layer_name}
                    for _index, _key, mapping, layer_name in chunk
                ],
            }
            start = time.perf_counter()
            reply = self._request_json("/evaluate_layers", payload)
            self.metrics.histogram("engine_compute_seconds").observe(
                time.perf_counter() - start
            )
            entries = reply.get("results")
            if not isinstance(entries, list) or len(entries) != len(chunk):
                raise EvaluationError(
                    f"batched reply shape mismatch: sent {len(chunk)} items, "
                    f"got {entries!r}"
                )
            failures: List[str] = []
            for (index, key, _mapping, layer_name), entry in zip(chunk, entries):
                if entry.get("ok"):
                    result = _layer_ppa_from_dict(entry["result"])
                    self._cache_store(key, result)
                    results[index] = result
                else:
                    failures.append(f"{layer_name}: {entry.get('error')}")
            if failures:
                raise EvaluationError(
                    f"batched evaluation failed for {len(failures)} item(s): "
                    + "; ".join(failures)
                )
        return results  # type: ignore[return-value]  # all slots filled above

    def _compute_layer_batch(
        self, hw, mappings, layer_name: str, shape
    ) -> List[LayerPPA]:
        """Cache misses of one candidate batch travel as chunked POSTs."""
        results: List[LayerPPA] = []
        for chunk_start in range(0, len(mappings), self.batch_size):
            chunk = mappings[chunk_start : chunk_start + self.batch_size]
            payload = {
                "hw": encode_object(hw),
                "layer": layer_name,
                "mappings": [encode_object(mapping) for mapping in chunk],
            }
            reply = self._request_json("/evaluate_candidates", payload)
            entries = reply.get("results")
            if not isinstance(entries, list) or len(entries) != len(chunk):
                raise EvaluationError(
                    f"candidate-batch reply shape mismatch: sent {len(chunk)} "
                    f"items, got {entries!r}"
                )
            failures: List[str] = []
            for entry in entries:
                if entry.get("ok"):
                    results.append(_layer_ppa_from_dict(entry["result"]))
                else:
                    failures.append(str(entry.get("error")))
            if failures:
                raise EvaluationError(
                    f"candidate-batch evaluation failed for {len(failures)} "
                    "item(s): " + "; ".join(failures)
                )
        return results

    def area_mm2(self, hw) -> float:
        return self.area_fn(hw)

    def health(self) -> Dict:
        """Service liveness probe; network failures raise EvaluationError."""
        return self._request_json("/health")

    def service_metrics(self) -> Dict:
        """Fetch the remote ``GET /metrics`` snapshot."""
        return self._request_json("/metrics")

    def stats(self) -> Dict:
        merged = super().stats()
        merged.update(
            {
                "base_url": self.base_url,
                "num_network_retries": self.num_network_retries,
                "num_circuit_rejections": self.num_circuit_rejections,
                "pool": self._pool.stats(),
            }
        )
        return merged

    # -- pickling (process-backend rounds ship engine copies) -------------------
    def __getstate__(self) -> Dict:
        state = super().__getstate__()
        del state["_transport_lock"]
        return state

    def __setstate__(self, state: Dict) -> None:
        super().__setstate__(state)
        self._transport_lock = threading.Lock()
