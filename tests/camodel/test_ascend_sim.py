"""Tests for the Ascend-like cycle-level simulator."""

import numpy as np
import pytest

from repro.camodel import ascend_area_mm2, simulate_layer
from repro.camodel.ascend_sim import _pipeline_cycles, _TileCosts
from repro.camodel.mapping import AscendMapping
from repro.hw import default_ascend_config
from repro.workloads.layers import GemmShape

SHAPE = GemmShape(m=64, n=1024, k=128)


def _mapping(**overrides) -> AscendMapping:
    base = dict(tile_m=32, tile_n=128, tile_k=64)
    base.update(overrides)
    return AscendMapping(**base)


class TestCapacity:
    def test_default_config_feasible(self):
        result = simulate_layer(default_ascend_config(), _mapping(), SHAPE)
        assert result.feasible

    def test_l0a_overflow(self):
        hw = default_ascend_config().with_updates(l0a_kb=1)
        result = simulate_layer(hw, _mapping(), SHAPE)
        assert not result.feasible
        assert "L0A" in result.infeasible_reason

    def test_l0b_overflow(self):
        hw = default_ascend_config().with_updates(l0b_kb=1)
        result = simulate_layer(hw, _mapping(), SHAPE)
        assert not result.feasible
        assert "L0B" in result.infeasible_reason

    def test_l0c_overflow(self):
        hw = default_ascend_config().with_updates(l0c_kb=1)
        result = simulate_layer(hw, _mapping(), SHAPE)
        assert not result.feasible
        assert "L0C" in result.infeasible_reason

    def test_fusion_needs_more_l1(self):
        hw = default_ascend_config().with_updates(l1_kb=256)
        big = _mapping(tile_m=64, tile_n=1024, tile_k=128, fuse_output=True)
        fused = simulate_layer(hw, big, SHAPE)
        unfused = simulate_layer(
            hw, _mapping(tile_m=64, tile_n=1024, tile_k=128), SHAPE
        )
        # the fused variant is the one that can overflow L1
        assert unfused.feasible or not fused.feasible


class TestPipeline:
    def test_more_banks_not_slower(self):
        hw1 = default_ascend_config().with_updates(
            l0a_banks=1, l0b_banks=1, l0c_banks=1
        )
        hw2 = default_ascend_config().with_updates(
            l0a_banks=2, l0b_banks=2, l0c_banks=2
        )
        r1 = simulate_layer(hw1, _mapping(), SHAPE)
        r2 = simulate_layer(hw2, _mapping(), SHAPE)
        assert r2.latency_s <= r1.latency_s

    def test_bigger_cube_not_slower(self):
        small = default_ascend_config().with_updates(cube_m=8, cube_k=8, cube_n=8)
        large = default_ascend_config().with_updates(cube_m=32, cube_k=32, cube_n=32)
        r_small = simulate_layer(small, _mapping(), SHAPE)
        r_large = simulate_layer(large, _mapping(), SHAPE)
        assert r_large.latency_s <= r_small.latency_s

    def test_fusion_reduces_latency_when_ddr_bound(self):
        hw = default_ascend_config()
        # a skinny GEMM is DMA-bound: fusing away DDR traffic must help
        skinny = GemmShape(m=8, n=4096, k=16)
        mapping = AscendMapping(tile_m=8, tile_n=512, tile_k=16)
        fused = AscendMapping(
            tile_m=8, tile_n=512, tile_k=16, fuse_input=True, fuse_output=True
        )
        assert (
            simulate_layer(hw, fused, skinny).latency_s
            <= simulate_layer(hw, mapping, skinny).latency_s
        )

    def test_small_icache_slower(self):
        """ICache pressure surfaces as scalar-issue overhead."""
        big = default_ascend_config().with_updates(icache_kb=64)
        tiny = default_ascend_config().with_updates(icache_kb=8)
        # many small tiles make the scalar stage matter
        mapping = AscendMapping(tile_m=16, tile_n=16, tile_k=16)
        r_big = simulate_layer(big, mapping, SHAPE)
        r_tiny = simulate_layer(tiny, mapping, SHAPE)
        assert r_tiny.latency_s >= r_big.latency_s

    def test_extrapolation_consistent(self):
        """Latency grows ~linearly in tile count past the simulated window."""
        hw = default_ascend_config()
        mapping = AscendMapping(tile_m=8, tile_n=8, tile_k=8)
        small = simulate_layer(hw, mapping, GemmShape(64, 512, 64))
        large = simulate_layer(hw, mapping, GemmShape(64, 2048, 64))
        ratio = large.latency_s / small.latency_s
        assert 3.0 < ratio < 5.5  # ~4x the tiles


class TestPipelineRecurrence:
    def test_single_tile_is_sum_of_stages(self):
        costs = _TileCosts(1, 2, 3, 4, 5, 6)
        total = _pipeline_cycles(costs, 1, 1, (2, 2, 2, 2, 2))
        assert total == pytest.approx(21.0)

    def test_double_buffering_approaches_bottleneck(self):
        costs = _TileCosts(1, 1, 1, 10, 1, 1)
        n = 200
        total = _pipeline_cycles(costs, n, 1, (2, 2, 2, 2, 2))
        assert total == pytest.approx(10 * n, rel=0.1)

    def test_single_bank_serializes(self):
        costs = _TileCosts(1, 1, 1, 10, 1, 1)
        overlapped = _pipeline_cycles(costs, 50, 1, (2, 2, 2, 2, 2))
        serialized = _pipeline_cycles(costs, 50, 1, (1, 1, 1, 1, 1))
        assert serialized > overlapped

    def test_k_completion_gates_writeback(self):
        costs = _TileCosts(0, 0, 0, 10, 100, 100)
        every_tile = _pipeline_cycles(costs, 16, 1, (2, 2, 2, 2, 2))
        on_completion = _pipeline_cycles(costs, 16, 4, (2, 2, 2, 2, 2))
        assert on_completion < every_tile


class TestAreaEnergy:
    def test_default_area_reasonable(self):
        area = ascend_area_mm2(default_ascend_config())
        assert 5.0 < area < 50.0

    def test_area_under_fig11_cap(self):
        assert ascend_area_mm2(default_ascend_config()) < 200.0

    def test_cube_dominates_area_growth(self):
        small = default_ascend_config().with_updates(cube_m=8, cube_k=8, cube_n=8)
        large = default_ascend_config().with_updates(cube_m=32, cube_k=32, cube_n=32)
        assert ascend_area_mm2(large) > 4 * ascend_area_mm2(small)

    def test_energy_finite_positive(self):
        result = simulate_layer(default_ascend_config(), _mapping(), SHAPE)
        assert np.isfinite(result.energy_j)
        assert result.energy_j > 0
