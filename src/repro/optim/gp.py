"""Gaussian-process regression (the MOBO surrogate), from scratch.

A standard zero-mean GP with ARD kernels, Cholesky solves, and marginal-
likelihood hyperparameter fitting via multi-start L-BFGS-B on log-scale
parameters.  Inputs are the ``[0, 1]^d`` ordinal encodings produced by the
hardware design spaces; outputs are normalized objective values.

Only what MOBO needs is implemented — ``fit``, ``predict`` (mean/std) and
``sample_posterior`` for Thompson-flavoured batch diversity.

Two outer-loop fast paths live here:

* hyperparameter fitting uses the *analytic* marginal-likelihood gradient
  by default (``use_gradient=True``), replacing L-BFGS-B's
  finite-difference probing — one (value, gradient) evaluation instead of
  ``d + 3`` value evaluations per optimizer step;
* :func:`factorize` exposes the kernel Cholesky as a reusable
  :class:`CholeskyFactor`, so the batch sampler's per-slot GPs (same X,
  same shared hyperparameters, different scalarized y) skip the
  :math:`O(n^3)` re-factorization — ``fit(..., factor=...)`` only
  standardizes y and runs two triangular solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import linalg as scipy_linalg
from scipy import optimize

from repro.errors import SurrogateError

_JITTER = 1e-8


def rbf_kernel(
    x1: np.ndarray, x2: np.ndarray, lengthscales: np.ndarray, variance: float
) -> np.ndarray:
    """ARD squared-exponential kernel matrix."""
    scaled1 = x1 / lengthscales
    scaled2 = x2 / lengthscales
    sq_dist = (
        np.sum(scaled1**2, axis=1)[:, None]
        + np.sum(scaled2**2, axis=1)[None, :]
        - 2.0 * scaled1 @ scaled2.T
    )
    return variance * np.exp(-0.5 * np.maximum(sq_dist, 0.0))


def matern52_kernel(
    x1: np.ndarray, x2: np.ndarray, lengthscales: np.ndarray, variance: float
) -> np.ndarray:
    """ARD Matérn-5/2 kernel matrix."""
    scaled1 = x1 / lengthscales
    scaled2 = x2 / lengthscales
    sq_dist = (
        np.sum(scaled1**2, axis=1)[:, None]
        + np.sum(scaled2**2, axis=1)[None, :]
        - 2.0 * scaled1 @ scaled2.T
    )
    dist = np.sqrt(np.maximum(sq_dist, 0.0))
    sqrt5 = np.sqrt(5.0)
    return (
        variance
        * (1.0 + sqrt5 * dist + (5.0 / 3.0) * dist**2)
        * np.exp(-sqrt5 * dist)
    )


_KERNELS = {"rbf": rbf_kernel, "matern52": matern52_kernel}


@dataclass
class GPHyperparameters:
    lengthscales: np.ndarray
    variance: float
    noise: float


@dataclass(frozen=True)
class CholeskyFactor:
    """A reusable kernel factorization: ``chol(K(x, x) + noise I)``.

    The factor depends only on the training inputs and the
    hyperparameters, so every per-slot GP of one batch-sampling iteration
    (same X, shared hyperparameters, different scalarized y) can share a
    single factorization.
    """

    x: np.ndarray
    hyper: GPHyperparameters
    chol: np.ndarray


def factorize(
    kernel_name: str, x: np.ndarray, hyper: GPHyperparameters
) -> CholeskyFactor:
    """Build the shared :class:`CholeskyFactor` for ``(x, hyper)``.

    Performs exactly the factorization :meth:`GaussianProcess.fit` would
    (including the fallback jitter bump), so a GP fitted from the factor
    is bit-identical to one fitted from ``hyper`` directly.
    """
    if kernel_name not in _KERNELS:
        raise SurrogateError(
            f"unknown kernel {kernel_name!r}; use {sorted(_KERNELS)}"
        )
    x = np.atleast_2d(np.asarray(x, dtype=float))
    k = _KERNELS[kernel_name](x, x, hyper.lengthscales, hyper.variance)
    k[np.diag_indices_from(k)] += hyper.noise + _JITTER
    try:
        chol = np.linalg.cholesky(k)
    except np.linalg.LinAlgError:
        k[np.diag_indices_from(k)] += 1e-4
        chol = np.linalg.cholesky(k)
    return CholeskyFactor(x=x, hyper=hyper, chol=chol)


class GaussianProcess:
    """Zero-mean GP regressor with y-standardization."""

    def __init__(self, kernel: str = "matern52", noise_floor: float = 1e-6):
        if kernel not in _KERNELS:
            raise SurrogateError(f"unknown kernel {kernel!r}; use {sorted(_KERNELS)}")
        self.kernel_name = kernel
        self.kernel = _KERNELS[kernel]
        self.noise_floor = noise_floor
        self.hyper: Optional[GPHyperparameters] = None
        self._x: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._alpha: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ fitting
    def _neg_log_marginal(
        self, log_params: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> float:
        d = x.shape[1]
        lengthscales = np.exp(log_params[:d])
        variance = np.exp(log_params[d])
        noise = np.exp(log_params[d + 1]) + self.noise_floor
        try:
            k = self.kernel(x, x, lengthscales, variance)
            k[np.diag_indices_from(k)] += noise + _JITTER
            chol = np.linalg.cholesky(k)
        except np.linalg.LinAlgError:
            return 1e12
        alpha = np.linalg.solve(chol.T, np.linalg.solve(chol, y))
        nll = (
            0.5 * float(y @ alpha)
            + float(np.sum(np.log(np.diag(chol))))
            + 0.5 * len(y) * np.log(2 * np.pi)
        )
        return nll if np.isfinite(nll) else 1e12

    def _neg_log_marginal_and_grad(
        self,
        log_params: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        sq_diffs: Optional[np.ndarray] = None,
    ):
        """NLL and its analytic gradient w.r.t. the log-scale parameters.

        Replaces L-BFGS-B's finite-difference probing (``d + 3`` NLL
        evaluations per step) with one evaluation that also yields the
        exact gradient via ``dNLL/dθ = -0.5 tr((ααᵀ - K⁻¹) dK/dθ)``.

        ``sq_diffs`` is the hyperparameter-independent ``(n, n, d)``
        squared-coordinate-difference tensor; :meth:`fit` precomputes it
        once per optimization so the hundred-plus evaluations of one
        L-BFGS-B run don't rebuild it.
        """
        d = x.shape[1]
        lengthscales = np.exp(log_params[:d])
        variance = np.exp(log_params[d])
        noise = np.exp(log_params[d + 1]) + self.noise_floor
        if sq_diffs is None:
            sq_diffs = (x[:, None, :] - x[None, :, :]) ** 2
        inv_ls_sq = 1.0 / lengthscales**2
        sq_dist = sq_diffs @ inv_ls_sq
        if self.kernel_name == "rbf":
            k_core = variance * np.exp(-0.5 * sq_dist)
            # dK/d s_i = -0.5 * K; with d s_i / d log l_i = -2 s_i
            ls_coef = k_core
        else:  # matern52
            dist = np.sqrt(sq_dist)
            sqrt5 = np.sqrt(5.0)
            decay = np.exp(-sqrt5 * dist)
            k_core = variance * (1.0 + sqrt5 * dist + (5.0 / 3.0) * sq_dist) * decay
            ls_coef = variance * (5.0 / 3.0) * (1.0 + sqrt5 * dist) * decay
        k = k_core.copy()
        k[np.diag_indices_from(k)] += noise + _JITTER
        zeros = np.zeros_like(log_params)
        try:
            chol = np.linalg.cholesky(k)
        except np.linalg.LinAlgError:
            return 1e12, zeros
        alpha = scipy_linalg.cho_solve((chol, True), y)
        nll = (
            0.5 * float(y @ alpha)
            + float(np.sum(np.log(np.diag(chol))))
            + 0.5 * len(y) * np.log(2 * np.pi)
        )
        if not np.isfinite(nll):
            return 1e12, zeros
        k_inv = scipy_linalg.cho_solve((chol, True), np.eye(len(y)))
        w = np.outer(alpha, alpha) - k_inv
        grad = np.empty_like(log_params)
        # s_i = ((x_i - x_i')/l_i)^2; dK/d log l_i = ls_coef * s_i
        grad[:d] = -0.5 * np.einsum("ij,ijk->k", w * ls_coef, sq_diffs) * inv_ls_sq
        grad[d] = -0.5 * np.sum(w * k_core)  # dK/d log variance = K_core
        grad[d + 1] = -0.5 * np.trace(w) * (noise - self.noise_floor)
        return nll, grad

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        num_restarts: int = 2,
        seed: int = 0,
        optimize_hyper: bool = True,
        hyper: Optional[GPHyperparameters] = None,
        factor: Optional[CholeskyFactor] = None,
        use_gradient: bool = True,
    ) -> "GaussianProcess":
        """Fit hyperparameters (optionally) and precompute the solve.

        When ``hyper`` is given, the hyperparameters are taken as-is (used
        to share one marginal-likelihood optimization across the per-slot
        scalarized GPs of the batch sampler).  When ``factor`` is given,
        the kernel Cholesky is reused too and only the y-standardization
        and the two triangular solves run — bit-identical to refitting
        from ``factor.hyper``.  ``use_gradient=False`` falls back to the
        finite-difference marginal-likelihood optimization (kept as the
        pre-vectorization reference for benchmarks).
        """
        if factor is not None:
            x = factor.x
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise SurrogateError(
                f"X has {x.shape[0]} rows but y has {y.shape[0]} entries"
            )
        if x.shape[0] < 1:
            raise SurrogateError("cannot fit a GP on zero observations")
        if not np.all(np.isfinite(x)) or not np.all(np.isfinite(y)):
            raise SurrogateError("GP training data must be finite")
        self._x = x
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) if y.std() > 1e-12 else 1.0
        y_std = (y - self._y_mean) / self._y_std

        d = x.shape[1]
        if factor is not None:
            self.hyper = factor.hyper
            self._chol = factor.chol
            self._alpha = np.linalg.solve(
                self._chol.T, np.linalg.solve(self._chol, y_std)
            )
            return self
        if hyper is not None:
            self.hyper = GPHyperparameters(
                np.asarray(hyper.lengthscales, dtype=float),
                float(hyper.variance),
                float(hyper.noise),
            )
            self._finalize_fit(x, y_std)
            return self
        initial = np.concatenate(
            [np.log(np.full(d, 0.4)), [np.log(1.0)], [np.log(1e-3)]]
        )
        best_params = initial
        if optimize_hyper and x.shape[0] >= 3:
            rng = np.random.default_rng(seed)
            if use_gradient:
                sq_diffs = (x[:, None, :] - x[None, :, :]) ** 2

                def objective(params, x_arg, y_arg):
                    return self._neg_log_marginal_and_grad(
                        params, x_arg, y_arg, sq_diffs
                    )

                jac = True
                best_nll = objective(initial, x, y_std)[0]
            else:
                objective = self._neg_log_marginal
                jac = None
                best_nll = objective(initial, x, y_std)
            starts = [initial] + [
                initial + rng.normal(0.0, 0.7, size=initial.shape)
                for _ in range(num_restarts)
            ]
            for start in starts:
                result = optimize.minimize(
                    objective,
                    start,
                    args=(x, y_std),
                    jac=jac,
                    method="L-BFGS-B",
                    bounds=[(np.log(1e-2), np.log(10.0))] * d
                    + [(np.log(1e-3), np.log(50.0)), (np.log(1e-8), np.log(1.0))],
                    options={"maxiter": 60},
                )
                if result.fun < best_nll:
                    best_nll = result.fun
                    best_params = result.x
        lengthscales = np.exp(best_params[:d])
        variance = float(np.exp(best_params[d]))
        noise = float(np.exp(best_params[d + 1])) + self.noise_floor
        self.hyper = GPHyperparameters(lengthscales, variance, noise)
        self._finalize_fit(x, y_std)
        return self

    def _finalize_fit(self, x: np.ndarray, y_std: np.ndarray) -> None:
        """Precompute the Cholesky solve for the current hyperparameters."""
        k = self.kernel(x, x, self.hyper.lengthscales, self.hyper.variance)
        k[np.diag_indices_from(k)] += self.hyper.noise + _JITTER
        try:
            self._chol = np.linalg.cholesky(k)
        except np.linalg.LinAlgError:
            k[np.diag_indices_from(k)] += 1e-4
            self._chol = np.linalg.cholesky(k)
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, y_std)
        )

    # ---------------------------------------------------------------- inference
    def _require_fit(self) -> None:
        if self._x is None or self._alpha is None or self.hyper is None:
            raise SurrogateError("GP queried before fit()")

    def predict(self, x_new: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at ``x_new``."""
        self._require_fit()
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        k_star = self.kernel(
            x_new, self._x, self.hyper.lengthscales, self.hyper.variance
        )
        mean_std = k_star @ self._alpha
        v = np.linalg.solve(self._chol, k_star.T)
        prior_var = self.hyper.variance
        var = np.maximum(prior_var - np.sum(v**2, axis=0), 1e-12)
        mean = mean_std * self._y_std + self._y_mean
        std = np.sqrt(var) * self._y_std
        return mean, std

    def sample_posterior(
        self, x_new: np.ndarray, seed: int = 0
    ) -> np.ndarray:
        """One joint posterior sample at ``x_new`` (Thompson sampling)."""
        self._require_fit()
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        k_star = self.kernel(
            x_new, self._x, self.hyper.lengthscales, self.hyper.variance
        )
        mean = k_star @ self._alpha
        v = np.linalg.solve(self._chol, k_star.T)
        k_new = self.kernel(
            x_new, x_new, self.hyper.lengthscales, self.hyper.variance
        )
        cov = k_new - v.T @ v
        cov[np.diag_indices_from(cov)] += 1e-8
        rng = np.random.default_rng(seed)
        try:
            chol = np.linalg.cholesky(cov)
        except np.linalg.LinAlgError:
            cov[np.diag_indices_from(cov)] += 1e-4
            chol = np.linalg.cholesky(cov)
        draw = mean + chol @ rng.standard_normal(x_new.shape[0])
        return draw * self._y_std + self._y_mean

    @property
    def num_observations(self) -> int:
        return 0 if self._x is None else self._x.shape[0]
