"""Seeded random-number plumbing.

Every stochastic component in the library (mapping search, MOBO acquisition,
genetic baselines, the CA-model noise channel) receives its randomness from
an explicit :class:`numpy.random.Generator`.  Nothing in the package touches
the global NumPy random state, so experiments replay deterministically from a
single root seed.

Two helpers are provided:

* :func:`as_generator` — normalize ``None | int | Generator`` into a
  ``Generator`` (convenient for public APIs that accept a ``seed`` argument).
* :class:`SeedSequenceFactory` — hand out independent child generators from a
  root seed.  Children are derived with named streams so that adding a new
  consumer does not perturb the randomness of existing ones.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a non-deterministic generator; an ``int`` seeds a fresh
    PCG64 generator; an existing ``Generator`` is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _stream_entropy(name: str) -> int:
    """Derive a stable 64-bit integer from a stream name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class SeedSequenceFactory:
    """Derive independent, *named* random streams from one root seed.

    Streams are keyed by name rather than by creation order, so components
    can be added or removed without shifting anybody else's randomness::

        factory = SeedSequenceFactory(root_seed=7)
        gp_rng = factory.generator("mobo.surrogate")
        sw_rng = factory.generator("mapping.flextensor", index=3)

    Repeated requests for the same ``(name, index)`` return generators with
    identical state.
    """

    def __init__(self, root_seed: int = 0):
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def spawn_seed(self, name: str, index: int = 0) -> int:
        """Return the integer seed for stream ``(name, index)``."""
        mixed = (self._root_seed * 0x9E3779B97F4A7C15 + _stream_entropy(name) + index) % (
            2**63
        )
        return mixed

    def generator(self, name: str, index: int = 0) -> np.random.Generator:
        """Return a fresh generator for stream ``(name, index)``."""
        return np.random.default_rng(self.spawn_seed(name, index))

    def child(self, name: str, index: int = 0) -> "SeedSequenceFactory":
        """Return a factory rooted at the seed of stream ``(name, index)``."""
        return SeedSequenceFactory(self.spawn_seed(name, index))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequenceFactory(root_seed={self._root_seed})"


def spawn_generators(
    seed: SeedLike, count: int, name: str = "spawn"
) -> list:  # list[np.random.Generator]
    """Spawn ``count`` independent generators derived from ``seed``.

    Useful for handing one generator to each parallel worker.  When ``seed``
    is already a ``Generator``, child seeds are drawn from it.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seeds = seed.integers(0, 2**63, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    factory = SeedSequenceFactory(0 if seed is None else int(seed))
    return [factory.generator(name, index=i) for i in range(count)]


_OPTIONAL_INT = Optional[int]  # re-exported typing alias for signatures
