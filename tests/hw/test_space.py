"""Tests for the generic discrete design-space machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DesignSpaceError
from repro.hw.space import Dimension, DiscreteDesignSpace


class _PairSpace(DiscreteDesignSpace):
    """Minimal concrete space over dicts for testing the generic layer."""

    def to_config(self, assignment):
        return dict(assignment)

    def from_config(self, config):
        return dict(config)


@pytest.fixture()
def pair_space():
    return _PairSpace(
        "pair",
        (
            Dimension("a", (1, 2, 4, 8)),
            Dimension("b", ("x", "y", "z")),
        ),
    )


class TestDimension:
    def test_encode_decode_roundtrip(self):
        dim = Dimension("d", (10, 20, 40))
        for value in dim.choices:
            assert dim.decode(dim.encode(value)) == value

    def test_decode_clamps(self):
        dim = Dimension("d", (10, 20, 40))
        assert dim.decode(-1.0) == 10
        assert dim.decode(2.0) == 40

    def test_single_choice_encodes_zero(self):
        assert Dimension("d", (5,)).encode(5) == 0.0

    def test_duplicate_choices_rejected(self):
        with pytest.raises(DesignSpaceError):
            Dimension("d", (1, 1))

    def test_empty_rejected(self):
        with pytest.raises(DesignSpaceError):
            Dimension("d", ())

    def test_index_of_missing(self):
        with pytest.raises(DesignSpaceError):
            Dimension("d", (1, 2)).index_of(3)


class TestDiscreteDesignSpace:
    def test_size(self, pair_space):
        assert pair_space.size == 12

    def test_sample_in_space(self, pair_space):
        config = pair_space.sample(seed=0)
        assert pair_space.contains(config)

    def test_sample_deterministic(self, pair_space):
        assert pair_space.sample(seed=3) == pair_space.sample(seed=3)

    def test_sample_batch_unique(self, pair_space):
        batch = pair_space.sample_batch(10, seed=0)
        keys = {pair_space.config_key(c) for c in batch}
        assert len(keys) == 10

    def test_sample_batch_too_large_raises(self, pair_space):
        with pytest.raises(DesignSpaceError):
            pair_space.sample_batch(13, seed=0)

    def test_encode_shape_and_range(self, pair_space):
        vec = pair_space.encode({"a": 4, "b": "y"})
        assert vec.shape == (2,)
        assert np.all((vec >= 0) & (vec <= 1))

    def test_decode_roundtrip(self, pair_space):
        for config in pair_space.grid_iter():
            assert pair_space.decode(pair_space.encode(config)) == config

    def test_decode_bad_shape(self, pair_space):
        with pytest.raises(DesignSpaceError):
            pair_space.decode(np.zeros(5))

    def test_mutate_changes_something(self, pair_space, rng):
        config = {"a": 4, "b": "y"}
        changed = sum(
            pair_space.mutate(config, rng) != config for _ in range(20)
        )
        assert changed >= 15  # mutation must nearly always move

    def test_mutate_stays_in_space(self, pair_space, rng):
        config = pair_space.sample(rng)
        for _ in range(30):
            config = pair_space.mutate(config, rng)
            assert pair_space.contains(config)

    def test_crossover_mixes_parents(self, pair_space, rng):
        a = {"a": 1, "b": "x"}
        b = {"a": 8, "b": "z"}
        child = pair_space.crossover(a, b, rng)
        assert child["a"] in (1, 8)
        assert child["b"] in ("x", "z")

    def test_validate_raises_outside(self, pair_space):
        with pytest.raises(DesignSpaceError):
            pair_space.validate({"a": 3, "b": "x"})

    def test_grid_iter_respects_limit(self, pair_space):
        assert len(list(pair_space.grid_iter(max_configs=5))) == 5

    def test_duplicate_dimension_rejected(self):
        with pytest.raises(DesignSpaceError):
            _PairSpace("bad", (Dimension("a", (1,)), Dimension("a", (2,))))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30)
    def test_encode_decode_identity_property(self, seed):
        space = _PairSpace(
            "pair",
            (Dimension("a", (1, 2, 4, 8)), Dimension("b", ("x", "y", "z"))),
        )
        config = space.sample(seed=seed)
        assert space.decode(space.encode(config)) == config
