"""Tests for the MOBO batch sampler and Hyperband bracket planning."""

import numpy as np
import pytest

from repro.hw import edge_design_space
from repro.optim.hyperband import hyperband_brackets
from repro.optim.mobo import MOBOSampler


@pytest.fixture()
def space():
    return edge_design_space()


def _synthetic_objectives(space, configs):
    """A smooth 3-objective function of the encoded config."""
    ys = []
    for config in configs:
        x = space.encode(config)
        latency = 1.0 + 2 * (1 - x[0]) * (1 - x[1]) + 0.5 * x[2]
        power = 0.2 + x[0] * x[1] + 0.1 * x[3]
        area = 0.1 + x[0] + x[1] + 0.3 * x[2]
        ys.append([latency, power, area])
    return np.array(ys)


class TestMOBOSampler:
    def test_random_fallback_before_min_observations(self, space):
        sampler = MOBOSampler(space, 3, seed=0, min_observations=8)
        batch = sampler.suggest_batch([], np.zeros((0, 3)), batch_size=5)
        assert len(batch) == 5
        keys = {space.config_key(c) for c in batch}
        assert len(keys) == 5

    def test_batch_unique_and_unobserved(self, space):
        sampler = MOBOSampler(space, 3, seed=0, min_observations=4, pool_size=64)
        train = space.sample_batch(12, seed=1)
        y = _synthetic_objectives(space, train)
        batch = sampler.suggest_batch(train, y, batch_size=6)
        assert len(batch) == 6
        batch_keys = {space.config_key(c) for c in batch}
        train_keys = {space.config_key(c) for c in train}
        assert len(batch_keys) == 6
        assert not batch_keys & train_keys

    def test_model_guides_toward_good_region(self, space):
        """With clear structure, suggestions beat random sampling on the
        learned scalar objective."""
        rng = np.random.default_rng(0)
        train = space.sample_batch(40, seed=2)
        y = _synthetic_objectives(space, train)
        sampler = MOBOSampler(space, 3, seed=3, min_observations=8, pool_size=128)
        batch = sampler.suggest_batch(train, y, batch_size=8)
        suggested = _synthetic_objectives(space, batch).sum(axis=1)
        random_configs = space.sample_batch(200, seed=4)
        random_scores = _synthetic_objectives(space, random_configs).sum(axis=1)
        assert suggested.mean() < np.quantile(random_scores, 0.5)

    def test_wrong_objective_shape_raises(self, space):
        sampler = MOBOSampler(space, 3, seed=0, min_observations=2)
        train = space.sample_batch(4, seed=0)
        with pytest.raises(ValueError):
            sampler.suggest_batch(train, np.zeros((4, 2)), batch_size=2)

    def test_incumbent_mutations_in_pool(self, space):
        sampler = MOBOSampler(space, 3, seed=1, min_observations=4, pool_size=16)
        train = space.sample_batch(10, seed=5)
        y = _synthetic_objectives(space, train)
        incumbent = train[0]
        batch = sampler.suggest_batch(train, y, batch_size=3, incumbents=[incumbent])
        assert len(batch) == 3

    def test_predict_objectives_shapes(self, space):
        sampler = MOBOSampler(space, 3, seed=0)
        train = space.sample_batch(15, seed=6)
        y = _synthetic_objectives(space, train)
        query = space.sample_batch(5, seed=7)
        mean, std = sampler.predict_objectives(train, y, query)
        assert mean.shape == (5, 3)
        assert std.shape == (5, 3)
        assert np.all(std > 0)

    def test_surrogate_accuracy_on_smooth_function(self, space):
        sampler = MOBOSampler(space, 3, seed=0)
        train = space.sample_batch(60, seed=8)
        y = _synthetic_objectives(space, train)
        query = space.sample_batch(20, seed=9)
        truth = _synthetic_objectives(space, query)
        mean, _std = sampler.predict_objectives(train, y, query)
        rmse = np.sqrt(np.mean((mean - truth) ** 2))
        assert rmse < 0.5


class TestHyperbandBrackets:
    def test_standard_structure(self):
        brackets = hyperband_brackets(81, eta=3.0)
        assert len(brackets) == 5  # s_max = 4
        # most aggressive bracket: many candidates, small budget
        assert brackets[0].num_candidates >= brackets[-1].num_candidates
        assert brackets[0].initial_budget <= brackets[-1].initial_budget

    def test_last_bracket_full_budget(self):
        brackets = hyperband_brackets(81, eta=3.0)
        assert brackets[-1].initial_budget == 81

    def test_num_rounds(self):
        brackets = hyperband_brackets(81, eta=3.0)
        assert brackets[0].num_rounds == 5
        assert brackets[-1].num_rounds == 1

    def test_invalid_args(self):
        from repro.errors import SearchBudgetError

        with pytest.raises(SearchBudgetError):
            hyperband_brackets(0)
        with pytest.raises(SearchBudgetError):
            hyperband_brackets(10, eta=1.0)
