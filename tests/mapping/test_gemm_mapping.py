"""Tests for the GEMM mapping representation and space."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.mapping import (
    LOOP_ORDERS,
    GemmMapping,
    GemmMappingSpace,
    default_network_mapping,
)
from repro.workloads.layers import GemmShape


class TestGemmMapping:
    def test_valid(self):
        mapping = GemmMapping(4, 8, 16)
        assert mapping.tiles() == (4, 8, 16)

    def test_invalid_tile(self):
        with pytest.raises(MappingError):
            GemmMapping(0, 1, 1)

    def test_invalid_order(self):
        with pytest.raises(MappingError):
            GemmMapping(1, 1, 1, loop_order=("m", "m", "k"))

    def test_invalid_spatial(self):
        with pytest.raises(MappingError):
            GemmMapping(1, 1, 1, spatial="xy")

    def test_invalid_unroll(self):
        with pytest.raises(MappingError):
            GemmMapping(1, 1, 1, unroll=3)

    def test_with_tiles(self):
        updated = GemmMapping(1, 1, 1, unroll=4).with_tiles(2, 4, 8)
        assert updated.tiles() == (2, 4, 8)
        assert updated.unroll == 4

    def test_key_is_hashable_identity(self):
        a = GemmMapping(2, 4, 8)
        b = GemmMapping(2, 4, 8)
        assert a.key() == b.key()
        assert hash(a.key()) == hash(b.key())


class TestGemmMappingSpace:
    SHAPE = GemmShape(m=64, n=360, k=48)

    def test_tile_choices_are_divisors(self):
        space = GemmMappingSpace(self.SHAPE)
        assert all(self.SHAPE.m % t == 0 for t in space.tile_m_choices)
        assert all(self.SHAPE.n % t == 0 for t in space.tile_n_choices)
        assert all(self.SHAPE.k % t == 0 for t in space.tile_k_choices)

    def test_size_counts_primitives(self):
        space = GemmMappingSpace(self.SHAPE)
        expected = (
            len(space.tile_m_choices)
            * len(space.tile_n_choices)
            * len(space.tile_k_choices)
            * len(LOOP_ORDERS)
            * 2
            * 4
        )
        assert space.size == expected

    def test_per_layer_space_order_of_magnitude(self):
        """Section 4.1: ~1e6 mapping points for a realistic conv layer."""
        from repro.workloads import get_network

        conv = get_network("resnet").layer("s3_conv3")
        space = GemmMappingSpace(conv.to_gemm())
        assert 1e4 <= space.size <= 1e8

    def test_sample_is_member(self, rng):
        space = GemmMappingSpace(self.SHAPE)
        for _ in range(20):
            mapping = space.sample(rng)
            assert mapping.tile_m in space.tile_m_choices
            assert mapping.tile_n in space.tile_n_choices
            assert mapping.tile_k in space.tile_k_choices

    def test_seeded_mapping_near_pe_array(self):
        space = GemmMappingSpace(self.SHAPE)
        seeded = space.seeded_mapping(8, 8)
        assert seeded.tile_m >= 8
        assert self.SHAPE.m % seeded.tile_m == 0

    def test_mutate_changes_one_thing(self, rng):
        space = GemmMappingSpace(self.SHAPE)
        mapping = space.sample(rng)
        mutated = space.mutate(mapping, rng)
        differences = sum(
            getattr(mapping, f) != getattr(mutated, f)
            for f in ("tile_m", "tile_n", "tile_k", "loop_order", "spatial", "unroll")
        )
        assert differences == 1

    def test_crossover_fields_from_parents(self, rng):
        space = GemmMappingSpace(self.SHAPE)
        a, b = space.sample(rng), space.sample(rng)
        child = space.crossover(a, b, rng)
        for field in ("tile_m", "tile_n", "tile_k", "spatial", "unroll"):
            assert getattr(child, field) in (getattr(a, field), getattr(b, field))

    def test_max_tile_cap(self):
        space = GemmMappingSpace(GemmShape(m=8192, n=8192, k=8192), max_tile=64)
        assert max(space.tile_m_choices) <= 64

    @given(st.integers(1, 500), st.integers(1, 500), st.integers(1, 500))
    @settings(max_examples=40)
    def test_mutate_preserves_divisibility(self, m, n, k):
        space = GemmMappingSpace(GemmShape(m=m, n=n, k=k))
        mapping = space.sample(seed=0)
        for step in range(5):
            mapping = space.mutate(mapping, seed=step)
        assert m % mapping.tile_m == 0
        assert n % mapping.tile_n == 0
        assert k % mapping.tile_k == 0


class TestDefaultNetworkMapping:
    def test_covers_all_layers(self, tiny_network):
        spaces = {
            layer.name: GemmMappingSpace(layer.to_gemm())
            for layer in tiny_network.layers
        }
        mapping = default_network_mapping(spaces, 8, 8)
        assert set(mapping) == {layer.name for layer in tiny_network.layers}
