"""Tests for the markdown report generator."""

import json
import pathlib

import pytest

from repro.experiments.reporting import generate_report, load_records
from repro.utils.records import RunRecord


@pytest.fixture()
def results_dir(tmp_path):
    table = RunRecord("table-edge")
    table.put("scenario", "edge")
    table.put("methods", ["hasco", "unico"])
    row = table.child("bert")
    row.child("hasco").update(
        {"latency_ms": 10.0, "power_mw": 100.0, "area_mm2": 2.0, "cost_h": 5.0}
    )
    row.child("unico").update(
        {"latency_ms": 8.0, "power_mw": 80.0, "area_mm2": 1.8, "cost_h": 1.0}
    )
    (tmp_path / "table1_edge.json").write_text(table.to_json())

    fig = RunRecord("fig9")
    fig.put("mean_gain_ratio", 1.14)
    fig.child("unet").put("gain_ratio", 1.16)
    (tmp_path / "fig9.json").write_text(fig.to_json())
    return tmp_path


class TestLoadRecords:
    def test_loads_known_files(self, results_dir):
        records = load_records(results_dir)
        assert set(records) == {"table1_edge", "fig9"}

    def test_missing_dir_is_empty(self, tmp_path):
        assert load_records(tmp_path / "nothing") == {}


class TestGenerateReport:
    def test_contains_table_rows(self, results_dir):
        markdown = generate_report(results_dir)
        assert "| bert |" in markdown
        assert "unico" in markdown

    def test_contains_fig_metrics(self, results_dir):
        markdown = generate_report(results_dir)
        assert "mean_gain_ratio" in markdown
        assert "1.14" in markdown

    def test_empty_dir_message(self, tmp_path):
        markdown = generate_report(tmp_path)
        assert "No records found" in markdown

    def test_valid_markdown_table_shape(self, results_dir):
        markdown = generate_report(results_dir)
        table_lines = [l for l in markdown.splitlines() if l.startswith("| bert")]
        assert len(table_lines) == 1
        # 1 network column + 2 methods x 4 metrics
        assert table_lines[0].count("|") == 10


class TestCsvExport:
    def test_hv_curves_csv(self):
        from repro.experiments.reporting import hv_curves_to_csv

        record = RunRecord("fig7-edge")
        panel = record.child("bert")
        panel.put("time_grid_s", [1.0, 2.0])
        panel.child("unico").put("hv_diff_curve", [0.5, 0.2])
        csv = hv_curves_to_csv(record)
        lines = csv.splitlines()
        assert lines[0] == "network,method,time_s,hv_diff"
        assert "bert,unico,1.0,0.5" in lines
        assert "bert,unico,2.0,0.2" in lines

    def test_table_csv(self):
        from repro.experiments.reporting import table_to_csv

        record = RunRecord("table-edge")
        record.child("bert").child("unico").update(
            {"latency_ms": 1.5, "power_mw": 100.0, "area_mm2": 2.0, "cost_h": 0.5}
        )
        csv = table_to_csv(record)
        assert "bert,unico,1.5,100.0,2.0,0.5" in csv
