"""Tracker hooks: how a running co-search reports itself to the outside.

:class:`Tracker` is the observer interface threaded through
:meth:`repro.core.unico.Unico.optimize`, ``Unico._run_msh``, the
high-fidelity surrogate update and :func:`repro.experiments.harness.run_method`.
Every hook is a no-op on the base class, so custom trackers override only
what they need; the hot path guards event assembly behind
:attr:`Tracker.enabled` so an untracked search pays nothing.

:class:`JournalTracker` is the production implementation: it writes typed
events into a run's :class:`~repro.tracking.journal.EventJournal`, keeps
the run's ``manifest.json`` lifecycle up to date, and auto-checkpoints the
optimizer every ``checkpoint_every`` completed iterations using the
:mod:`repro.core.checkpoint` codec — the pieces ``repro runs resume``
needs to continue a killed search.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro.errors import TrackingError
from repro.tracking.journal import JOURNAL_VERSION, EventJournal
from repro.tracking.store import RunHandle
from repro.utils.records import to_jsonable


class Tracker:
    """Observer interface for co-search runs; every hook is optional.

    ``optimizer`` is always the co-optimizer emitting the event; hooks
    must not mutate it.  Objects in payload positions (configs,
    evaluations, records) are *live* — serialize, don't keep.
    """

    #: hot paths skip event assembly entirely when this is False
    enabled: bool = True

    def on_run_start(self, optimizer) -> None:
        """Called once at the top of ``optimize()`` (also on resume)."""

    def on_iteration_start(self, optimizer, iteration: int) -> None:
        """A MOBO iteration is about to sample its batch."""

    def on_hw_sampled(self, optimizer, iteration: int, configs: List) -> None:
        """The iteration's hardware batch was drawn from the sampler."""

    def on_msh_round(
        self,
        optimizer,
        iteration: int,
        round_index: int,
        cumulative_budget: int,
        candidates: List[int],
        tv: Dict[int, float],
        auc: Dict[int, float],
        survivors: List[int],
        promoted: List[int],
    ) -> None:
        """One (M)SH round finished; ``promoted`` survived only via AUC."""

    def on_evaluation(
        self,
        optimizer,
        evaluation,
        added: bool,
        batch_id=None,
        batch_size=None,
    ) -> None:
        """A candidate's Y was assembled; ``added`` = joined the front.

        ``batch_id``/``batch_size`` identify the HW-evaluation batch the
        candidate belonged to (when the optimizer evaluates in batches), so
        consumers can report effective throughput per batch.
        """

    def on_surrogate_update(
        self,
        optimizer,
        iteration: int,
        scalars: np.ndarray,
        selected: np.ndarray,
        uul_before: float,
        uul_after: float,
    ) -> None:
        """The UUL (or champion) rule accepted/rejected batch members."""

    def on_iteration_end(self, optimizer, record) -> None:
        """An :class:`~repro.core.unico.IterationRecord` was finalized."""

    def on_search_health(self, optimizer, iteration: int, health: Dict) -> None:
        """Per-iteration search-health beacon (HV, front size, screening).

        ``health`` is a plain JSON-ready dict assembled by the optimizer
        — the hub's telemetry pipeline tails these events to detect
        hypervolume stalls and screening drift without replaying the run.
        """

    def on_run_end(self, optimizer, result) -> None:
        """``optimize()`` is returning ``result``."""

    def on_run_failed(self, optimizer, error: BaseException) -> None:
        """``optimize()`` raised; the run is being abandoned."""

    def close(self) -> None:
        """Release any resources (files, sockets)."""


class NullTracker(Tracker):
    """The default: observes nothing, costs nothing."""

    enabled = False


class JournalSampleSink:
    """Engine sample sink that journals per-candidate ``engine_sample`` events.

    Installed on a ``PPAEngine`` (``engine.sample_sink = sink``) it records
    one event per *computed* cost-model query — the training data the
    :mod:`repro.learned` subsystem distills.  The payload is self-contained
    (hardware variables, mapping key, layer shape, exact PPA), so datasets
    can be extracted from a journal without the run's design space or
    workload registry.  Thread safety comes from the journal's atomic line
    appends.
    """

    #: payload schema, independent of JOURNAL_VERSION so the sample shape
    #: can grow without a journal format bump
    SAMPLE_SCHEMA = 1

    def __init__(self, journal: EventJournal):
        self.journal = journal

    @staticmethod
    def _finite(value: float) -> Optional[float]:
        value = float(value)
        return value if np.isfinite(value) else None

    def __call__(self, hw, layer_name: str, mapping, shape, result) -> None:
        self.journal.append(
            "engine_sample",
            {
                "sample_schema": self.SAMPLE_SCHEMA,
                "layer": str(layer_name),
                "hw": {str(k): to_jsonable(v) for k, v in vars(hw).items()},
                "mapping": to_jsonable(mapping.key()),
                "shape": [shape.m, shape.n, shape.k, shape.reuse_penalty],
                "latency_s": self._finite(result.latency_s),
                "energy_j": self._finite(result.energy_j),
                "feasible": bool(result.feasible),
                "reason": str(result.infeasible_reason),
            },
        )


class JournalTracker(Tracker):
    """Persist a run's trajectory into its run directory.

    Parameters
    ----------
    run:
        The :class:`~repro.tracking.store.RunHandle` to write into.
    checkpoint_every:
        Auto-checkpoint period in completed iterations (``0`` disables
        auto-checkpointing; the journal is still written).
    fsync:
        Flush every journal line to stable storage (see
        :class:`~repro.tracking.journal.EventJournal`).
    keep_last_checkpoints:
        If set, prune all but this many newest checkpoints after each save.
    resume:
        Continue an existing journal's sequence numbering and announce a
        ``resume`` event instead of ``run_start``.
    """

    def __init__(
        self,
        run: RunHandle,
        checkpoint_every: int = 1,
        fsync: bool = False,
        keep_last_checkpoints: Optional[int] = None,
        resume: bool = False,
    ):
        if checkpoint_every < 0:
            raise TrackingError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.run = run
        self.checkpoint_every = checkpoint_every
        self.keep_last_checkpoints = keep_last_checkpoints
        self._resuming = resume
        if resume and run.journal_path.exists():
            self.journal = EventJournal.open_resume(run.journal_path, fsync=fsync)
        else:
            self.journal = EventJournal(run.journal_path, fsync=fsync)

    # ------------------------------------------------------------------ events
    def _emit(self, optimizer, event_type: str, payload: Dict) -> None:
        event = {"wall_time": time.time()}
        if optimizer is not None:
            event["time_s"] = float(optimizer.clock.now_s)
        event.update(payload)
        self.journal.append(event_type, event)

    def _hw_payload(self, optimizer, hw) -> Dict:
        return {str(k): to_jsonable(v) for k, v in optimizer.space.from_config(hw).items()}

    def on_run_start(self, optimizer) -> None:
        completed = int(getattr(optimizer, "completed_iterations", 0))
        payload = {
            "journal_version": JOURNAL_VERSION,
            "run_id": self.run.run_id,
            "method": optimizer.method_name,
            "completed_iterations": completed,
        }
        self._emit(optimizer, "resume" if self._resuming else "run_start", payload)
        self.run.set_status("running")

    def on_iteration_start(self, optimizer, iteration: int) -> None:
        self._emit(optimizer, "iteration_start", {"iteration": iteration})

    def on_hw_sampled(self, optimizer, iteration: int, configs: List) -> None:
        self._emit(
            optimizer,
            "hw_sampled",
            {
                "iteration": iteration,
                "num_configs": len(configs),
                "configs": [self._hw_payload(optimizer, hw) for hw in configs],
            },
        )

    def on_msh_round(
        self,
        optimizer,
        iteration: int,
        round_index: int,
        cumulative_budget: int,
        candidates: List[int],
        tv: Dict[int, float],
        auc: Dict[int, float],
        survivors: List[int],
        promoted: List[int],
    ) -> None:
        self._emit(
            optimizer,
            "msh_round",
            {
                "iteration": iteration,
                "round_index": round_index,
                "cumulative_budget": cumulative_budget,
                "candidates": list(candidates),
                "tv": {str(k): to_jsonable(v) for k, v in tv.items()},
                "auc": {str(k): to_jsonable(v) for k, v in auc.items()},
                "survivors": list(survivors),
                "auc_promoted": list(promoted),
            },
        )

    def on_evaluation(
        self,
        optimizer,
        evaluation,
        added: bool,
        batch_id=None,
        batch_size=None,
    ) -> None:
        payload = {
            "hw": self._hw_payload(optimizer, evaluation.hw),
            "objectives": to_jsonable(evaluation.objectives),
            "feasible": bool(evaluation.feasible),
            "added_to_pareto": bool(added),
        }
        # batch membership is additive: untracked (scalar) optimizers keep
        # the historical event shape, so resume semantics are unchanged
        if batch_id is not None:
            payload["batch_id"] = int(batch_id)
        if batch_size is not None:
            payload["batch_size"] = int(batch_size)
        self._emit(optimizer, "evaluation", payload)
        if added:
            self._emit(
                optimizer,
                "pareto_update",
                {
                    "pareto_size": len(optimizer.pareto),
                    "point": to_jsonable(evaluation.ppa_vector),
                },
            )

    def on_surrogate_update(
        self,
        optimizer,
        iteration: int,
        scalars: np.ndarray,
        selected: np.ndarray,
        uul_before: float,
        uul_after: float,
    ) -> None:
        self._emit(
            optimizer,
            "surrogate_update",
            {
                "iteration": iteration,
                "rule": type(optimizer.selector).__name__,
                "scalars": to_jsonable(scalars),
                "accepted": [int(i) for i in np.flatnonzero(selected)],
                "rejected": [int(i) for i in np.flatnonzero(~np.asarray(selected))],
                "uul_before": to_jsonable(uul_before),
                "uul_after": to_jsonable(uul_after),
                "best_scalar": to_jsonable(optimizer.selector.best_scalar)
                if hasattr(optimizer.selector, "best_scalar")
                else None,
            },
        )

    def on_iteration_end(self, optimizer, record) -> None:
        self._emit(
            optimizer,
            "iteration_end",
            {
                "iteration": record.iteration,
                "record": {
                    "iteration": record.iteration,
                    "time_s": record.time_s,
                    "uul": to_jsonable(record.uul),
                    "num_selected": record.num_selected,
                    "num_feasible": record.num_feasible,
                    "pareto_size": record.pareto_size,
                    "best_scalar": to_jsonable(record.best_scalar),
                },
            },
        )
        completed = int(getattr(optimizer, "completed_iterations", 0))
        if self.checkpoint_every and completed % self.checkpoint_every == 0:
            self.checkpoint(optimizer)

    def on_search_health(self, optimizer, iteration: int, health: Dict) -> None:
        payload = {"iteration": int(iteration)}
        payload.update({str(k): to_jsonable(v) for k, v in health.items()})
        self._emit(optimizer, "search_health", payload)

    def checkpoint(self, optimizer) -> None:
        """Write a checkpoint for the optimizer's current completed count.

        Only optimizers speaking the :mod:`repro.core.checkpoint` codec
        (Unico and its ablation variants) are checkpointable; for other
        methods the journal is still written but no checkpoint appears,
        and ``repro runs resume`` will refuse the run.
        """
        from repro.core.checkpoint import save_checkpoint

        if not all(
            hasattr(optimizer, attr)
            for attr in ("sampler", "normalizer", "train_configs",
                         "completed_iterations")
        ):
            return
        completed = int(getattr(optimizer, "completed_iterations", 0))
        path = self.run.checkpoint_path(completed)
        path.parent.mkdir(parents=True, exist_ok=True)
        save_checkpoint(optimizer, path)
        self._emit(
            optimizer,
            "checkpoint",
            {"completed_iterations": completed, "path": path.name},
        )
        if self.keep_last_checkpoints is not None:
            self.run.prune_checkpoints(self.keep_last_checkpoints)

    def engine_snapshot(self, optimizer) -> None:
        """Journal the engine + metrics + runner state (observability)."""
        payload: Dict = {}
        engine = getattr(optimizer, "engine", None)
        if engine is not None and hasattr(engine, "stats"):
            payload["engine"] = to_jsonable(engine.stats())
        metrics = getattr(engine, "metrics", None)
        if metrics is not None and hasattr(metrics, "summary"):
            payload["metrics"] = metrics.summary()
        runner = getattr(optimizer, "runner", None)
        if runner is not None and hasattr(runner, "stats"):
            payload["runner"] = to_jsonable(runner.stats())
        self._emit(optimizer, "engine_snapshot", payload)

    def on_run_end(self, optimizer, result) -> None:
        self.engine_snapshot(optimizer)
        self._emit(
            optimizer,
            "run_end",
            {
                "completed_iterations": int(
                    getattr(optimizer, "completed_iterations", 0)
                ),
                "total_hw_evaluated": result.total_hw_evaluated,
                "total_engine_queries": result.total_engine_queries,
                "total_time_s": result.total_time_s,
                "pareto_size": len(result.pareto),
            },
        )
        self.run.set_status(
            "completed",
            total_time_s=result.total_time_s,
            total_hw_evaluated=result.total_hw_evaluated,
            pareto_size=len(result.pareto),
        )
        self.close()

    def on_run_failed(self, optimizer, error: BaseException) -> None:
        self.run.set_status("failed", error=f"{type(error).__name__}: {error}")
        self.close()

    def close(self) -> None:
        self.journal.close()


__all__ = ["JournalSampleSink", "JournalTracker", "NullTracker", "Tracker"]
