"""Prometheus text-format exposition for :class:`~repro.utils.metrics.MetricsRegistry`.

The estimation service serves ``GET /metrics?format=prom`` with the
output of :func:`render_prometheus`, so a stock Prometheus scraper can
monitor it without a JSON exporter in between.  The renderer follows the
text exposition format conventions:

* metric names sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
* counters emitted under one ``# TYPE <name> counter`` header — the
  registry's ``name[label]`` convention (e.g.
  ``service_requests_total[/evaluate_layer]``) becomes a proper
  ``{path="/evaluate_layer"}`` label set;
* histograms as cumulative ``_bucket{le="..."}`` series plus ``_sum``
  and ``_count``, closed by the mandatory ``+Inf`` bucket;
* families whose base name appears in :data:`METRIC_HELP` get a
  ``# HELP`` line ahead of their ``# TYPE`` header.

:func:`parse_prometheus_text` is the matching strict parser; tests use
it to prove the rendered output is actually scrapeable, and it validates
the cumulative-bucket invariants a real Prometheus server enforces.
Histogram validation groups series by their non-``le`` label sets, so a
multi-replica exposition (the hub's fleet aggregation labels every
series with ``replica="..."``) is held to the same invariants per
replica.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

#: metric → one-line description, rendered as ``# HELP`` ahead of the
#: family's ``# TYPE`` header.  Keyed by *sanitized base* name; names not
#: listed simply render without HELP (the format does not require it).
METRIC_HELP: Dict[str, str] = {
    "engine_queries_total": "PPA engine evaluations requested (cached or computed).",
    "engine_cache_hits_total": "Engine queries served from the result cache.",
    "engine_cache_evictions_total": "LRU evictions from the engine result cache.",
    "engine_batch_queries_total": "Vectorized candidate-batch engine calls.",
    "engine_retries_total": "Engine evaluations retried after transient failures.",
    "engine_injected_failures_total": "Failures injected by the flaky test engine.",
    "engine_compute_seconds": "Wall time of uncached scalar engine computations.",
    "engine_batch_size": "Candidates per vectorized engine batch call.",
    "engine_batch_compute_seconds_per_item":
        "Per-candidate wall time of vectorized engine batch calls.",
    "service_requests_total": "HTTP requests served, by endpoint path.",
    "service_errors_total": "HTTP requests answered with a 4xx/5xx status.",
    "service_drain_rejections_total":
        "Requests rejected with 503 while the service was draining.",
    "service_request_seconds": "Wall time spent serving HTTP requests.",
    "remote_requests_total": "Requests the remote engine client sent upstream.",
    "remote_network_retries_total":
        "Transport-level retries of remote engine requests.",
    "remote_circuit_rejections_total":
        "Requests rejected fast by an open client circuit breaker.",
    "remote_circuit_opened_total": "Times a client circuit breaker opened.",
    "remote_error_body_unparsed_total":
        "Upstream error bodies that were not parseable JSON.",
    "remote_request_seconds": "Wall time of remote engine request round trips.",
    "fleet_requests_total": "Requests routed to a fleet shard, by shard.",
    "fleet_failovers_total":
        "Keys served by a non-owner shard because the owner was down.",
    "fleet_shard_down_total": "Times a shard was marked down, by shard.",
    "runner_jobs_total": "Jobs dispatched through the parallel job runner.",
    "runner_batches_total": "Job batches dispatched through the runner.",
    "runner_pickle_fallbacks_total":
        "Process-backend jobs that fell back to threads (unpicklable).",
    "runner_unpicklable_jobs_total": "Jobs that failed the pickle check.",
    "runner_batch_seconds": "Wall time of parallel job-runner batches.",
    "hub_requests_total": "Hub control-plane HTTP requests, by endpoint path.",
    "hub_errors_total": "Hub requests answered with a 4xx/5xx status.",
    "hub_request_seconds": "Wall time of hub control-plane requests.",
    "hub_sse_streams_total": "Journal SSE streams opened against the hub.",
    "hub_sse_events_total": "Journal events sent over hub SSE streams.",
    "hub_sse_resumes_total": "SSE streams resumed from a Last-Event-ID cursor.",
    "hub_runs_submitted_total": "Runs submitted through POST /runs.",
    "hub_runs_completed_total": "Hub-scheduled runs that reached completed.",
    "hub_runs_failed_total": "Hub-scheduled runs that reached failed.",
    "hub_runs_cancelled_total": "Hub-scheduled runs cancelled via the API.",
    "hub_fleet_scrapes_total": "Fleet metric scrape sweeps performed by the hub.",
    "hub_fleet_scrape_errors_total":
        "Replica scrapes that failed or returned unparseable text.",
    "hub_fleet_scrape_seconds": "Wall time of full fleet scrape+merge sweeps.",
    "hub_fleet_merge_conflicts_total":
        "Histogram families skipped from fleet rollups (bucket mismatch).",
    "hub_telemetry_ticks_total": "Telemetry scrape-loop ticks completed.",
    "hub_telemetry_tick_errors_total":
        "Telemetry ticks that raised and were skipped.",
    "hub_telemetry_tick_seconds":
        "Wall time of telemetry scrape+append+rule-evaluation ticks.",
    "hub_telemetry_samples_total":
        "Samples appended to the telemetry metrics store.",
    "hub_alerts_fired_total": "SLO alerts that transitioned to firing.",
    "hub_alerts_resolved_total": "SLO alerts that resolved after firing.",
}

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[^"}]|"(?:[^"\\]|\\.)*")*)\})?'
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?P<sep>,|$)'
)


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary registry name into a legal Prometheus name."""
    cleaned = _SANITIZE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring (only ``\\`` and newline are special)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


_LABEL_UNESCAPE = re.compile(r'\\(\\|n|")')


def _unescape_label_value(value: str) -> str:
    """Single-pass inverse of :func:`_escape_label_value`.

    Sequential ``str.replace`` calls are wrong here: a literal backslash
    followed by ``n`` escapes to ``\\\\n``, whose middle ``\\n`` a naive
    ``.replace("\\\\n", newline)`` pass would corrupt into a newline.
    """
    return _LABEL_UNESCAPE.sub(
        lambda match: {"\\": "\\", "n": "\n", '"': '"'}[match.group(1)], value
    )


_LABEL_KEY = re.compile(r"^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)=(?P<value>.+)$")


def _split_labeled_name(name: str) -> Tuple[str, Optional[str], str]:
    """Split the registry's labeled-name conventions into (base, value, key).

    Two spellings exist:

    * ``base[label]`` — a bare value under the default ``path`` key; the
      service records per-path request counters as
      ``service_requests_total[/evaluate_layer]``;
    * ``base[key=value]`` — an explicit label key; the fleet router
      records per-replica counters as
      ``fleet_requests_total[shard=shard-0]``.
    """
    if name.endswith("]"):
        idx = name.find("[")
        if 0 < idx < len(name) - 1:
            inner = name[idx + 1 : -1]
            match = _LABEL_KEY.match(inner)
            if match is not None:
                return name[:idx], match.group("value"), match.group("key")
            return name[:idx], inner, "path"
    return name, None, "path"


def _fmt(value: float) -> str:
    """Prometheus-friendly number formatting (``%g``)."""
    return f"{float(value):g}"


def help_for(base: str, extra: Optional[Dict[str, str]] = None) -> Optional[str]:
    """Description of a (sanitized) metric family, if one is registered."""
    if extra is not None and base in extra:
        return extra[base]
    return METRIC_HELP.get(base)


def render_prometheus(
    snapshot: Dict, help_text: Optional[Dict[str, str]] = None
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text.

    Deterministic: families and series appear in sorted-name order, so
    repeated scrapes of an idle registry are byte-identical.
    ``help_text`` overlays :data:`METRIC_HELP` for ad-hoc families.
    """
    lines: List[str] = []

    def _emit_help(base: str) -> None:
        description = help_for(base, help_text)
        if description:
            lines.append(f"# HELP {base} {_escape_help(description)}")

    families: Dict[str, List[Tuple[Optional[str], str, float]]] = {}
    for name, value in snapshot.get("counters", {}).items():
        base, label, key = _split_labeled_name(str(name))
        families.setdefault(sanitize_metric_name(base), []).append(
            (label, key, float(value))
        )
    for base in sorted(families):
        _emit_help(base)
        lines.append(f"# TYPE {base} counter")
        for label, key, value in sorted(
            families[base], key=lambda item: (item[1], item[0] or "")
        ):
            if label is None:
                lines.append(f"{base} {_fmt(value)}")
            else:
                lines.append(
                    f'{base}{{{key}="{_escape_label_value(label)}"}} '
                    f"{_fmt(value)}"
                )

    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        hist = histograms[name]
        base = sanitize_metric_name(str(name))
        _emit_help(base)
        lines.append(f"# TYPE {base} histogram")
        cumulative = 0
        for bound, bucket in zip(hist["bounds"], hist["bucket_counts"]):
            cumulative += bucket
            lines.append(f'{base}_bucket{{le="{bound:g}"}} {cumulative}')
        cumulative += hist["bucket_counts"][-1]
        lines.append(f'{base}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{base}_sum {_fmt(hist['sum'])}")
        lines.append(f"{base}_count {hist['count']}")

    return "\n".join(lines) + ("\n" if lines else "")


def _parse_labels(raw: Optional[str]) -> Dict[str, str]:
    """Parse the ``key="value",...`` body of a label set; strict.

    Scans left to right with a quote-aware regex (label values may
    legally contain commas and ``}``), so the split cannot land inside a
    quoted value.
    """
    labels: Dict[str, str] = {}
    if not raw:
        return labels
    position = 0
    while position < len(raw):
        match = _LABEL.match(raw, position)
        if match is None or match.start() != position:
            raise ValueError(f"malformed label pair at {raw[position:]!r}")
        labels[match.group("key")] = _unescape_label_value(match.group("value"))
        position = match.end()
    return labels


def parse_prometheus_text(text: str) -> Dict[str, Dict]:
    """Strictly parse Prometheus text exposition into metric families.

    Returns ``{family_name: {"type": str, "help": Optional[str],
    "samples": [(name, labels, value), ...]}}``.  Raises
    :class:`ValueError` on malformed lines, samples without a preceding
    ``# TYPE``, illegal metric names, malformed or duplicate ``# HELP``
    lines, or histogram families violating the cumulative ``_bucket``/
    ``_sum``/``_count`` conventions — i.e. anything a real scraper would
    reject.  ``# HELP`` may precede its family's ``# TYPE`` (the
    conventional order) or follow it.
    """
    families: Dict[str, Dict] = {}
    current: Optional[str] = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
                current = parts[2]
                if not _NAME_OK.match(current):
                    raise ValueError(
                        f"line {lineno}: illegal metric name {current!r}"
                    )
                family = families.get(current)
                if family is None:
                    families[current] = {
                        "type": parts[3], "help": None, "samples": []
                    }
                elif family["type"] is None:  # created by a HELP line
                    family["type"] = parts[3]
                else:
                    raise ValueError(
                        f"line {lineno}: duplicate TYPE for {current!r}"
                    )
            elif len(parts) >= 2 and parts[1] == "HELP":
                if len(parts) < 3:
                    raise ValueError(f"line {lineno}: malformed HELP: {line!r}")
                name = parts[2]
                if not _NAME_OK.match(name):
                    raise ValueError(
                        f"line {lineno}: illegal metric name {name!r}"
                    )
                docstring = line.split(None, 3)[3] if len(parts) > 3 else ""
                family = families.setdefault(
                    name, {"type": None, "help": None, "samples": []}
                )
                if family["help"] is not None:
                    raise ValueError(
                        f"line {lineno}: duplicate HELP for {name!r}"
                    )
                family["help"] = _unescape_help(docstring)
            continue  # other comments
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        if current is None or not (
            name == current or name.startswith(current + "_")
        ):
            raise ValueError(
                f"line {lineno}: sample {name!r} outside its TYPE family"
            )
        family_type = families[current]["type"]
        if not _sample_name_fits_type(name, current, family_type):
            raise ValueError(
                f"line {lineno}: sample {name!r} is not a legal series of "
                f"{family_type} family {current!r}"
            )
        labels = _parse_labels(match.group("labels"))
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value in {line!r}"
            ) from None
        families[current]["samples"].append((name, labels, value))

    for family, data in families.items():
        if data["type"] is None:
            # a HELP line whose family never produced a TYPE or samples
            data["type"] = "untyped"
        if data["type"] == "histogram":
            _validate_histogram_family(family, data["samples"])
    return families


def _sample_name_fits_type(
    name: str, family: str, family_type: Optional[str]
) -> bool:
    """Type-aware sample naming: what a TYPE declaration promises.

    A ``counter`` (or ``gauge``) family carries exactly one series name —
    the family's own; a ``histogram`` carries only the ``_bucket`` /
    ``_sum`` / ``_count`` components; a ``summary`` its quantile series
    plus ``_sum``/``_count``.  Declaring ``TYPE x counter`` and then
    emitting ``x_bytes`` is the kind of exposition drift a real scraper
    mis-ingests silently; the strict parser rejects it so the renderer's
    round-trip test can prove the emitted TYPE lines are honest.
    """
    if family_type in ("counter", "gauge"):
        return name == family
    if family_type == "histogram":
        return name in (
            family + "_bucket", family + "_sum", family + "_count"
        )
    if family_type == "summary":
        return name in (family, family + "_sum", family + "_count")
    # untyped: anything in the family's namespace
    return True


_HELP_UNESCAPE = re.compile(r"\\(\\|n)")


def _unescape_help(text: str) -> str:
    return _HELP_UNESCAPE.sub(
        lambda match: {"\\": "\\", "n": "\n"}[match.group(1)], text
    )


def _validate_histogram_family(
    family: str, samples: List[Tuple[str, Dict[str, str], float]]
) -> None:
    """Enforce cumulative-bucket/_sum/_count invariants for one family.

    Series are grouped by their non-``le`` label sets first: a family may
    carry one histogram per label set (e.g. one per ``replica="..."`` in
    the hub's fleet exposition), and each group must independently satisfy
    the cumulative-bucket conventions.
    """
    groups: Dict[Tuple[Tuple[str, str], ...], Dict[str, List]] = {}

    def _group(labels: Dict[str, str]) -> Dict[str, List]:
        key = tuple(sorted(
            (k, v) for k, v in labels.items() if k != "le"
        ))
        return groups.setdefault(key, {"buckets": [], "counts": [], "sums": []})

    for name, labels, value in samples:
        if name == family + "_bucket":
            _group(labels)["buckets"].append((labels, value))
        elif name == family + "_count":
            _group(labels)["counts"].append(value)
        elif name == family + "_sum":
            _group(labels)["sums"].append(value)
    if not groups:
        raise ValueError(f"histogram {family!r} has no series")
    for key, group in groups.items():
        where = f"histogram {family!r}" + (f" {dict(key)}" if key else "")
        buckets, counts, sums = group["buckets"], group["counts"], group["sums"]
        if not buckets or len(counts) != 1 or len(sums) != 1:
            raise ValueError(
                f"{where} must have _bucket series and exactly one _sum "
                "and one _count"
            )
        if any("le" not in labels for labels, _ in buckets):
            raise ValueError(f"{where} has a bucket without le=")
        if buckets[-1][0].get("le") != "+Inf":
            raise ValueError(f"{where} must end with le=\"+Inf\"")
        values = [v for _, v in buckets]
        if any(b > a for b, a in zip(values, values[1:])):
            raise ValueError(f"{where} buckets are not cumulative")
        if values[-1] != counts[0]:
            raise ValueError(
                f"{where}: +Inf bucket {values[-1]} != _count {counts[0]}"
            )


__all__ = [
    "METRIC_HELP",
    "help_for",
    "parse_prometheus_text",
    "render_prometheus",
    "sanitize_metric_name",
]
