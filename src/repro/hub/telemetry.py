"""The hub's telemetry pipeline: scrape → store → evaluate → alert.

One :class:`TelemetryPipeline` owns a background thread that, every
``interval_s``:

1. **scrapes** every fleet replica's strict-parsed ``/metrics`` (its own
   :class:`~repro.hub.aggregate.FleetAggregator` — pooled keep-alive
   connections, parallel sweep);
2. **appends** one sample per target to the
   :class:`~repro.obs.timeseries.MetricsStore`: each replica under
   ``replica:<host:port>`` (always carrying an explicit ``up`` 0/1
   series, so a dead replica is a *recorded fact*, not a gap), a
   ``fleet`` target summing the live replicas' series, a ``hub`` target
   from the hub's own sampler (scheduler queue depth), and a
   ``run:<run-id>`` target from the latest ``search_health`` journal
   event of each running run (hypervolume, iteration, front size,
   screening escalations);
3. **evaluates** the SLO rules (:class:`~repro.obs.alerts.AlertManager`)
   against the store and **journals** every firing/resolved transition
   as a typed ``alert`` event in an :class:`~repro.tracking.EventJournal`
   next to the store — the byte-offset stream behind the hub's
   ``GET /alerts/events`` SSE endpoint;
4. periodically **compacts** the store per its retention policy.

``stop()`` is leak-free by construction: it joins the loop thread,
closes the aggregator's connection pools, the store's descriptors and
the alert journal — the shutdown-leak test in ``tests/hub`` holds it to
that.
"""

from __future__ import annotations

import pathlib
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import TrackingError
from repro.hub.aggregate import FleetAggregator
from repro.obs.alerts import AlertManager, Rule, builtin_rules
from repro.obs.timeseries import MetricsStore, flatten_families
from repro.tracking.journal import EventJournal, read_tail_events
from repro.utils.metrics import MetricsRegistry

__all__ = ["TelemetryPipeline", "replica_target"]

#: series summed into the ``fleet`` target are everything the replicas
#: report — the registry holds only counters and histogram components,
#: both of which sum meaningfully across replicas.


def replica_target(name: str) -> str:
    """Store target name for one replica (``host:port`` → ``replica:...``)."""
    return f"replica:{name}"


class TelemetryPipeline:
    """Hub-side scrape loop + metrics journal + SLO alerting.

    Parameters
    ----------
    replica_urls:
        Fleet replicas to scrape (may be empty: the pipeline still
        samples the hub and running runs).
    store:
        The sample store; a path creates a disk-backed
        :class:`MetricsStore`, ``None`` an in-memory one (``fleet top``).
    rules:
        SLO rules; defaults to :func:`~repro.obs.alerts.builtin_rules`
        scaled to ``interval_s``.
    hub_sampler:
        Zero-arg callable returning the hub's own gauge sample
        (``{"hub_queue_depth": ...}``) or ``None`` to skip the tick.
    run_source:
        Zero-arg callable yielding ``(run_id, journal_path)`` for runs
        whose ``search_health`` should be sampled (the hub wires the
        scheduler's running run here).
    """

    def __init__(
        self,
        replica_urls: Optional[Sequence[str]] = None,
        store: Optional[Union[MetricsStore, str, pathlib.Path]] = None,
        rules: Optional[Sequence[Rule]] = None,
        interval_s: float = 2.0,
        scrape_timeout_s: float = 5.0,
        metrics: Optional[MetricsRegistry] = None,
        hub_sampler: Optional[Callable[[], Optional[Dict[str, float]]]] = None,
        run_source: Optional[
            Callable[[], Iterable[Tuple[str, pathlib.Path]]]
        ] = None,
        history_limit: int = 256,
        compact_every_ticks: int = 0,
        retention_s: float = 7 * 86400.0,
    ):
        if interval_s <= 0.0:
            raise TrackingError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = interval_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.store = (
            store
            if isinstance(store, MetricsStore)
            else MetricsStore(store)
        )
        self.aggregator = (
            FleetAggregator(
                list(replica_urls),
                timeout_s=scrape_timeout_s,
                metrics=self.metrics,
            )
            if replica_urls
            else None
        )
        self.hub_sampler = hub_sampler
        self.run_source = run_source
        self.compact_every_ticks = compact_every_ticks
        self.retention_s = retention_s
        self.rules = (
            list(rules) if rules is not None else builtin_rules(interval_s)
        )
        self.alerts = AlertManager(
            self.rules,
            on_transition=self._record_transition,
            history_limit=history_limit,
        )
        self._alert_journal: Optional[EventJournal] = None
        self._ticks = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- journal
    @property
    def alerts_journal_path(self) -> Optional[pathlib.Path]:
        if self.store.root is None:
            return None
        # ".journal", not ".jsonl": the store discovers targets by
        # globbing "*.jsonl" in its root, and the alert stream is not a
        # sample target
        return self.store.root / "alerts.journal"

    def _journal(self) -> Optional[EventJournal]:
        path = self.alerts_journal_path
        if path is None:
            return None
        if self._alert_journal is None:
            if path.exists():
                self._alert_journal = EventJournal.open_resume(path)
            else:
                self._alert_journal = EventJournal(path)
        return self._alert_journal

    def _record_transition(self, event: Dict) -> None:
        kind = event.get("state")
        if kind == "firing":
            self.metrics.counter("hub_alerts_fired_total").inc()
        elif kind == "resolved":
            self.metrics.counter("hub_alerts_resolved_total").inc()
        journal = self._journal()
        if journal is not None:
            journal.append("alert", event)

    # ------------------------------------------------------------------- tick
    def tick(self, now: Optional[float] = None) -> List[Dict]:
        """One scrape+append+evaluate pass; returns alert transitions."""
        now = time.time() if now is None else now
        with self._lock:
            with self.metrics.histogram("hub_telemetry_tick_seconds").time():
                self.metrics.counter("hub_telemetry_ticks_total").inc()
                self._sample_fleet(now)
                self._sample_hub(now)
                self._sample_runs(now)
                transitions = self.alerts.evaluate(self.store, now=now)
            self._ticks += 1
            if (
                self.compact_every_ticks
                and self._ticks % self.compact_every_ticks == 0
            ):
                for target in self.store.targets():
                    self.store.compact(
                        target, now, retention_s=self.retention_s
                    )
            return transitions

    def _append(self, target: str, now: float, series: Dict[str, float]) -> None:
        self.store.append(target, now, series)
        self.metrics.counter("hub_telemetry_samples_total").inc()

    def _sample_fleet(self, now: float) -> None:
        if self.aggregator is None:
            return
        scrapes = self.aggregator.scrape()
        fleet: Dict[str, float] = {}
        up = 0
        for scrape in scrapes:
            series: Dict[str, float] = {"up": 1.0 if scrape.ok else 0.0}
            if scrape.ok:
                up += 1
                flat = flatten_families(scrape.families)
                series.update(flat)
                for key, value in flat.items():
                    fleet[key] = fleet.get(key, 0.0) + value
            series["scrape_seconds"] = scrape.elapsed_s
            self._append(replica_target(scrape.name), now, series)
        if scrapes:
            fleet["replicas_up"] = float(up)
            fleet["replicas_total"] = float(len(scrapes))
            self._append("fleet", now, fleet)

    def _sample_hub(self, now: float) -> None:
        if self.hub_sampler is None:
            return
        sample = self.hub_sampler()
        if sample:
            self._append(
                "hub", now, {str(k): float(v) for k, v in sample.items()}
            )

    def _sample_runs(self, now: float) -> None:
        if self.run_source is None:
            return
        for run_id, journal_path in self.run_source():
            journal_path = pathlib.Path(journal_path)
            if not journal_path.exists():
                continue
            try:
                scan = read_tail_events(
                    journal_path, 1, event_type="search_health"
                )
            except TrackingError:
                continue
            if not scan.events:
                continue
            health = scan.events[-1]
            series = {
                "search_iteration": float(health.get("iteration", 0)),
                "search_hypervolume": float(health.get("hypervolume", 0.0)),
                "search_pareto_size": float(health.get("pareto_size", 0)),
                "search_evals": float(health.get("engine_queries", 0)),
            }
            screening = health.get("screening") or {}
            if screening:
                series["search_screen_escalated"] = float(
                    screening.get("escalated", 0)
                )
                series["search_screen_forwarded"] = float(
                    screening.get("forwarded", 0)
                )
            self._append(f"run:{run_id}", now, series)

    # -------------------------------------------------------------- lifecycle
    def start(self) -> "TelemetryPipeline":
        if self._thread is not None:
            raise TrackingError("telemetry pipeline already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="telemetry-scrape", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.is_set():
            started = time.monotonic()
            try:
                self.tick()
            except Exception:
                # a failed sweep must not kill the loop; the failure is
                # visible through hub_fleet_scrape_errors_total
                self.metrics.counter("hub_telemetry_tick_errors_total").inc()
            elapsed = time.monotonic() - started
            self._stop.wait(max(0.0, self.interval_s - elapsed))

    def stop(self) -> None:
        """Stop the loop and release every descriptor and socket."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self.aggregator is not None:
            self.aggregator.close()
        if self._alert_journal is not None:
            self._alert_journal.close()
            self._alert_journal = None
        self.store.close()

    def __enter__(self) -> "TelemetryPipeline":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ---------------------------------------------------------------- surface
    def status(self) -> Dict:
        """The ``GET /alerts`` payload: active + history + rules."""
        return {
            "active": self.alerts.active(),
            "history": list(self.alerts.history),
            "rules": self.alerts.rules_dict(),
            "interval_s": self.interval_s,
            "targets": self.store.targets(),
            "ticks": self._ticks,
        }
