"""PPA result types shared by every estimation engine.

Kept dependency-free (no hardware or mapping imports) so both the cost
models and the mapping-search layer can import them without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class LayerPPA:
    """Latency/energy result for one operator instance."""

    latency_s: float
    energy_j: float
    feasible: bool = True
    compute_cycles: float = 0.0
    noc_cycles: float = 0.0
    dram_cycles: float = 0.0
    dram_bytes: float = 0.0
    infeasible_reason: str = ""


@dataclass(frozen=True)
class NetworkPPA:
    """Aggregated PPA for a network under a full per-layer mapping."""

    latency_s: float
    energy_j: float
    power_w: float
    area_mm2: float
    feasible: bool
    layer_results: Dict[str, LayerPPA] = field(default_factory=dict)

    @property
    def edp(self) -> float:
        """Energy-delay product."""
        return self.energy_j * self.latency_s
