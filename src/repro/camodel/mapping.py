"""Software mapping representation for the Ascend-like platform.

The Ascend-like SW mapping tool (Section 4.1) performs a *depth-first
buffer fusion* search: besides tiling each operator for the cube pipeline,
it decides which adjacent operators keep their intermediate tile resident
in L1 (skipping the DDR round-trip).  An :class:`AscendMapping` therefore
carries tile sizes plus two fusion flags:

* ``fuse_input``  — the layer's activations are already in L1 (produced by
  the previous fused layer); the DDR load of the A operand is elided,
* ``fuse_output`` — the layer's output tile stays in L1 for the next layer;
  the DDR store is elided, at the cost of extra L1 residency.

The per-layer space (:class:`AscendMappingSpace`) mirrors the duck-typed
interface of :class:`~repro.mapping.gemm_mapping.GemmMappingSpace` so the
generic anytime-search machinery applies unchanged.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace
from typing import Tuple

from repro.errors import MappingError
from repro.utils.intmath import divisors, nearest_divisor
from repro.utils.rng import SeedLike, as_generator
from repro.workloads.layers import GemmShape


@dataclass(frozen=True)
class AscendMapping:
    """One point in the Ascend-like per-operator mapping space."""

    tile_m: int
    tile_n: int
    tile_k: int
    fuse_input: bool = False
    fuse_output: bool = False

    def __post_init__(self) -> None:
        if min(self.tile_m, self.tile_n, self.tile_k) < 1:
            raise MappingError(
                f"tile sizes must be >= 1, got "
                f"{(self.tile_m, self.tile_n, self.tile_k)}"
            )

    def tiles(self) -> Tuple[int, int, int]:
        return (self.tile_m, self.tile_n, self.tile_k)

    def with_tiles(self, tile_m: int, tile_n: int, tile_k: int) -> "AscendMapping":
        return replace(self, tile_m=tile_m, tile_n=tile_n, tile_k=tile_k)

    def key(self) -> Tuple:
        return dataclasses.astuple(self)


class AscendMappingSpace:
    """Mapping space for one GEMM-shaped operator on the Ascend-like core."""

    def __init__(self, shape: GemmShape, max_tile: int = 8192):
        self.shape = shape
        self.tile_m_choices = tuple(d for d in divisors(shape.m) if d <= max_tile)
        self.tile_n_choices = tuple(d for d in divisors(shape.n) if d <= max_tile)
        self.tile_k_choices = tuple(d for d in divisors(shape.k) if d <= max_tile)
        if not (self.tile_m_choices and self.tile_n_choices and self.tile_k_choices):
            raise MappingError(f"empty tile grid for shape {shape}")

    @property
    def size(self) -> int:
        return (
            len(self.tile_m_choices)
            * len(self.tile_n_choices)
            * len(self.tile_k_choices)
            * 4  # fusion flag combinations
        )

    def sample(self, seed: SeedLike = None) -> AscendMapping:
        rng = as_generator(seed)
        return AscendMapping(
            tile_m=int(self.tile_m_choices[rng.integers(0, len(self.tile_m_choices))]),
            tile_n=int(self.tile_n_choices[rng.integers(0, len(self.tile_n_choices))]),
            tile_k=int(self.tile_k_choices[rng.integers(0, len(self.tile_k_choices))]),
            fuse_input=bool(rng.random() < 0.3),
            fuse_output=bool(rng.random() < 0.3),
        )

    def seeded_mapping_for(self, hw) -> AscendMapping:
        """Tiles snapped near the cube dimensions (x4 in m/n, x8 in k)."""
        return AscendMapping(
            tile_m=nearest_divisor(
                self.shape.m, min(self.shape.m, 4 * hw.cube_m)
            ),
            tile_n=nearest_divisor(
                self.shape.n, min(self.shape.n, 4 * hw.cube_n)
            ),
            tile_k=nearest_divisor(
                self.shape.k, min(self.shape.k, 8 * hw.cube_k)
            ),
        )

    def mutate(self, mapping: AscendMapping, seed: SeedLike = None) -> AscendMapping:
        rng = as_generator(seed)
        move = int(rng.integers(0, 5))
        if move in (0, 1, 2):
            grids = {
                0: ("tile_m", self.tile_m_choices),
                1: ("tile_n", self.tile_n_choices),
                2: ("tile_k", self.tile_k_choices),
            }
            field_name, grid = grids[move]
            current = getattr(mapping, field_name)
            index = grid.index(current) if current in grid else 0
            offset = 0
            while offset == 0:
                offset = int(rng.integers(-2, 3))
            new_index = max(0, min(len(grid) - 1, index + offset))
            return replace(mapping, **{field_name: int(grid[new_index])})
        if move == 3:
            return replace(mapping, fuse_input=not mapping.fuse_input)
        return replace(mapping, fuse_output=not mapping.fuse_output)

    def crossover(
        self, parent_a: AscendMapping, parent_b: AscendMapping, seed: SeedLike = None
    ) -> AscendMapping:
        rng = as_generator(seed)

        def pick(field_name: str):
            source = parent_a if rng.random() < 0.5 else parent_b
            return getattr(source, field_name)

        return AscendMapping(
            tile_m=pick("tile_m"),
            tile_n=pick("tile_n"),
            tile_k=pick("tile_k"),
            fuse_input=pick("fuse_input"),
            fuse_output=pick("fuse_output"),
        )
