#!/usr/bin/env python
"""Pipeline bottleneck analysis on the Ascend-like cycle-accurate model.

Shows the observability tooling around the CA simulator: for one FSRCNN
layer, trace how the six-stage tile pipeline behaves under three mappings
(naive small tiles / capacity-aware tiles / fused chain) and read off
which stage limits each.

Run:  python examples/bottleneck_analysis.py
"""

from repro.camodel import explain_layer, simulate_layer
from repro.camodel.mapping import AscendMapping, AscendMappingSpace
from repro.hw import default_ascend_config
from repro.workloads import get_network


def main() -> None:
    network = get_network("fsrcnn_240x640")
    layer = network.layer("map")
    shape = layer.to_gemm()
    hw = default_ascend_config()
    print(f"Workload layer: {layer.name} of {network.name} "
          f"(GEMM {shape.m} x {shape.n} x {shape.k})")
    print(f"Hardware: {hw.short_name()}\n")

    space = AscendMappingSpace(shape)
    candidates = {
        "naive small tiles": AscendMapping(tile_m=4, tile_n=64, tile_k=4),
        "capacity-aware tiles": space.seeded_mapping_for(hw),
        "fused chain": AscendMapping(
            tile_m=space.seeded_mapping_for(hw).tile_m,
            tile_n=space.seeded_mapping_for(hw).tile_n,
            tile_k=space.seeded_mapping_for(hw).tile_k,
            fuse_input=True,
            fuse_output=True,
        ),
    }
    for label, mapping in candidates.items():
        result = simulate_layer(hw, mapping, shape)
        print(f"--- {label}: tiles {mapping.tiles()}, "
              f"fuse in/out {mapping.fuse_input}/{mapping.fuse_output}")
        if not result.feasible:
            print(f"    infeasible: {result.infeasible_reason}\n")
            continue
        print(f"    latency {result.latency_s * 1e3:.3f} ms")
        print("    " + explain_layer(hw, mapping, shape).replace("\n", "\n    "))
        print()


if __name__ == "__main__":
    main()
