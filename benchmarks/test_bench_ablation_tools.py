"""Ablation: UNICO's pluggable inner components.

Section 3.5 presents UNICO as an algorithm framework whose SW Mapping
Explorer (FlexTensor or GAMMA) and PPA Estimation Engine (MAESTRO-like or
Timeloop-like analytical model) are swappable.  Two sweeps:

* **SW tool**: UNICO with FlexTensor-like vs GAMMA-like search — both
  should land in the same hypervolume ballpark (the framework does not
  depend on which mature mapping tool drives the inner level).
* **PPA engine**: UNICO on the data-centric vs loop-centric analytical
  model — the *designs* found under one model should look good under the
  other (cross-model min-Euclidean regression bounded).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once, save_record
from repro.core import Unico, UnicoConfig
from repro.costmodel import MaestroEngine, TimeloopEngine
from repro.experiments import combined_reference, final_hypervolume
from repro.hw import edge_design_space, power_cap_for
from repro.utils.records import RunRecord
from repro.workloads import get_network

NETWORK = "xception"


def _run_unico(network, engine, tool: str, seed: int = 0):
    return Unico(
        edge_design_space(),
        network,
        engine,
        UnicoConfig(batch_size=8, max_iterations=3, max_budget=60, workers=8),
        tool=tool,
        power_cap_w=power_cap_for("edge"),
        seed=seed,
    ).optimize()


def _tool_sweep() -> RunRecord:
    network = get_network(NETWORK)
    record = RunRecord("ablation-tools")
    results = {
        tool: _run_unico(network, MaestroEngine(network), tool)
        for tool in ("flextensor", "gamma")
    }
    reference = combined_reference(list(results.values()))
    for tool, result in results.items():
        record.child(tool).update(
            {
                "hv": final_hypervolume(result, reference),
                "cost_h": result.total_time_h,
            }
        )
    return record


def _engine_sweep() -> RunRecord:
    network = get_network(NETWORK)
    record = RunRecord("ablation-engines")
    results = {
        "maestro": _run_unico(network, MaestroEngine(network), "flextensor"),
        "timeloop": _run_unico(network, TimeloopEngine(network), "flextensor"),
    }
    # cross-evaluate each engine's chosen design under the *other* model
    cross_engine = MaestroEngine(get_network(NETWORK))
    cross_engine.charge_clock = False
    for name, result in results.items():
        best = result.best_design()
        record.child(name).put("found_design", str(best.hw))
        # strip the per-layer mapping through the cross engine
        cross_ppa = cross_engine.aggregate(best.hw, best.mapping)
        record.child(name).put(
            "cross_latency_ms",
            cross_ppa.latency_s * 1e3 if cross_ppa.feasible else float("inf"),
        )
    return record


@pytest.mark.benchmark(group="ablation")
def test_ablation_sw_tool(benchmark, results_dir):
    record = run_once(benchmark, _tool_sweep)
    save_record(results_dir, "ablation_tools", record)
    print(f"\n=== Ablation: SW mapping tool inside UNICO ({NETWORK}) ===")
    hvs = {}
    for tool in ("flextensor", "gamma"):
        child = record.children[tool]
        hvs[tool] = child.get("hv")
        print(f"{tool:<12s} hv {child.get('hv'):.4f}  cost {child.get('cost_h'):.2f} h")
    ratio = min(hvs.values()) / max(hvs.values())
    # framework is tool-agnostic: both tools land within 25%
    assert ratio > 0.75


@pytest.mark.benchmark(group="ablation")
def test_ablation_ppa_engine(benchmark, results_dir):
    record = run_once(benchmark, _engine_sweep)
    save_record(results_dir, "ablation_engines", record)
    print(f"\n=== Ablation: analytical PPA engine inside UNICO ({NETWORK}) ===")
    latencies = {}
    for name in ("maestro", "timeloop"):
        child = record.children[name]
        latencies[name] = child.get("cross_latency_ms")
        print(
            f"{name:<10s} design {child.get('found_design')}\n"
            f"{'':<10s} latency under the data-centric model: "
            f"{child.get('cross_latency_ms'):.2f} ms"
        )
    # the design found under the loop-centric model is a sane design under
    # the data-centric model too (bounded cross-model regression)
    assert np.isfinite(latencies["timeloop"])
    assert latencies["timeloop"] <= 5.0 * latencies["maestro"]
