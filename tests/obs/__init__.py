"""Tests for the repro.obs tracing/profiling/exposition subsystem."""
