"""Tests for the simulated wall clock."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.clock import SimulatedClock


class TestAdvance:
    def test_accumulates(self):
        clock = SimulatedClock()
        clock.advance(10.0)
        clock.advance(5.0)
        assert clock.now_s == 15.0

    def test_hours(self):
        clock = SimulatedClock()
        clock.advance(7200.0)
        assert clock.now_h == pytest.approx(2.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_labels_tracked(self):
        clock = SimulatedClock()
        clock.advance(3.0, label="a")
        clock.advance(4.0, label="a")
        clock.advance(1.0, label="b")
        assert clock.total("a") == 7.0
        assert clock.total("b") == 1.0
        assert clock.total("missing") == 0.0

    def test_event_log(self):
        clock = SimulatedClock()
        clock.advance(1.0, label="x")
        assert len(clock.events) == 1
        assert clock.events[0].at_s == 1.0


class TestAdvanceParallel:
    def test_single_worker_is_sum(self):
        clock = SimulatedClock(workers=1)
        clock.advance_parallel([3.0, 2.0, 1.0])
        assert clock.now_s == 6.0

    def test_enough_workers_is_max(self):
        clock = SimulatedClock(workers=3)
        clock.advance_parallel([3.0, 2.0, 1.0])
        assert clock.now_s == 3.0

    def test_two_workers_lpt(self):
        clock = SimulatedClock(workers=2)
        clock.advance_parallel([3.0, 3.0, 2.0, 2.0])
        assert clock.now_s == 5.0

    def test_empty_batch_noop(self):
        clock = SimulatedClock(workers=2)
        clock.advance_parallel([])
        assert clock.now_s == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock(workers=2).advance_parallel([1.0, -1.0])

    @given(
        st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20),
        st.integers(1, 8),
    )
    @settings(max_examples=60)
    def test_makespan_bounds(self, durations, workers):
        """Parallel makespan is between max(durations) and sum(durations)."""
        clock = SimulatedClock(workers=workers)
        clock.advance_parallel(durations)
        assert clock.now_s >= max(durations) - 1e-9
        assert clock.now_s <= sum(durations) + 1e-9


class TestLifecycle:
    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            SimulatedClock(workers=0)

    def test_reset(self):
        clock = SimulatedClock()
        clock.advance(5.0, label="x")
        clock.reset()
        assert clock.now_s == 0.0
        assert len(clock.events) == 0
        assert clock.total("x") == 0.0
