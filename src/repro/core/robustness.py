"""The hardware robustness (sensitivity) metric ``R`` of Section 3.4.

After SW mapping search finishes for a hardware configuration, two points
in (latency, power) space are compared:

* the **optimal** mapping — the final converged incumbent, and
* a **sub-optimal** mapping — the evaluated candidate whose objective sits
  at the ``(1 - alpha)`` *right-tail* percentile of the whole loss history
  (alpha = 0.05): 95% of the evaluated mappings are worse, so it is a
  promising-but-not-best choice, per Fig. 5(a).

The metric is the geometric formula of Eq. (2):

    R = Delta * (1 + F(theta)),      F(theta) = (6/pi^2) theta^2
                                               - (5/pi) theta + 1,

where ``Delta`` is the 2-norm distance between the two points (computed on
*relative* latency/power deltas so R is scale-free across hardware), and
``theta in [0, pi]`` encodes how the improvement sub-optimal -> optimal
splits between power and latency:

* ``theta < pi/2``  — power decreased along with latency (favorable),
* ``theta = pi/2``  — power unchanged (F = 0, so R = Delta),
* ``theta > pi/2``  — power *increased* while latency improved (least
  favorable; F rises to 2, so R approaches 3 Delta).

``R = 0`` (ideal robustness) iff the two mappings have identical PPA —
the hardware's quality barely depends on which good mapping the search
happened to return.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.mapping.base import MappingSearchPoint

DEFAULT_ALPHA = 0.05


def f_theta(theta: float) -> float:
    """The asymmetric penalty polynomial of Fig. 5(c)."""
    if not 0.0 <= theta <= math.pi + 1e-9:
        raise ValueError(f"theta must be in [0, pi], got {theta}")
    return (6.0 / math.pi**2) * theta**2 - (5.0 / math.pi) * theta + 1.0


@dataclass(frozen=True)
class RobustnessResult:
    """R plus its geometric ingredients (for analysis and tests)."""

    r_value: float
    delta: float
    theta: float
    optimal_latency_s: float
    optimal_power_w: float
    suboptimal_latency_s: float
    suboptimal_power_w: float

    @property
    def finite(self) -> bool:
        return bool(np.isfinite(self.r_value))


_INFINITE_RESULT = RobustnessResult(
    r_value=float("inf"),
    delta=float("inf"),
    theta=math.pi,
    optimal_latency_s=float("inf"),
    optimal_power_w=float("inf"),
    suboptimal_latency_s=float("inf"),
    suboptimal_power_w=float("inf"),
)


def _select_suboptimal(
    history: Sequence[MappingSearchPoint], alpha: float
) -> Optional[MappingSearchPoint]:
    """The point at the alpha-quantile of the finite loss history.

    The loss distribution's *right tail* holds the bad mappings; the value
    below which only an ``alpha`` fraction of losses fall is the
    ``(1 - alpha)`` right-tail percentile of the paper.
    """
    finite_points = [
        point
        for point in history
        if np.isfinite(point.trial_objective)
        and np.isfinite(point.trial_latency_s)
        and np.isfinite(point.trial_power_w)
    ]
    if not finite_points:
        return None
    losses = np.array([point.trial_objective for point in finite_points])
    target = float(np.quantile(losses, alpha))
    best = float(losses.min())
    # prefer the candidate closest to the quantile that is not the best itself
    candidates = sorted(
        finite_points, key=lambda point: abs(point.trial_objective - target)
    )
    for point in candidates:
        if point.trial_objective > best:
            return point
    return candidates[0]


def robustness_metric(
    history: Sequence[MappingSearchPoint],
    alpha: float = DEFAULT_ALPHA,
) -> RobustnessResult:
    """Compute ``R`` from a completed SW-mapping search trace.

    Returns an infinite result when the search never reached a feasible
    network mapping (maximum sensitivity: the hardware cannot be trusted).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if not history:
        return _INFINITE_RESULT
    final = history[-1]
    if not (
        np.isfinite(final.best_latency_s) and np.isfinite(final.best_power_w)
    ):
        return _INFINITE_RESULT
    suboptimal = _select_suboptimal(history, alpha)
    if suboptimal is None:
        return _INFINITE_RESULT

    opt_lat, opt_pow = final.best_latency_s, final.best_power_w
    sub_lat, sub_pow = suboptimal.trial_latency_s, suboptimal.trial_power_w

    # relative deltas (optimal as the reference scale) keep R dimensionless
    rel_dlat = (sub_lat - opt_lat) / max(opt_lat, 1e-30)
    rel_dpow = (sub_pow - opt_pow) / max(opt_pow, 1e-30)
    delta = float(math.hypot(rel_dlat, rel_dpow))
    if delta <= 1e-12:
        return RobustnessResult(
            r_value=0.0,
            delta=0.0,
            theta=math.pi / 2.0,
            optimal_latency_s=opt_lat,
            optimal_power_w=opt_pow,
            suboptimal_latency_s=sub_lat,
            suboptimal_power_w=sub_pow,
        )

    # theta: direction of the improvement sub-optimal -> optimal.
    #   power decrease  (rel_dpow > 0, i.e. suboptimal was hungrier)  -> theta < pi/2
    #   power unchanged                                               -> theta = pi/2
    #   power increase  (optimal draws more power than sub-optimal)   -> theta > pi/2
    latency_gain = abs(rel_dlat)
    power_gain = rel_dpow  # positive when optimal uses LESS power
    theta = math.atan2(latency_gain, power_gain)
    theta = min(max(theta, 0.0), math.pi)

    r_value = delta * (1.0 + f_theta(theta))
    return RobustnessResult(
        r_value=r_value,
        delta=delta,
        theta=theta,
        optimal_latency_s=opt_lat,
        optimal_power_w=opt_pow,
        suboptimal_latency_s=sub_lat,
        suboptimal_power_w=sub_pow,
    )
