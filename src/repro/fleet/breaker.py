"""A thread-safe circuit breaker with strict half-open probing.

Extracted from :class:`~repro.costmodel.service.RemotePPAEngine` so the
fleet router can keep one breaker *per shard*: a dead replica fails fast
without poisoning requests routed to its healthy peers.

States (classic three-state breaker, consecutive-failure flavored):

* **closed** — requests flow; ``record(False)`` counts consecutive
  failures, ``record(True)`` zeroes them.
* **open** — after ``threshold`` consecutive failures, ``check()`` raises
  :class:`BreakerOpenError` for ``cooldown_s`` of real time.
* **half-open** — once the cooldown expires, exactly **one** caller is
  admitted as a probe; concurrent callers keep failing fast until that
  probe reports back.  A successful probe closes the breaker, a failed
  one re-opens it for a fresh cooldown.

The single-probe admission is the fix for the pre-fleet behavior, which
"let one probe through" by decrementing the failure count — under
concurrent threads every caller arriving after the cooldown saw the
decremented count and rushed the recovering service at once.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

from repro.errors import EvaluationError, TransportError

__all__ = ["BreakerOpenError", "CircuitBreaker"]


class BreakerOpenError(TransportError):
    """Raised by :meth:`CircuitBreaker.check` while the circuit is open."""


class CircuitBreaker:
    """Consecutive-failure circuit breaker guarding one target."""

    def __init__(
        self,
        target: str,
        threshold: int,
        cooldown_s: float,
        now: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise EvaluationError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        self.target = target
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._now = now
        self._lock = threading.Lock()
        self._failures = 0
        self._open_until = 0.0  # monotonic deadline of the current cooldown
        self._probe_in_flight = False
        self.num_rejections = 0
        self.num_opens = 0

    # -- state probes -----------------------------------------------------------
    @property
    def failures(self) -> int:
        return self._failures

    def is_open(self) -> bool:
        """True while requests would fail fast (open, cooldown running).

        A peek for routing decisions: the shard router skips shards whose
        breaker is open so keys remap (rendezvous order) instead of
        failing.  Half-open (cooldown expired) reads as *not* open — the
        shard is eligible again and the next request becomes the probe.
        """
        with self._lock:
            return (
                self._failures >= self.threshold
                and self._open_until - self._now() > 0
            )

    # -- request path -----------------------------------------------------------
    def check(self) -> None:
        """Gate one request; raises :class:`BreakerOpenError` when open.

        When the cooldown has expired, the first caller is admitted as the
        half-open probe and must call :meth:`record`; until it does,
        concurrent callers are still rejected.
        """
        with self._lock:
            if self._failures < self.threshold:
                return
            remaining = self._open_until - self._now()
            if remaining > 0:
                self.num_rejections += 1
                raise BreakerOpenError(
                    f"circuit breaker open ({remaining:.2f}s left) after "
                    f"{self._failures} consecutive failures to {self.target}"
                )
            if self._probe_in_flight:
                self.num_rejections += 1
                raise BreakerOpenError(
                    f"circuit breaker open (half-open probe in flight) after "
                    f"{self._failures} consecutive failures to {self.target}"
                )
            self._probe_in_flight = True

    def record(self, success: bool) -> bool:
        """Report a request outcome; returns True when this opened the circuit.

        Safe to call from requests that started before the circuit opened
        (their success closes it, matching the pre-fleet behavior).
        """
        with self._lock:
            self._probe_in_flight = False
            if success:
                self._failures = 0
                return False
            # cap at threshold so the error message reports the consecutive
            # run that tripped the breaker, not cooldown-long pile-ups
            self._failures = min(self._failures + 1, self.threshold)
            if self._failures >= self.threshold:
                self._open_until = self._now() + self.cooldown_s
                self.num_opens += 1
                return True
            return False

    def reset(self) -> None:
        """Force-close (used when a replica is replaced wholesale)."""
        with self._lock:
            self._failures = 0
            self._open_until = 0.0
            self._probe_in_flight = False

    def stats(self) -> Dict:
        with self._lock:
            return {
                "target": self.target,
                "failures": self._failures,
                "open": (
                    self._failures >= self.threshold
                    and self._open_until - self._now() > 0
                ),
                "num_rejections": self.num_rejections,
                "num_opens": self.num_opens,
            }

    # -- pickling (process-backend rounds ship engine copies) -------------------
    def __getstate__(self) -> Dict:
        state = self.__dict__.copy()
        del state["_lock"]
        # a child process starts with a fresh view of the service's health
        state["_probe_in_flight"] = False
        state["_now"] = None
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        if self._now is None:
            self._now = time.monotonic
