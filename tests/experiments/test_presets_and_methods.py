"""Consistency checks across presets and the method registry."""

import pytest

from repro.experiments import METHODS, get_preset
from repro.experiments.harness import _UNICO_VARIANTS


class TestPresetScaling:
    def test_budgets_grow_monotonically(self):
        smoke = get_preset("smoke")
        bench = get_preset("bench")
        paper = get_preset("paper")
        for field in (
            "unico_batch",
            "unico_iterations",
            "unico_budget",
            "hasco_candidates",
            "hasco_budget",
            "nsga_population",
            "nsga_budget",
            "mobohb_budget",
            "ascend_budget",
            "validation_budget",
        ):
            assert (
                getattr(smoke, field)
                <= getattr(bench, field)
                <= getattr(paper, field)
            ), field

    def test_budget_parity_between_methods(self):
        """HASCO's full budget equals UNICO's b_max at every preset — the
        comparison is budget-matched, as in the paper."""
        for name in ("smoke", "bench", "paper"):
            preset = get_preset(name)
            assert preset.hasco_budget == preset.unico_budget
            assert preset.nsga_budget == preset.unico_budget

    def test_mobohb_budget_is_power_of_eta(self):
        """Hyperband budgets are cleanest when max_budget = eta^k."""
        for name in ("smoke", "bench", "paper"):
            preset = get_preset(name)
            value = preset.mobohb_budget
            while value % 3 == 0:
                value //= 3
            assert value == 1


class TestMethodRegistry:
    def test_variants_subset_of_methods(self):
        assert set(_UNICO_VARIANTS) <= set(METHODS)

    def test_fig10_variants_present(self):
        assert {"sh_champion", "msh_champion", "unico"} <= set(_UNICO_VARIANTS)

    def test_variant_flags_are_distinct(self):
        flags = [
            (v["use_msh"], v["surrogate_update"], v["include_robustness"])
            for v in _UNICO_VARIANTS.values()
        ]
        assert len(set(flags)) == len(flags)

    def test_full_unico_is_msh_highfidelity_robust(self):
        variant = _UNICO_VARIANTS["unico"]
        assert variant["use_msh"]
        assert variant["surrogate_update"] == "high_fidelity"
        assert variant["include_robustness"]
