"""Tests for the high-fidelity UUL update rule and the champion rule."""

import numpy as np
import pytest

from repro.core.highfidelity import ChampionSelector, HighFidelitySelector
from repro.optim.scalarize import parego_scalar, uniform_weights


@pytest.fixture()
def selector():
    return HighFidelitySelector(num_objectives=4)


def _batch(rows):
    return np.array(rows, dtype=float)


class TestFidelityScalars:
    def test_matches_eq1(self, selector):
        y = [0.1, 0.2, 0.3, 0.4]
        scalar = selector.fidelity_scalars(_batch([y]))[0]
        assert scalar == pytest.approx(parego_scalar(y, uniform_weights(4)))

    def test_custom_weights(self):
        selector = HighFidelitySelector(
            num_objectives=2, weights=np.array([0.8, 0.2])
        )
        scalar = selector.fidelity_scalars(_batch([[1.0, 1.0]]))[0]
        assert scalar == pytest.approx(0.8 + 0.2 * 1.0)

    def test_bad_weights_shape(self):
        with pytest.raises(ValueError):
            HighFidelitySelector(num_objectives=3, weights=np.array([0.5, 0.5]))


class TestUULRule:
    def test_first_batch_admits_all_finite(self, selector):
        batch = _batch([[0.1] * 4, [0.5] * 4, [np.inf] * 4])
        selected, scalars = selector.select(batch)
        assert selected.tolist() == [True, True, False]
        assert np.isfinite(selector.uul)

    def test_uul_is_95th_percentile_of_distances(self, selector):
        batch = _batch([[v] * 4 for v in (0.1, 0.2, 0.3, 0.4)])
        _selected, scalars = selector.select(batch)
        distances = np.abs(scalars - scalars.min())
        assert selector.uul == pytest.approx(np.percentile(distances, 95))

    def test_second_batch_filtered_by_uul(self, selector):
        selector.select(_batch([[0.10] * 4, [0.12] * 4, [0.14] * 4]))
        uul = selector.uul
        # one candidate within UUL of the best, one far outside
        far = 0.10 + 10 * (uul + 0.1)
        selected, _ = selector.select(_batch([[0.11] * 4, [far] * 4]))
        assert selected.tolist() == [True, False]

    def test_best_scalar_tracks_minimum(self, selector):
        selector.select(_batch([[0.5] * 4]))
        selector.select(_batch([[0.2] * 4]))
        expected = parego_scalar([0.2] * 4, uniform_weights(4))
        assert selector.best_scalar == pytest.approx(expected)

    def test_never_starves_surrogate(self, selector):
        """Even a terrible batch admits its champion."""
        selector.select(_batch([[0.1] * 4, [0.11] * 4, [0.105] * 4]))
        selected, _ = selector.select(_batch([[50.0] * 4, [60.0] * 4]))
        assert selected.sum() == 1
        assert selected[0]  # the better of the two

    def test_all_infinite_batch_selects_nothing(self, selector):
        selector.select(_batch([[0.1] * 4]))
        selected, _ = selector.select(_batch([[np.inf] * 4, [np.inf] * 4]))
        assert selected.sum() == 0

    def test_uul_tightens_with_exploitation(self):
        """As batches concentrate near the best, UUL tends to shrink."""
        selector = HighFidelitySelector(num_objectives=4)
        rng = np.random.default_rng(0)
        selector.select(_batch([[v] * 4 for v in rng.uniform(0.1, 1.0, 10)]))
        wide_uul = selector.uul
        for _ in range(5):
            values = rng.uniform(0.1, 0.15, 10)
            selector.select(_batch([[v] * 4 for v in values]))
        assert selector.uul < wide_uul

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            HighFidelitySelector(num_objectives=4, percentile=0.0)


class TestChampionSelector:
    def test_selects_exactly_best(self):
        selector = ChampionSelector(num_objectives=3)
        selected, scalars = selector.select(
            _batch([[0.5] * 3, [0.1] * 3, [0.9] * 3])
        )
        assert selected.tolist() == [False, True, False]

    def test_all_infinite_selects_none(self):
        selector = ChampionSelector(num_objectives=3)
        selected, _ = selector.select(_batch([[np.inf] * 3]))
        assert selected.sum() == 0

    def test_uul_is_zero(self):
        assert ChampionSelector(num_objectives=3).uul == 0.0
