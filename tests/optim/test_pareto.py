"""Tests (incl. property-based) for Pareto utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.optim.pareto import (
    ObjectiveNormalizer,
    ParetoFront,
    crowding_distance,
    dominates,
    non_dominated_mask,
    non_dominated_sort,
    pareto_front,
)


class TestDominates:
    def test_strict(self):
        assert dominates([1, 1], [2, 2])

    def test_partial(self):
        assert dominates([1, 2], [1, 3])

    def test_equal_does_not_dominate(self):
        assert not dominates([1, 1], [1, 1])

    def test_incomparable(self):
        assert not dominates([1, 3], [3, 1])
        assert not dominates([3, 1], [1, 3])


class TestParetoFrontExtraction:
    def test_simple(self):
        points = np.array([[1, 2], [2, 1], [2, 2], [3, 3]])
        front = pareto_front(points)
        assert front.shape == (2, 2)

    def test_all_non_dominated(self):
        points = np.array([[1, 3], [2, 2], [3, 1]])
        assert pareto_front(points).shape == (3, 2)

    def test_empty(self):
        assert pareto_front(np.zeros((0, 3))).shape[0] == 0

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 25), st.just(3)),
            elements=st.floats(0, 100),
        )
    )
    @settings(max_examples=50)
    def test_front_members_mutually_incomparable(self, points):
        front = pareto_front(points)
        for i in range(front.shape[0]):
            for j in range(front.shape[0]):
                if i != j:
                    assert not dominates(front[i], front[j])

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 25), st.just(2)),
            elements=st.floats(0, 100),
        )
    )
    @settings(max_examples=50)
    def test_every_point_dominated_or_on_front(self, points):
        mask = non_dominated_mask(points)
        front = points[mask]
        for idx in np.flatnonzero(~mask):
            assert any(
                dominates(front_point, points[idx])
                or np.array_equal(front_point, points[idx])
                for front_point in front
            )


class TestNonDominatedSort:
    def test_fronts_partition_indices(self):
        points = np.array([[1, 1], [2, 2], [3, 3], [1, 3], [3, 1]])
        fronts = non_dominated_sort(points)
        all_indices = sorted(int(i) for front in fronts for i in front)
        assert all_indices == list(range(5))

    def test_first_front_matches_mask(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, (20, 3))
        fronts = non_dominated_sort(points)
        assert set(map(int, fronts[0])) == set(
            map(int, np.flatnonzero(non_dominated_mask(points)))
        )

    def test_later_fronts_dominated_by_earlier(self):
        points = np.array([[1, 1], [2, 2], [3, 3]])
        fronts = non_dominated_sort(points)
        assert len(fronts) == 3


class TestCrowdingDistance:
    def test_extremes_infinite(self):
        points = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        crowd = crowding_distance(points)
        assert np.isinf(crowd[0]) and np.isinf(crowd[-1])

    def test_two_points_infinite(self):
        assert np.all(np.isinf(crowding_distance(np.array([[1.0, 2.0], [2.0, 1.0]]))))

    def test_denser_region_smaller_distance(self):
        points = np.array([[0, 10], [1, 9], [1.1, 8.9], [5, 5], [10, 0]], dtype=float)
        crowd = crowding_distance(points)
        assert crowd[2] < crowd[3]


class TestParetoFrontArchive:
    def test_add_and_evict(self):
        front = ParetoFront(num_objectives=2)
        assert front.add("a", [2, 2])
        assert front.add("b", [1, 3])
        assert front.add("c", [1, 1])  # dominates both
        assert len(front) == 1
        assert front.items == ("c",)

    def test_dominated_insert_rejected(self):
        front = ParetoFront(num_objectives=2)
        front.add("a", [1, 1])
        assert not front.add("b", [2, 2])

    def test_duplicate_rejected(self):
        front = ParetoFront(num_objectives=2)
        front.add("a", [1, 1])
        assert not front.add("b", [1, 1])

    def test_infinite_rejected(self):
        front = ParetoFront(num_objectives=2)
        assert not front.add("a", [np.inf, 1])

    def test_wrong_shape(self):
        with pytest.raises(ValueError):
            ParetoFront(num_objectives=2).add("a", [1, 2, 3])

    def test_min_euclidean_normalized(self):
        front = ParetoFront(num_objectives=2)
        front.add("balanced", [2.0, 2.0])
        front.add("extreme", [1.0, 1000.0])
        item, point = front.min_euclidean()
        assert item == "balanced"
        assert point.tolist() == [2.0, 2.0]

    def test_min_euclidean_empty(self):
        assert ParetoFront(num_objectives=2).min_euclidean() is None

    @given(
        st.lists(
            st.tuples(st.floats(0.1, 100), st.floats(0.1, 100)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=40)
    def test_archive_matches_batch_front(self, raw_points):
        """Incremental archive equals batch Pareto extraction."""
        archive = ParetoFront(num_objectives=2)
        for index, point in enumerate(raw_points):
            archive.add(index, point)
        batch = pareto_front(np.array(raw_points))
        archive_set = {tuple(p) for p in archive.points}
        batch_set = {tuple(p) for p in batch}
        assert archive_set == batch_set


class TestObjectiveNormalizer:
    def test_transform_range(self):
        normalizer = ObjectiveNormalizer(2)
        normalizer.observe([0, 10])
        normalizer.observe([10, 20])
        assert normalizer.transform([5, 15]).tolist() == [0.5, 0.5]

    def test_infinite_maps_high(self):
        normalizer = ObjectiveNormalizer(2)
        normalizer.observe([0, 0])
        normalizer.observe([1, 1])
        assert np.all(normalizer.transform([np.inf, np.inf]) == 2.0)

    def test_infinite_observations_ignored(self):
        normalizer = ObjectiveNormalizer(1)
        normalizer.observe([np.inf])
        normalizer.observe([1.0])
        normalizer.observe([3.0])
        assert normalizer.transform([2.0])[0] == pytest.approx(0.5)

    def test_ready_flag(self):
        normalizer = ObjectiveNormalizer(2)
        assert not normalizer.ready
        normalizer.observe([1, 2])
        assert normalizer.ready

    def test_degenerate_range(self):
        normalizer = ObjectiveNormalizer(1)
        normalizer.observe([5.0])
        normalizer.observe([5.0])
        value = normalizer.transform([5.0])[0]
        assert 0.0 <= value <= 1.0
