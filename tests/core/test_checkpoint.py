"""Tests for UNICO checkpoint/resume."""

import numpy as np
import pytest

from repro.core import Unico, UnicoConfig
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.costmodel import MaestroEngine
from repro.errors import ConfigurationError


def _fresh(tiny_network, edge_space, max_iterations=4, include_robustness=True):
    engine = MaestroEngine(tiny_network)
    return Unico(
        edge_space,
        tiny_network,
        engine,
        UnicoConfig(
            batch_size=4,
            max_iterations=max_iterations,
            max_budget=16,
            include_robustness=include_robustness,
        ),
        power_cap_w=100.0,
        seed=21,
    )


class TestCheckpointRoundTrip:
    def test_resume_equals_uninterrupted(self, tiny_network, edge_space, tmp_path):
        """2 iterations + checkpoint + 2 resumed iterations evaluates the
        same batches as 4 uninterrupted iterations — identical Pareto
        front, timeline and iteration-record sequence (serial backend)."""
        path = tmp_path / "ckpt.json"
        straight = _fresh(tiny_network, edge_space, max_iterations=4)
        straight_result = straight.optimize()

        first = _fresh(tiny_network, edge_space, max_iterations=2)
        first.optimize()
        save_checkpoint(first, path)

        resumed = _fresh(tiny_network, edge_space, max_iterations=4)
        load_checkpoint(resumed, path)
        resumed_result = resumed.optimize()

        assert resumed_result.total_hw_evaluated == straight_result.total_hw_evaluated
        straight_points = sorted(map(tuple, straight_result.pareto.points.tolist()))
        resumed_points = sorted(map(tuple, resumed_result.pareto.points.tolist()))
        assert resumed_points == straight_points
        assert resumed_result.total_time_s == pytest.approx(
            straight_result.total_time_s, rel=1e-9
        )
        assert len(resumed_result.timeline) == len(straight_result.timeline)
        for ours, theirs in zip(resumed_result.timeline, straight_result.timeline):
            assert ours.time_s == pytest.approx(theirs.time_s)
            assert ours.feasible == theirs.feasible
            assert np.allclose(ours.ppa_vector, theirs.ppa_vector)
        assert resumed_result.extras["iteration_records"] == (
            straight_result.extras["iteration_records"]
        )

    def test_repeated_save_load_keeps_budget(
        self, tiny_network, edge_space, tmp_path
    ):
        """Loading must not erode ``config.max_iterations``: completed
        iterations are tracked on the optimizer instead."""
        path = tmp_path / "ckpt.json"
        original = _fresh(tiny_network, edge_space, max_iterations=2)
        original.optimize()
        save_checkpoint(original, path)

        current = _fresh(tiny_network, edge_space, max_iterations=4)
        for _ in range(3):  # repeated save/load cycles, no run in between
            load_checkpoint(current, path)
            assert current.config.max_iterations == 4
            assert current.completed_iterations == 2
            save_checkpoint(current, path)
            current = _fresh(tiny_network, edge_space, max_iterations=4)
        load_checkpoint(current, path)
        result = current.optimize()
        # the two remaining iterations actually ran
        assert len(result.extras["iteration_records"]) == 4
        assert [r.iteration for r in result.extras["iteration_records"]] == [
            0, 1, 2, 3,
        ]

    def test_training_set_restored(self, tiny_network, edge_space, tmp_path):
        path = tmp_path / "ckpt.json"
        original = _fresh(tiny_network, edge_space, max_iterations=2)
        original.optimize()
        save_checkpoint(original, path)
        restored = _fresh(tiny_network, edge_space, max_iterations=2)
        load_checkpoint(restored, path)
        assert len(restored.train_configs) == len(original.train_configs)
        keys_a = {edge_space.config_key(c) for c in original.train_configs}
        keys_b = {edge_space.config_key(c) for c in restored.train_configs}
        assert keys_a == keys_b
        assert np.allclose(
            np.vstack(restored.train_objectives_raw),
            np.vstack(original.train_objectives_raw),
        )

    def test_selector_state_restored(self, tiny_network, edge_space, tmp_path):
        path = tmp_path / "ckpt.json"
        original = _fresh(tiny_network, edge_space, max_iterations=2)
        original.optimize()
        save_checkpoint(original, path)
        restored = _fresh(tiny_network, edge_space, max_iterations=2)
        load_checkpoint(restored, path)
        assert restored.selector.uul == original.selector.uul
        assert restored.selector.best_scalar == original.selector.best_scalar

    def test_timeline_and_records_restored(self, tiny_network, edge_space, tmp_path):
        path = tmp_path / "ckpt.json"
        original = _fresh(tiny_network, edge_space, max_iterations=2)
        original.optimize()
        save_checkpoint(original, path)
        restored = _fresh(tiny_network, edge_space, max_iterations=2)
        load_checkpoint(restored, path)
        assert len(restored.timeline) == len(original.timeline)
        assert len(restored.iteration_records) == 2

    def test_objective_count_mismatch_rejected(
        self, tiny_network, edge_space, tmp_path
    ):
        path = tmp_path / "ckpt.json"
        original = _fresh(tiny_network, edge_space, max_iterations=1)
        original.optimize()
        save_checkpoint(original, path)
        incompatible = _fresh(
            tiny_network, edge_space, max_iterations=1, include_robustness=False
        )
        with pytest.raises(ConfigurationError):
            load_checkpoint(incompatible, path)

    def test_bad_version_rejected(self, tiny_network, edge_space, tmp_path):
        import json

        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"version": 99}))
        fresh = _fresh(tiny_network, edge_space)
        with pytest.raises(ConfigurationError):
            load_checkpoint(fresh, path)


class TestRobustnessSerialization:
    def test_v2_round_trips_full_robustness(
        self, tiny_network, edge_space, tmp_path
    ):
        """v2 keeps delta/theta and the sub-optimal PPA — no placeholders."""
        path = tmp_path / "ckpt.json"
        original = _fresh(tiny_network, edge_space, max_iterations=2)
        original.optimize()
        save_checkpoint(original, path)
        restored = _fresh(tiny_network, edge_space, max_iterations=2)
        load_checkpoint(restored, path)

        def by_point(unico):
            return {
                tuple(point): design.robustness
                for design, point in zip(unico.pareto.items, unico.pareto.points)
            }

        original_map, restored_map = by_point(original), by_point(restored)
        assert original_map.keys() == restored_map.keys()
        for key, theirs in original_map.items():
            ours = restored_map[key]
            assert ours.r_value == pytest.approx(theirs.r_value)
            assert ours.delta == pytest.approx(theirs.delta)
            assert ours.theta == pytest.approx(theirs.theta)
            assert ours.suboptimal_latency_s == pytest.approx(
                theirs.suboptimal_latency_s
            )
            assert ours.suboptimal_power_w == pytest.approx(
                theirs.suboptimal_power_w
            )

    def test_v1_still_readable_with_placeholder_geometry(
        self, tiny_network, edge_space, tmp_path
    ):
        import json

        path = tmp_path / "ckpt.json"
        original = _fresh(tiny_network, edge_space, max_iterations=2)
        original.optimize()
        save_checkpoint(original, path)
        # rewrite the file as a faithful v1 document
        payload = json.loads(path.read_text())
        payload["version"] = 1
        payload.pop("completed_iterations")
        for design in payload["pareto"]:
            design.pop("robustness")
        path.write_text(json.dumps(payload))

        restored = _fresh(tiny_network, edge_space, max_iterations=4)
        load_checkpoint(restored, path)
        assert restored.completed_iterations == 2
        assert restored.config.max_iterations == 4
        for design in restored.pareto.items:
            # the historical v1 placeholder geometry
            assert design.robustness.delta == design.robustness.r_value
            assert design.robustness.theta == pytest.approx(np.pi / 2)
            assert (
                design.robustness.suboptimal_latency_s
                == design.robustness.optimal_latency_s
            )

    def test_save_leaves_no_temp_file(self, tiny_network, edge_space, tmp_path):
        path = tmp_path / "ckpt.json"
        original = _fresh(tiny_network, edge_space, max_iterations=1)
        original.optimize()
        save_checkpoint(original, path)
        assert not list(tmp_path.glob("*.tmp"))
