"""``repro.fleet`` — distributed co-search over sharded PPA-service replicas.

The paper's master-slave deployment (Fig. 6b) at fleet scale:

* :mod:`repro.fleet.hashing` — rendezvous key placement (minimal remap);
* :mod:`repro.fleet.breaker` — per-shard circuit breakers with strict
  half-open probing;
* :mod:`repro.fleet.pool` — keep-alive connection pools (stdlib only);
* :mod:`repro.fleet.router` — health-checked shard routing;
* :mod:`repro.fleet.client` — :class:`ShardedPPAEngine`, a drop-in
  :class:`~repro.costmodel.engine.PPAEngine` that fans chunked batch
  evaluations across replicas concurrently and re-merges them in request
  order (accounting stays bit-identical to the serial path);
* :mod:`repro.fleet.server` — :class:`FleetSupervisor`, N replica
  :class:`~repro.costmodel.service.PPAServiceServer` processes with
  graceful SIGTERM drain.

Submodules import lazily here to keep ``import repro.fleet`` cheap and
cycle-free (:mod:`repro.costmodel.service` imports the pool/breaker).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.client import ShardedPPAEngine
    from repro.fleet.router import ShardRouter
    from repro.fleet.server import FleetSupervisor, ReplicaSpec

__all__ = [
    "FleetSupervisor",
    "ReplicaSpec",
    "ShardRouter",
    "ShardedPPAEngine",
]


def __getattr__(name: str):
    if name == "ShardedPPAEngine":
        from repro.fleet.client import ShardedPPAEngine

        return ShardedPPAEngine
    if name == "ShardRouter":
        from repro.fleet.router import ShardRouter

        return ShardRouter
    if name in ("FleetSupervisor", "ReplicaSpec"):
        from repro.fleet import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
