"""Smoke-scale end-to-end tests of every table/figure harness.

These run the real experiment code paths at the ``smoke`` preset on a tiny
workload, asserting structure (the right rows/series exist and are sane),
not absolute numbers — statistical shape claims live in the benchmarks.
"""

import json

import numpy as np
import pytest

from repro.experiments import (
    format_table,
    run_fig7_network,
    run_fig8,
    run_fig9,
    run_fig10_network,
    run_fig11,
    run_table,
    speedup_to_reach,
)


@pytest.fixture(scope="module")
def tiny_name(request):
    """Use a small real network so registry-based lookups work."""
    return "fsrcnn_120x320"


class TestTableHarness:
    def test_table_structure(self):
        record = run_table("edge", ["fsrcnn_120x320"], "smoke", seed=2)
        assert "fsrcnn_120x320" in record.children
        row = record.children["fsrcnn_120x320"]
        for method in ("hasco", "nsgaii", "unico"):
            cell = row.children[method].metrics
            assert cell["cost_h"] > 0
            assert cell["latency_ms"] > 0

    def test_formatting(self):
        record = run_table("edge", ["fsrcnn_120x320"], "smoke", seed=2)
        text = format_table(record)
        assert "fsrcnn_120x320" in text
        assert "hasco" in text

    def test_json_serializable(self):
        record = run_table("edge", ["fsrcnn_120x320"], "smoke", seed=2)
        json.loads(record.to_json())


class TestFig7Harness:
    def test_panel_structure(self):
        record = run_fig7_network("edge", "fsrcnn_120x320", "smoke", seed=3)
        assert record.get("ideal_hv") > 0
        grid = record.get("time_grid_s")
        for method in ("hasco", "nsgaii", "mobohb", "unico"):
            curve = record.children[method].get("hv_diff_curve")
            assert len(curve) == len(grid)
            assert all(v >= 0 for v in curve)
            # HV difference curves are non-increasing in time
            assert all(b <= a + 1e-12 for a, b in zip(curve, curve[1:]))

    def test_speedup_metric(self):
        record = run_fig7_network("edge", "fsrcnn_120x320", "smoke", seed=3)
        value = speedup_to_reach(record)
        assert value > 0


class TestFig8Harness:
    def test_record_structure(self):
        record = run_fig8("smoke", seed=2, train_networks=("fsrcnn_120x320",),
                          validation_networks=("fsrcnn_240x640",))
        assert record.get("pareto_size") >= 0
        if record.get("num_pairs"):
            pair = record.children["pair_0"]
            assert pair.get("robust_r") <= pair.get("fragile_r")
            assert "robust_mean_latency_ms" in pair.metrics


class TestFig9Harness:
    def test_record_structure(self):
        record = run_fig9(
            "smoke",
            seed=2,
            train_networks=("fsrcnn_120x320",),
            validation_networks=("fsrcnn_240x640", "dleu"),
        )
        if "error" not in record.metrics:
            for network in ("fsrcnn_240x640", "dleu"):
                child = record.children[network]
                assert child.get("gain_ratio") is not None
            assert record.get("mean_gain_ratio") is not None


class TestFig10Harness:
    def test_panel_structure(self):
        record = run_fig10_network("fsrcnn_120x320", "smoke", seed=4)
        for method in ("hasco", "sh_champion", "msh_champion", "unico"):
            assert record.children[method].get("final_hv") >= 0
        assert "improvement_over_hasco_pct" in record.children["unico"].metrics


class TestFig11Harness:
    def test_record_structure(self):
        record = run_fig11("smoke", seed=5, networks=["fsrcnn_120x320"])
        child = record.children["fsrcnn_120x320"]
        assert child.get("default_latency_ms") > 0
        if "error" not in child.metrics:
            assert "latency_saving_pct" in child.metrics
            assert "power_saving_pct" in child.metrics
            rebalance = child.get("buffer_rebalance")
            assert set(rebalance) == {"l0a_kb", "l0b_kb", "l0c_kb"}
        assert record.get("default_hw")
