"""Markdown report generation from saved experiment records.

The benchmark suite writes one JSON record per table/figure into
``benchmarks/results/``; :func:`generate_report` renders them into a single
human-readable markdown document (the "measured" side of EXPERIMENTS.md).
Available from the CLI as ``python -m repro report``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional

from repro.utils.records import RunRecord

_KNOWN_RECORDS = (
    "table1_edge",
    "table2_cloud",
    "fig7a_edge",
    "fig7b_cloud",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "ablation_msh",
    "ablation_batch",
    "ablation_tools",
    "ablation_engines",
    "r_correlation",
    "seed_robustness",
)


def load_records(results_dir: pathlib.Path) -> Dict[str, RunRecord]:
    """Load every known record JSON present in ``results_dir``."""
    records: Dict[str, RunRecord] = {}
    for name in _KNOWN_RECORDS:
        path = results_dir / f"{name}.json"
        if path.exists():
            records[name] = RunRecord.from_dict(json.loads(path.read_text()))
    return records


def _fmt(value, digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def _table_section(name: str, record: RunRecord) -> List[str]:
    scenario = record.get("scenario", "?")
    methods = record.get("methods", [])
    lines = [f"## {name} ({scenario})", ""]
    header = "| Network | " + " | ".join(
        f"{m} L(ms) | {m} P(mW) | {m} A(mm2) | {m} Cost(h)" for m in methods
    ) + " |"
    lines.append(header)
    lines.append("|" + "---|" * (1 + 4 * len(methods)))
    for network, row in record.children.items():
        cells = []
        for method in methods:
            metrics = row.children[method].metrics
            cells.extend(
                _fmt(metrics.get(key))
                for key in ("latency_ms", "power_mw", "area_mm2", "cost_h")
            )
        lines.append(f"| {network} | " + " | ".join(cells) + " |")
    lines.append("")
    return lines


def _fig7_section(name: str, record: RunRecord) -> List[str]:
    lines = [f"## {name}", ""]
    speedup = record.get("mean_speedup_vs_hasco")
    lines.append(f"Mean speedup to HASCO's final quality: **{_fmt(speedup)}x**")
    lines.append("")
    lines.append("| Network | " + " | ".join(
        f"{m} final HV-diff" for m in ("hasco", "nsgaii", "mobohb", "unico")
    ) + " |")
    lines.append("|" + "---|" * 5)
    for network, panel in record.children.items():
        cells = [
            _fmt(panel.children[m].get("final_hv_diff"))
            for m in ("hasco", "nsgaii", "mobohb", "unico")
            if m in panel.children
        ]
        lines.append(f"| {network} | " + " | ".join(cells) + " |")
    lines.append("")
    return lines


def _generic_section(name: str, record: RunRecord) -> List[str]:
    lines = [f"## {name}", ""]
    for key, value in sorted(record.metrics.items()):
        if isinstance(value, (list, dict)):
            continue
        lines.append(f"* **{key}**: {_fmt(value)}")
    for child_name, child in record.children.items():
        simple = {
            k: v
            for k, v in child.metrics.items()
            if not isinstance(v, (list, dict))
        }
        if simple:
            rendered = ", ".join(f"{k}={_fmt(v)}" for k, v in sorted(simple.items()))
            lines.append(f"* `{child_name}`: {rendered}")
    lines.append("")
    return lines


def hv_curves_to_csv(record: RunRecord) -> str:
    """Export a Fig.-7-style record's HV-difference curves as CSV.

    One row per (network, method, time) sample — the format plotting
    pipelines ingest directly.
    """
    lines = ["network,method,time_s,hv_diff"]
    for network, panel in record.children.items():
        grid = panel.get("time_grid_s") or []
        for method, child in panel.children.items():
            curve = child.get("hv_diff_curve") or []
            for t, value in zip(grid, curve):
                lines.append(f"{network},{method},{t},{value}")
    return "\n".join(lines)


def table_to_csv(record: RunRecord) -> str:
    """Export a Table-1/2-style record as CSV (one row per cell)."""
    lines = ["network,method,latency_ms,power_mw,area_mm2,cost_h"]
    for network, row in record.children.items():
        for method, cell in row.children.items():
            metrics = cell.metrics
            lines.append(
                f"{network},{method},{metrics.get('latency_ms')},"
                f"{metrics.get('power_mw')},{metrics.get('area_mm2')},"
                f"{metrics.get('cost_h')}"
            )
    return "\n".join(lines)


def generate_report(
    results_dir: pathlib.Path, title: str = "UNICO reproduction — measured results"
) -> str:
    """Render every saved record into one markdown document."""
    records = load_records(results_dir)
    lines = [f"# {title}", ""]
    if not records:
        lines.append(
            "_No records found. Run `pytest benchmarks/ --benchmark-only` first._"
        )
        return "\n".join(lines)
    lines.append(
        f"Generated from {len(records)} record(s) in `{results_dir}`."
    )
    lines.append("")
    for name, record in records.items():
        if name.startswith("table"):
            lines.extend(_table_section(name, record))
        elif name.startswith("fig7"):
            lines.extend(_fig7_section(name, record))
        else:
            lines.extend(_generic_section(name, record))
    return "\n".join(lines)
