"""Tests for Span/Tracer/NullTracer, sinks, and trace-context propagation."""

import json
import threading
import time

import pytest

from repro.obs.chrome import (
    SIM_PID,
    WALL_PID,
    ChromeTraceSink,
    spans_to_trace_events,
    write_chrome_trace,
)
from repro.obs.trace import (
    NULL_TRACER,
    SPAN_SCHEMA_VERSION,
    InMemorySink,
    JournalSpanSink,
    NullTracer,
    Tracer,
    format_trace_context,
    parse_trace_context,
)
from repro.tracking.journal import EventJournal, read_events
from repro.utils.clock import SimulatedClock


class TestSpanNesting:
    def test_child_parents_to_innermost_open_span(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner"):
                    pass
        names = {s["name"]: s for s in sink.spans}
        assert names["outer"]["parent_id"] is None
        assert names["middle"]["parent_id"] == outer.span_id
        assert names["inner"]["parent_id"] == middle.span_id

    def test_finish_order_is_innermost_first(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s["name"] for s in sink.spans] == ["inner", "outer"]

    def test_siblings_share_parent(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        for span in sink.spans:
            if span["name"] in ("a", "b"):
                assert span["parent_id"] == root.span_id

    def test_child_interval_nests_inside_parent(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sink.spans
        assert inner["wall_start_s"] >= outer["wall_start_s"]
        assert (
            inner["wall_start_s"] + inner["wall_dur_s"]
            <= outer["wall_start_s"] + outer["wall_dur_s"]
        )

    def test_current_span_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None

    def test_threads_have_independent_stacks(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        done = threading.Event()

        def worker():
            with tracer.span("worker"):
                pass
            done.set()

        with tracer.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert done.is_set()
        by_name = {s["name"]: s for s in sink.spans}
        # the worker thread's stack was empty, so its span is a root
        assert by_name["worker"]["parent_id"] is None
        assert by_name["worker"]["thread"] != by_name["main"]["thread"]

    def test_span_ids_unique(self):
        tracer = Tracer()
        ids = set()
        for _ in range(100):
            with tracer.span("s") as span:
                ids.add(span.span_id)
        assert len(ids) == 100


class TestDualClock:
    def test_sim_duration_from_clock(self):
        sink = InMemorySink()
        clock = SimulatedClock()
        tracer = Tracer(clock=clock, sinks=[sink])
        clock.advance(5.0)
        with tracer.span("round"):
            clock.advance(42.0)
        span = sink.spans[0]
        assert span["sim_start_s"] == pytest.approx(5.0)
        assert span["sim_dur_s"] == pytest.approx(42.0)
        assert span["wall_dur_s"] >= 0.0

    def test_no_clock_means_zero_sim(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("s"):
            pass
        assert sink.spans[0]["sim_dur_s"] == 0.0


class TestAttributes:
    def test_open_attrs_and_set_attribute(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("s", layer="conv1") as span:
            span.set_attribute("cache_hit", True)
        assert sink.spans[0]["attrs"] == {"layer": "conv1", "cache_hit": True}

    def test_exception_records_error_attr_and_propagates(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        with pytest.raises(RuntimeError):
            with tracer.span("s"):
                raise RuntimeError("boom")
        assert sink.spans[0]["attrs"]["error"] == "RuntimeError"

    def test_span_dict_is_json_serializable(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("s", n=3, ratio=0.5, tag="x"):
            pass
        json.dumps(sink.spans[0])


class TestManualSpans:
    def test_start_finish_with_explicit_parent(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        span = tracer.start_span("service/evaluate", parent_id="abc-1")
        payload = tracer.finish_span(span)
        assert payload["parent_id"] == "abc-1"
        assert sink.spans == [payload]

    def test_record_remote_rebases_into_parent_interval(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("request") as request_span:
            pass
        remote = tracer.record_remote(
            {
                "name": "service/evaluate_layer",
                "span_id": "srv-1",
                "wall_dur_s": 0.004,
                "attrs": {"status": 200},
            },
            request_span,
            client_elapsed_s=0.01,
        )
        assert remote["parent_id"] == request_span.span_id
        assert remote["trace_id"] == tracer.trace_id
        assert remote["attrs"]["remote"] is True
        assert remote["wall_dur_s"] == pytest.approx(0.004)
        # centered inside the client request interval
        assert remote["wall_start_s"] == pytest.approx(
            request_span.wall_start + 0.003
        )
        assert remote in sink.spans


class TestLeafSpans:
    def test_record_leaf_parents_to_open_span(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("mapping_search") as parent:
            wall_start = time.perf_counter()
            tracer.record_leaf(
                "engine_eval", wall_start, layer="conv1", cache_hit=False
            )
        leaf = sink.spans[0]
        assert leaf["name"] == "engine_eval"
        assert leaf["parent_id"] == parent.span_id
        assert leaf["trace_id"] == tracer.trace_id
        assert leaf["attrs"] == {"layer": "conv1", "cache_hit": False}
        assert leaf["wall_start_s"] == wall_start
        assert leaf["wall_dur_s"] >= 0.0
        # the leaf finished before its parent and started after it
        parent_dict = sink.spans[1]
        assert parent_dict["name"] == "mapping_search"
        assert leaf["wall_start_s"] >= parent_dict["wall_start_s"]

    def test_record_leaf_without_open_span_is_a_root(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        tracer.record_leaf("engine_eval", time.perf_counter())
        assert sink.spans[0]["parent_id"] is None

    def test_record_leaf_sim_duration(self):
        clock = SimulatedClock()
        sink = InMemorySink()
        tracer = Tracer(clock=clock, sinks=[sink])
        sim_start = clock.now_s
        wall_start = time.perf_counter()
        clock.advance(5.0)
        tracer.record_leaf("engine_eval", wall_start, sim_start)
        assert sink.spans[0]["sim_start_s"] == sim_start
        assert sink.spans[0]["sim_dur_s"] == pytest.approx(5.0)

    def test_null_tracer_record_leaf_is_noop(self):
        NULL_TRACER.record_leaf("engine_eval", 0.0, layer="conv1")


class TestNullTracer:
    def test_disabled_and_shared_span(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        first = NULL_TRACER.span("a", x=1)
        second = NULL_TRACER.span("b")
        assert first is second  # shared no-op instance

    def test_null_span_is_inert_context_manager(self):
        with NULL_TRACER.span("s") as span:
            span.set_attribute("ignored", 1)
        assert NULL_TRACER.finish_span(NULL_TRACER.start_span("x")) == {}

    def test_real_tracer_is_enabled(self):
        assert Tracer().enabled is True


class TestSinks:
    def test_journal_sink_writes_schema_versioned_span_events(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            tracer = Tracer(sinks=[JournalSpanSink(journal)])
            with tracer.span("iteration", iteration=0):
                pass
        events = read_events(path).of_type("span")
        assert len(events) == 1
        assert events[0]["span_schema"] == SPAN_SCHEMA_VERSION
        assert events[0]["name"] == "iteration"
        assert events[0]["attrs"] == {"iteration": 0}

    def test_chrome_sink_flush_writes_trace_file(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(path)
        tracer = Tracer(sinks=[sink])
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert not path.exists()  # buffered until flush
        tracer.flush()
        document = json.loads(path.read_text())
        names = [e["name"] for e in document["traceEvents"] if e["ph"] == "X"]
        assert set(names) == {"outer", "inner"}

    def test_multiple_sinks_all_fed(self, tmp_path):
        a, b = InMemorySink(), InMemorySink()
        tracer = Tracer(sinks=[a, b])
        with tracer.span("s"):
            pass
        assert a.spans == b.spans and len(a.spans) == 1


class TestChromeEvents:
    def test_sim_twin_emitted_on_sim_pid(self):
        span = {
            "name": "msh_round",
            "span_id": "x-1",
            "parent_id": None,
            "trace_id": "t",
            "wall_start_s": 1.0,
            "wall_dur_s": 0.5,
            "sim_start_s": 10.0,
            "sim_dur_s": 100.0,
            "thread": 7,
            "attrs": {"round": 0},
        }
        events = spans_to_trace_events([span])
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        wall = next(e for e in xs if e["pid"] == WALL_PID)
        sim = next(e for e in xs if e["pid"] == SIM_PID)
        assert wall["ts"] == pytest.approx(1.0e6)
        assert wall["dur"] == pytest.approx(0.5e6)
        assert sim["dur"] == pytest.approx(100.0e6)
        assert wall["args"]["round"] == 0

    def test_no_sim_twin_without_sim_time(self):
        span = {
            "name": "engine_eval",
            "span_id": "x-1",
            "wall_start_s": 0.0,
            "wall_dur_s": 0.1,
            "sim_dur_s": 0.0,
            "attrs": {},
        }
        xs = [e for e in spans_to_trace_events([span]) if e["ph"] == "X"]
        assert len(xs) == 1 and xs[0]["pid"] == WALL_PID

    def test_write_chrome_trace_creates_parents(self, tmp_path):
        out = tmp_path / "deep" / "dir" / "trace.json"
        write_chrome_trace([], out)
        document = json.loads(out.read_text())
        # metadata events only (the two process_name records)
        assert all(e["ph"] == "M" for e in document["traceEvents"])


class TestContextPropagation:
    def test_round_trip(self):
        tracer = Tracer(trace_id="deadbeef")
        with tracer.span("request") as span:
            header = format_trace_context(tracer, span)
            assert parse_trace_context(header) == ("deadbeef", span.span_id)

    @pytest.mark.parametrize(
        "header", [None, "", "nocolon", "a:b:c", ":x", "x:", ":"]
    )
    def test_garbage_rejected(self, header):
        assert parse_trace_context(header) is None
